// run_diff — compare two xlp run directories.
//
//   run_diff <dir-a> <dir-b> [--threshold <pct>] [--html <file>]
//
// Reads the telemetry bundles of both directories (stats, xlp-series/1
// recordings, JSONL traces, ledgers; see `xlp report`) and prints:
//   * stats deltas for every numeric metric present in both runs,
//   * aligned time-series comparisons (count-weighted means per series),
//   * a ledger provenance diff (run id, git sha, seed, params).
// With --html it also writes a self-contained overlay dashboard, one chart
// per common series with both runs plotted.
//
// Exit codes:
//   0  runs match within the threshold
//   1  metric regression: a latency-like metric of B exceeds A by more
//      than --threshold percent (default 5), or throughput drops by more
//      (improvements never fail the gate)
//   2  usage error / unreadable inputs
//
// `xlp run --seed S` twice into two directories must diff clean at any
// thread counts — the determinism contract, enforced in CI.

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/args.hpp"
#include "util/fsio.hpp"

using xlp::Args;
using xlp::obs::ChartSeries;
using xlp::obs::Json;
using xlp::obs::RunDirData;

namespace {

/// Numeric stats flattened one object level deep ("latency.avg").
void flatten_numeric(const Json& obj, const std::string& prefix,
                     std::map<std::string, double>& out) {
  for (const auto& [key, value] : obj.members()) {
    const std::string label = prefix.empty() ? key : prefix + "." + key;
    if (value.is_number()) {
      out[label] = value.as_number();
    } else if (value.is_object() && prefix.empty()) {
      flatten_numeric(value, key, out);
    }
  }
}

/// A metric where an increase in run B is a regression. Latency-like
/// metrics regress upward; packet losses too.
bool higher_is_worse(const std::string& name) {
  return name.rfind("latency.", 0) == 0 ||
         name == "avg_contention_per_hop" || name == "packets_lost" ||
         name == "packets_dropped" || name == "packets_unroutable";
}

/// A metric where a decrease in run B is a regression.
bool lower_is_worse(const std::string& name) {
  return name == "throughput_packets_per_node_cycle" ||
         name == "packets_finished";
}

double pct_change(double a, double b) {
  if (a == 0.0) return b == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return (b - a) / std::abs(a) * 100.0;
}

/// Every plottable series of a run: recorded xlp-series/1 documents plus
/// the trace-derived ones, keyed by name.
std::map<std::string, ChartSeries> all_series(const RunDirData& data) {
  std::map<std::string, ChartSeries> out;
  if (data.series)
    for (ChartSeries& s : xlp::obs::chart_series_from_json(*data.series))
      out[s.name] = std::move(s);
  for (const auto& [name, points] : data.trace_series)
    out[name] = ChartSeries{name, points};
  return out;
}

double series_mean(const ChartSeries& s) {
  double sum = 0.0;
  if (s.points.empty()) return 0.0;
  for (const auto& [x, y] : s.points) sum += y;
  return sum / static_cast<double>(s.points.size());
}

std::string ledger_field(const std::vector<Json>& ledger, const char* key) {
  if (ledger.empty()) return "(no ledger)";
  const Json* v = ledger.back().find(key);
  if (v == nullptr) return "(absent)";
  return v->is_string() ? v->as_string() : v->dump();
}

int usage() {
  std::fprintf(stderr,
               "usage: run_diff <dir-a> <dir-b> [--threshold <pct>] "
               "[--html <file>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.positional().size() != 2) return usage();
  const std::string dir_a = args.positional()[0];
  const std::string dir_b = args.positional()[1];
  const double threshold = args.get_double("threshold", 5.0);
  const std::string html_path = args.get_or("html", "");

  const RunDirData a = xlp::obs::collect_run_dir(dir_a);
  const RunDirData b = xlp::obs::collect_run_dir(dir_b);
  if (!a.stats && !a.series && a.trace_series.empty() && a.ledger.empty()) {
    std::fprintf(stderr, "run_diff: no telemetry found in %s\n",
                 dir_a.c_str());
    return 2;
  }

  int regressions = 0;
  std::printf("run_diff: A=%s  B=%s  (threshold %.1f%%)\n", dir_a.c_str(),
              dir_b.c_str(), threshold);

  // --- Stats deltas -------------------------------------------------------
  if (a.stats && b.stats) {
    std::map<std::string, double> sa, sb;
    flatten_numeric(*a.stats, "", sa);
    flatten_numeric(*b.stats, "", sb);
    std::printf("\nstats (%zu metrics in both runs):\n", [&] {
      std::size_t common = 0;
      for (const auto& [k, v] : sa) common += sb.count(k);
      return common;
    }());
    for (const auto& [key, va] : sa) {
      const auto it = sb.find(key);
      if (it == sb.end()) continue;
      const double vb = it->second;
      const double pct = pct_change(va, vb);
      const bool regressed =
          std::isfinite(pct)
              ? (higher_is_worse(key) && pct > threshold) ||
                    (lower_is_worse(key) && pct < -threshold)
              : higher_is_worse(key) && vb > va;
      if (va == vb) continue;  // quiet on exact matches
      std::printf("  %-40s %14.6g %14.6g  %+8.2f%%%s\n", key.c_str(), va, vb,
                  pct, regressed ? "  REGRESSION" : "");
      if (regressed) ++regressions;
    }
    std::printf("  (metrics with identical values suppressed)\n");
  } else {
    std::printf("\nstats: %s\n", a.stats || b.stats
                                     ? "only one run has a stats document"
                                     : "absent in both runs");
  }

  // --- Time-series comparison --------------------------------------------
  const auto series_a = all_series(a);
  const auto series_b = all_series(b);
  std::size_t common_series = 0;
  for (const auto& [name, sa_] : series_a) common_series +=
      series_b.count(name);
  if (common_series > 0) {
    std::printf("\nseries (count-weighted means over aligned recordings):\n");
    for (const auto& [name, s] : series_a) {
      const auto it = series_b.find(name);
      if (it == series_b.end()) continue;
      const double ma = series_mean(s);
      const double mb = series_mean(it->second);
      std::printf("  %-40s %14.6g %14.6g  %+8.2f%%  (%zu vs %zu pts)\n",
                  name.c_str(), ma, mb, pct_change(ma, mb), s.points.size(),
                  it->second.points.size());
    }
  }
  for (const auto& [name, s] : series_a)
    if (series_b.find(name) == series_b.end())
      std::printf("  only in A: %s\n", name.c_str());
  for (const auto& [name, s] : series_b)
    if (series_a.find(name) == series_a.end())
      std::printf("  only in B: %s\n", name.c_str());

  // --- Ledger provenance diff --------------------------------------------
  std::printf("\nledger provenance (latest record per run):\n");
  for (const char* key : {"run_id", "subcommand", "seed", "git_sha",
                          "hostname", "params"}) {
    const std::string va = ledger_field(a.ledger, key);
    const std::string vb = ledger_field(b.ledger, key);
    std::printf("  %-12s %s%s\n", key,
                va == vb ? va.c_str() : (va + "  ->  " + vb).c_str(),
                va == vb ? "" : "  DIFFERS");
  }

  // --- Optional HTML overlay dashboard -----------------------------------
  if (!html_path.empty()) {
    std::string body = "<h1>run_diff — " + xlp::obs::html_escape(dir_a) +
                       " vs " + xlp::obs::html_escape(dir_b) + "</h1>\n";
    body += "<h2>Series overlays (A first color, B second)</h2>\n";
    for (const auto& [name, s] : series_a) {
      const auto it = series_b.find(name);
      if (it == series_b.end()) continue;
      ChartSeries sa_ = s, sb_ = it->second;
      sa_.name = "A: " + name;
      sb_.name = "B: " + name;
      body += xlp::obs::svg_line_chart(name, {sa_, sb_});
    }
    const std::string html =
        xlp::obs::html_page("run_diff — " + dir_a + " vs " + dir_b, body);
    if (xlp::util::atomic_write_file(html_path, html)) {
      std::printf("\nhtml: %s written\n", html_path.c_str());
    } else {
      std::fprintf(stderr, "run_diff: cannot write %s\n", html_path.c_str());
      return 2;
    }
  }

  if (regressions > 0) {
    std::printf("\n%d metric regression%s beyond %.1f%%\n", regressions,
                regressions == 1 ? "" : "s", threshold);
    return 1;
  }
  std::printf("\nno metric regressions beyond %.1f%%\n", threshold);
  return 0;
}
