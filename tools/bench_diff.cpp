// bench_diff — the regression gate over BENCH_*.json documents.
//
//   bench_diff <old> <new> [--threshold 0.10]
//
// <old> and <new> are either two BENCH_*.json files written by the bench
// harness (schema xlp-bench/1) or two directories; in directory mode every
// BENCH_*.json present in <old> is compared against the same filename in
// <new>. For each benchmark the tracked metrics are compared:
//
//   min_ns / median_ns / mean_ns    lower is better
//   *_per_sec                       higher is better
//   *_p99_ns                        lower is better (tail latencies the
//                                   benchmark body measured itself via
//                                   BenchRun::set_time_ns)
//
// Anything else under "metrics" is informational and printed but never
// gates. Exit code 0 when no tracked metric regressed by more than the
// threshold (relative, default 0.10 = 10%), 1 on any regression, 2 on
// usage or I/O errors. Deterministic counters that drift are reported as
// a note, not a failure — they signal a behavior change, which the unit
// tests own.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using xlp::obs::Json;

namespace {

struct Metric {
  double value = 0.0;
  bool tracked = false;
  bool higher_better = false;
};

/// benchmark name -> metric name -> value, flattened from one suite doc.
using SuiteMetrics = std::map<std::string, std::map<std::string, Metric>>;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool load_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Parses one BENCH_*.json document into per-benchmark metric maps.
/// Artifact documents (kind != "suite") have no benchmark list and yield
/// an empty map. Returns false on unparseable or off-schema input.
bool parse_suite(const std::string& path, SuiteMetrics& out) {
  std::string text;
  if (!load_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::size_t offset = 0;
  const auto doc = Json::parse(text, &offset);
  if (!doc) {
    std::fprintf(stderr, "error: %s: JSON syntax error at character %zu\n",
                 path.c_str(), offset);
    return false;
  }
  const Json* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "xlp-bench/1") {
    std::fprintf(stderr, "error: %s is not an xlp-bench/1 document\n",
                 path.c_str());
    return false;
  }
  const Json* kind = doc->find("kind");
  if (kind != nullptr && kind->is_string() && kind->as_string() != "suite")
    return true;  // artifact: nothing to gate on
  const Json* benches = doc->find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    std::fprintf(stderr, "error: %s has no benchmark list\n", path.c_str());
    return false;
  }
  for (std::size_t i = 0; i < benches->size(); ++i) {
    const Json& b = benches->at(i);
    const Json* name = b.find("name");
    if (name == nullptr || !name->is_string()) continue;
    auto& metrics = out[name->as_string()];
    for (const char* key : {"min_ns", "median_ns", "mean_ns"}) {
      if (const Json* v = b.find(key); v != nullptr && v->is_number())
        metrics[key] = {v->as_number(), true, false};
    }
    if (const Json* m = b.find("metrics"); m != nullptr && m->is_object()) {
      for (const auto& [key, value] : m->members()) {
        if (!value.is_number()) continue;
        const bool rate = ends_with(key, "_per_sec");
        const bool tail = ends_with(key, "_p99_ns");
        metrics[key] = {value.as_number(), rate || tail, rate};
      }
    }
  }
  return true;
}

/// Compares one pair of suite maps; prints the delta table rows, appends
/// "bench/metric" to `regressed` for every gate failure, and returns the
/// number of tracked metrics regressed beyond the threshold.
int diff_suites(const std::string& label, const SuiteMetrics& before,
                const SuiteMetrics& after, double threshold,
                std::vector<std::string>& regressed) {
  int regressions = 0;
  for (const auto& [bench, old_metrics] : before) {
    const auto it = after.find(bench);
    if (it == after.end()) {
      std::printf("%-46s %-22s (missing from new run)\n",
                  (label + "/" + bench).c_str(), "");
      continue;
    }
    for (const auto& [metric, old_value] : old_metrics) {
      const auto mit = it->second.find(metric);
      if (mit == it->second.end()) continue;
      const double a = old_value.value;
      const double b = mit->second.value;
      const double delta = a != 0.0 ? (b - a) / a : (b == 0.0 ? 0.0 : 1.0);
      const char* verdict = "";
      if (old_value.tracked) {
        // A regression is slower (ns up) or less throughput (rate down).
        const double regression = old_value.higher_better ? -delta : delta;
        if (regression > threshold) {
          verdict = "REGRESSED";
          ++regressions;
          regressed.push_back(bench + "/" + metric);
        } else if (regression < -threshold) {
          verdict = "improved";
        } else {
          verdict = "ok";
        }
      } else if (a != b) {
        verdict = "note: value changed";
      }
      std::printf("%-46s %-22s %14.4g %14.4g %+8.1f%% %s\n",
                  (label + "/" + bench).c_str(), metric.c_str(), a, b,
                  delta * 100.0, verdict);
    }
  }
  return regressions;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <old.json|old-dir> <new.json|new-dir> "
               "[--threshold 0.10]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold") {
      if (i + 1 >= argc) return usage();
      threshold = std::atof(argv[++i]);
      if (threshold < 0.0) return usage();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return usage();

  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> pairs;  // (old, new)
  std::error_code ec;
  const bool dir_mode = fs::is_directory(paths[0], ec);
  if (dir_mode != fs::is_directory(paths[1], ec)) {
    std::fprintf(stderr,
                 "error: both arguments must be files or both directories\n");
    return 2;
  }
  if (dir_mode) {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(paths[0], ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && ends_with(name, ".json"))
        names.push_back(name);
    }
    if (ec) {
      std::fprintf(stderr, "error: cannot list %s\n", paths[0].c_str());
      return 2;
    }
    std::sort(names.begin(), names.end());
    if (names.empty()) {
      std::fprintf(stderr, "error: no BENCH_*.json in %s\n",
                   paths[0].c_str());
      return 2;
    }
    for (const auto& name : names) {
      const std::string candidate = paths[1] + "/" + name;
      if (!fs::exists(candidate, ec)) {
        std::fprintf(stderr, "warning: %s missing from %s, skipped\n",
                     name.c_str(), paths[1].c_str());
        continue;
      }
      pairs.emplace_back(paths[0] + "/" + name, candidate);
    }
  } else {
    pairs.emplace_back(paths[0], paths[1]);
  }

  std::printf("%-46s %-22s %14s %14s %9s verdict\n", "benchmark", "metric",
              "old", "new", "delta");
  int regressions = 0;
  // Regressions keyed by the baseline file they came from, so the summary
  // of a directory-mode run names the offending BENCH_*.json outright
  // instead of making the reader scan the delta table.
  std::vector<std::pair<std::string, std::vector<std::string>>> by_file;
  for (const auto& [old_path, new_path] : pairs) {
    SuiteMetrics before, after;
    if (!parse_suite(old_path, before) || !parse_suite(new_path, after))
      return 2;
    const std::string label =
        fs::path(old_path).filename().stem().string();
    std::vector<std::string> regressed;
    regressions += diff_suites(label, before, after, threshold, regressed);
    if (!regressed.empty())
      by_file.emplace_back(fs::path(old_path).filename().string(),
                           std::move(regressed));
  }
  if (regressions > 0) {
    std::printf("\n%d tracked metric(s) regressed beyond %.0f%%\n",
                regressions, threshold * 100.0);
    for (const auto& [file, entries] : by_file) {
      std::printf("  %s: %zu regression(s)\n", file.c_str(), entries.size());
      for (const std::string& entry : entries)
        std::printf("    %s\n", entry.c_str());
    }
    return 1;
  }
  std::printf("\nno tracked metric regressed beyond %.0f%%\n",
              threshold * 100.0);
  return 0;
}
