// xlp — command-line front end to the express-link placement toolkit.
//
//   xlp solve     --n 8 --c 4 [--method dcsa|onlysa|dnc|exact]
//                 [--moves 10000] [--seed 1]
//   xlp sweep     --n 8 [--moves 10000] [--seed 1] [--base-flit 256]
//   xlp simulate  --links 1-3,3-7 --c 4 [--n 8] [--pattern uniform_random]
//                 [--load 0.02] [--cycles 10000] [--routing xy|yx|o1turn]
//                 [--vec] [--vcs 4] [--seed 1]
//   xlp trace     --out trace.txt [--n 8] [--pattern transpose]
//                 [--load 0.02] [--cycles 10000] [--seed 1]
//   xlp replay    --trace trace.txt --links 1-3,3-7 --c 4
//   xlp appspec   --workload canneal [--n 8] [--moves 2000] [--seed 1]
//   xlp run       --n 8 --c 4 [--moves 10000] [--pattern uniform_random]
//                 [--load 0.02] [--cycles 10000] [--seed 1]
//                 [--checkpoint ck.json] [--checkpoint-every 10000]
//                 [--resume ck.json]
//   xlp faults    --n 8 --c 4 [--kill-express 1] [--at-cycle 2000]
//                 [--recover-at -1] [--trials 10] [--load 0.02]
//                 [--policy drop|drain] [--retries 3] [--rel-weight 0.3]
//                 [--seed 1] [--json campaign.json]
//   xlp bench     [--filter re] [--repeats 5] [--warmup 1] [--out-dir .]
//                 [--profile out.folded] [--deterministic] [--list]
//                 (runs the registered benchmark suites, writes one
//                 schema-versioned BENCH_<suite>.json per suite)
//   xlp report    <run-dir> [--out report.html]
//                 (renders a dependency-free single-file HTML dashboard
//                 from the telemetry files found in <run-dir>)
//   xlp submit    (--file batch.json | --sweep-n 8 [--method dcsa]
//                 [--moves 10000] [--base-flit 256] [--seed 1])
//                 (--queue <dir> [--wait 60] [--name <id>] | --socket <path>)
//                 [--retries 5] [--retry-base-ms 50]
//                 (submits a request batch to a running `xlpd` — see
//                 docs/service.md — and prints the reply document; a
//                 per-request summary with wall time and HIT/MISS markers
//                 goes to stderr, and the exit code is 1 when any request
//                 in the batch errored. Socket transport errors and
//                 retryable error replies are resubmitted with bounded
//                 exponential backoff — which also covers racing a daemon
//                 that has not bound its socket yet)
//   xlp top       <socket> [--interval 1] [--once] [--retries 5]
//                 [--retry-base-ms 50]
//                 (live refreshing view of a running `xlpd`: uptime,
//                 request counts, dedup funnel, cache occupancy, worker
//                 utilization and queue-wait/execution/end-to-end latency
//                 quantiles, polled via `stats` requests)
//
// Telemetry (see docs/observability.md):
//   --trace <file.jsonl>   structured JSONL trace (SA cooling steps on
//                          solve/run, simulator progress + channel heatmap
//                          on simulate/run); not available on `replay`,
//                          whose --trace names the input packet trace
//   --metrics <file.json>  dump the global metrics registry after the run
//   --stats-json <file>    full SimStats serialization (simulate/replay/run)
//   --series <file.json>   bounded-memory time-series recording (simulator
//                          cycle telemetry on simulate/run, SA cooling
//                          trajectories on solve/run), schema xlp-series/1
//   --profile-json <file>  enable the hierarchical profiler and dump the
//                          merged scope tree as JSON after the run
//
// Run ledger:
//   every subcommand appends one JSONL record to <out-dir>/ledger.jsonl
//   (run id = content hash over subcommand + canonical scenario params +
//   seed + git sha; plus provenance, wall time, exit status and artifact
//   paths). --out-dir <dir> relocates the ledger (default "."),
//   --no-ledger disables it.
//
// Parallel execution (see docs/parallelism.md):
//   --threads <N>          pool workers for portfolios (`solve --chains`),
//                          sweeps and fault campaigns; overrides the
//                          XLP_THREADS environment variable (default: all
//                          hardware threads). Determinism contract: results
//                          and checkpoints are byte-identical for every N —
//                          --threads 1 just runs them sequentially.
//
// Run control (see docs/resilience.md):
//   --time-limit <seconds>     wall-clock budget; searches and simulations
//                              stop at the deadline and report best-so-far
//   --checkpoint <file.json>   (solve/run) periodically persist annealer
//                              state, atomically, plus once on any early stop
//   --checkpoint-every <moves> sink cadence in SA moves (default 10000)
//   --resume <file.json>       (run) continue from a checkpoint; with the
//                              same seed the result is bit-identical to an
//                              uninterrupted run
//   SIGINT/SIGTERM request a cooperative stop: the current best solution is
//   reported (and checkpointed) before exit; a second signal kills outright.
//
// Every subcommand prints a short human-readable report. Exit codes:
//   0    success (including runs stopped gracefully by --time-limit)
//   1    domain failure (I/O, malformed input, simulation error)
//   2    usage error (unknown command/flag values, bad preconditions)
//   130  interrupted by SIGINT/SIGTERM (best-effort results were saved)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "core/app_specific.hpp"
#include "harness.hpp"
#include "suites.hpp"
#include "core/branch_bound.hpp"
#include "core/c_sweep.hpp"
#include "core/drivers.hpp"
#include "core/portfolio.hpp"
#include "exp/fault_campaign.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "power/model.hpp"
#include "runctl/checkpoint.hpp"
#include "runctl/control.hpp"
#include "obs/canonical.hpp"
#include "sim/simulator.hpp"
#include "sim/stats_json.hpp"
#include "svc/client.hpp"
#include "topo/builders.hpp"
#include "topo/render.hpp"
#include "traffic/patterns.hpp"
#include "traffic/trace.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace xlp;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitInterrupted = 130;

int usage() {
  std::fprintf(stderr,
               "usage: xlp <solve|sweep|simulate|trace|replay|appspec|run|"
               "faults|bench|report|submit|top> "
               "[options]\n(see the header of tools/xlp_cli.cpp for the "
               "full option list)\n");
  return kExitUsage;
}

/// What the running subcommand contributes to its run-ledger record.
/// Commands fill the scenario identity (subcommand, canonical params,
/// seed) up front and register artifact paths as they write them; main()
/// appends the finished record once, after the command returns. File
/// scope, like the cancel token: the cmd_* functions only see Args.
struct LedgerContext {
  bool filled = false;
  obs::LedgerEntry entry;

  /// Declares the scenario identity. `params` must hold only inputs that
  /// define the run (never output paths, thread counts or time limits) so
  /// the run id is stable across machines and thread counts.
  void describe(std::string subcommand, obs::Json params,
                std::uint64_t seed) {
    filled = true;
    entry.subcommand = std::move(subcommand);
    entry.params = std::move(params);
    entry.seed = seed;
  }

  void artifact(const std::string& path) {
    if (!path.empty()) entry.artifacts.push_back(path);
  }
};

LedgerContext g_ledger;

/// Process-wide cancellation token, flipped by SIGINT/SIGTERM. Lives at
/// file scope so the async-signal-safe handler can reach it.
runctl::CancelToken g_cancel_token;

/// Builds the RunControl every command threads into its loops: the shared
/// signal token plus the optional `--time-limit <seconds>` deadline.
runctl::RunControl make_run_control(const Args& args) {
  runctl::Deadline deadline;
  const double limit = args.get_double("time-limit", 0.0);
  if (limit > 0.0) deadline = runctl::Deadline::after_seconds(limit);
  return runctl::RunControl(&g_cancel_token, deadline);
}

/// Prints (and traces) how a search or simulation phase ended; quiet for
/// normal completion.
void report_status(runctl::RunStatus status, const char* phase,
                   obs::TraceSink& sink) {
  if (sink.enabled())
    sink.emit("run.status", obs::Json::object()
                                .set("phase", phase)
                                .set("status", runctl::to_string(status)));
  if (status != runctl::RunStatus::kCompleted)
    std::printf("  status:    %s stopped early (%s); results are "
                "best-so-far\n",
                phase, runctl::to_string(status));
}

/// Checkpoint sink for single-chain annealing runs: persists every
/// snapshot atomically to `path`. Periodic write failures warn instead of
/// killing the search.
std::function<void(const runctl::SaCheckpoint&)> checkpoint_file_sink(
    std::string path) {
  if (path.empty()) return {};
  return [path = std::move(path)](const runctl::SaCheckpoint& ck) {
    try {
      runctl::save_sa_checkpoint(path, ck);
    } catch (const Error& e) {
      std::fprintf(stderr, "warning: %s\n", e.what());
    }
  };
}

/// Owns the optional `--trace <file.jsonl>` output: the stream plus the
/// JSONL sink writing to it. When the flag is absent every accessor
/// degrades to the null sink, so instrumented paths cost nothing.
class TraceOutput {
 public:
  explicit TraceOutput(const Args& args) : path_(args.get_or("trace", "")) {
    if (path_.empty()) return;
    obs::ensure_parent_dir(path_);
    stream_.open(path_);
    XLP_REQUIRE(stream_.good(), "cannot open " + path_);
    sink_ = std::make_unique<obs::JsonlTraceSink>(stream_);
  }

  [[nodiscard]] obs::TraceSink& sink() {
    return sink_ ? static_cast<obs::TraceSink&>(*sink_)
                 : obs::null_trace_sink();
  }
  /// For SimConfig::trace, which treats nullptr as "off".
  [[nodiscard]] obs::TraceSink* sink_or_null() { return sink_.get(); }

  void report() const {
    if (sink_) {
      std::printf("  trace: %ld events -> %s\n", sink_->events_written(),
                  path_.c_str());
      g_ledger.artifact(path_);
    }
  }

 private:
  std::string path_;
  std::ofstream stream_;
  std::unique_ptr<obs::JsonlTraceSink> sink_;
};

/// Owns the optional `--series <file.json>` recorder: commands hand the
/// recorder (or nullptr, costing a single branch at each instrumentation
/// site) to the simulator / annealer, and report() writes the document
/// once at the end.
class SeriesOutput {
 public:
  explicit SeriesOutput(const Args& args)
      : path_(args.get_or("series", "")) {}

  /// For SimConfig::series / SaParams::series, which treat nullptr as off.
  [[nodiscard]] obs::SeriesRecorder* recorder_or_null() {
    return path_.empty() ? nullptr : &recorder_;
  }

  void report() {
    if (path_.empty()) return;
    std::printf("  series: %zu series -> %s %s\n", recorder_.names().size(),
                path_.c_str(),
                recorder_.write_json_file(path_) ? "written" : "NOT WRITTEN");
    g_ledger.artifact(path_);
  }

 private:
  std::string path_;
  obs::SeriesRecorder recorder_;
};

/// Observer that forwards every SA cooling step to the trace sink as an
/// `sa.cool` event; empty (and free) when tracing is off.
core::SaObserver sa_trace_observer(obs::TraceSink& sink) {
  if (!sink.enabled()) return {};
  return [&sink](const core::SaCoolingStep& step) {
    sink.emit("sa.cool",
              obs::Json::object()
                  .set("phase", "anneal")
                  .set("step", step.step)
                  .set("moves", step.moves_done)
                  .set("temperature", step.temperature)
                  .set("current", step.current_value)
                  .set("best", step.best_value)
                  .set("acceptance", step.window_acceptance_rate()));
  };
}

void write_stats_if_requested(const Args& args, const sim::SimStats& stats) {
  const std::string path = args.get_or("stats-json", "");
  if (path.empty()) return;
  std::printf("  stats-json: %s %s\n", path.c_str(),
              sim::write_stats_json(stats, path) ? "written" : "NOT WRITTEN");
  g_ledger.artifact(path);
}

std::vector<topo::RowLink> parse_links(const std::string& spec) {
  std::vector<topo::RowLink> links;
  if (spec.empty() || spec == "none") return links;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto dash = item.find('-');
    XLP_REQUIRE(dash != std::string::npos,
                "--links entries look like lo-hi, comma separated");
    links.push_back({std::stoi(item.substr(0, dash)),
                     std::stoi(item.substr(dash + 1))});
  }
  return links;
}

traffic::TrafficMatrix resolve_workload(const std::string& name, int n,
                                        double load) {
  if (const auto pattern = traffic::pattern_from_string(name))
    return traffic::TrafficMatrix::from_pattern(*pattern, n, load);
  traffic::TrafficMatrix demand =
      traffic::parsec_model(name).traffic_matrix(n);
  return demand;
}

int cmd_solve(const Args& args) {
  const int n = static_cast<int>(args.get_long("n", 8));
  const int c = static_cast<int>(args.get_long("c", 4));
  const std::string method = args.get_or("method", "dcsa");
  const long moves = args.get_long("moves", 10000);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const int chains = static_cast<int>(args.get_long("chains", 1));
  g_ledger.describe("solve",
                    obs::Json::object()
                        .set("n", n)
                        .set("c", c)
                        .set("method", method)
                        .set("moves", moves)
                        .set("chains", chains),
                    seed);

  const core::RowObjective objective(n, route::HopWeights{});
  TraceOutput trace(args);
  SeriesOutput series(args);
  runctl::RunControl control = make_run_control(args);
  const std::string checkpoint_path = args.get_or("checkpoint", "");
  const long checkpoint_every = args.get_long("checkpoint-every", 10000);
  core::SaParams params = core::SaParams{}.with_moves(moves);
  params.observer = sa_trace_observer(trace.sink());
  params.series = series.recorder_or_null();
  params.control = &control;
  params.checkpoint_sink = checkpoint_file_sink(checkpoint_path);
  params.checkpoint_every_moves = checkpoint_every;
  Rng rng(seed);

  core::PlacementResult result;
  if (chains > 1 && (method == "dcsa" || method == "onlysa")) {
    core::PortfolioOptions options;
    options.chains = chains;
    options.sa = params;
    options.sa.checkpoint_sink = {};  // the portfolio wires its own sinks
    options.series = series.recorder_or_null();
    options.control = control;
    options.checkpoint_path = checkpoint_path;
    options.checkpoint_every_moves = checkpoint_every;
    options.solver = method == "dcsa" ? core::Solver::kDcsa
                                      : core::Solver::kOnlySa;
    auto portfolio = core::solve_portfolio(n, route::HopWeights{},
                                           std::nullopt, c, options, seed);
    std::printf("portfolio of %d chains finished in %.3f s (%ld evals)\n",
                chains, portfolio.seconds, portfolio.total_evaluations);
    result = std::move(portfolio.best);
    result.status = portfolio.status;
  } else if (method == "dcsa") {
    result = core::solve_dcsa(objective, c, params, rng);
  } else if (method == "onlysa") {
    result = core::solve_only_sa(objective, c, params, rng);
  } else if (method == "dnc") {
    core::DncOptions dnc;
    dnc.control = &control;
    result = core::solve_dnc_only(objective, c, dnc);
  } else if (method == "exact") {
    core::BranchAndBound bb(objective, c, &control);
    const auto exact = bb.solve();
    result = {exact.placement, exact.value, objective.evaluations(), 0.0,
              "exact"};
    result.status = exact.status;
  } else {
    std::fprintf(stderr, "unknown --method %s\n", method.c_str());
    return kExitUsage;
  }

  std::printf("P̄(%d,%d) via %s\n", n, c, result.method.c_str());
  std::printf("  placement: %s\n", result.placement.to_string().c_str());
  std::printf("%s", topo::render_row(result.placement).c_str());
  std::printf("  objective: %.4f cycles (plain row: %.4f)\n", result.value,
              objective.evaluate(topo::RowTopology(n)));
  std::printf("  cost:      %ld evaluations, %.3f s\n", result.evaluations,
              result.seconds);
  report_status(result.status, "solve", trace.sink());
  if (!checkpoint_path.empty() &&
      result.status != runctl::RunStatus::kCompleted) {
    std::printf("  checkpoint: %s (resume with `xlp run --resume %s`)\n",
                checkpoint_path.c_str(), checkpoint_path.c_str());
    g_ledger.artifact(checkpoint_path);
  }
  trace.report();
  series.report();
  return 0;
}

int cmd_sweep(const Args& args) {
  const int n = static_cast<int>(args.get_long("n", 8));
  const int height = static_cast<int>(args.get_long("height", n));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(args.get_long("moves", 10000));
  options.base_flit_bits =
      static_cast<int>(args.get_long("base-flit", topo::kBaseFlitBits));
  options.latency = latency::LatencyParams::zero_load();
  g_ledger.describe("sweep",
                    obs::Json::object()
                        .set("n", n)
                        .set("height", height)
                        .set("moves", options.sa.total_moves)
                        .set("base_flit", options.base_flit_bits),
                    seed);
  Rng rng(seed);
  const auto points =
      height == n ? core::sweep_link_limits(n, options, rng)
                  : core::sweep_link_limits_rect(n, height, options, rng);

  Table table({"C", "flit", "total", "head", "serialization", "placement"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.link_limit),
                   std::to_string(p.design.flit_bits()),
                   Table::fmt(p.breakdown.total()),
                   Table::fmt(p.breakdown.head),
                   Table::fmt(p.breakdown.serialization),
                   p.placement.placement.to_string()});
  table.print(std::cout);
  const auto& best = points[core::best_point(points)];
  std::printf("best: C=%d at %.2f cycles\n", best.link_limit,
              best.breakdown.total());
  return 0;
}

int cmd_simulate(const Args& args) {
  const int n = static_cast<int>(args.get_long("n", 8));
  const int c = static_cast<int>(args.get_long("c", 4));
  const topo::RowTopology row(n, parse_links(args.get_or("links", "")));
  const topo::ExpressMesh design = topo::make_design(row, c);

  const std::string pattern = args.get_or("pattern", "uniform_random");
  const double load = args.get_double("load", 0.02);
  const auto demand = resolve_workload(pattern, n, load);

  sim::SimConfig config;
  config.measure_cycles = args.get_long("cycles", 10000);
  config.vcs_per_port = static_cast<int>(args.get_long("vcs", 4));
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  config.virtual_express_bypass = args.has("vec");
  const std::string routing = args.get_or("routing", "xy");
  if (routing == "yx") config.routing = sim::RoutingMode::kYX;
  else if (routing == "o1turn") config.routing = sim::RoutingMode::kO1Turn;
  else XLP_REQUIRE(routing == "xy", "--routing must be xy, yx or o1turn");

  g_ledger.describe("simulate",
                    obs::Json::object()
                        .set("n", n)
                        .set("c", c)
                        .set("links", args.get_or("links", ""))
                        .set("pattern", pattern)
                        .set("load", load)
                        .set("cycles", config.measure_cycles)
                        .set("vcs", config.vcs_per_port)
                        .set("routing", routing)
                        .set("vec", config.virtual_express_bypass),
                    config.seed);
  TraceOutput trace(args);
  config.trace = trace.sink_or_null();
  SeriesOutput series(args);
  config.series = series.recorder_or_null();
  runctl::RunControl control = make_run_control(args);
  config.control = &control;
  const auto stats = exp::simulate_design(design, demand, config);
  std::printf("design %s C=%d (%d-bit flits), %s @ %.3f pkt/node/cycle, "
              "routing %s%s\n",
              row.to_string().c_str(), c, design.flit_bits(),
              pattern.c_str(), load, routing.c_str(),
              config.virtual_express_bypass ? " +VEC" : "");
  std::printf("  latency: avg %.2f  p50 %.0f  p95 %.0f  p99 %.0f  max %.0f "
              "cycles\n",
              stats.avg_latency, stats.p50_latency, stats.p95_latency,
              stats.p99_latency, stats.max_latency);
  std::printf("  throughput %.4f pkt/node/cycle, contention %.2f "
              "cycles/hop, hops %.2f, drained %s\n",
              stats.throughput_packets_per_node_cycle,
              stats.avg_contention_per_hop, stats.avg_hops,
              stats.drained ? "yes" : "NO");
  const auto power = power::evaluate_power(design, stats.activity,
                                           config.buffer_bits_per_router);
  std::printf("  power %.3f W (%.3f dynamic, %.3f static)\n", power.total(),
              power.dynamic_total(), power.static_total());
  exp::warn_if_undrained(stats, "xlp simulate");
  report_status(stats.status, "simulate", trace.sink());
  write_stats_if_requested(args, stats);
  trace.report();
  series.report();
  return 0;
}

int cmd_trace(const Args& args) {
  const int n = static_cast<int>(args.get_long("n", 8));
  const std::string out_path = args.get_or("out", "");
  XLP_REQUIRE(!out_path.empty(), "--out <file> is required");
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  g_ledger.describe("trace",
                    obs::Json::object()
                        .set("n", n)
                        .set("pattern", args.get_or("pattern", "transpose"))
                        .set("load", args.get_double("load", 0.02))
                        .set("cycles", args.get_long("cycles", 10000)),
                    seed);
  g_ledger.artifact(out_path);
  const auto demand = resolve_workload(args.get_or("pattern", "transpose"),
                                       n, args.get_double("load", 0.02));
  Rng rng(seed);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(),
      args.get_long("cycles", 10000), rng);
  std::ostringstream out;
  trace.save(out);
  if (!util::atomic_write_file(out_path, out.str()))
    throw Error(ErrorCode::kIo, "cannot write " + out_path);
  std::printf("wrote %zu packets over %ld cycles to %s\n",
              trace.packets().size(), trace.duration(), out_path.c_str());
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string path = args.get_or("trace", "");
  XLP_REQUIRE(!path.empty(), "--trace <file> is required");
  std::ifstream in(path);
  XLP_REQUIRE(in.good(), "cannot open " + path);
  const auto trace = traffic::Trace::load(in);

  const int c = static_cast<int>(args.get_long("c", 4));
  const topo::RowTopology row(trace.side(),
                              parse_links(args.get_or("links", "")));
  const topo::ExpressMesh design = topo::make_design(row, c);
  g_ledger.describe("replay",
                    obs::Json::object()
                        .set("trace", path)
                        .set("links", args.get_or("links", ""))
                        .set("c", c),
                    0);
  runctl::RunControl control = make_run_control(args);
  sim::SimConfig replay_config;
  replay_config.control = &control;
  const auto stats = exp::replay_trace(design, trace, replay_config);
  std::printf("replayed %ld packets on %s (C=%d): avg %.2f cycles, p99 "
              "%.0f, drained %s\n",
              stats.packets_finished, row.to_string().c_str(), c,
              stats.avg_latency, stats.p99_latency,
              stats.drained ? "yes" : "NO");
  exp::warn_if_undrained(stats, "xlp replay");
  write_stats_if_requested(args, stats);
  return 0;
}

/// Rebuilds core::SaParams schedule fields from a checkpoint's embedded
/// schedule so a resumed portfolio replays the same temperature curve.
core::SaParams schedule_from_checkpoint(const runctl::SaSchedule& s) {
  core::SaParams params;
  params.initial_temperature = s.initial_temperature;
  params.total_moves = s.total_moves;
  params.cool_scale = s.cool_scale;
  params.moves_per_cool = s.moves_per_cool;
  return params;
}

/// End-to-end instrumented flow: optimize a placement with D&C_SA (tracing
/// every cooling step), then simulate the resulting design (tracing
/// progress and the channel heatmap) — the one-command way to produce a
/// full telemetry bundle for an n x n platform. With --resume the solve
/// phase continues a saved checkpoint (single-chain or portfolio) instead
/// of starting fresh; if the search is stopped early again, the
/// simulation phase is skipped and the refreshed checkpoint reported.
int cmd_run(const Args& args) {
  TraceOutput trace(args);
  SeriesOutput series(args);
  runctl::RunControl control = make_run_control(args);
  const std::string checkpoint_path = args.get_or("checkpoint", "");
  const long checkpoint_every = args.get_long("checkpoint-every", 10000);
  const std::string resume_path = args.get_or("resume", "");

  int n = static_cast<int>(args.get_long("n", 8));
  int c = static_cast<int>(args.get_long("c", 4));
  auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  g_ledger.describe("run",
                    obs::Json::object()
                        .set("n", n)
                        .set("c", c)
                        .set("moves", args.get_long("moves", 10000))
                        .set("pattern",
                             args.get_or("pattern", "uniform_random"))
                        .set("load", args.get_double("load", 0.02))
                        .set("cycles", args.get_long("cycles", 10000))
                        .set("resumed", !resume_path.empty()),
                    seed);

  core::PlacementResult result;
  if (!resume_path.empty()) {
    const runctl::CheckpointFile file =
        runctl::load_checkpoint_file(resume_path);
    // Where the checkpoint can be refreshed: an explicit --checkpoint
    // wins, otherwise continue writing the file we resumed from.
    const std::string refresh =
        checkpoint_path.empty() ? resume_path : checkpoint_path;
    if (file.sa) {
      n = file.sa->n;
      c = file.sa->link_limit;
      const core::RowObjective objective(n, route::HopWeights{});
      core::SaParams hooks;
      hooks.observer = sa_trace_observer(trace.sink());
      hooks.series = series.recorder_or_null();
      hooks.control = &control;
      hooks.checkpoint_sink = checkpoint_file_sink(refresh);
      hooks.checkpoint_every_moves = checkpoint_every;
      result = core::resume_sa(objective, *file.sa, hooks);
      std::printf("resumed %s from %s at move %ld/%ld\n",
                  result.method.c_str(), resume_path.c_str(),
                  file.sa->next_move, file.sa->schedule.total_moves);
    } else {
      const runctl::PortfolioCheckpoint& pc = *file.portfolio;
      n = pc.n;
      c = pc.link_limit;
      seed = pc.seed;
      core::PortfolioOptions options;
      options.chains = pc.chains;
      options.sa = schedule_from_checkpoint(pc.schedule);
      options.sa.observer = sa_trace_observer(trace.sink());
      options.series = series.recorder_or_null();
      options.solver = pc.solver == "onlysa" ? core::Solver::kOnlySa
                                             : core::Solver::kDcsa;
      options.control = control;
      options.checkpoint_path = refresh;
      options.checkpoint_every_moves = checkpoint_every;
      options.resume = &pc;
      auto portfolio = core::solve_portfolio(n, route::HopWeights{},
                                             std::nullopt, c, options, seed);
      std::printf("resumed portfolio of %d chains from %s (%.3f s, %ld "
                  "evals)\n",
                  pc.chains, resume_path.c_str(), portfolio.seconds,
                  portfolio.total_evaluations);
      result = std::move(portfolio.best);
      result.status = portfolio.status;
    }
  } else {
    const core::RowObjective objective(n, route::HopWeights{});
    core::SaParams params =
        core::SaParams{}.with_moves(args.get_long("moves", 10000));
    params.observer = sa_trace_observer(trace.sink());
    params.series = series.recorder_or_null();
    params.control = &control;
    params.checkpoint_sink = checkpoint_file_sink(checkpoint_path);
    params.checkpoint_every_moves = checkpoint_every;
    Rng rng(seed);
    result = core::solve_dcsa(objective, c, params, rng);
  }
  std::printf("P̄(%d,%d) via %s: %s at %.4f cycles (%ld evals, %.3f s)\n", n,
              c, result.method.c_str(),
              result.placement.to_string().c_str(), result.value,
              result.evaluations, result.seconds);
  report_status(result.status, "solve", trace.sink());
  if (result.status != runctl::RunStatus::kCompleted) {
    // The search was cut short: skip the simulation phase (its input is
    // only the best-so-far placement) and point at the saved state.
    const std::string saved =
        !checkpoint_path.empty()
            ? checkpoint_path
            : (!resume_path.empty() ? resume_path : std::string());
    if (!saved.empty()) {
      std::printf("  checkpoint: %s (resume with `xlp run --resume %s`)\n",
                  saved.c_str(), saved.c_str());
      g_ledger.artifact(saved);
    }
    std::printf("  simulation skipped (solve phase did not complete)\n");
    trace.report();
    series.report();
    return 0;
  }

  const topo::ExpressMesh design = topo::make_design(result.placement, c);
  const std::string pattern = args.get_or("pattern", "uniform_random");
  const double load = args.get_double("load", 0.02);
  const auto demand = resolve_workload(pattern, n, load);

  sim::SimConfig config;
  config.measure_cycles = args.get_long("cycles", 10000);
  config.seed = seed;
  config.trace = trace.sink_or_null();
  config.series = series.recorder_or_null();
  config.control = &control;
  const auto stats = exp::simulate_design(design, demand, config);
  std::printf("simulated %s @ %.3f pkt/node/cycle: avg %.2f  p95 %.0f  p99 "
              "%.0f cycles, ci95 ±%.2f, drained %s\n",
              pattern.c_str(), load, stats.avg_latency, stats.p95_latency,
              stats.p99_latency, stats.ci95_latency,
              stats.drained ? "yes" : "NO");
  exp::warn_if_undrained(stats, "xlp run");
  report_status(stats.status, "simulate", trace.sink());
  write_stats_if_requested(args, stats);
  trace.report();
  series.report();
  return 0;
}

/// Monte Carlo resilience campaign: Mesh, HFB, D&C_SA and a
/// reliability-aware D&C_SA under random express-link failures injected
/// mid-run (see docs/fault_tolerance.md).
int cmd_faults(const Args& args) {
  exp::FaultCampaignConfig config;
  config.n = static_cast<int>(args.get_long("n", 8));
  config.link_limit = static_cast<int>(args.get_long("c", 4));
  config.kill_links = static_cast<int>(args.get_long("kill-express", 1));
  config.trials = static_cast<int>(args.get_long("trials", 10));
  config.fault_cycle = args.get_long("at-cycle", 2000);
  config.recover_cycle = args.get_long("recover-at", -1);
  config.load = args.get_double("load", 0.02);
  config.max_retries = static_cast<int>(args.get_long("retries", 3));
  config.reliability_weight = args.get_double("rel-weight", 0.3);
  config.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const std::string policy = args.get_or("policy", "drop");
  if (policy == "drain") config.policy = sim::FaultPolicy::kDrainThenSwap;
  else XLP_REQUIRE(policy == "drop", "--policy must be drop or drain");
  g_ledger.describe("faults",
                    obs::Json::object()
                        .set("n", config.n)
                        .set("c", config.link_limit)
                        .set("kill_express", config.kill_links)
                        .set("at_cycle", config.fault_cycle)
                        .set("recover_at", config.recover_cycle)
                        .set("trials", config.trials)
                        .set("load", config.load)
                        .set("policy", policy)
                        .set("retries", config.max_retries)
                        .set("rel_weight", config.reliability_weight),
                    config.seed);

  TraceOutput trace(args);
  config.trace = trace.sink_or_null();

  const exp::FaultCampaignResult result = exp::run_fault_campaign(config);

  const std::string recover =
      config.recover_cycle >= 0
          ? ", recover at " + std::to_string(config.recover_cycle)
          : "";
  std::printf("fault campaign: %dx%d, C=%d, kill %d express link%s at cycle "
              "%ld%s, %d trial%s, policy %s\n",
              config.n, config.n, config.link_limit, config.kill_links,
              config.kill_links == 1 ? "" : "s", config.fault_cycle,
              recover.c_str(), config.trials, config.trials == 1 ? "" : "s",
              policy.c_str());
  Table table({"design", "baseline", "degraded", "worst", "lost",
               "unroutable"});
  for (const auto& d : result.designs)
    table.add_row({d.name, Table::fmt(d.baseline_latency),
                   Table::fmt(d.degraded_mean), Table::fmt(d.degraded_worst),
                   std::to_string(d.lost_total),
                   std::to_string(d.unroutable_total)});
  table.print(std::cout);
  std::printf("  latencies in cycles; degraded = mean over trials after "
              "rerouting\n");

  if (const std::string json_path = args.get_or("json", "");
      !json_path.empty()) {
    if (!util::atomic_write_file(json_path, result.to_json().dump() + "\n"))
      throw Error(ErrorCode::kIo, "cannot write " + json_path);
    std::printf("  json: %s written\n", json_path.c_str());
    g_ledger.artifact(json_path);
  }
  trace.report();
  return 0;
}

int cmd_appspec(const Args& args) {
  const int n = static_cast<int>(args.get_long("n", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  g_ledger.describe("appspec",
                    obs::Json::object()
                        .set("n", n)
                        .set("workload", args.get_or("workload", "canneal"))
                        .set("load", args.get_double("load", 0.02))
                        .set("moves", args.get_long("moves", 2000)),
                    seed);
  const auto demand = resolve_workload(args.get_or("workload", "canneal"),
                                       n, args.get_double("load", 0.02));
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(args.get_long("moves", 2000));
  options.latency = latency::LatencyParams::zero_load();
  options.report_traffic = demand;
  Rng rng(seed);
  const auto result = core::solve_app_specific(demand, options, rng);
  std::printf("app-specific design: C=%d, weighted latency %.2f cycles\n",
              result.link_limit, result.breakdown.total());
  for (int y = 0; y < n; ++y)
    std::printf("  row %2d: %s\n", y,
                result.design.row(y).to_string().c_str());
  for (int x = 0; x < n; ++x)
    std::printf("  col %2d: %s\n", x,
                result.design.col(x).to_string().c_str());
  return 0;
}

int cmd_bench(const Args& args) {
  bench::register_all_suites();
  bench::RunnerOptions options;
  options.filter = args.get_or("filter", "");
  options.repeats =
      std::max(1, static_cast<int>(args.get_long("repeats", 5)));
  options.warmup = std::max(0, static_cast<int>(args.get_long("warmup", 1)));
  options.out_dir = args.get_or("out-dir", ".");
  options.deterministic = args.has("deterministic");
  options.provenance =
      obs::Provenance::collect(static_cast<std::uint64_t>(
          args.get_long("seed", 0)));
  g_ledger.describe("bench",
                    obs::Json::object()
                        .set("filter", options.filter)
                        .set("repeats", options.repeats)
                        .set("warmup", options.warmup)
                        .set("deterministic", options.deterministic),
                    options.provenance.seed);
  return bench::run_and_report(options, args.get_or("profile", ""),
                               args.has("list"));
}

/// Renders the single-file HTML dashboard for a run directory: line charts
/// for every recorded series (xlp-series/1 documents plus series derived
/// from JSONL traces), the channel-utilization heatmap, stats, profiler
/// and ledger tables. The output embeds everything inline — no scripts, no
/// external resources — so it can be archived or attached to CI artifacts
/// as one file.
int cmd_report(const Args& args) {
  XLP_REQUIRE(!args.positional().empty(),
              "usage: xlp report <run-dir> [--out <file.html>]");
  const std::string dir = args.positional().front();
  XLP_REQUIRE(std::filesystem::is_directory(dir),
              "not a directory: " + dir);
  g_ledger.describe("report", obs::Json::object().set("dir", dir), 0);

  const obs::RunDirData data = obs::collect_run_dir(dir);
  const std::string out_path = args.get_or(
      "out", (std::filesystem::path(dir) / "report.html").string());
  const std::string html = obs::render_report_html(data);
  if (!util::atomic_write_file(out_path, html))
    throw Error(ErrorCode::kIo, "cannot write " + out_path);
  g_ledger.artifact(out_path);

  std::size_t chart_count = data.trace_series.size();
  if (data.series)
    chart_count += obs::chart_series_from_json(*data.series).size();
  std::printf("report: %s (%zu charts%s%s%s, %zu ledger records) -> %s\n",
              dir.c_str(), chart_count, data.stats ? ", stats" : "",
              data.heatmap ? ", heatmap" : "",
              data.profile ? ", profile" : "", data.ledger.size(),
              out_path.c_str());
  return 0;
}

/// One stderr summary line for a reply element: request id, HIT/MISS
/// marker, ok/error, and the wall time when the caller measured one.
/// Returns false when the reply is an error reply.
bool summarize_reply(const obs::Json& reply, std::size_t index,
                     std::size_t total, double wall_seconds) {
  const obs::Json* id = reply.find("request_id");
  const obs::Json* hit = reply.find("cache_hit");
  const obs::Json* error = reply.find("error");
  char wall[32] = "";
  if (wall_seconds >= 0.0)
    std::snprintf(wall, sizeof(wall), " %.1fms", wall_seconds * 1e3);
  // Errors are structured objects ({kind, retryable, message}); a bare
  // string is a pre-xlp-reply/1-hardening server.
  std::string error_text;
  if (error != nullptr) {
    if (error->is_object()) {
      const obs::Json* kind = error->find("kind");
      const obs::Json* message = error->find("message");
      if (kind != nullptr && kind->is_string())
        error_text = kind->as_string() + ": ";
      if (message != nullptr && message->is_string())
        error_text += message->as_string();
    } else if (error->is_string()) {
      error_text = error->as_string();
    }
  }
  std::fprintf(stderr, "  [%zu/%zu] %s %s%s%s%s\n", index + 1, total,
               id != nullptr && id->is_string() ? id->as_string().c_str()
                                                : "?",
               hit != nullptr && hit->as_bool() ? "HIT " : "MISS", wall,
               error != nullptr ? " ERROR: " : " ok", error_text.c_str());
  return error == nullptr;
}

/// Client side of the service (docs/service.md): builds or loads a
/// submission document and sends it to a running `xlpd` over the file
/// queue or the local socket, then prints the reply document. The
/// canonical driver-as-client flow is `--sweep-n`, which submits the same
/// per-limit solves `xlp sweep` would run in-process — resubmitting the
/// sweep is answered from the server's cache without re-annealing.
///
/// The reply document goes to stdout (pipeable); a per-request summary
/// with HIT/MISS markers goes to stderr. Over the socket, each request of
/// an array submission is sent as its own frame on one connection, so
/// every summary line carries that request's true wall time. Exits 1 when
/// any request in the batch errored.
int cmd_submit(const Args& args) {
  std::string text;
  std::optional<obs::Json> doc;
  if (const std::string file = args.get_or("file", ""); !file.empty()) {
    const auto loaded = util::read_file(file);
    XLP_REQUIRE(loaded.has_value(), "cannot read " + file);
    text = *loaded;
    doc = obs::Json::parse(text);
    XLP_REQUIRE(doc.has_value(), "not valid JSON: " + file);
  } else {
    const int n = static_cast<int>(args.get_long("sweep-n", 0));
    XLP_REQUIRE(n > 0, "either --file <batch.json> or --sweep-n <n>");
    const auto batch = svc::sweep_batch(
        n, args.get_or("method", "dcsa"), args.get_long("moves", 10000),
        static_cast<std::uint64_t>(args.get_long("seed", 1)),
        static_cast<int>(args.get_long("base-flit", topo::kBaseFlitBits)));
    text = svc::batch_to_text(batch);
    doc = obs::Json::parse(text);
  }
  const long request_count =
      doc->is_array() ? static_cast<long>(doc->size()) : 1;

  const std::string queue_dir = args.get_or("queue", "");
  const std::string socket_path = args.get_or("socket", "");
  XLP_REQUIRE(queue_dir.empty() != socket_path.empty(),
              "exactly one of --queue <dir> or --socket <path>");
  g_ledger.describe("submit",
                    obs::Json::object()
                        .set("transport", queue_dir.empty() ? "socket"
                                                            : "queue")
                        .set("requests", request_count),
                    static_cast<std::uint64_t>(args.get_long("seed", 1)));

  svc::RetryPolicy retry;
  retry.retries = static_cast<int>(args.get_long("retries", 5));
  retry.base_ms = args.get_double("retry-base-ms", 50.0);
  retry.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));

  Stopwatch wall;
  std::string reply;
  long errors = 0;
  long hits = 0;
  const auto tally = [&errors, &hits](const obs::Json& element, bool ok) {
    if (!ok) ++errors;
    const obs::Json* hit = element.find("cache_hit");
    if (hit != nullptr && hit->as_bool()) ++hits;
  };

  if (!socket_path.empty() && doc->is_array()) {
    // One frame per request over a single connection: every request gets
    // an individually measured round-trip wall time, and the concatenated
    // replies are byte-identical to a whole-batch submission (duplicates
    // become result-cache hits instead of within-batch dedup hits, which
    // serialize the same).
    svc::SocketClient client(socket_path, retry);
    if (!client.ok())
      throw Error(ErrorCode::kIo, "no xlpd reachable at " + socket_path);
    reply = "[";
    for (std::size_t i = 0; i < doc->size(); ++i) {
      Stopwatch request_wall;
      auto answered = client.submit_with_retry(doc->at(i).dump());
      if (!answered)
        throw Error(ErrorCode::kIo,
                    "connection to " + socket_path + " broke mid-batch "
                    "and retries were exhausted");
      const double seconds = request_wall.seconds();
      if (i > 0) reply += ",";
      reply += *answered;
      const auto parsed = obs::Json::parse(*answered);
      if (parsed)
        tally(*parsed, summarize_reply(*parsed, i, doc->size(), seconds));
    }
    reply += "]";
  } else {
    if (!socket_path.empty()) {
      svc::SocketClient client(socket_path, retry);
      std::optional<std::string> answered;
      if (client.ok()) answered = client.submit_with_retry(text);
      if (!answered)
        throw Error(ErrorCode::kIo, "no xlpd reachable at " + socket_path);
      reply = std::move(*answered);
    } else {
      // Name the submission by its content hash so resubmitting the same
      // batch never piles up distinct queue files.
      const std::string name =
          args.get_or("name", obs::fnv1a64_hex(text));
      if (!svc::queue_submit(queue_dir, name, text))
        throw Error(ErrorCode::kIo, "cannot submit into " + queue_dir);
      // Throws with request / elapsed / inbox-state context on timeout.
      reply = svc::queue_wait(queue_dir, name,
                              args.get_double("wait", 60.0));
    }
    // Whole-document transports: summarize each reply element without a
    // per-request wall time (the batch is answered as one unit).
    if (const auto parsed = obs::Json::parse(reply); parsed) {
      if (parsed->is_array()) {
        for (std::size_t i = 0; i < parsed->size(); ++i)
          tally(parsed->at(i),
                summarize_reply(parsed->at(i), i, parsed->size(), -1.0));
      } else {
        tally(*parsed, summarize_reply(*parsed, 0, 1, -1.0));
      }
    }
  }

  std::printf("%s\n", reply.c_str());
  std::fprintf(stderr,
               "submit: %ld request%s, %ld cache hit%s, %ld error%s in "
               "%.1fms\n",
               request_count, request_count == 1 ? "" : "s", hits,
               hits == 1 ? "" : "s", errors, errors == 1 ? "" : "s",
               wall.seconds() * 1e3);
  return errors > 0 ? 1 : 0;
}

/// Formats a nanosecond latency into a compact human unit.
std::string format_ns(double ns) {
  char buf[32];
  if (ns < 1e3) std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  else if (ns < 1e6) std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  else if (ns < 1e9) std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  else std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  return buf;
}

/// Live refreshing terminal view of a running socket `xlpd`, rendered
/// from the server's `stats` snapshot (docs/service.md): uptime, request
/// and dedup-funnel counts, cache occupancy, worker utilization, and
/// p50/p90/p99/max for the queue-wait / execution / end-to-end latency
/// histograms. `--once` prints a single snapshot and exits (scripting /
/// smoke tests); otherwise the view refreshes every `--interval` seconds
/// until SIGINT.
int cmd_top(const Args& args) {
  XLP_REQUIRE(!args.positional().empty(),
              "usage: xlp top <socket> [--interval <sec>] [--once] "
              "[--retries <n>] [--retry-base-ms <ms>]");
  const std::string socket_path = args.positional().front();
  const double interval = std::max(args.get_double("interval", 1.0), 0.05);
  const bool once = args.has("once");
  const std::string probe = svc::stats_request_text();
  svc::RetryPolicy retry;
  retry.retries = static_cast<int>(args.get_long("retries", 5));
  retry.base_ms = args.get_double("retry-base-ms", 50.0);

  const auto num = [](const obs::Json* doc, const char* key) {
    const obs::Json* value = doc != nullptr ? doc->find(key) : nullptr;
    return value != nullptr && value->is_number() ? value->as_number() : 0.0;
  };

  // One persistent connection for the whole view; the retry policy covers
  // racing a daemon that has not bound its socket yet.
  svc::SocketClient client(socket_path, retry);
  double prev_served = -1.0;
  double prev_uptime = 0.0;
  while (true) {
    std::optional<std::string> answered;
    if (client.ok()) answered = client.submit_with_retry(probe);
    if (!answered)
      throw Error(ErrorCode::kIo, "no xlpd reachable at " + socket_path);
    const auto reply = obs::Json::parse(*answered);
    XLP_REQUIRE(reply.has_value(), "malformed reply from " + socket_path);
    const obs::Json* stats = reply->find("result");
    if (stats == nullptr) {
      const obs::Json* error = reply->find("error");
      std::string message = "daemon did not answer the stats request";
      if (error != nullptr && error->is_string())
        message = error->as_string();
      else if (error != nullptr && error->is_object())
        if (const obs::Json* m = error->find("message");
            m != nullptr && m->is_string())
          message = m->as_string();
      throw Error(ErrorCode::kState, message);
    }

    const double uptime = num(stats, "uptime_seconds");
    const double served = num(stats, "requests_served");
    const double rate = prev_served >= 0.0 && uptime > prev_uptime
                            ? (served - prev_served) / (uptime - prev_uptime)
                            : 0.0;
    prev_served = served;
    prev_uptime = uptime;

    const obs::Json* kinds = stats->find("kinds");
    const obs::Json* dedup = stats->find("dedup");
    const obs::Json* cache = stats->find("cache");
    const obs::Json* workers = stats->find("workers");
    const obs::Json* latency = stats->find("latency");

    if (!once) std::printf("\033[2J\033[H");  // clear + home
    std::printf("xlpd @ %s — up %.1fs\n", socket_path.c_str(), uptime);
    std::printf(
        "requests  %.0f served (%.1f/s)   stats polls %.0f   queue depth "
        "%.0f   in-flight %.0f\n",
        served, rate, num(stats, "stats_requests"),
        num(stats, "queue_depth"), num(stats, "inflight"));
    std::printf("kinds     solve %.0f   evaluate %.0f   simulate %.0f\n",
                num(kinds, "solve"), num(kinds, "evaluate"),
                num(kinds, "simulate"));
    std::printf(
        "dedup     cache %.0f   inflight %.0f   batch %.0f   executed %.0f "
        "  errors %.0f   poisoned %.0f   hit rate %.1f%%\n",
        num(dedup, "cache_hits"), num(dedup, "inflight_hits"),
        num(dedup, "batch_hits"), num(dedup, "executed"),
        num(dedup, "errors"), num(dedup, "poisoned"),
        num(dedup, "hit_rate") * 100.0);
    std::printf("cache     %.0f/%.0f entries   %.0f evictions   %.0f "
                "corrupt (quarantined)\n",
                num(cache, "entries"), num(cache, "capacity"),
                num(cache, "evictions"), num(cache, "corrupt"));
    if (const obs::Json* chaos = stats->find("chaos");
        chaos != nullptr && num(chaos, "total") > 0.0) {
      const obs::Json* spec = chaos->find("spec");
      std::printf("chaos     %.0f faults injected (%s)\n",
                  num(chaos, "total"),
                  spec != nullptr && spec->is_string()
                      ? spec->as_string().c_str()
                      : "?");
    }
    std::printf("workers   %.0f threads   %.1f%% utilized   busy %.1fs\n",
                num(workers, "threads"),
                num(workers, "utilization") * 100.0,
                num(workers, "busy_seconds"));
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "latency", "count",
                "p50", "p90", "p99", "max");
    for (const auto& [label, key] :
         {std::pair<const char*, const char*>{"queue wait", "queue_wait"},
          {"execute", "execute"},
          {"end-to-end", "end_to_end"}}) {
      const obs::Json* hist =
          latency != nullptr ? latency->find(key) : nullptr;
      std::printf("  %-10s %10.0f %10s %10s %10s %10s\n", label,
                  num(hist, "count"), format_ns(num(hist, "p50")).c_str(),
                  format_ns(num(hist, "p90")).c_str(),
                  format_ns(num(hist, "p99")).c_str(),
                  format_ns(num(hist, "max")).c_str());
    }
    std::fflush(stdout);

    if (once) return 0;
    // Sleep in short slices so SIGINT quits the view promptly.
    double remaining = interval;
    while (remaining > 0.0 && !g_cancel_token.cancelled()) {
      const double slice = std::min(remaining, 0.05);
      std::this_thread::sleep_for(std::chrono::duration<double>(slice));
      remaining -= slice;
    }
    if (g_cancel_token.cancelled()) return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  runctl::install_signal_handlers(g_cancel_token);
  // Resolved once, before dispatch: every ThreadPool the command builds
  // (portfolio chains, sweep cells, campaign trials) sizes itself from
  // this default unless its options name an explicit count.
  if (const long threads = args.get_long("threads", 0); threads > 0)
    util::set_default_thread_count(static_cast<int>(threads));

  // Global ledger / profiler flags, queried before dispatch so the
  // unknown-option check below never flags them. (`bench` shares --out-dir
  // with its BENCH_*.json documents: the ledger lands next to them.)
  const std::string out_dir = args.get_or("out-dir", ".");
  const bool no_ledger = args.has("no-ledger");
  const std::string profile_path = args.get_or("profile-json", "");
  if (!profile_path.empty()) obs::Profiler::enable();
  Stopwatch wall;

  int rc;
  try {
    if (command == "solve") rc = cmd_solve(args);
    else if (command == "sweep") rc = cmd_sweep(args);
    else if (command == "simulate") rc = cmd_simulate(args);
    else if (command == "trace") rc = cmd_trace(args);
    else if (command == "replay") rc = cmd_replay(args);
    else if (command == "appspec") rc = cmd_appspec(args);
    else if (command == "run") rc = cmd_run(args);
    else if (command == "faults") rc = cmd_faults(args);
    else if (command == "bench") rc = cmd_bench(args);
    else if (command == "report") rc = cmd_report(args);
    else if (command == "submit") rc = cmd_submit(args);
    else if (command == "top") rc = cmd_top(args);
    else return usage();

    // Global telemetry flag: dump the process-wide metrics registry
    // (optimizer timers/counters accumulated during the command).
    if (const std::string metrics_path = args.get_or("metrics", "");
        !metrics_path.empty()) {
      const bool written =
          obs::MetricsRegistry::global().write_json_file(metrics_path);
      std::printf("  metrics: %s %s\n", metrics_path.c_str(),
                  written ? "written" : "NOT WRITTEN");
      if (written) g_ledger.artifact(metrics_path);
    }

    const auto unknown = args.unknown_keys();
    if (!unknown.empty()) {
      for (const auto& key : unknown)
        std::fprintf(stderr, "warning: unused option --%s\n", key.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = e.code() == ErrorCode::kUsage ? kExitUsage : 1;
  } catch (const PreconditionError& e) {
    // Violated preconditions at the CLI boundary are bad arguments.
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = kExitUsage;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  // A SIGINT/SIGTERM stop is still the conventional 130 at the process
  // level, even though the command drained gracefully and saved its state.
  if (rc == 0 && g_cancel_token.cancelled() &&
      g_cancel_token.reason() == runctl::RunStatus::kInterrupted)
    rc = kExitInterrupted;

  if (!profile_path.empty()) {
    // Snapshot after the command has joined its worker pools so every
    // thread's scope tree is final.
    const obs::ProfileReport profile = obs::Profiler::snapshot();
    if (util::atomic_write_file(profile_path,
                                profile.to_json().dump() + "\n")) {
      std::printf("  profile-json: %s written (%zu scopes)\n",
                  profile_path.c_str(), profile.entries().size());
      g_ledger.artifact(profile_path);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   profile_path.c_str());
    }
  }

  // One ledger record per invocation, failures included (the exit status
  // is part of the record). Best-effort: a read-only out-dir must not
  // change the command's outcome.
  if (g_ledger.filled && !no_ledger) {
    const obs::Provenance prov = obs::Provenance::collect(g_ledger.entry.seed);
    g_ledger.entry.git_sha = prov.git_sha;
    g_ledger.entry.hostname = prov.hostname;
    g_ledger.entry.wall_seconds = wall.seconds();
    g_ledger.entry.exit_status = rc;
    const std::string ledger_path =
        (std::filesystem::path(out_dir) / "ledger.jsonl").string();
    if (!obs::append_ledger_entry(ledger_path, g_ledger.entry))
      std::fprintf(stderr, "warning: could not append to %s\n",
                   ledger_path.c_str());
  }
  return rc;
}
