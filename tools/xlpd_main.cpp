// xlpd — the placement-as-a-service batch query server (docs/service.md).
//
// Serves xlp-request/1 documents through a content-addressed result cache:
// identical requests are solved once, answered byte-identically forever
// after (including across restarts — the cache is persisted), and deduped
// while in flight.
//
//   xlpd --batch <file.json>  [--out <file.json>]
//        serve one submission document (a request object or an array of
//        them), write the reply document, exit. The workhorse mode for
//        drivers: a C-sweep is one batch file.
//   xlpd --queue <dir>        [--once] [--poll-seconds 0.2]
//        file-queue transport: serve every <dir>/inbox/*.json into
//        <dir>/outbox/<same-name>; --once drains and exits, otherwise
//        polls until SIGINT.
//   xlpd --socket <path>
//        local-socket transport: length-prefixed JSON frames over an
//        AF_UNIX stream socket, one frame per submission document.
//
// Common options:
//   --cache-dir <dir>            result cache location (default xlp-cache)
//   --cache-entries <n>          LRU bound (default 4096)
//   --threads <n>                pool workers / connection workers
//   --request-time-limit <sec>   per-request deadline; a timed-out request
//                                yields an error reply and is not cached
//   --metrics <file.json>        dump the metrics registry on exit
//   --out-dir <dir>              ledger location (default "."); one
//                                xlp-ledger/1 record per request served,
//                                with cache_hit
//   --no-ledger                  disable the ledger
//
// Observability (docs/observability.md, docs/service.md):
//   --events <file.jsonl>        append one svc-events/1 lifecycle record
//                                per request served (stages + durations)
//   --series <file.json>         operational time series (requests/sec,
//                                queue depth, in-flight, cache hit rate),
//                                written on exit
//   --series-window <sec>        seconds per series sample (default 1)
//   --stats-json <file.json>     final stats snapshot (the same document
//                                a `stats` request returns), written on
//                                exit
//   --no-observe                 disable latency histograms / series
//
// All exit artifacts (metrics, series, stats snapshot) are flushed on the
// SIGINT drain path too, so a killed daemon leaves complete telemetry.
//
// Chaos testing (docs/service.md, "Failure modes and chaos testing"):
//   --chaos <spec>               arm deterministic fault injection, e.g.
//                                "seed=7,cache-flip=0.05,worker-throw@3";
//                                the XLP_CHAOS environment variable is the
//                                flagless equivalent (the flag wins)
//
// Exit codes: 0 success, 1 domain failure, 2 usage error, 130 when a
// SIGINT/SIGTERM drained the server.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "runctl/control.hpp"
#include "svc/chaos.hpp"
#include "svc/server.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

using namespace xlp;

namespace {

constexpr int kExitUsage = 2;
constexpr int kExitInterrupted = 130;

int usage() {
  std::fprintf(stderr,
               "usage: xlpd (--batch <file> | --queue <dir> | --socket "
               "<path>) [--cache-dir <dir>] [--cache-entries <n>] "
               "[--threads <n>] [--request-time-limit <sec>] [--once] "
               "[--poll-seconds <sec>] [--out <file>] [--metrics <file>] "
               "[--out-dir <dir>] [--no-ledger] [--events <file.jsonl>] "
               "[--series <file.json>] [--series-window <sec>] "
               "[--stats-json <file.json>] [--no-observe] "
               "[--chaos <spec>]\n");
  return kExitUsage;
}

runctl::CancelToken g_cancel_token;

int serve(const Args& args) {
  const std::string batch_path = args.get_or("batch", "");
  const std::string queue_dir = args.get_or("queue", "");
  const std::string socket_path = args.get_or("socket", "");
  const int modes = (batch_path.empty() ? 0 : 1) +
                    (queue_dir.empty() ? 0 : 1) +
                    (socket_path.empty() ? 0 : 1);
  if (modes != 1) return usage();

  svc::ServerOptions options;
  options.cache_dir = args.get_or("cache-dir", "xlp-cache");
  options.cache_entries =
      static_cast<std::size_t>(args.get_long("cache-entries", 4096));
  options.threads = static_cast<int>(args.get_long("threads", 0));
  options.request_time_limit = args.get_double("request-time-limit", 0.0);
  options.cancel = &g_cancel_token;
  if (!args.has("no-ledger"))
    options.ledger_path = (std::filesystem::path(args.get_or("out-dir", ".")) /
                           "ledger.jsonl")
                              .string();

  options.observe = !args.has("no-observe");
  options.events_path = args.get_or("events", "");
  options.series_window = args.get_double("series-window", 1.0);
  const std::string series_path = args.get_or("series", "");
  const std::string stats_path = args.get_or("stats-json", "");
  obs::SeriesRecorder series;
  if (!series_path.empty()) options.series = &series;

  std::string chaos_spec = args.get_or("chaos", "");
  if (chaos_spec.empty())
    if (const char* env = std::getenv("XLP_CHAOS"); env != nullptr)
      chaos_spec = env;
  if (!chaos_spec.empty()) {
    svc::ChaosPolicy::global().configure(chaos_spec);  // throws on bad spec
    std::fprintf(stderr, "xlpd: CHAOS ARMED (%s) — injected faults ahead\n",
                 chaos_spec.c_str());
  }

  svc::Server server(options);
  std::fprintf(stderr, "xlpd: cache %s (%zu entries loaded)\n",
               server.cache().dir().c_str(), server.cache().size());

  if (!batch_path.empty()) {
    const auto text = util::read_file(batch_path);
    if (!text) throw Error(ErrorCode::kIo, "cannot read " + batch_path);
    const std::string reply = server.serve_text(*text);
    if (const std::string out = args.get_or("out", ""); !out.empty()) {
      if (!util::atomic_write_file(out, reply + "\n"))
        throw Error(ErrorCode::kIo, "cannot write " + out);
    } else {
      std::printf("%s\n", reply.c_str());
    }
  } else if (!queue_dir.empty()) {
    const long served = server.run_queue(queue_dir, args.has("once"),
                                         args.get_double("poll-seconds", 0.2));
    std::fprintf(stderr, "xlpd: served %ld submission file%s from %s\n",
                 served, served == 1 ? "" : "s", queue_dir.c_str());
  } else {
    std::fprintf(stderr, "xlpd: listening on %s\n", socket_path.c_str());
    if (!server.run_socket(socket_path))
      throw Error(ErrorCode::kIo, "cannot listen on " + socket_path);
  }

  // Final artifacts are written on every serve() return, including the
  // SIGINT drain (run_queue / run_socket return normally after draining):
  // a killed daemon still leaves complete series / stats / events files.
  server.flush_observability();
  if (!series_path.empty() && !series.write_json_file(series_path))
    std::fprintf(stderr, "warning: could not write %s\n", series_path.c_str());
  if (!stats_path.empty() &&
      !util::atomic_write_file(stats_path,
                               server.stats_snapshot().dump() + "\n"))
    std::fprintf(stderr, "warning: could not write %s\n", stats_path.c_str());

  std::fprintf(stderr, "xlpd: %ld request%s served (%ld executed, %ld cache "
                       "hits)\n",
               server.requests_served(),
               server.requests_served() == 1 ? "" : "s",
               obs::MetricsRegistry::global().counter("svc.executed"),
               obs::MetricsRegistry::global().counter("svc.cache.hits"));
  if (svc::ChaosPolicy::global().enabled())
    std::fprintf(stderr, "xlpd: chaos injected %ld fault%s, quarantined %ld "
                         "cache entr%s\n",
                 svc::ChaosPolicy::global().total_injected(),
                 svc::ChaosPolicy::global().total_injected() == 1 ? "" : "s",
                 server.cache().corrupt_count(),
                 server.cache().corrupt_count() == 1 ? "y" : "ies");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  runctl::install_signal_handlers(g_cancel_token);

  int rc;
  try {
    rc = serve(args);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = e.code() == ErrorCode::kUsage ? kExitUsage : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  if (const std::string metrics_path = args.get_or("metrics", "");
      !metrics_path.empty()) {
    if (!obs::MetricsRegistry::global().write_json_file(metrics_path))
      std::fprintf(stderr, "warning: could not write %s\n",
                   metrics_path.c_str());
  }

  if (rc == 0 && g_cancel_token.cancelled() &&
      g_cancel_token.reason() == runctl::RunStatus::kInterrupted)
    rc = kExitInterrupted;
  return rc;
}
