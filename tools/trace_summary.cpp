// trace_summary — offline reader for the JSONL traces the toolkit emits
// (xlp --trace, SimConfig::trace). Groups events by phase (the `phase`
// payload field when present, else the event name) and prints per-phase
// wall-time totals and event counts, so a trace can be turned into a
// "where did the time go" table without any Python tooling.
//
//   trace_summary <trace.jsonl>
//
// Exit code 0 on success, 1 on a missing/empty/malformed trace.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "obs/json.hpp"
#include "util/table.hpp"

using namespace xlp;

namespace {

struct PhaseStat {
  long events = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_summary <trace.jsonl>\n");
    return 1;
  }
  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }

  std::map<std::string, PhaseStat> phases;  // ordered for stable output
  long lines = 0;
  double span_end = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    std::size_t offset = 0;
    const auto record = obs::Json::parse(line, &offset);
    if (!record) {
      std::fprintf(stderr,
                   "error: line %ld: JSON syntax error at character %zu\n",
                   lines, offset);
      return 1;
    }
    if (!record->is_object()) {
      std::fprintf(stderr, "error: line %ld is not a JSON object\n", lines);
      return 1;
    }
    const obs::Json* ts = record->find("ts");
    const obs::Json* event = record->find("event");
    if (ts == nullptr || !ts->is_number() || event == nullptr ||
        !event->is_string()) {
      std::fprintf(stderr, "error: line %ld lacks ts/event fields\n", lines);
      return 1;
    }
    const obs::Json* phase = record->find("phase");
    const std::string key = phase != nullptr && phase->is_string()
                                ? phase->as_string()
                                : event->as_string();
    auto [it, inserted] = phases.try_emplace(key);
    PhaseStat& stat = it->second;
    if (inserted) stat.first_ts = ts->as_number();
    stat.last_ts = ts->as_number();
    ++stat.events;
    if (ts->as_number() > span_end) span_end = ts->as_number();
  }
  if (lines == 0) {
    std::fprintf(stderr, "error: %s holds no events\n", argv[1]);
    return 1;
  }

  Table table({"phase", "events", "first_s", "last_s", "span_s"});
  for (const auto& [name, stat] : phases)
    table.add_row({name, std::to_string(stat.events),
                   Table::fmt(stat.first_ts, 4), Table::fmt(stat.last_ts, 4),
                   Table::fmt(stat.last_ts - stat.first_ts, 4)});
  table.print(std::cout);
  std::printf("%ld events across %zu phases over %.4f s\n", lines,
              phases.size(), span_end);
  return 0;
}
