// The deterministic parallel execution layer: ThreadPool semantics
// (ordering, exceptions, cancellation), the thread-count resolution
// chain, the cross-thread-count determinism contract of portfolios,
// sweeps and fault campaigns, and the multi-writer safety of
// fsio::atomic_write_file. See docs/parallelism.md.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/c_sweep.hpp"
#include "core/portfolio.hpp"
#include "exp/fault_campaign.hpp"
#include "runctl/control.hpp"
#include "util/fsio.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xlp {
namespace {

TEST(ThreadPool, InlinePoolRunsInIndexOrder) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<long> order;
  EXPECT_TRUE(pool.parallel_for(16, [&](long i) { order.push_back(i); }));
  ASSERT_EQ(order.size(), 16u);
  for (long i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, EmptyRangeCompletesTrivially) {
  util::ThreadPool pool(4);
  EXPECT_TRUE(pool.parallel_for(0, [](long) { FAIL(); }));
}

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr long kCount = 5000;
  // The dispatch counter hands every index to exactly one claimer, so a
  // plain vector slot per item is race-free; the atomic total double-checks
  // nothing ran twice.
  std::vector<int> hit(kCount, 0);
  std::atomic<long> total{0};
  EXPECT_TRUE(pool.parallel_for(kCount, [&](long i) {
    hit[static_cast<std::size_t>(i)] += 1;
    total.fetch_add(1, std::memory_order_relaxed);
  }));
  EXPECT_EQ(total.load(), kCount);
  for (long i = 0; i < kCount; ++i)
    ASSERT_EQ(hit[static_cast<std::size_t>(i)], 1) << "item " << i;
}

TEST(ThreadPool, ParallelMapIsIndexOrdered) {
  util::ThreadPool pool(3);
  const std::vector<long> squares = util::parallel_map<long>(
      pool, 100, [](long i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (long i = 0; i < 100; ++i)
    EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  util::ThreadPool pool(4);
  // Items 3 and 7 both throw on every run; which one is *seen* first
  // depends on scheduling, but the pool must always rethrow index 3.
  const auto body = [](long i) {
    if (i == 3 || i == 7) throw std::runtime_error(std::to_string(i));
  };
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      pool.parallel_for(16, body);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3");
    }
  }
}

TEST(ThreadPool, CancelledBeforeStartRunsNothing) {
  for (const int threads : {1, 4}) {
    util::ThreadPool pool(threads);
    runctl::CancelToken token;
    token.request(runctl::RunStatus::kInterrupted);
    runctl::RunControl control(&token);
    std::atomic<long> executed{0};
    EXPECT_FALSE(pool.parallel_for(
        64, [&](long) { executed.fetch_add(1); }, &control));
    EXPECT_EQ(executed.load(), 0) << "pool size " << threads;
  }
}

TEST(ThreadPool, CancellationMidRunSkipsTheTail) {
  util::ThreadPool pool(2);
  runctl::CancelToken token;
  runctl::RunControl control(&token);
  constexpr long kCount = 200000;
  std::atomic<long> executed{0};
  const bool complete = pool.parallel_for(
      kCount,
      [&](long i) {
        if (i == 0) token.request(runctl::RunStatus::kInterrupted);
        executed.fetch_add(1, std::memory_order_relaxed);
        // Give each item a visible cost so the stop lands long before the
        // range could drain.
        volatile int spin = 0;
        for (int s = 0; s < 200; ++s) spin = spin + s;
      },
      &control);
  EXPECT_FALSE(complete);
  EXPECT_GE(executed.load(), 1);
  EXPECT_LT(executed.load(), kCount);
}

TEST(ThreadCount, ResolutionOrderIsOverrideThenEnvThenHardware) {
  util::set_default_thread_count(0);  // start from a clean slate
  ::unsetenv("XLP_THREADS");
  EXPECT_EQ(util::default_thread_count(), util::hardware_threads());
  EXPECT_GE(util::hardware_threads(), 1);

  ::setenv("XLP_THREADS", "3", 1);
  EXPECT_EQ(util::default_thread_count(), 3);

  util::set_default_thread_count(2);  // the --threads flag outranks the env
  EXPECT_EQ(util::default_thread_count(), 2);
  EXPECT_EQ(util::resolve_thread_count(0), 2);
  EXPECT_EQ(util::resolve_thread_count(-1), 2);
  EXPECT_EQ(util::resolve_thread_count(5), 5);

  util::set_default_thread_count(0);
  EXPECT_EQ(util::default_thread_count(), 3);
  ::unsetenv("XLP_THREADS");
  EXPECT_EQ(util::default_thread_count(), util::hardware_threads());
}

core::PortfolioOptions small_portfolio(int threads) {
  core::PortfolioOptions options;
  options.chains = 4;
  options.threads = threads;
  options.sa = core::SaParams{}.with_moves(300);
  return options;
}

TEST(ParallelDeterminism, SharedEvaluationCounterIsExactUnderContention) {
  // Portfolio chains derive their objectives from one root, so every copy
  // shares the root's evaluation counter. Concurrent evaluate() calls (and
  // delta-evaluator proposals) must tally exactly — the counter is a
  // relaxed atomic; a plain long here is a data race TSan flags and a
  // lost-update bug everywhere.
  core::RowObjective root(8, route::HopWeights{});
  root.reset_evaluations();
  constexpr int kThreads = 8;
  constexpr int kEvalsPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&root, t] {
      // Copies share the root's counter, like portfolio sub-objectives.
      const core::RowObjective mine = root;
      const topo::RowTopology row(8, {{0, 2 + (t % 5)}});
      for (int i = 0; i < kEvalsPerThread; ++i) (void)mine.evaluate(row);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(root.evaluations(),
            static_cast<long>(kThreads) * kEvalsPerThread);
}

TEST(ParallelDeterminism, PortfolioIsByteIdenticalAcrossThreadCounts) {
  const auto one = core::solve_portfolio(8, route::HopWeights{}, std::nullopt,
                                         4, small_portfolio(1), 99);
  const auto eight = core::solve_portfolio(8, route::HopWeights{},
                                           std::nullopt, 4,
                                           small_portfolio(8), 99);
  EXPECT_EQ(one.best.value, eight.best.value);
  EXPECT_EQ(one.best.placement.to_string(),
            eight.best.placement.to_string());
  EXPECT_EQ(one.best.evaluations, eight.best.evaluations);
  EXPECT_EQ(one.total_evaluations, eight.total_evaluations);
  ASSERT_EQ(one.chain_values.size(), eight.chain_values.size());
  for (std::size_t i = 0; i < one.chain_values.size(); ++i)
    EXPECT_EQ(one.chain_values[i], eight.chain_values[i]) << "chain " << i;
}

TEST(ParallelDeterminism, PortfolioCheckpointBytesAcrossThreadCounts) {
  const std::string dir = ::testing::TempDir();
  const std::string ck1 = dir + "xlp_parallel_ck1.json";
  const std::string ck8 = dir + "xlp_parallel_ck8.json";

  core::PortfolioOptions a = small_portfolio(1);
  a.checkpoint_path = ck1;
  a.checkpoint_every_moves = 100;
  core::PortfolioOptions b = small_portfolio(8);
  b.checkpoint_path = ck8;
  b.checkpoint_every_moves = 100;
  (void)core::solve_portfolio(8, route::HopWeights{}, std::nullopt, 4, a, 7);
  (void)core::solve_portfolio(8, route::HopWeights{}, std::nullopt, 4, b, 7);

  const auto bytes1 = util::read_file(ck1);
  const auto bytes8 = util::read_file(ck8);
  ASSERT_TRUE(bytes1.has_value());
  ASSERT_TRUE(bytes8.has_value());
  EXPECT_EQ(*bytes1, *bytes8);
  std::filesystem::remove(ck1);
  std::filesystem::remove(ck8);
}

TEST(ParallelDeterminism, SweepIsIdenticalAcrossThreadCounts) {
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(200);
  options.latency = latency::LatencyParams::zero_load();

  options.threads = 1;
  Rng rng_seq(321);
  const auto seq = core::sweep_link_limits(8, options, rng_seq);

  options.threads = 8;
  Rng rng_par(321);
  const auto par = core::sweep_link_limits(8, options, rng_par);

  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].link_limit, par[i].link_limit);
    EXPECT_EQ(seq[i].placement.value, par[i].placement.value);
    EXPECT_EQ(seq[i].placement.placement.to_string(),
              par[i].placement.placement.to_string());
    EXPECT_EQ(seq[i].placement.evaluations, par[i].placement.evaluations);
    EXPECT_EQ(seq[i].breakdown.total(), par[i].breakdown.total());
  }
  // The caller's generator advanced identically too (one step per fork).
  EXPECT_EQ(rng_seq(), rng_par());
}

TEST(ParallelDeterminism, CampaignJsonIsByteIdenticalAcrossThreadCounts) {
  // Tiny scaled campaign, as in the fault determinism test.
  ::setenv("XLP_BENCH_SCALE", "0.02", 1);
  exp::FaultCampaignConfig config;
  config.n = 4;
  config.link_limit = 2;
  config.trials = 3;
  config.fault_cycle = 100;
  config.seed = 17;

  config.threads = 1;
  const std::string seq = exp::run_fault_campaign(config).to_json().dump();
  config.threads = 8;
  const std::string par = exp::run_fault_campaign(config).to_json().dump();
  ::unsetenv("XLP_BENCH_SCALE");
  EXPECT_EQ(seq, par);
}

TEST(FsioConcurrency, ManyWritersLeaveOneCompleteDocumentAndNoTempFiles) {
  const std::string dir =
      ::testing::TempDir() + "xlp_fsio_stress_" +
      std::to_string(static_cast<long>(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/target.json";

  constexpr int kWriters = 8;
  constexpr int kRepeats = 25;
  // Every writer repeatedly publishes its own (large, distinct) document;
  // whichever rename lands last must be visible in full.
  std::vector<std::string> documents;
  for (int w = 0; w < kWriters; ++w)
    documents.push_back(std::string(8192, static_cast<char>('a' + w)));

  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int r = 0; r < kRepeats; ++r)
        if (!util::atomic_write_file(path, documents[static_cast<size_t>(w)]))
          failures.fetch_add(1);
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto final_bytes = util::read_file(path);
  ASSERT_TRUE(final_bytes.has_value());
  EXPECT_NE(std::find(documents.begin(), documents.end(), *final_bytes),
            documents.end())
      << "published file is not any writer's complete document";

  int leftover_tmp = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.path().filename().string().find(".tmp.") != std::string::npos)
      ++leftover_tmp;
  EXPECT_EQ(leftover_tmp, 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace xlp
