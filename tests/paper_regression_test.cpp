// Regression guard on the reproduction itself: the headline quantities the
// paper reports must stay inside their bands. Budgets are reduced versus
// the benches (this suite must stay fast) so the bands are generous — the
// full-budget numbers live in EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "core/branch_bound.hpp"
#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "topo/builders.hpp"
#include "util/numeric.hpp"

namespace xlp {
namespace {

core::SweepOptions quick_options() {
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(3000);
  options.latency = latency::LatencyParams::zero_load();
  return options;
}

double best_total(int n, std::uint64_t seed) {
  auto options = quick_options();
  Rng rng(seed);
  const auto points = core::sweep_link_limits(n, options, rng);
  return points[core::best_point(points)].breakdown.total();
}

double mesh_total(int n) {
  return core::evaluate_design(topo::make_mesh(n),
                               latency::LatencyParams::zero_load(), {})
      .total();
}

double hfb_total(int n) {
  return core::evaluate_design(topo::make_hfb(n),
                               latency::LatencyParams::zero_load(), {})
      .total();
}

TEST(PaperRegression, Headline4x4) {
  // Paper: 8.1% vs Mesh, parity with HFB.
  const double reduction = -percent_change(best_total(4, 1), mesh_total(4));
  EXPECT_GE(reduction, 6.0);
  EXPECT_LE(reduction, 10.0);
}

TEST(PaperRegression, Headline8x8) {
  // Paper: 23.5% vs Mesh, 8.0% vs HFB.
  const double best = best_total(8, 2);
  EXPECT_GE(-percent_change(best, mesh_total(8)), 20.0);
  EXPECT_GE(-percent_change(best, hfb_total(8)), 4.0);
}

TEST(PaperRegression, Headline16x16) {
  // Paper: 36.4% vs Mesh, 20.1% vs HFB.
  const double best = best_total(16, 3);
  EXPECT_GE(-percent_change(best, mesh_total(16)), 32.0);
  EXPECT_GE(-percent_change(best, hfb_total(16)), 15.0);
}

TEST(PaperRegression, Table2ExactCells) {
  // The four paper cells our calibrated model lands on exactly.
  const auto params = latency::LatencyParams::zero_load();
  EXPECT_NEAR(
      latency::MeshLatencyModel(topo::make_mesh(4), params).worst_case(),
      28.2, 1e-9);
  EXPECT_NEAR(
      latency::MeshLatencyModel(topo::make_mesh(8), params).worst_case(),
      60.2, 1e-9);
  EXPECT_NEAR(
      latency::MeshLatencyModel(topo::make_hfb(8), params).worst_case(),
      38.2, 1e-9);
  EXPECT_NEAR(
      latency::MeshLatencyModel(topo::make_hfb(16), params).worst_case(),
      63.8, 1e-9);
}

TEST(PaperRegression, Fig11BandwidthScaling) {
  // Paper: 2 -> 8 KGb/s improves the Mesh ~2.3% and D&C_SA ~17.8%.
  auto at_bandwidth = [&](int base_bits, std::uint64_t seed) {
    auto options = quick_options();
    options.base_flit_bits = base_bits;
    Rng rng(seed);
    const auto points = core::sweep_link_limits(8, options, rng);
    const double best = points[core::best_point(points)].breakdown.total();
    const double mesh =
        core::evaluate_design(topo::make_mesh(8, base_bits),
                              options.latency, {})
            .total();
    return std::pair{mesh, best};
  };
  const auto [mesh_2k, dcsa_2k] = at_bandwidth(128, 4);
  const auto [mesh_8k, dcsa_8k] = at_bandwidth(512, 5);

  const double mesh_gain = -percent_change(mesh_8k, mesh_2k);
  const double dcsa_gain = -percent_change(dcsa_8k, dcsa_2k);
  EXPECT_GE(mesh_gain, 1.0);
  EXPECT_LE(mesh_gain, 5.0);
  EXPECT_GE(dcsa_gain, 12.0);
  EXPECT_LE(dcsa_gain, 25.0);
  EXPECT_GT(dcsa_gain, 3.0 * mesh_gain);
}

TEST(PaperRegression, BestCIsInteriorAndSerializationScissors) {
  // Fig. 5's qualitative structure on 8x8: interior optimum; L_D strictly
  // decreasing in C; L_S strictly increasing.
  auto options = quick_options();
  Rng rng(6);
  const auto points = core::sweep_link_limits(8, options, rng);
  const std::size_t best = core::best_point(points);
  EXPECT_GT(best, 0u);
  EXPECT_LT(best, points.size() - 1);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].breakdown.head, points[i - 1].breakdown.head + 0.15);
    EXPECT_GT(points[i].breakdown.serialization,
              points[i - 1].breakdown.serialization);
  }
}

TEST(PaperRegression, Fig12OptimalityGap) {
  // Paper: D&C_SA within 1.3% of the exact optimum everywhere verifiable.
  for (const auto& [n, limit] :
       {std::pair{4, 2}, std::pair{8, 2}, std::pair{8, 3}, std::pair{8, 4}}) {
    const core::RowObjective obj(n, route::HopWeights{});
    core::BranchAndBound bb(obj, limit);
    const double optimum = bb.solve().value;
    Rng rng(static_cast<std::uint64_t>(n + limit));
    const auto dcsa = core::solve_dcsa(obj, limit, core::SaParams{}, rng);
    EXPECT_LE(dcsa.value, optimum * 1.013 + 1e-12)
        << "P(" << n << "," << limit << ")";
  }
}

}  // namespace
}  // namespace xlp
