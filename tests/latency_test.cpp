#include <gtest/gtest.h>

#include "latency/model.hpp"
#include "latency/packet_mix.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"
#include "util/check.hpp"

namespace xlp::latency {
namespace {

TEST(PacketMix, PaperDefaultRatio) {
  const PacketMix mix = PacketMix::paper_default();
  ASSERT_EQ(mix.classes().size(), 2u);
  // 1:4 long(512) to short(128).
  EXPECT_EQ(mix.classes()[0].bits, 128);
  EXPECT_DOUBLE_EQ(mix.classes()[0].fraction, 0.8);
  EXPECT_EQ(mix.classes()[1].bits, 512);
  EXPECT_DOUBLE_EQ(mix.classes()[1].fraction, 0.2);
}

TEST(PacketMix, ValidatesInput) {
  EXPECT_THROW(PacketMix({}), PreconditionError);
  EXPECT_THROW(PacketMix({{128, 0.5}}), PreconditionError);  // sum != 1
  EXPECT_THROW(PacketMix({{0, 1.0}}), PreconditionError);
  EXPECT_THROW(PacketMix({{128, -0.2}, {512, 1.2}}), PreconditionError);
  EXPECT_NO_THROW(PacketMix({{128, 0.5}, {512, 0.5}}));
}

TEST(PacketMix, FlitsForRoundsUp) {
  EXPECT_EQ(PacketMix::flits_for(512, 256), 2);
  EXPECT_EQ(PacketMix::flits_for(128, 256), 1);  // sub-flit packet: 1 flit
  EXPECT_EQ(PacketMix::flits_for(512, 64), 8);
  EXPECT_EQ(PacketMix::flits_for(129, 128), 2);
  EXPECT_THROW(PacketMix::flits_for(0, 64), PreconditionError);
  EXPECT_THROW(PacketMix::flits_for(64, 0), PreconditionError);
}

TEST(PacketMix, SerializationAcrossWidths) {
  const PacketMix mix = PacketMix::paper_default();
  // Figure 1's example: 256-bit flits -> 512-bit packet takes 2 flits.
  EXPECT_DOUBLE_EQ(mix.serialization_cycles(256), 0.8 * 1 + 0.2 * 2);  // 1.2
  EXPECT_DOUBLE_EQ(mix.serialization_cycles(128), 0.8 * 1 + 0.2 * 4);  // 1.6
  EXPECT_DOUBLE_EQ(mix.serialization_cycles(64), 0.8 * 2 + 0.2 * 8);   // 3.2
  EXPECT_DOUBLE_EQ(mix.serialization_cycles(16), 0.8 * 8 + 0.2 * 32);  // 12.8
  EXPECT_DOUBLE_EQ(mix.serialization_cycles(512), 1.0);
}

TEST(PacketMix, Averages) {
  const PacketMix mix = PacketMix::paper_default();
  EXPECT_DOUBLE_EQ(mix.average_bits(), 0.8 * 128 + 0.2 * 512);
  EXPECT_DOUBLE_EQ(mix.average_flits(64), 3.2);
}

TEST(LatencyParams, Defaults) {
  const LatencyParams zero = LatencyParams::zero_load();
  EXPECT_DOUBLE_EQ(zero.hop.router_cycles, 3.0);
  EXPECT_DOUBLE_EQ(zero.hop.link_cycles_per_unit, 1.0);
  EXPECT_DOUBLE_EQ(zero.contention_per_hop, 0.0);
  EXPECT_DOUBLE_EQ(LatencyParams::parsec_typical().contention_per_hop, 0.5);
}

// --------------------------------------------------------------------------
// Calibration against the paper's Table 2 (mesh rows match exactly).

TEST(MeshLatencyModel, Table2MeshWorstCase4x4) {
  const MeshLatencyModel model(topo::make_mesh(4),
                               LatencyParams::zero_load());
  EXPECT_NEAR(model.worst_case(), 28.2, 1e-9);
}

TEST(MeshLatencyModel, Table2MeshWorstCase8x8) {
  const MeshLatencyModel model(topo::make_mesh(8),
                               LatencyParams::zero_load());
  EXPECT_NEAR(model.worst_case(), 60.2, 1e-9);
}

TEST(MeshLatencyModel, PairLatencyDecomposition) {
  const MeshLatencyModel model(topo::make_mesh(8),
                               LatencyParams::zero_load());
  // (0,0) -> (1,0): 1 hop, 2 routers, distance 1: 2*3 + 1 = 7 head.
  EXPECT_DOUBLE_EQ(model.pair_head_latency(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(model.pair_latency(0, 1), 7.0 + 1.2);
  EXPECT_DOUBLE_EQ(model.pair_latency(5, 5), 0.0);
}

TEST(MeshLatencyModel, AverageOfMesh8x8) {
  const MeshLatencyModel model(topo::make_mesh(8),
                               LatencyParams::zero_load());
  const LatencyBreakdown avg = model.average();
  // Average ordered-pair Manhattan distance excluding self: (2*21/8)*(64/63).
  const double dist = 2.0 * (64.0 - 1.0) / (3.0 * 8.0) * 64.0 / 63.0;
  EXPECT_NEAR(avg.head, (dist + 1.0) * 3.0 + dist, 1e-9);
  EXPECT_DOUBLE_EQ(avg.serialization, 1.2);
  EXPECT_NEAR(model.average_hops(), dist, 1e-9);
}

TEST(MeshLatencyModel, ContentionAddsPerHop) {
  LatencyParams params = LatencyParams::zero_load();
  params.contention_per_hop = 0.5;
  const MeshLatencyModel model(topo::make_mesh(8), params);
  const MeshLatencyModel base(topo::make_mesh(8),
                              LatencyParams::zero_load());
  EXPECT_NEAR(model.average().head,
              base.average().head + 0.5 * base.average_hops(), 1e-9);
}

TEST(MeshLatencyModel, ExpressLinksReduceHeadRaiseSerialization) {
  const MeshLatencyModel mesh(topo::make_mesh(8), LatencyParams::zero_load());
  const MeshLatencyModel hfb(topo::make_hfb(8), LatencyParams::zero_load());
  EXPECT_LT(hfb.average().head, mesh.average().head);
  EXPECT_GT(hfb.average().serialization, mesh.average().serialization);
  EXPECT_DOUBLE_EQ(hfb.average().serialization, 3.2);  // 64-bit flits
}

TEST(MeshLatencyModel, HfbBeatsMeshAtTotalLatency8x8) {
  const MeshLatencyModel mesh(topo::make_mesh(8), LatencyParams::zero_load());
  const MeshLatencyModel hfb(topo::make_hfb(8), LatencyParams::zero_load());
  EXPECT_LT(hfb.average().total(), mesh.average().total());
}

TEST(MeshLatencyModel, WorstCaseOrderingMatchesTable2) {
  // Table 2's shape: express designs beat the mesh in worst-case zero-load
  // latency, and a coverage-oriented placement matches or beats the HFB.
  // (The strict D&C_SA < HFB comparison runs with the real optimizer in the
  // integration tests; the paper's Fig. 2 placement optimizes the *average*
  // and is deliberately not worst-case optimal.)
  const MeshLatencyModel mesh(topo::make_mesh(8), LatencyParams::zero_load());
  const MeshLatencyModel hfb(topo::make_hfb(8), LatencyParams::zero_load());
  const topo::RowTopology covering_row(8, {{0, 4}, {4, 7}, {1, 6}});
  const MeshLatencyModel covering(topo::make_design(covering_row, 4),
                                  LatencyParams::zero_load());
  EXPECT_NEAR(hfb.worst_case(), 38.2, 1e-9);  // paper Table 2, HFB 8x8
  EXPECT_LE(covering.worst_case(), hfb.worst_case());
  EXPECT_LT(hfb.worst_case(), mesh.worst_case());
}

TEST(MeshLatencyModel, WeightedAverageWithUniformMatrixEqualsAverage) {
  const topo::ExpressMesh design = topo::make_hfb(8);
  const MeshLatencyModel model(design, LatencyParams::zero_load());
  std::vector<double> rates(64 * 64, 1.0);
  for (int i = 0; i < 64; ++i) rates[static_cast<std::size_t>(i) * 64 + i] = 0.0;
  const LatencyBreakdown weighted = model.weighted_average(rates);
  const LatencyBreakdown uniform = model.average();
  EXPECT_NEAR(weighted.head, uniform.head, 1e-9);
  EXPECT_DOUBLE_EQ(weighted.serialization, uniform.serialization);
}

TEST(MeshLatencyModel, WeightedAverageSinglePair) {
  const MeshLatencyModel model(topo::make_mesh(4),
                               LatencyParams::zero_load());
  std::vector<double> rates(16 * 16, 0.0);
  rates[0 * 16 + 15] = 2.5;  // only corner-to-corner
  const LatencyBreakdown w = model.weighted_average(rates);
  EXPECT_DOUBLE_EQ(w.head, model.pair_head_latency(0, 15));
}

TEST(MeshLatencyModel, WeightedAverageValidation) {
  const MeshLatencyModel model(topo::make_mesh(4),
                               LatencyParams::zero_load());
  EXPECT_THROW(model.weighted_average(std::vector<double>(10, 1.0)),
               PreconditionError);
  EXPECT_THROW(model.weighted_average(std::vector<double>(256, 0.0)),
               PreconditionError);
  std::vector<double> negative(256, 1.0);
  negative[1] = -1.0;
  EXPECT_THROW(model.weighted_average(negative), PreconditionError);
}

TEST(LatencyBreakdown, TotalIsSum) {
  const LatencyBreakdown b{10.0, 2.5};
  EXPECT_DOUBLE_EQ(b.total(), 12.5);
}

}  // namespace
}  // namespace xlp::latency
