#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

Args make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesPositionalAndOptions) {
  const Args args = make({"sweep", "extra", "--n", "8", "--verbose"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"sweep", "extra"}));
  EXPECT_TRUE(args.has("n"));
  EXPECT_EQ(args.get("n"), "8");
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose"), std::nullopt);  // boolean flag
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, OptionGreedilyConsumesTheNextToken) {
  // Documented semantics: "--flag value" cannot be told apart from a
  // boolean flag followed by a positional, so the token is consumed.
  const Args args = make({"--verbose", "extra"});
  EXPECT_EQ(args.get("verbose"), "extra");
  EXPECT_TRUE(args.positional().empty());
}

TEST(Args, TrailingOptionIsBoolean) {
  const Args args = make({"--vec"});
  EXPECT_TRUE(args.has("vec"));
  EXPECT_EQ(args.get("vec"), std::nullopt);
}

TEST(Args, TypedAccessors) {
  const Args args = make({"--moves", "5000", "--load", "0.25"});
  EXPECT_EQ(args.get_long("moves", 1), 5000);
  EXPECT_EQ(args.get_long("absent", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("load", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
  EXPECT_EQ(args.get_or("absent", "dflt"), "dflt");
}

TEST(Args, RejectsMalformedNumbers) {
  const Args args = make({"--moves", "12x", "--load", "a.b"});
  EXPECT_THROW(args.get_long("moves", 0), PreconditionError);
  EXPECT_THROW(args.get_double("load", 0.0), PreconditionError);
}

TEST(Args, RejectsBareDoubleDash) {
  EXPECT_THROW(make({"--"}), PreconditionError);
}

TEST(Args, TracksUnknownKeys) {
  const Args args = make({"--known", "1", "--typo", "2"});
  (void)args.get_long("known", 0);
  const auto unknown = args.unknown_keys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Args, NegativeNumbersAreValuesNotFlags) {
  // A value starting with '-' (single dash) is consumed as a value.
  const Args args = make({"--offset", "-3"});
  EXPECT_EQ(args.get_long("offset", 0), -3);
}

}  // namespace
}  // namespace xlp
