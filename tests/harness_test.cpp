// Bench harness: deterministic BENCH_*.json emission (byte-identical
// across runs with the same seed and pinned provenance), filtering,
// schema/provenance stamping, and the artifact writer.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness.hpp"

using namespace xlp;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

obs::Provenance pinned_provenance() {
  obs::Provenance p;
  p.git_sha = "0000000000000000000000000000000000000000";
  p.compiler = "testcc 1.0";
  p.flags = "-O2";
  p.hostname = "testhost";
  p.seed = 42;
  return p;
}

void register_test_suite() {
  bench::Registry::global().clear();
  bench::register_bench("tsuite", "alpha", "smoke", [](bench::BenchRun& run) {
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
    run.set_items(1000);
    run.set_rate("widgets", 1000.0);
    run.set_counter("checksum", 499500.0);
  });
  bench::register_bench("tsuite", "beta", "", [](bench::BenchRun& run) {
    run.set_payload(obs::Json::object().set("series",
                                            obs::Json::array().push(1).push(2)));
  });
  bench::register_bench("other", "gamma", "", [](bench::BenchRun&) {});
}

bench::RunnerOptions deterministic_options(const std::string& out_dir) {
  bench::RunnerOptions options;
  options.warmup = 0;
  options.repeats = 2;
  options.out_dir = out_dir;
  options.deterministic = true;
  options.provenance = pinned_provenance();
  return options;
}

TEST(HarnessTest, DeterministicRunsAreByteIdentical) {
  register_test_suite();
  const std::string dir_a = ::testing::TempDir() + "xlp_bench_a";
  const std::string dir_b = ::testing::TempDir() + "xlp_bench_b";
  {
    const bench::Runner runner(deterministic_options(dir_a));
    (void)runner.run();
  }
  {
    const bench::Runner runner(deterministic_options(dir_b));
    (void)runner.run();
  }
  const std::string a = slurp(dir_a + "/BENCH_tsuite.json");
  const std::string b = slurp(dir_b + "/BENCH_tsuite.json");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "deterministic BENCH json must not depend on timing";
}

TEST(HarnessTest, DeterministicModeZeroesTimeDerivedFieldsOnly) {
  register_test_suite();
  bench::RunnerOptions options = deterministic_options("");
  const bench::Runner runner(options);
  const auto reports = runner.run();
  ASSERT_EQ(reports.size(), 2u);  // tsuite + other
  const obs::Json doc = runner.suite_to_json(reports[0]);
  const std::string dump = doc.dump();

  // Schema + provenance are stamped.
  EXPECT_EQ(doc.find("schema")->as_string(), "xlp-bench/1");
  EXPECT_EQ(doc.find("provenance")->find("hostname")->as_string(),
            "testhost");
  EXPECT_EQ(doc.find("provenance")->find("seed")->as_long(), 42);

  const obs::Json* benches = doc.find("benchmarks");
  ASSERT_NE(benches, nullptr);
  const obs::Json& alpha = benches->at(0);
  // Time-derived fields are zeroed; deterministic facts survive.
  EXPECT_EQ(alpha.find("min_ns")->as_number(), 0.0);
  EXPECT_EQ(alpha.find("median_ns")->as_number(), 0.0);
  EXPECT_EQ(alpha.find("metrics")->find("widgets_per_sec")->as_number(), 0.0);
  EXPECT_EQ(alpha.find("metrics")->find("checksum")->as_number(), 499500.0);
  EXPECT_EQ(alpha.find("items")->as_long(), 1000);
  // The payload bench keeps its structured series.
  const obs::Json& beta = benches->at(1);
  ASSERT_NE(beta.find("payload"), nullptr);
  EXPECT_EQ(beta.find("payload")->find("series")->size(), 2u);
}

TEST(HarnessTest, TimedRunRecordsPositiveDurations) {
  register_test_suite();
  bench::RunnerOptions options;
  options.warmup = 0;
  options.repeats = 3;
  options.out_dir.clear();
  options.filter = "^tsuite/alpha";
  const bench::Runner runner(options);
  const auto reports = runner.run();
  ASSERT_EQ(reports.size(), 1u);
  ASSERT_EQ(reports[0].results.size(), 1u);
  const auto& r = reports[0].results[0];
  EXPECT_EQ(r.repeats, 3);
  EXPECT_GT(r.min_ns, 0.0);
  EXPECT_LE(r.min_ns, r.median_ns);
  EXPECT_GT(r.total_seconds, 0.0);
  ASSERT_EQ(r.rates.size(), 1u);
  EXPECT_EQ(r.rates[0].first, "widgets_per_sec");
  EXPECT_GT(r.rates[0].second, 0.0);
}

TEST(HarnessTest, FilterMatchesSuiteNameAndTags) {
  register_test_suite();
  bench::RunnerOptions options;
  options.warmup = 0;
  options.repeats = 1;
  options.out_dir.clear();
  options.filter = "smoke";
  const auto smoke = bench::Runner(options).run();
  ASSERT_EQ(smoke.size(), 1u);
  ASSERT_EQ(smoke[0].results.size(), 1u);
  EXPECT_EQ(smoke[0].results[0].name, "alpha");

  options.filter = "^other/";
  const auto other = bench::Runner(options).run();
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0].suite, "other");
}

TEST(HarnessTest, WriteArtifactStampsSchemaAndProvenance) {
  const std::string dir = ::testing::TempDir() + "xlp_bench_artifact";
  const obs::Json data = obs::Json::object().set("x", 1);
  const std::string path =
      bench::write_artifact(dir, "fig_test", data, pinned_provenance());
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_fig_test.json"), std::string::npos);
  const auto doc = obs::Json::parse(slurp(path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->as_string(), "xlp-bench/1");
  EXPECT_EQ(doc->find("kind")->as_string(), "artifact");
  EXPECT_EQ(doc->find("provenance")->find("hostname")->as_string(),
            "testhost");
  EXPECT_EQ(doc->find("data")->find("x")->as_long(), 1);
}

TEST(HarnessTest, WriteBenchJsonCreatesMissingDirectories) {
  const std::string dir =
      ::testing::TempDir() + "xlp_bench_deep/nested/dirs";
  const std::string path = bench::write_bench_json(
      dir, "made", obs::Json::object().set("schema", bench::kBenchSchema));
  ASSERT_FALSE(path.empty());
  EXPECT_FALSE(slurp(path).empty());
}

}  // namespace
