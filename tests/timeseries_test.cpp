// Tests of the bounded-memory time-series recorder: downsampling keeps
// point counts under capacity for arbitrarily long runs while preserving
// the weighted mean exactly, adopt() merges chain recorders
// deterministically, and the SA / portfolio instrumentation records the
// cooling trajectory with byte-identical output at any thread count.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/objective.hpp"
#include "core/portfolio.hpp"
#include "core/sa.hpp"
#include "obs/timeseries.hpp"
#include "topo/connection_matrix.hpp"
#include "util/rng.hpp"

namespace xlp::obs {
namespace {

TEST(SeriesRecorder, TenMillionSamplesStayUnderCapacity) {
  constexpr long kSamples = 10'000'000;
  SeriesRecorder rec(256);
  double sum = 0.0;
  for (long i = 0; i < kSamples; ++i) {
    const double y = static_cast<double>(i % 1000);
    rec.append("load", static_cast<double>(i), y);
    sum += y;
  }
  const auto points = rec.sampled("load");
  ASSERT_FALSE(points.empty());
  EXPECT_LE(points.size(), rec.capacity());

  // No raw sample is lost: the counts add back up to the append count and
  // the count-weighted mean matches the true mean (downsampling averages,
  // it never drops).
  long total_count = 0;
  double weighted_sum = 0.0;
  for (const auto& p : points) {
    total_count += p.count;
    weighted_sum += p.y * static_cast<double>(p.count);
  }
  EXPECT_EQ(total_count, kSamples);
  EXPECT_NEAR(weighted_sum / static_cast<double>(total_count),
              sum / static_cast<double>(kSamples), 1e-6);

  // x stays monotonic after arbitrarily many pair merges.
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(points[i - 1].x, points[i].x);
}

TEST(SeriesRecorder, ShortSeriesAreLossless) {
  SeriesRecorder rec(64);
  for (int i = 0; i < 10; ++i)
    rec.append("s", static_cast<double>(i), static_cast<double>(i * i));
  const auto points = rec.sampled("s");
  ASSERT_EQ(points.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(points[static_cast<std::size_t>(i)].x, i);
    EXPECT_DOUBLE_EQ(points[static_cast<std::size_t>(i)].y, i * i);
    EXPECT_EQ(points[static_cast<std::size_t>(i)].count, 1);
  }
}

TEST(SeriesRecorder, CapacityIsClampedAndEven) {
  EXPECT_GE(SeriesRecorder(0).capacity(), 4u);
  EXPECT_EQ(SeriesRecorder(7).capacity() % 2, 0u);
  // A tiny capacity still bounds a long run.
  SeriesRecorder rec(4);
  for (int i = 0; i < 100'000; ++i) rec.append("s", i, 1.0);
  EXPECT_LE(rec.sampled("s").size(), rec.capacity());
}

TEST(SeriesRecorder, PendingBucketIsIncludedInSampled) {
  SeriesRecorder rec(8);
  // Push past one compaction so stride > 1, then append fewer samples
  // than a full stride: they must still show up.
  for (int i = 0; i < 9; ++i) rec.append("s", i, 2.0);
  const auto points = rec.sampled("s");
  long total = 0;
  for (const auto& p : points) total += p.count;
  EXPECT_EQ(total, 9);
}

TEST(SeriesRecorder, AdoptMergesDisjointRecorders) {
  SeriesRecorder a(32), b(32);
  a.append("chain0.obj", 1.0, 10.0);
  b.append("chain1.obj", 1.0, 20.0);
  a.adopt(b);
  EXPECT_NE(a.find("chain0.obj"), nullptr);
  EXPECT_NE(a.find("chain1.obj"), nullptr);
  EXPECT_EQ(a.names().size(), 2u);
}

TEST(SeriesRecorder, AdoptDuplicateFavorsOther) {
  SeriesRecorder a(32), b(32);
  a.append("s", 1.0, 1.0);
  b.append("s", 1.0, 99.0);
  a.adopt(b);
  const auto points = a.sampled("s");
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].y, 99.0);
}

TEST(SeriesRecorder, EqualRecordingsDumpByteIdentically) {
  const auto record = [] {
    SeriesRecorder rec(16);
    for (int i = 0; i < 1000; ++i)
      rec.append("a", i, std::sin(static_cast<double>(i)));
    for (int i = 0; i < 37; ++i) rec.append("b", i, i * 0.5);
    return rec.to_json().dump();
  };
  EXPECT_EQ(record(), record());
  EXPECT_NE(record().find("\"schema\":\"xlp-series/1\""), std::string::npos);
}

TEST(SaInstrumentation, RecordsCoolingTrajectory) {
  const core::RowObjective obj(8, route::HopWeights{});
  Rng rng(3);
  const auto initial = topo::ConnectionMatrix::random(8, 4, rng, 0.5);
  core::SaParams params;
  params.total_moves = 400;
  params.moves_per_cool = 100;
  SeriesRecorder rec(64);
  params.series = &rec;
  Rng move_rng(7);
  (void)core::anneal_connection_matrix(initial, obj, params, move_rng);

  for (const char* name :
       {"sa.objective", "sa.best", "sa.temperature", "sa.acceptance"}) {
    const SeriesRecorder::Series* s = rec.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_EQ(s->total_samples, 400 / 100) << name;
  }
  // Best-so-far is monotonically non-increasing; acceptance is a fraction.
  const auto best = rec.sampled("sa.best");
  for (std::size_t i = 1; i < best.size(); ++i)
    EXPECT_LE(best[i].y, best[i - 1].y);
  for (const auto& p : rec.sampled("sa.acceptance")) {
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(PortfolioInstrumentation, SeriesAreThreadCountInvariant) {
  const auto record = [](int threads) {
    core::PortfolioOptions options;
    options.chains = 4;
    options.threads = threads;
    options.sa.total_moves = 500;
    options.sa.moves_per_cool = 100;
    SeriesRecorder rec(32);
    options.series = &rec;
    (void)core::solve_portfolio(8, route::HopWeights{}, std::nullopt, 4,
                                options, 5);
    return rec.to_json().dump();
  };
  const std::string serial = record(1);
  EXPECT_EQ(serial, record(4));
  // Every chain contributed under its own prefix.
  for (const char* prefix : {"chain0.", "chain1.", "chain2.", "chain3."})
    EXPECT_NE(serial.find(std::string(prefix) + "sa.best"),
              std::string::npos)
        << prefix;
}

}  // namespace
}  // namespace xlp::obs
