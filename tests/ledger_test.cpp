// Tests of the run ledger: the content-hashed run id depends on exactly
// (subcommand, canonical params, seed, git sha) and nothing else, records
// serialize with a fixed schema, and the JSONL append/read round trip is
// crash-safe against malformed lines.

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <string>

#include "obs/ledger.hpp"

namespace xlp::obs {
namespace {

Json sample_params() {
  return Json::object().set("n", 8).set("c", 4).set("moves", 1000L);
}

TEST(LedgerRunId, IsSixteenLowercaseHexChars) {
  const std::string id = ledger_run_id("solve", sample_params(), 7, "abc");
  ASSERT_EQ(id.size(), 16u);
  for (const char c : id)
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)) ||
                (c >= 'a' && c <= 'f'))
        << id;
}

TEST(LedgerRunId, DependsOnEveryIdentityComponent) {
  const std::string base = ledger_run_id("solve", sample_params(), 7, "abc");
  EXPECT_EQ(base, ledger_run_id("solve", sample_params(), 7, "abc"));
  EXPECT_NE(base, ledger_run_id("sweep", sample_params(), 7, "abc"));
  EXPECT_NE(base, ledger_run_id("solve", sample_params().set("n", 16), 7,
                                "abc"));
  EXPECT_NE(base, ledger_run_id("solve", sample_params(), 8, "abc"));
  EXPECT_NE(base, ledger_run_id("solve", sample_params(), 7, "def"));
}

TEST(LedgerRunId, IgnoresExecutionDetails) {
  // Wall time, exit status and artifacts are execution details, not
  // scenario identity: two entries differing only there share a run id.
  LedgerEntry fast, slow;
  fast.subcommand = slow.subcommand = "simulate";
  fast.params = slow.params = sample_params();
  fast.seed = slow.seed = 3;
  fast.git_sha = slow.git_sha = "abc";
  slow.wall_seconds = 99.0;
  slow.exit_status = 1;
  slow.artifacts = {"out/trace.jsonl"};
  EXPECT_EQ(fast.run_id(), slow.run_id());
}

TEST(LedgerEntry, SerializesWithFixedSchemaAndOrder) {
  LedgerEntry entry;
  entry.subcommand = "solve";
  entry.params = sample_params();
  entry.seed = 7;
  entry.git_sha = "abc";
  entry.hostname = "host";
  entry.wall_seconds = 1.5;
  entry.exit_status = 0;
  entry.artifacts = {"a.json", "b.jsonl"};

  const std::string dump = entry.to_json().dump();
  EXPECT_EQ(dump.rfind("{\"schema\":\"xlp-ledger/1\",\"run_id\":\"", 0), 0u)
      << dump;
  // Fixed member order: identical runs serialize byte-identically.
  const char* keys[] = {"run_id",  "subcommand",   "params",
                        "seed",    "git_sha",      "hostname",
                        "wall_seconds", "exit_status", "artifacts"};
  std::size_t last = 0;
  for (const char* key : keys) {
    const std::size_t pos = dump.find("\"" + std::string(key) + "\":");
    ASSERT_NE(pos, std::string::npos) << key;
    EXPECT_GT(pos, last) << key;
    last = pos;
  }
}

TEST(Ledger, AppendReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/xlp_ledger_rt.jsonl";
  std::remove(path.c_str());

  LedgerEntry first;
  first.subcommand = "solve";
  first.params = sample_params();
  first.seed = 1;
  ASSERT_TRUE(append_ledger_entry(path, first));
  LedgerEntry second = first;
  second.seed = 2;
  second.artifacts = {"stats.json"};
  ASSERT_TRUE(append_ledger_entry(path, second));

  const auto records = read_ledger(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].find("seed")->as_long(), 1);
  EXPECT_EQ(records[1].find("seed")->as_long(), 2);
  EXPECT_EQ(records[0].find("run_id")->as_string(), first.run_id());
  EXPECT_EQ(records[1].find("artifacts")->at(0).as_string(), "stats.json");
}

TEST(Ledger, ReadSkipsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/xlp_ledger_bad.jsonl";
  std::remove(path.c_str());
  LedgerEntry entry;
  entry.subcommand = "bench";
  ASSERT_TRUE(append_ledger_entry(path, entry));
  {
    std::ofstream out(path, std::ios::app);
    out << "this is not json\n{\"truncated\":\n";
  }
  ASSERT_TRUE(append_ledger_entry(path, entry));
  EXPECT_EQ(read_ledger(path).size(), 2u);
}

TEST(Ledger, ReadMissingFileIsEmpty) {
  EXPECT_TRUE(read_ledger("/nonexistent/dir/ledger.jsonl").empty());
}

}  // namespace
}  // namespace xlp::obs
