// Tests for the YX and O1TURN routing extensions and the trace-driven
// simulation support.

#include <gtest/gtest.h>

#include <sstream>

#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "route/deadlock.hpp"
#include "sim/simulator.hpp"
#include "sim/throughput.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "traffic/trace.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

using route::Orientation;

TEST(Orientation, YxRoutesColumnFirst) {
  const topo::ExpressMesh mesh = topo::make_mesh(4);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  // (0,0)=0 -> (2,3)=14. XY: x to 2 then down. YX: down to y=3 then right.
  EXPECT_EQ(routing.path(0, 14, Orientation::kXYFirst),
            (std::vector<int>{0, 1, 2, 6, 10, 14}));
  EXPECT_EQ(routing.path(0, 14, Orientation::kYXFirst),
            (std::vector<int>{0, 4, 8, 12, 13, 14}));
}

TEST(Orientation, HopsAgreeOnHomogeneousDesigns) {
  Rng rng(3);
  const topo::RowTopology row = test::random_valid_row(8, 4, rng);
  const topo::ExpressMesh mesh = topo::make_design(row, 4);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  for (int s = 0; s < 64; s += 5)
    for (int d = 0; d < 64; d += 7) {
      if (s == d) continue;
      EXPECT_EQ(routing.hops(s, d, Orientation::kXYFirst),
                routing.hops(s, d, Orientation::kYXFirst));
      EXPECT_DOUBLE_EQ(routing.head_cost(s, d, Orientation::kXYFirst),
                       routing.head_cost(s, d, Orientation::kYXFirst));
    }
}

TEST(Orientation, HopsCanDifferOnHeterogeneousDesigns) {
  // Rows have an end-to-end express link, columns do not: XY uses the
  // source row (fast), YX uses the destination row (also fast) — make them
  // differ per row instead.
  const int n = 4;
  std::vector<topo::RowTopology> rows;
  rows.push_back(topo::RowTopology(n, {{0, 3}}));  // row 0 has express
  rows.insert(rows.end(), 3, topo::RowTopology(n));
  std::vector<topo::RowTopology> cols(4, topo::RowTopology(n));
  const topo::ExpressMesh mesh(rows, cols, 2, 128);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  // (0,0) -> (3,3): XY rides row 0's express link (1 hop + 3 col hops);
  // YX walks column 0 then row 3's locals (3 + 3).
  EXPECT_EQ(routing.hops(0, 15, Orientation::kXYFirst), 4);
  EXPECT_EQ(routing.hops(0, 15, Orientation::kYXFirst), 6);
}

TEST(Orientation, BothOrientationsDeadlockFreeOnExpressDesigns) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const topo::RowTopology row = test::random_valid_row(6, 4, rng);
    const topo::ExpressMesh mesh = topo::make_design(row, 4);
    const route::MeshRouting routing(mesh, route::HopWeights{});
    EXPECT_FALSE(route::ChannelDependencyGraph(mesh, routing,
                                               Orientation::kXYFirst)
                     .has_cycle());
    EXPECT_FALSE(route::ChannelDependencyGraph(mesh, routing,
                                               Orientation::kYXFirst)
                     .has_cycle());
  }
}

// --------------------------------------------------------------------------
// Simulator routing modes

sim::SimConfig quiet_config(sim::RoutingMode mode) {
  sim::SimConfig config;
  config.routing = mode;
  config.warmup_cycles = 100;
  config.measure_cycles = 2000;
  config.drain_cycles = 4000;
  return config;
}

long one_packet_latency(const topo::ExpressMesh& design, int src, int dst,
                        int bits, sim::RoutingMode mode) {
  const sim::Network network(design, route::HopWeights{});
  const traffic::TrafficMatrix idle(design.side());
  const auto config = quiet_config(mode);
  sim::Simulator simulator(network, idle, config);
  simulator.schedule_packet(src, dst, bits, config.warmup_cycles + 10);
  const auto stats = simulator.run();
  EXPECT_EQ(stats.packets_finished, 1);
  return simulator.packet_latency(0);
}

TEST(SimRoutingModes, YxZeroLoadMatchesAnalytic) {
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  for (const auto& [src, dst] :
       {std::pair{0, 63}, std::pair{9, 54}, std::pair{7, 56}}) {
    const int hops = routing.hops(src, dst, Orientation::kYXFirst);
    const int dist = std::abs(src % 8 - dst % 8) + std::abs(src / 8 - dst / 8);
    const long expected = (hops + 1) * 3 + dist + 2;  // 512 bits = 2 flits
    EXPECT_EQ(one_packet_latency(mesh, src, dst, 512, sim::RoutingMode::kYX),
              expected);
  }
}

TEST(SimRoutingModes, O1TurnRequiresTwoVcs) {
  const sim::Network net(topo::make_mesh(4), route::HopWeights{});
  sim::SimConfig config = quiet_config(sim::RoutingMode::kO1Turn);
  config.vcs_per_port = 1;
  EXPECT_THROW(sim::Simulator(net, traffic::TrafficMatrix(4), config),
               PreconditionError);
}

TEST(SimRoutingModes, O1TurnDrainsAtLowLoadOnExpressDesign) {
  Rng rng(5);
  const topo::RowTopology row = test::random_valid_row(8, 4, rng);
  const topo::ExpressMesh design = topo::make_design(row, 4);
  const sim::Network net(design, route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  sim::Simulator simulator(net, demand,
                           quiet_config(sim::RoutingMode::kO1Turn));
  const auto stats = simulator.run();
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.packets_finished, 100);
}

TEST(SimRoutingModes, XyAndO1TurnWithinOnePercentAtParsecLoad) {
  // Section 4.2's justification for assuming DOR.
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const auto demand = traffic::parsec_model("bodytrack").traffic_matrix(8);
  sim::SimConfig xy = quiet_config(sim::RoutingMode::kXY);
  xy.measure_cycles = 6000;
  sim::SimConfig o1 = xy;
  o1.routing = sim::RoutingMode::kO1Turn;
  const auto xy_stats = exp::simulate_design(mesh, demand, xy);
  const auto o1_stats = exp::simulate_design(mesh, demand, o1);
  EXPECT_NEAR(xy_stats.avg_latency, o1_stats.avg_latency,
              0.02 * xy_stats.avg_latency);
}

TEST(SimRoutingModes, O1TurnBeatsXyOnSaturatedTranspose) {
  // Transpose is adversarial for XY; spreading packets over both dimension
  // orders raises saturation throughput. Use 8 VCs so each orientation
  // class keeps 4 — with the default 4 the per-class VC shortage eats most
  // of the path-diversity gain.
  const sim::Network net(topo::make_mesh(8), route::HopWeights{});
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 8, 1.0);
  sim::SimConfig xy = quiet_config(sim::RoutingMode::kXY);
  xy.vcs_per_port = 8;
  xy.warmup_cycles = 200;
  xy.measure_cycles = 1500;
  xy.drain_cycles = 1500;
  sim::SimConfig o1 = xy;
  o1.routing = sim::RoutingMode::kO1Turn;
  const double xy_thr =
      sim::find_saturation(net, shape, xy, 0.02, 0.4).saturation_throughput;
  const double o1_thr =
      sim::find_saturation(net, shape, o1, 0.02, 0.4).saturation_throughput;
  EXPECT_GT(o1_thr, xy_thr * 1.15);
}

// --------------------------------------------------------------------------
// Traces

TEST(Trace, ValidatesPackets) {
  EXPECT_THROW(traffic::Trace(4, 10, {{11, 0, 1, 128}}), PreconditionError);
  EXPECT_THROW(traffic::Trace(4, 10, {{0, 3, 3, 128}}), PreconditionError);
  EXPECT_THROW(traffic::Trace(4, 10, {{0, 0, 1, 0}}), PreconditionError);
  EXPECT_THROW(traffic::Trace(4, 10, {{5, 0, 1, 128}, {2, 0, 1, 128}}),
               PreconditionError);
  EXPECT_NO_THROW(traffic::Trace(4, 10, {{2, 0, 1, 128}, {5, 0, 1, 128}}));
}

TEST(Trace, SampleMatchesDemandStatistically) {
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 4, 0.1);
  Rng rng(7);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), 20000, rng);
  EXPECT_NEAR(trace.offered_per_node_cycle(), 0.1, 0.01);
  const auto empirical = trace.empirical_matrix();
  EXPECT_NEAR(empirical.total_rate(), demand.total_rate(),
              0.1 * demand.total_rate());
}

TEST(Trace, SaveLoadRoundTrip) {
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 4, 0.05);
  Rng rng(9);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), 500, rng);
  std::stringstream buffer;
  trace.save(buffer);
  const auto loaded = traffic::Trace::load(buffer);
  EXPECT_EQ(loaded, trace);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(traffic::Trace::load(empty), PreconditionError);
  std::stringstream bad("not_a_trace 8 100\n");
  EXPECT_THROW(traffic::Trace::load(bad), PreconditionError);
  std::stringstream bad_line("xlptrace 4 100\n1 2 x 128\n");
  EXPECT_THROW(traffic::Trace::load(bad_line), PreconditionError);
}

TEST(Trace, ReplayMeasuresEveryPacket) {
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 4, 0.03);
  Rng rng(11);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), 2000, rng);
  const auto stats =
      exp::replay_trace(topo::make_mesh(4), trace, sim::SimConfig{});
  EXPECT_EQ(stats.packets_offered,
            static_cast<long>(trace.packets().size()));
  EXPECT_EQ(stats.packets_finished, stats.packets_offered);
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.avg_latency, 0.0);
}

TEST(Trace, ReplayIsDeterministic) {
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 4, 0.02);
  Rng rng(13);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), 1000, rng);
  const auto a = exp::replay_trace(topo::make_mesh(4), trace,
                                   sim::SimConfig{});
  const auto b = exp::replay_trace(topo::make_mesh(4), trace,
                                   sim::SimConfig{});
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
}

TEST(Trace, ProfileOnMeshObservesTheWorkload) {
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 4, 0.02);
  const auto profile = exp::profile_on_mesh(demand, 5000, 3);
  EXPECT_TRUE(profile.stats.drained);
  // The observed matrix concentrates on transpose pairs.
  EXPECT_GT(profile.observed.rate(1, 4), 0.0);  // (1,0) -> (0,1)
  EXPECT_DOUBLE_EQ(profile.observed.rate(1, 2), 0.0);
}

}  // namespace
}  // namespace xlp
