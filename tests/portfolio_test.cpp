#include <gtest/gtest.h>

#include "core/branch_bound.hpp"
#include "core/portfolio.hpp"
#include "util/check.hpp"

namespace xlp::core {
namespace {

TEST(Portfolio, ValidatesChainCount) {
  PortfolioOptions options;
  options.chains = 0;
  EXPECT_THROW(
      solve_portfolio(8, route::HopWeights{}, std::nullopt, 4, options, 1),
      PreconditionError);
}

TEST(Portfolio, SingleChainMatchesSequentialSolve) {
  PortfolioOptions options;
  options.chains = 1;
  options.sa = SaParams{}.with_moves(800);
  const auto portfolio =
      solve_portfolio(8, route::HopWeights{}, std::nullopt, 4, options, 42);

  const RowObjective objective(8, route::HopWeights{});
  Rng base(42);
  Rng rng = base.fork(0);
  const auto sequential =
      solve_dcsa(objective, 4, options.sa, rng);
  EXPECT_EQ(portfolio.best.placement, sequential.placement);
  EXPECT_DOUBLE_EQ(portfolio.best.value, sequential.value);
  EXPECT_EQ(portfolio.best.method, "D&C_SA-portfolio");
}

TEST(Portfolio, DeterministicAcrossRuns) {
  PortfolioOptions options;
  options.chains = 4;
  options.sa = SaParams{}.with_moves(500);
  const auto a =
      solve_portfolio(16, route::HopWeights{}, std::nullopt, 4, options, 7);
  const auto b =
      solve_portfolio(16, route::HopWeights{}, std::nullopt, 4, options, 7);
  EXPECT_EQ(a.best.placement, b.best.placement);
  EXPECT_EQ(a.chain_values, b.chain_values);
}

TEST(Portfolio, BestIsMinOfChains) {
  PortfolioOptions options;
  options.chains = 4;
  options.sa = SaParams{}.with_moves(500);
  const auto result =
      solve_portfolio(16, route::HopWeights{}, std::nullopt, 4, options, 9);
  ASSERT_EQ(result.chain_values.size(), 4u);
  for (const double v : result.chain_values)
    EXPECT_LE(result.best.value, v + 1e-12);
  EXPECT_GT(result.total_evaluations, 0);
  EXPECT_TRUE(result.best.placement.fits_link_limit(4));
}

TEST(Portfolio, NeverWorseThanItsWorstChain) {
  // Portfolio quality dominates single-seed quality in expectation; at
  // minimum it can never be worse than any individual chain.
  PortfolioOptions options;
  options.chains = 6;
  options.sa = SaParams{}.with_moves(300);
  const auto result =
      solve_portfolio(16, route::HopWeights{}, std::nullopt, 8, options, 3);
  double worst = result.chain_values.front();
  for (const double v : result.chain_values) worst = std::max(worst, v);
  EXPECT_LE(result.best.value, worst);
}

TEST(Portfolio, FindsTheOptimumOnSmallProblems) {
  const RowObjective objective(8, route::HopWeights{});
  BranchAndBound bb(objective, 3);
  const double optimum = bb.solve().value;
  PortfolioOptions options;
  options.chains = 4;
  options.sa = SaParams{}.with_moves(3000);
  const auto result =
      solve_portfolio(8, route::HopWeights{}, std::nullopt, 3, options, 5);
  EXPECT_NEAR(result.best.value, optimum, 1e-9);
}

TEST(Portfolio, WeightedObjectiveWorks) {
  std::vector<double> weights(64, 0.0);
  weights[0 * 8 + 7] = 1.0;
  PortfolioOptions options;
  options.chains = 2;
  options.sa = SaParams{}.with_moves(500);
  const auto result =
      solve_portfolio(8, route::HopWeights{}, weights, 4, options, 11);
  // Demand is a single 0->7 flow: the best placement gives it a short path.
  const route::DirectionalShortestPaths paths(result.best.placement,
                                              route::HopWeights{});
  EXPECT_LE(paths.cost(0, 7), 12.0);
}

}  // namespace
}  // namespace xlp::core
