#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/branch_bound.hpp"
#include "util/check.hpp"

namespace xlp::core {
namespace {

route::HopWeights paper_weights() { return route::HopWeights{}; }

TEST(GreedyInsertion, ProducesFeasiblePlacements) {
  for (const auto& [n, limit] :
       {std::pair{4, 2}, std::pair{8, 4}, std::pair{16, 2},
        std::pair{16, 8}}) {
    const RowObjective obj(n, paper_weights());
    const PlacementResult result = solve_greedy_insertion(obj, limit);
    EXPECT_TRUE(result.placement.fits_link_limit(limit))
        << "n=" << n << " C=" << limit;
    EXPECT_EQ(result.method, "greedy-insertion");
    EXPECT_LE(result.value, obj.evaluate(topo::RowTopology(n)) + 1e-12);
  }
}

TEST(GreedyInsertion, IsDeterministic) {
  const RowObjective obj(8, paper_weights());
  const auto a = solve_greedy_insertion(obj, 4);
  const auto b = solve_greedy_insertion(obj, 4);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(GreedyInsertion, NoExpressWhenLimitIsOne) {
  const RowObjective obj(8, paper_weights());
  const auto result = solve_greedy_insertion(obj, 1);
  EXPECT_TRUE(result.placement.express_links().empty());
}

TEST(GreedyInsertion, NearOptimalOnSmallProblems) {
  const RowObjective obj(8, paper_weights());
  BranchAndBound bb(obj, 3);
  const double optimum = bb.solve().value;
  const auto greedy = solve_greedy_insertion(obj, 3);
  EXPECT_LE(greedy.value, optimum * 1.15);
}

TEST(HillClimb, RespectsTheBudgetAndTheLimit) {
  const RowObjective obj(8, paper_weights());
  Rng rng(3);
  const long before = obj.evaluations();
  const auto result = solve_hill_climb(obj, 4, 300, rng);
  EXPECT_TRUE(result.placement.fits_link_limit(4));
  // Steepest descent may finish the neighborhood scan it started, so allow
  // one extra sweep beyond the nominal budget.
  EXPECT_LE(obj.evaluations() - before,
            300 + topo::ConnectionMatrix(8, 4).bit_count() + 2);
}

TEST(HillClimb, FindsTheOptimumOnSmallProblems) {
  const RowObjective obj(6, paper_weights());
  BranchAndBound bb(obj, 3);
  const double optimum = bb.solve().value;
  Rng rng(5);
  const auto result = solve_hill_climb(obj, 3, 3000, rng);
  EXPECT_NEAR(result.value, optimum, 1e-9);
}

TEST(HillClimb, DegenerateSpaceReturnsPlainRow) {
  const RowObjective obj(8, paper_weights());
  Rng rng(1);
  const auto result = solve_hill_climb(obj, 1, 100, rng);
  EXPECT_EQ(result.placement, topo::RowTopology(8));
}

TEST(Ga, ValidatesParameters) {
  const RowObjective obj(8, paper_weights());
  Rng rng(1);
  GaParams bad;
  bad.population = 1;
  EXPECT_THROW(solve_ga(obj, 4, bad, rng), PreconditionError);
  bad = GaParams{};
  bad.elites = 99;
  EXPECT_THROW(solve_ga(obj, 4, bad, rng), PreconditionError);
}

TEST(Ga, ProducesFeasibleResultsWithinBudget) {
  const RowObjective obj(16, paper_weights());
  Rng rng(7);
  GaParams params;
  params.max_evaluations = 1500;
  const long before = obj.evaluations();
  const auto result = solve_ga(obj, 4, params, rng);
  EXPECT_TRUE(result.placement.fits_link_limit(4));
  // One generation may overshoot by at most a population's worth.
  EXPECT_LE(obj.evaluations() - before,
            params.max_evaluations + params.population);
  EXPECT_EQ(result.method, "GA");
}

TEST(Ga, FindsTheOptimumOnSmallProblems) {
  const RowObjective obj(6, paper_weights());
  BranchAndBound bb(obj, 3);
  const double optimum = bb.solve().value;
  Rng rng(11);
  GaParams params;
  params.max_evaluations = 4000;
  const auto result = solve_ga(obj, 3, params, rng);
  EXPECT_NEAR(result.value, optimum, 1e-9);
}

TEST(Ga, ElitismNeverLosesTheBest) {
  const RowObjective obj(8, paper_weights());
  Rng rng(13);
  GaParams params;
  params.max_evaluations = 600;
  const auto first = solve_ga(obj, 4, params, rng);
  params.max_evaluations = 2400;
  Rng rng2(13);
  const auto longer = solve_ga(obj, 4, params, rng2);
  EXPECT_LE(longer.value, first.value + 1e-12);
}

}  // namespace
}  // namespace xlp::core
