#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "traffic/app_models.hpp"
#include "traffic/matrix.hpp"
#include "traffic/patterns.hpp"
#include "util/check.hpp"

namespace xlp::traffic {
namespace {

TEST(Patterns, NamesRoundTrip) {
  for (Pattern p :
       {Pattern::kUniformRandom, Pattern::kTranspose, Pattern::kBitReverse,
        Pattern::kBitComplement, Pattern::kShuffle, Pattern::kTornado,
        Pattern::kNeighbor, Pattern::kHotspot}) {
    const auto round = pattern_from_string(to_string(p));
    ASSERT_TRUE(round.has_value());
    EXPECT_EQ(*round, p);
  }
  EXPECT_FALSE(pattern_from_string("nonsense").has_value());
}

TEST(Patterns, TransposeSwapsCoordinates) {
  Rng rng(1);
  // (x,y)=(3,1) on 8x8 is node 11; transpose target (1,3) is node 25.
  EXPECT_EQ(pattern_destination(Pattern::kTranspose, 11, 8, rng), 25);
  // Diagonal nodes map to themselves -> no traffic.
  EXPECT_FALSE(
      pattern_destination(Pattern::kTranspose, 9, 8, rng).has_value());
}

TEST(Patterns, BitComplementInvertsBits) {
  Rng rng(1);
  EXPECT_EQ(pattern_destination(Pattern::kBitComplement, 0, 8, rng), 63);
  EXPECT_EQ(pattern_destination(Pattern::kBitComplement, 21, 8, rng),
            63 - 21);
}

TEST(Patterns, BitReverseReversesIdBits) {
  Rng rng(1);
  // 64 nodes -> 6 bits; 0b000001 -> 0b100000 = 32.
  EXPECT_EQ(pattern_destination(Pattern::kBitReverse, 1, 8, rng), 32);
  EXPECT_EQ(pattern_destination(Pattern::kBitReverse, 32, 8, rng), 1);
  // Palindromic ids self-map.
  EXPECT_FALSE(
      pattern_destination(Pattern::kBitReverse, 0b100001, 8, rng).has_value());
}

TEST(Patterns, ShuffleRotatesLeft) {
  Rng rng(1);
  EXPECT_EQ(pattern_destination(Pattern::kShuffle, 1, 8, rng), 2);
  EXPECT_EQ(pattern_destination(Pattern::kShuffle, 32, 8, rng), 1);
  EXPECT_FALSE(pattern_destination(Pattern::kShuffle, 63, 8, rng).has_value());
}

TEST(Patterns, TornadoShiftsBothDimensions) {
  Rng rng(1);
  // n=8: shift 3; (0,0) -> (3,3) = 27.
  EXPECT_EQ(pattern_destination(Pattern::kTornado, 0, 8, rng), 27);
}

TEST(Patterns, NeighborSendsRight) {
  Rng rng(1);
  EXPECT_EQ(pattern_destination(Pattern::kNeighbor, 0, 8, rng), 1);
  EXPECT_EQ(pattern_destination(Pattern::kNeighbor, 7, 8, rng), 0);  // wraps
}

TEST(Patterns, UniformRandomNeverSelfAndCoversNodes) {
  Rng rng(9);
  std::map<int, int> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto d = pattern_destination(Pattern::kUniformRandom, 5, 4, rng);
    ASSERT_TRUE(d.has_value());
    EXPECT_NE(*d, 5);
    ++seen[*d];
  }
  EXPECT_EQ(seen.size(), 15u);  // all nodes except the source
}

TEST(Patterns, BitPatternsRequirePowerOfTwoNodes) {
  Rng rng(1);
  EXPECT_THROW(pattern_destination(Pattern::kBitReverse, 0, 6, rng),
               PreconditionError);
  EXPECT_THROW(pattern_destination(Pattern::kBitComplement, 0, 6, rng),
               PreconditionError);
  // Position-based patterns are fine on any size.
  EXPECT_NO_THROW(pattern_destination(Pattern::kTranspose, 0, 6, rng));
}

// --------------------------------------------------------------------------

TEST(TrafficMatrix, BasicAccounting) {
  TrafficMatrix m(4);
  EXPECT_EQ(m.node_count(), 16);
  EXPECT_DOUBLE_EQ(m.total_rate(), 0.0);
  m.set_rate(0, 5, 0.25);
  m.add_rate(0, 5, 0.25);
  m.set_rate(1, 0, 0.1);
  EXPECT_DOUBLE_EQ(m.rate(0, 5), 0.5);
  EXPECT_DOUBLE_EQ(m.total_rate(), 0.6);
  EXPECT_DOUBLE_EQ(m.node_rate(0), 0.5);
  EXPECT_DOUBLE_EQ(m.node_rate(1), 0.1);
}

TEST(TrafficMatrix, RejectsSelfTrafficAndNegatives) {
  TrafficMatrix m(4);
  EXPECT_THROW(m.set_rate(3, 3, 0.1), PreconditionError);
  EXPECT_NO_THROW(m.set_rate(3, 3, 0.0));
  EXPECT_THROW(m.set_rate(0, 1, -0.1), PreconditionError);
}

TEST(TrafficMatrix, ScaleTotal) {
  TrafficMatrix m(4);
  m.set_rate(0, 1, 1.0);
  m.set_rate(2, 3, 3.0);
  m.scale_total(1.0);
  EXPECT_DOUBLE_EQ(m.total_rate(), 1.0);
  EXPECT_DOUBLE_EQ(m.rate(0, 1), 0.25);
  TrafficMatrix empty(4);
  EXPECT_THROW(empty.scale_total(1.0), PreconditionError);
}

TEST(TrafficMatrix, FromDeterministicPattern) {
  const auto m = TrafficMatrix::from_pattern(Pattern::kTranspose, 8, 0.02);
  EXPECT_DOUBLE_EQ(m.rate(11, 25), 0.02);
  EXPECT_DOUBLE_EQ(m.rate(11, 12), 0.0);
  // Diagonal sources inject nothing.
  EXPECT_DOUBLE_EQ(m.node_rate(9), 0.0);
}

TEST(TrafficMatrix, FromUniformRandomPattern) {
  const auto m = TrafficMatrix::from_pattern(Pattern::kUniformRandom, 4,
                                             0.1);
  for (int src = 0; src < 16; ++src) {
    EXPECT_NEAR(m.node_rate(src), 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(m.rate(src, src), 0.0);
  }
}

TEST(TrafficMatrix, FromHotspotPatternFavorsHubs) {
  const auto m = TrafficMatrix::from_pattern(Pattern::kHotspot, 8, 0.1);
  const int q = 2;
  const int hub = q * 8 + q;
  double hub_in = 0.0, ordinary_in = 0.0;
  for (int src = 0; src < 64; ++src) {
    hub_in += m.rate(src, hub);
    ordinary_in += m.rate(src, 12);  // a non-hub node
  }
  EXPECT_GT(hub_in, 3.0 * ordinary_in);
}

TEST(TrafficMatrix, RowWeightsCaptureRowSegments) {
  TrafficMatrix m(4);
  // Flow (1,0) -> (3,2): row 0 segment from x=1 to x=3.
  m.set_rate(1, 2 * 4 + 3, 0.5);
  // Flow (2,0) -> (2,3): x equal -> no row segment.
  m.set_rate(2, 3 * 4 + 2, 0.7);
  const auto w0 = m.row_weights(0);
  EXPECT_DOUBLE_EQ(w0[1 * 4 + 3], 0.5);
  double total = 0.0;
  for (double x : w0) total += x;
  EXPECT_DOUBLE_EQ(total, 0.5);
  // Row 1 has no sources.
  const auto w1 = m.row_weights(1);
  for (double x : w1) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(TrafficMatrix, ColWeightsCaptureColumnSegments) {
  TrafficMatrix m(4);
  // Flow (1,0) -> (3,2): column 3 segment from y=0 to y=2.
  m.set_rate(1, 2 * 4 + 3, 0.5);
  // Flow (0,2) -> (3,2): y equal -> no column segment.
  m.set_rate(2 * 4 + 0, 2 * 4 + 3, 0.7);
  const auto w3 = m.col_weights(3);
  EXPECT_DOUBLE_EQ(w3[0 * 4 + 2], 0.5);
  double total = 0.0;
  for (double x : w3) total += x;
  EXPECT_DOUBLE_EQ(total, 0.5);
}

TEST(TrafficMatrix, RowAndColumnWeightsConserveDemand) {
  // Every flow with dx != 0 contributes its rate once to some row matrix;
  // every flow with dy != 0 once to some column matrix.
  const auto m = TrafficMatrix::from_pattern(Pattern::kUniformRandom, 8,
                                             0.05);
  double row_total = 0.0, col_total = 0.0;
  for (int y = 0; y < 8; ++y)
    for (double x : m.row_weights(y)) row_total += x;
  for (int x = 0; x < 8; ++x)
    for (double w : m.col_weights(x)) col_total += w;

  double expect_row = 0.0, expect_col = 0.0;
  for (int s = 0; s < 64; ++s)
    for (int d = 0; d < 64; ++d) {
      if (s % 8 != d % 8) expect_row += m.rate(s, d);
      if (s / 8 != d / 8) expect_col += m.rate(s, d);
    }
  EXPECT_NEAR(row_total, expect_row, 1e-9);
  EXPECT_NEAR(col_total, expect_col, 1e-9);
}

// --------------------------------------------------------------------------

TEST(AppModels, TenParsecBenchmarks) {
  const auto& models = parsec_models();
  ASSERT_EQ(models.size(), 10u);
  EXPECT_EQ(models.front().name, "blackscholes");
  EXPECT_EQ(models.back().name, "x264");
}

TEST(AppModels, LookupByName) {
  EXPECT_EQ(parsec_model("canneal").name, "canneal");
  EXPECT_THROW(parsec_model("doom"), PreconditionError);
}

TEST(AppModels, MatricesAreDeterministic) {
  const auto a = parsec_model("ferret").traffic_matrix(8);
  const auto b = parsec_model("ferret").traffic_matrix(8);
  for (int s = 0; s < 64; ++s)
    for (int d = 0; d < 64; ++d)
      EXPECT_DOUBLE_EQ(a.rate(s, d), b.rate(s, d));
}

TEST(AppModels, NodeRatesMatchInjectionRate) {
  for (const AppModel& model : parsec_models()) {
    const auto m = model.traffic_matrix(8);
    for (int src = 0; src < 64; ++src) {
      // Hub self-traffic is dropped, so node rate is at most the nominal
      // injection rate and within hotspot_share of it.
      EXPECT_LE(m.node_rate(src), model.injection_rate + 1e-12);
      EXPECT_GE(m.node_rate(src),
                model.injection_rate * (1.0 - model.hotspot_share) - 1e-12);
    }
  }
}

TEST(AppModels, LocalityConcentratesNearbyTraffic) {
  AppModel local{"local_test", 0.02, 0.9, 0.0, 0, 1.0};
  AppModel uniform{"uniform_test", 0.02, 0.0, 0.0, 0, 1.0};
  const auto lm = local.traffic_matrix(8);
  const auto um = uniform.traffic_matrix(8);
  // From the center node, a neighbor should get much more traffic under the
  // local model than under the uniform one.
  const int center = 3 * 8 + 3;
  const int neighbor = 3 * 8 + 4;
  const int corner = 63;
  EXPECT_GT(lm.rate(center, neighbor), 5.0 * um.rate(center, neighbor));
  EXPECT_LT(lm.rate(center, corner), um.rate(center, corner));
}

TEST(AppModels, DifferentBenchmarksDiffer) {
  const auto a = parsec_model("blackscholes").traffic_matrix(8);
  const auto b = parsec_model("canneal").traffic_matrix(8);
  EXPECT_NE(a.total_rate(), b.total_rate());
}

TEST(AppModels, RejectsBadShares) {
  AppModel bad{"bad", 0.02, 0.8, 0.5, 2, 1.0};  // shares sum > 1
  EXPECT_THROW(bad.traffic_matrix(4), PreconditionError);
}

TEST(AppModels, ParsecAverageIsTheMeanOfModels) {
  const auto avg = parsec_average_matrix(4);
  double expected_total = 0.0;
  for (const AppModel& m : parsec_models())
    expected_total += m.traffic_matrix(4).total_rate();
  EXPECT_NEAR(avg.total_rate(), expected_total / 10.0, 1e-9);
}

}  // namespace
}  // namespace xlp::traffic
