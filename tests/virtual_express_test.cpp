// Tests for the virtual-express-channel bypass mode.

#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"

namespace xlp::sim {
namespace {

SimConfig vec_config(bool bypass) {
  SimConfig config;
  config.virtual_express_bypass = bypass;
  config.warmup_cycles = 100;
  config.measure_cycles = 2000;
  config.drain_cycles = 4000;
  return config;
}

long one_packet_latency(const topo::ExpressMesh& design, int src, int dst,
                        int bits, bool bypass) {
  const Network network(design, route::HopWeights{});
  const traffic::TrafficMatrix idle(design.side());
  const auto config = vec_config(bypass);
  Simulator simulator(network, idle, config);
  simulator.schedule_packet(src, dst, bits, config.warmup_cycles + 10);
  const auto stats = simulator.run();
  EXPECT_EQ(stats.packets_finished, 1);
  return simulator.packet_latency(0);
}

TEST(VirtualExpress, StraightPathSkipsIntermediatePipelines) {
  // Mesh, (0,0) -> (5,0): 5 hops, 4 intermediate routers, all straight.
  // Full pipeline: (5+1)*3 + 5 + flits. With bypass each intermediate
  // router costs 1 cycle instead of 3: saving 2 per intermediate router.
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const long plain = one_packet_latency(mesh, 0, 5, 512, false);
  const long vec = one_packet_latency(mesh, 0, 5, 512, true);
  EXPECT_EQ(plain, 6 * 3 + 5 + 2);
  EXPECT_EQ(vec, plain - 2 * 4);
}

TEST(VirtualExpress, TurningRouterPaysTheFullPipeline) {
  // (0,0) -> (1,1): two hops with a turn; no straight intermediate router,
  // so VEC saves nothing.
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  EXPECT_EQ(one_packet_latency(mesh, 0, 9, 512, true),
            one_packet_latency(mesh, 0, 9, 512, false));
}

TEST(VirtualExpress, LongXyPathSavesOnBothSegments) {
  // (0,0) -> (7,7): 7+7 hops; intermediate straight routers: 6 on the row
  // segment and 6 on the column segment (the turning router is not
  // straight).
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const long plain = one_packet_latency(mesh, 0, 63, 512, false);
  const long vec = one_packet_latency(mesh, 0, 63, 512, true);
  EXPECT_EQ(plain - vec, 2 * 12);
}

TEST(VirtualExpress, InjectionAndEjectionAreNeverBypassed) {
  // Single-hop packet: src router and dst router only; VEC changes nothing.
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  EXPECT_EQ(one_packet_latency(mesh, 0, 1, 512, true),
            one_packet_latency(mesh, 0, 1, 512, false));
}

TEST(VirtualExpress, PhysicalExpressStillFasterOnLongHauls) {
  // The paper's Section 2.1 argument, end to end: physical bypass removes
  // the intermediate routers entirely (and the per-hop SA+ST), virtual
  // bypass only the front stages.
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const topo::RowTopology row(8, {{0, 7}});
  const topo::ExpressMesh physical(row, 2, 128);
  const long vec = one_packet_latency(mesh, 0, 7, 512, true);
  const long phys = one_packet_latency(physical, 0, 7, 512, false);
  // VEC: 2 full routers + 6 bypassed + 7 wire + 2 flits = 6+6+7+2 = 21.
  EXPECT_EQ(vec, 21);
  // Physical: 2 routers + 7 wire + 4 flits (128-bit links) = 17.
  EXPECT_EQ(phys, 17);
  EXPECT_LT(phys, vec);
}

TEST(VirtualExpress, ReducesAverageLatencyUnderLoad) {
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  const auto plain = exp::simulate_design(mesh, demand, vec_config(false));
  const auto vec = exp::simulate_design(mesh, demand, vec_config(true));
  EXPECT_TRUE(vec.drained);
  EXPECT_LT(vec.avg_latency, plain.avg_latency * 0.9);
}

TEST(VirtualExpress, BypassDoesNotBreakWormholeIntegrity) {
  // Under load with bypass on, every measured packet must still arrive
  // complete (the per-VC FIFO order is preserved by construction; this
  // exercises it).
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 8, 0.05);
  const auto stats = exp::simulate_design(mesh, demand, vec_config(true));
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.packets_finished, stats.packets_offered);
}

}  // namespace
}  // namespace xlp::sim
