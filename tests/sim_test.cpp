#include <gtest/gtest.h>

#include <optional>
#include <tuple>

#include "latency/model.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/throughput.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "traffic/app_models.hpp"
#include "util/check.hpp"

namespace xlp::sim {
namespace {

SimConfig quiet_config() {
  SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 2000;
  config.drain_cycles = 4000;
  return config;
}

/// Runs exactly one packet through an otherwise idle network and returns
/// its creation-to-tail-ejection latency.
long one_packet_latency(const topo::ExpressMesh& design, int src, int dst,
                        int bits) {
  const Network network(design, route::HopWeights{});
  const traffic::TrafficMatrix idle(design.side());
  SimConfig config = quiet_config();
  Simulator sim(network, idle, config);
  sim.schedule_packet(src, dst, bits, config.warmup_cycles + 10);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.packets_offered, 1);
  EXPECT_EQ(stats.packets_finished, 1);
  return sim.packet_latency(0);
}

// --------------------------------------------------------------------------
// Network structure

TEST(Network, MeshPortLayout) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  EXPECT_EQ(net.node_count(), 16);
  EXPECT_EQ(net.flit_bits(), 256);
  // Corner: NI + 2 neighbors; center: NI + 4.
  EXPECT_EQ(net.port_count(0), 3);
  EXPECT_EQ(net.port_count(5), 5);
  // 24 bidirectional links -> 48 directed channels.
  EXPECT_EQ(net.channels().size(), 48u);
}

TEST(Network, PortZeroIsTheNi) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  EXPECT_EQ(net.port(3, 0).peer_router, -1);
  EXPECT_EQ(net.port(3, 0).out_channel, -1);
}

TEST(Network, ChannelsAreSymmetricallyWired) {
  const Network net(topo::make_hfb(8), route::HopWeights{});
  for (const auto& ch : net.channels()) {
    const auto& dst_port = net.port(ch.dst_router, ch.dst_port);
    EXPECT_EQ(dst_port.peer_router, ch.src_router);
    EXPECT_EQ(dst_port.in_channel,
              net.port(ch.src_router, ch.src_port).out_channel);
    EXPECT_EQ(ch.length, dst_port.length);
  }
}

TEST(Network, ExpressLinksGetTheirManhattanLength) {
  const topo::RowTopology row(8, {{1, 3}, {3, 7}});
  const Network net(topo::make_design(row, 4), route::HopWeights{});
  bool found = false;
  for (const auto& ch : net.channels())
    if (ch.src_router == 3 && ch.dst_router == 7) {
      EXPECT_EQ(ch.length, 4);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Network, NextOutputPortRoutesXThenY) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  // From node 0 to node 15: first move +x (to node 1).
  const int p = net.next_output_port(0, 15);
  EXPECT_EQ(net.port(0, p).peer_router, 1);
  EXPECT_EQ(net.next_output_port(5, 5), 0);  // eject
}

TEST(Network, DuplicateParallelLinksCollapse) {
  const topo::RowTopology row(6, {{1, 4}, {1, 4}});
  const Network net(topo::ExpressMesh(row, 3, 64), route::HopWeights{});
  int count = 0;
  for (const auto& ch : net.channels())
    if (ch.src_router == 1 && ch.dst_router == 4) ++count;
  EXPECT_EQ(count, 1);
}

// --------------------------------------------------------------------------
// Zero-load latency: the simulator must reproduce the analytic model
// exactly, packet by packet.

using PairCase = std::tuple<int, int, int>;  // src, dst, bits

class ZeroLoadMesh8 : public ::testing::TestWithParam<PairCase> {};

TEST_P(ZeroLoadMesh8, MatchesAnalyticModel) {
  const auto [src, dst, bits] = GetParam();
  const topo::ExpressMesh design = topo::make_mesh(8);
  const latency::MeshLatencyModel model(design,
                                        latency::LatencyParams::zero_load());
  const int hops = model.routing().hops(src, dst);
  const int sx = src % 8, sy = src / 8, dx = dst % 8, dy = dst / 8;
  const int dist = std::abs(sx - dx) + std::abs(sy - dy);
  const int flits = latency::PacketMix::flits_for(bits, 256);
  const long expected = (hops + 1) * 3 + dist + flits;
  EXPECT_EQ(one_packet_latency(design, src, dst, bits), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, ZeroLoadMesh8,
    ::testing::Values(PairCase{0, 1, 128}, PairCase{0, 1, 512},
                      PairCase{0, 7, 512}, PairCase{0, 63, 512},
                      PairCase{63, 0, 128}, PairCase{9, 54, 512},
                      PairCase{7, 56, 128}, PairCase{20, 22, 512}));

class ZeroLoadDesigns
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ZeroLoadDesigns, ExpressDesignsMatchAnalyticModel) {
  const auto [limit, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const topo::RowTopology row = test::random_valid_row(8, limit, rng);
  const topo::ExpressMesh design = topo::make_design(row, limit);
  const latency::MeshLatencyModel model(design,
                                        latency::LatencyParams::zero_load());
  for (const auto& [src, dst] :
       {std::pair{0, 63}, std::pair{63, 0}, std::pair{5, 58},
        std::pair{16, 23}, std::pair{1, 0}}) {
    for (const int bits : {128, 512}) {
      const int flits = latency::PacketMix::flits_for(bits,
                                                      design.flit_bits());
      const long expected =
          static_cast<long>(model.pair_head_latency(src, dst)) + flits;
      EXPECT_EQ(one_packet_latency(design, src, dst, bits), expected)
          << row.to_string() << " " << src << "->" << dst << " " << bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LimitsAndSeeds, ZeroLoadDesigns,
    ::testing::Combine(::testing::Values(2, 4, 8), ::testing::Values(1, 2)));

TEST(ZeroLoad, HfbUsesItsExpressLinks) {
  const topo::ExpressMesh hfb = topo::make_hfb(8);
  // (0,0) -> (3,0): one express hop of length 3 = 2 routers * 3 + 3 + flits.
  EXPECT_EQ(one_packet_latency(hfb, 0, 3, 512),
            2 * 3 + 3 + latency::PacketMix::flits_for(512, 64));
}

TEST(ZeroLoad, SerializationScalesWithFlitWidth) {
  const topo::ExpressMesh mesh = topo::make_mesh(8);
  const long short_pkt = one_packet_latency(mesh, 0, 1, 128);
  const long long_pkt = one_packet_latency(mesh, 0, 1, 512);
  EXPECT_EQ(long_pkt - short_pkt, 1);  // 2 flits vs 1 flit at 256 bits

  const topo::RowTopology row(8, {{0, 7}});
  const topo::ExpressMesh narrow = topo::make_design(row, 2);  // 128-bit
  const long narrow_long = one_packet_latency(narrow, 0, 1, 512);
  const long narrow_short = one_packet_latency(narrow, 0, 1, 128);
  EXPECT_EQ(narrow_long - narrow_short, 3);  // 4 flits vs 1
}

// --------------------------------------------------------------------------
// Load behaviour

TEST(Load, LowLoadDrainsAndMatchesOffered) {
  const Network net(topo::make_mesh(8), route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.01);
  SimConfig config = quiet_config();
  config.measure_cycles = 5000;
  Simulator sim(net, demand, config);
  const SimStats stats = sim.run();
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.packets_finished, 100);
  EXPECT_NEAR(stats.offered_packets_per_node_cycle, 0.01, 0.002);
  EXPECT_NEAR(stats.throughput_packets_per_node_cycle, 0.01, 0.002);
}

TEST(Load, LowLoadLatencyNearZeroLoadModel) {
  const topo::ExpressMesh design = topo::make_mesh(8);
  const Network net(design, route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.005);
  SimConfig config = quiet_config();
  config.measure_cycles = 8000;
  Simulator sim(net, demand, config);
  const SimStats stats = sim.run();
  const latency::MeshLatencyModel model(design,
                                        latency::LatencyParams::zero_load());
  const double analytic = model.average().total();
  EXPECT_NEAR(stats.avg_latency, analytic, analytic * 0.10);
  EXPECT_LT(stats.avg_contention_per_hop, 1.0);  // Section 4.2's observation
}

TEST(Load, ContentionGrowsWithLoad) {
  const Network net(topo::make_mesh(8), route::HopWeights{});
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 1.0);
  SimConfig config = quiet_config();
  const SimStats low = simulate_at_load(net, shape, 0.01, config);
  const SimStats high = simulate_at_load(net, shape, 0.15, config);
  EXPECT_GT(high.avg_contention_per_hop, low.avg_contention_per_hop);
  EXPECT_GT(high.avg_latency, low.avg_latency);
}

TEST(Load, HopsMatchRoutingTables) {
  const topo::ExpressMesh design = topo::make_hfb(8);
  const Network net(design, route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 8, 0.01);
  SimConfig config = quiet_config();
  Simulator sim(net, demand, config);
  const SimStats stats = sim.run();
  const latency::MeshLatencyModel model(design,
                                        latency::LatencyParams::zero_load());
  // Transpose's average hops under the tables, weighted by the pattern.
  const auto breakdown = model.weighted_average(demand.rates());
  (void)breakdown;
  double expect_hops = 0.0;
  int flows = 0;
  for (int s = 0; s < 64; ++s)
    for (int d = 0; d < 64; ++d)
      if (demand.rate(s, d) > 0) {
        expect_hops += model.routing().hops(s, d);
        ++flows;
      }
  expect_hops /= flows;
  EXPECT_NEAR(stats.avg_hops, expect_hops, 0.05);
}

TEST(Load, ActivityCountersAreConsistent) {
  const Network net(topo::make_mesh(8), route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  SimConfig config = quiet_config();
  Simulator sim(net, demand, config);
  const SimStats stats = sim.run();
  EXPECT_GT(stats.activity.buffer_writes, 0);
  EXPECT_GT(stats.activity.crossbar_traversals, 0);
  // Steady state: reads track writes within the window edges.
  const double ratio = static_cast<double>(stats.activity.buffer_reads) /
                       stats.activity.buffer_writes;
  EXPECT_NEAR(ratio, 1.0, 0.05);
  // Mesh: every traversal is over a unit link or an ejection; link units
  // can never exceed crossbar traversals on unit-length links.
  EXPECT_LE(stats.activity.link_flit_units,
            stats.activity.crossbar_traversals);
  EXPECT_EQ(stats.activity.flit_bits, 256);
  EXPECT_EQ(stats.activity.measured_cycles, config.measure_cycles);
}

TEST(Load, SchedulePacketValidation) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  const traffic::TrafficMatrix idle(4);
  Simulator sim(net, idle, quiet_config());
  EXPECT_THROW(sim.schedule_packet(0, 0, 128, 10), PreconditionError);
  EXPECT_THROW(sim.schedule_packet(-1, 3, 128, 10), PreconditionError);
  EXPECT_THROW(sim.packet_latency(0), PreconditionError);
}

TEST(Load, RejectsOverUnityInjection) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  traffic::TrafficMatrix demand(4);
  demand.set_rate(0, 1, 1.5);
  EXPECT_THROW(Simulator(net, demand, quiet_config()), PreconditionError);
}

// --------------------------------------------------------------------------
// Saturation sweep

TEST(Saturation, MeshSustainsMoreUniformTrafficThanHfb) {
  // Section 5.4: the Mesh has the highest throughput; the HFB loses more
  // than half of it to the inter-quadrant bottleneck.
  SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 1500;
  config.drain_cycles = 1500;
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 1.0);

  const Network mesh(topo::make_mesh(8), route::HopWeights{});
  const Network hfb(topo::make_hfb(8), route::HopWeights{});
  const auto mesh_sat = find_saturation(mesh, shape, config, 0.05, 0.5);
  const auto hfb_sat = find_saturation(hfb, shape, config, 0.05, 0.5);
  EXPECT_GT(mesh_sat.saturation_throughput,
            1.5 * hfb_sat.saturation_throughput);
}

TEST(Saturation, CurveIsMonotoneUntilSaturation) {
  SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 1000;
  config.drain_cycles = 1000;
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 1.0);
  const Network mesh(topo::make_mesh(8), route::HopWeights{});
  const auto result = find_saturation(mesh, shape, config, 0.05, 0.4);
  ASSERT_GE(result.curve.size(), 2u);
  // Accepted throughput grows with offered load below saturation.
  for (std::size_t i = 1; i < result.curve.size(); ++i)
    if (!result.curve[i].saturated)
      EXPECT_GT(result.curve[i].accepted, result.curve[i - 1].accepted * 0.9);
}

// --------------------------------------------------------------------------
// Telemetry events

/// Keeps the last `sim.channel_utilization` event in memory.
class HeatmapCaptureSink final : public obs::TraceSink {
 public:
  void emit(const std::string& event, obs::Json fields) override {
    if (event == "sim.channel_utilization") heatmap = std::move(fields);
  }
  std::optional<obs::Json> heatmap;
};

TEST(Telemetry, ChannelUtilizationHeatmapMatchesStats) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 4, 0.05);
  SimConfig config = quiet_config();
  HeatmapCaptureSink sink;
  config.trace = &sink;
  Simulator sim(net, demand, config);
  const SimStats stats = sim.run();

  ASSERT_TRUE(sink.heatmap.has_value());
  const obs::Json& event = *sink.heatmap;
  EXPECT_EQ(event.find("width")->as_long(), 4);
  EXPECT_EQ(event.find("height")->as_long(), 4);
  EXPECT_EQ(event.find("measured_cycles")->as_long(),
            stats.activity.measured_cycles);

  // Exactly one entry per directed channel, in channel order, each with a
  // utilization in [0,1] that is the stats flit counter over the measured
  // window — the report heatmap renders straight from this contract.
  const obs::Json* channels = event.find("channels");
  ASSERT_NE(channels, nullptr);
  ASSERT_TRUE(channels->is_array());
  ASSERT_EQ(channels->size(), net.channels().size());
  ASSERT_EQ(stats.channel_flits.size(), net.channels().size());
  const double cycles =
      static_cast<double>(stats.activity.measured_cycles);
  ASSERT_GT(cycles, 0.0);
  bool any_used = false;
  for (std::size_t c = 0; c < channels->size(); ++c) {
    const obs::Json& entry = channels->at(c);
    EXPECT_EQ(entry.find("src")->as_long(), net.channels()[c].src_router);
    EXPECT_EQ(entry.find("dst")->as_long(), net.channels()[c].dst_router);
    EXPECT_EQ(entry.find("flits")->as_long(), stats.channel_flits[c]);
    const double utilization = entry.find("utilization")->as_number();
    EXPECT_GE(utilization, 0.0);
    EXPECT_LE(utilization, 1.0);
    EXPECT_DOUBLE_EQ(
        utilization,
        static_cast<double>(stats.channel_flits[c]) / cycles);
    any_used = any_used || utilization > 0.0;
  }
  EXPECT_TRUE(any_used);
}

}  // namespace
}  // namespace xlp::sim
