// Tests for traffic concentration (c-mesh mapping) and the extended
// simulator statistics.

#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

TEST(Concentrate, ValidatesArguments) {
  const traffic::TrafficMatrix cores(8);
  EXPECT_THROW(cores.concentrate(0), PreconditionError);
  EXPECT_THROW(cores.concentrate(3), PreconditionError);  // 8 % 3 != 0
  EXPECT_THROW(cores.concentrate(8), PreconditionError);  // 1x1 routers
  EXPECT_NO_THROW(cores.concentrate(2));
}

TEST(Concentrate, MapsTilesOntoRouters) {
  traffic::TrafficMatrix cores(8);
  // Core (1,1) -> core (6,6): tiles (0,0) -> (3,3) on the 4x4 router grid.
  cores.set_rate(1 * 8 + 1, 6 * 8 + 6, 0.4);
  const auto routers = cores.concentrate(2);
  EXPECT_EQ(routers.side(), 4);
  EXPECT_DOUBLE_EQ(routers.rate(0, 15), 0.4);
  EXPECT_DOUBLE_EQ(routers.total_rate(), 0.4);
}

TEST(Concentrate, IntraTileTrafficLeavesTheNetwork) {
  traffic::TrafficMatrix cores(8);
  cores.set_rate(0, 1, 0.7);         // (0,0) -> (1,0): same 2x2 tile
  cores.set_rate(0, 8 * 1 + 1, 0.2);  // (0,0) -> (1,1): same tile
  cores.set_rate(0, 2, 0.1);         // (0,0) -> (2,0): next tile
  const auto routers = cores.concentrate(2);
  EXPECT_DOUBLE_EQ(routers.total_rate(), 0.1);
  EXPECT_DOUBLE_EQ(routers.rate(0, 1), 0.1);
}

TEST(Concentrate, AggregatesMultipleCores) {
  // Two cores of one tile both send to the same remote tile: rates add.
  traffic::TrafficMatrix cores(4);
  cores.set_rate(0, 3, 0.1);          // (0,0) -> (3,0)
  cores.set_rate(4 + 1, 3, 0.15);     // (1,1) -> (3,0)
  const auto routers = cores.concentrate(2);
  EXPECT_DOUBLE_EQ(routers.rate(0, 1), 0.25);
}

TEST(Concentrate, ConcentratedUniformStaysBalanced) {
  const auto cores = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  const auto routers = cores.concentrate(2);
  // 4 cores per router; 12/15 of each core's uniform traffic leaves the
  // tile (48 of the 63 destinations are remote tiles' cores... exactly:
  // 60 of 63 destinations are outside the sender's tile).
  const double expected_per_router = 4 * 0.02 * 60.0 / 63.0;
  for (int r = 0; r < routers.node_count(); ++r)
    EXPECT_NEAR(routers.node_rate(r), expected_per_router, 1e-9);
}

TEST(Concentrate, EnablesConcentratedButterflyFlow) {
  // The [17]-style flow: 16x16 cores, 4-way concentration, flattened
  // butterfly on the 8x8 router grid — end-to-end through the simulator.
  const auto cores = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 16, 0.008);
  const auto routers = cores.concentrate(2);
  const auto fb = topo::make_flattened_butterfly(8);
  sim::SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 2000;
  config.drain_cycles = 4000;
  const auto stats = exp::simulate_design(fb, routers, config);
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.packets_finished, 100);
  // Full row/column connectivity: at most 2 network hops.
  EXPECT_LE(stats.avg_hops, 2.0);
}

// --------------------------------------------------------------------------

TEST(SimStatsExtended, PercentilesAreOrdered) {
  const auto mesh = topo::make_mesh(8);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.05);
  sim::SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 3000;
  config.drain_cycles = 3000;
  const auto stats = exp::simulate_design(mesh, demand, config);
  EXPECT_GT(stats.p50_latency, 0.0);
  EXPECT_LE(stats.p50_latency, stats.p95_latency);
  EXPECT_LE(stats.p95_latency, stats.p99_latency);
  EXPECT_LE(stats.p99_latency, stats.max_latency);
  EXPECT_GE(stats.stddev_latency, 0.0);
  // Mean sits between p50 and max for right-skewed latency distributions.
  EXPECT_LE(stats.avg_latency, stats.max_latency);
}

TEST(SimStatsExtended, SinglePacketHasZeroSpread) {
  const auto mesh = topo::make_mesh(4);
  const sim::Network net(mesh, route::HopWeights{});
  sim::SimConfig config;
  config.warmup_cycles = 50;
  config.measure_cycles = 500;
  sim::Simulator simulator(net, traffic::TrafficMatrix(4), config);
  simulator.schedule_packet(0, 15, 512, 60);
  const auto stats = simulator.run();
  EXPECT_DOUBLE_EQ(stats.stddev_latency, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50_latency, stats.avg_latency);
  EXPECT_DOUBLE_EQ(stats.p99_latency, stats.avg_latency);
}

}  // namespace
}  // namespace xlp
