#include <gtest/gtest.h>

#include "topo/builders.hpp"
#include "topo/row_topology.hpp"
#include "util/check.hpp"

namespace xlp::topo {
namespace {

TEST(RowLink, BasicProperties) {
  constexpr RowLink local{3, 4};
  constexpr RowLink express{1, 5};
  EXPECT_EQ(local.length(), 1);
  EXPECT_FALSE(local.is_express());
  EXPECT_EQ(express.length(), 4);
  EXPECT_TRUE(express.is_express());
}

TEST(RowLink, CrossesTheCutsItSpans) {
  constexpr RowLink link{2, 5};
  EXPECT_FALSE(link.crosses(1));
  EXPECT_TRUE(link.crosses(2));
  EXPECT_TRUE(link.crosses(3));
  EXPECT_TRUE(link.crosses(4));
  EXPECT_FALSE(link.crosses(5));
}

TEST(RowTopology, RejectsDegenerateRows) {
  EXPECT_THROW(RowTopology(1), PreconditionError);
  EXPECT_THROW(RowTopology(0), PreconditionError);
  EXPECT_NO_THROW(RowTopology(2));
}

TEST(RowTopology, RejectsInvalidLinks) {
  EXPECT_THROW(RowTopology(4, {{0, 1}}), PreconditionError);  // local
  EXPECT_THROW(RowTopology(4, {{0, 4}}), PreconditionError);  // out of range
  EXPECT_THROW(RowTopology(4, {{-1, 2}}), PreconditionError);
  EXPECT_NO_THROW(RowTopology(4, {{0, 2}}));
}

TEST(RowTopology, PlainRowHasUnitCuts) {
  const RowTopology row(8);
  EXPECT_TRUE(row.express_links().empty());
  for (int cut = 0; cut < 7; ++cut) EXPECT_EQ(row.cut_count(cut), 1);
  EXPECT_EQ(row.max_cut_count(), 1);
  EXPECT_TRUE(row.fits_link_limit(1));
}

TEST(RowTopology, AllLinksIncludesLocals) {
  const RowTopology row(4, {{0, 2}});
  const auto links = row.all_links();
  ASSERT_EQ(links.size(), 4u);  // 3 local + 1 express
  EXPECT_EQ(links[0], (RowLink{0, 1}));
  EXPECT_EQ(links[1], (RowLink{0, 2}));
  EXPECT_EQ(links[2], (RowLink{1, 2}));
  EXPECT_EQ(links[3], (RowLink{2, 3}));
}

TEST(RowTopology, CutCountsAccumulateOverlaps) {
  // Figure 1 of the paper: row of 8 with express links (1,3), (3,7), (4,6)
  // in 0-based coordinates gives cross-section counts 1,2,2,2,3,3,2... we
  // use a simpler hand-checked case here.
  const RowTopology row(8, {{0, 3}, {2, 5}});
  const auto counts = row.cut_counts();
  ASSERT_EQ(counts.size(), 7u);
  EXPECT_EQ(counts[0], 2);  // local + (0,3)
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 3);  // local + both express links
  EXPECT_EQ(counts[3], 2);
  EXPECT_EQ(counts[4], 2);
  EXPECT_EQ(counts[5], 1);
  EXPECT_EQ(counts[6], 1);
  EXPECT_EQ(row.max_cut_count(), 3);
  EXPECT_FALSE(row.fits_link_limit(2));
  EXPECT_TRUE(row.fits_link_limit(3));
}

TEST(RowTopology, DuplicateLinksBothCountTowardCuts) {
  RowTopology row(6, {{1, 4}, {1, 4}});
  EXPECT_EQ(row.cut_count(2), 3);  // local + two parallel copies
  EXPECT_TRUE(row.remove_express({1, 4}));
  EXPECT_EQ(row.cut_count(2), 2);
  EXPECT_TRUE(row.remove_express({1, 4}));
  EXPECT_FALSE(row.remove_express({1, 4}));
}

TEST(RowTopology, NeighborsAreSortedAndDeduped) {
  const RowTopology row(8, {{2, 5}, {2, 7}, {0, 2}});
  EXPECT_EQ(row.neighbors_right(2), (std::vector<int>{3, 5, 7}));
  EXPECT_EQ(row.neighbors_left(2), (std::vector<int>{0, 1}));
  EXPECT_EQ(row.neighbors_right(7), (std::vector<int>{}));
  EXPECT_EQ(row.neighbors_left(0), (std::vector<int>{}));
}

TEST(RowTopology, DegreeCountsBothDirections) {
  const RowTopology row(8, {{2, 5}, {2, 7}, {0, 2}});
  // Router 2: locals to 1 and 3, express to 5, 7 and 0.
  EXPECT_EQ(row.degree(2), 5);
  EXPECT_EQ(row.degree(0), 2);  // local to 1, express to 2
  EXPECT_EQ(row.degree(7), 2);  // local to 6, express from 2
}

TEST(RowTopology, AverageDegreeOfPlainRow) {
  const RowTopology row(8);
  // End routers have degree 1, interior degree 2: (2*1 + 6*2) / 8.
  EXPECT_DOUBLE_EQ(row.average_degree(), 14.0 / 8.0);
}

TEST(RowTopology, MirroredPreservesStructure) {
  const RowTopology row(8, {{0, 2}, {3, 7}});
  const RowTopology mirrored = row.mirrored();
  EXPECT_EQ(mirrored.express_links(),
            (std::vector<RowLink>{{0, 4}, {5, 7}}));
  EXPECT_EQ(mirrored.mirrored(), row);
  EXPECT_EQ(mirrored.max_cut_count(), row.max_cut_count());
}

TEST(RowTopology, ToStringRoundTripsVisually) {
  const RowTopology row(8, {{0, 2}, {3, 7}});
  EXPECT_EQ(row.to_string(), "8:[(0,2)(3,7)]");
}

TEST(FullLinkLimit, MatchesEquationFour) {
  EXPECT_EQ(full_link_limit(4), 4);    // paper: C_full = 4 for 4x4
  EXPECT_EQ(full_link_limit(8), 16);   // paper: C_full = 16 for 8x8
  EXPECT_EQ(full_link_limit(16), 64);
  EXPECT_EQ(full_link_limit(2), 1);
  EXPECT_EQ(full_link_limit(5), 6);  // odd row: floor * ceil halves
}

TEST(FullLinkLimit, IsTheMaxCutOfTheClique) {
  for (int n : {2, 3, 4, 5, 6, 7, 8, 12, 16}) {
    const RowTopology clique = make_flattened_butterfly_row(n);
    EXPECT_EQ(clique.max_cut_count(), full_link_limit(n)) << "n=" << n;
  }
}

TEST(ValidLinkLimits, PaperExamples) {
  EXPECT_EQ(valid_link_limits(4), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(valid_link_limits(8), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(valid_link_limits(16),
            (std::vector<int>{1, 2, 4, 8, 16, 32, 64}));
}

TEST(Builders, PlainRow) {
  EXPECT_TRUE(make_plain_row(8).express_links().empty());
}

TEST(Builders, FlattenedButterflyRowIsFullyConnected) {
  const RowTopology fb = make_flattened_butterfly_row(4);
  EXPECT_EQ(fb.express_links().size(), 3u);  // (0,2),(0,3),(1,3)
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      const auto right = fb.neighbors_right(i);
      EXPECT_NE(std::find(right.begin(), right.end(), j), right.end());
    }
}

TEST(Builders, HfbRowSplitsIntoTwoCliques) {
  const RowTopology hfb = make_hfb_row(8);
  // Within each half of 4 there are 3 express links; none cross the middle.
  EXPECT_EQ(hfb.express_links().size(), 6u);
  for (const RowLink& link : hfb.express_links())
    EXPECT_TRUE(link.hi <= 3 || link.lo >= 4)
        << "link crosses the quadrant boundary";
  // The middle cut carries only the local link (the HFB bottleneck that
  // Section 5.4 blames for its throughput).
  EXPECT_EQ(hfb.cut_count(3), 1);
  EXPECT_EQ(hfb.max_cut_count(), 4);
}

TEST(Builders, HfbOf4DegeneratesToFlattenedButterfly) {
  EXPECT_EQ(make_hfb_row(4), make_flattened_butterfly_row(4));
}

TEST(Builders, HfbRejectsOddRows) {
  EXPECT_THROW(make_hfb_row(5), PreconditionError);
}

TEST(Builders, FlitBitsForLimit) {
  EXPECT_EQ(flit_bits_for_limit(1), 256);
  EXPECT_EQ(flit_bits_for_limit(2), 128);
  EXPECT_EQ(flit_bits_for_limit(4), 64);
  EXPECT_EQ(flit_bits_for_limit(16), 16);
  EXPECT_THROW(flit_bits_for_limit(3), PreconditionError);
  EXPECT_THROW(flit_bits_for_limit(0), PreconditionError);
}

TEST(Builders, MeshDesignPoint) {
  const ExpressMesh mesh = make_mesh(8);
  EXPECT_EQ(mesh.side(), 8);
  EXPECT_EQ(mesh.link_limit(), 1);
  EXPECT_EQ(mesh.flit_bits(), 256);
  EXPECT_EQ(mesh.max_cut_count(), 1);
  EXPECT_TRUE(mesh.is_feasible());
}

TEST(Builders, HfbDesignPoint) {
  const ExpressMesh hfb = make_hfb(8);
  EXPECT_EQ(hfb.link_limit(), 4);
  EXPECT_EQ(hfb.flit_bits(), 64);
  EXPECT_TRUE(hfb.is_feasible());
}

TEST(Builders, FlattenedButterflyDesignPoint) {
  const ExpressMesh fb = make_flattened_butterfly(4);
  EXPECT_EQ(fb.link_limit(), 4);
  EXPECT_EQ(fb.flit_bits(), 64);
}

TEST(Builders, MakeDesignValidatesFit) {
  const RowTopology row(8, {{0, 4}, {2, 6}});  // max cut 3
  EXPECT_NO_THROW(make_design(row, 4));
  EXPECT_THROW(make_design(row, 2), PreconditionError);
}

TEST(ExpressMesh, CoordinateMapping) {
  const ExpressMesh mesh = make_mesh(8);
  EXPECT_EQ(mesh.node_id({3, 2}), 19);
  EXPECT_EQ(mesh.coord(19), (Coord{3, 2}));
  EXPECT_EQ(mesh.node_count(), 64);
  EXPECT_THROW(mesh.coord(64), PreconditionError);
  EXPECT_THROW(mesh.node_id({8, 0}), PreconditionError);
}

TEST(ExpressMesh, RouterPortsIncludeNi) {
  const ExpressMesh mesh = make_mesh(8);
  EXPECT_EQ(mesh.router_ports({0, 0}), 3);   // 2 neighbors + NI
  EXPECT_EQ(mesh.router_ports({3, 3}), 5);   // 4 neighbors + NI
  EXPECT_EQ(mesh.router_ports({0, 3}), 4);
}

TEST(ExpressMesh, RowPortCountGrowsSubLinearlyInC) {
  // Section 4.6's argument: for the paper's best P̄(8,4) placement
  // (0-based express links (1,3) and (3,7)), no router reaches the
  // theoretical maximum of C*k_m = 8 within-row ports; total row ports stay
  // far below the clique's.
  const RowTopology row(8, {{1, 3}, {3, 7}});
  int total = 0, max_degree = 0;
  for (int r = 0; r < 8; ++r) {
    total += row.degree(r);
    max_degree = std::max(max_degree, row.degree(r));
  }
  EXPECT_EQ(total, 2 * (7 + 2));  // 7 local + 2 express, both endpoints
  EXPECT_LT(max_degree, 8);
  EXPECT_LT(row.average_degree(),
            make_flattened_butterfly_row(8).average_degree());
}

TEST(ExpressMesh, HeterogeneousConstructionValidatesShapes) {
  std::vector<RowTopology> rows(4, RowTopology(4));
  std::vector<RowTopology> cols(4, RowTopology(4));
  EXPECT_NO_THROW(ExpressMesh(rows, cols, 1, 256));
  std::vector<RowTopology> bad_rows(3, RowTopology(4));
  EXPECT_THROW(ExpressMesh(bad_rows, cols, 1, 256), PreconditionError);
  std::vector<RowTopology> wrong_size(4, RowTopology(5));
  EXPECT_THROW(ExpressMesh(wrong_size, cols, 1, 256), PreconditionError);
}

TEST(ExpressMesh, WireUnitsAndLinkCount) {
  const ExpressMesh mesh = make_mesh(4);
  // 4 rows * 3 local + 4 cols * 3 local = 24 links, each of length 1.
  EXPECT_EQ(mesh.total_link_count(), 24);
  EXPECT_EQ(mesh.total_wire_units(), 24);

  const RowTopology row(4, {{0, 3}});
  const ExpressMesh express(row, 2, 128);
  EXPECT_EQ(express.total_link_count(), 24 + 8);
  EXPECT_EQ(express.total_wire_units(), 24 + 8 * 3);
}

}  // namespace
}  // namespace xlp::topo
