#include <gtest/gtest.h>

#include <tuple>

#include "core/app_specific.hpp"
#include "core/branch_bound.hpp"
#include "core/c_sweep.hpp"
#include "core/dnc.hpp"
#include "core/drivers.hpp"
#include "core/naive_sa.hpp"
#include "core/sa.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"
#include "util/check.hpp"

namespace xlp::core {
namespace {

route::HopWeights paper_weights() { return route::HopWeights{}; }

/// Brute-force reference: the best value over the *entire* connection-matrix
/// space (every valid placement is reachable there, so this is the true
/// optimum of P̄(n, C)). Only usable for small bit counts.
double exhaustive_optimum(const RowObjective& objective, int link_limit) {
  topo::ConnectionMatrix m(objective.row_size(), link_limit);
  const int bits = m.bit_count();
  XLP_REQUIRE(bits <= 20, "exhaustive reference too large");
  double best = objective.evaluate(m.decode());
  for (long code = 1; code < (1L << bits); ++code) {
    for (int b = 0; b < bits; ++b)
      m.set_bit(b / m.interior(), b % m.interior(),
                (code >> b) & 1);
    best = std::min(best, objective.evaluate(m.decode()));
  }
  return best;
}

TEST(RowObjective, UniformEvaluatesAverageRowCost) {
  const RowObjective obj(4, paper_weights());
  EXPECT_NEAR(obj.evaluate(topo::RowTopology(4)), 4.0 * 5.0 / 3.0, 1e-12);
  EXPECT_EQ(obj.evaluations(), 1);
  EXPECT_TRUE(obj.is_uniform());
}

TEST(RowObjective, CountsEvaluations) {
  RowObjective obj(4, paper_weights());
  const topo::RowTopology row(4);
  for (int i = 0; i < 5; ++i) (void)obj.evaluate(row);
  EXPECT_EQ(obj.evaluations(), 5);
  obj.reset_evaluations();
  EXPECT_EQ(obj.evaluations(), 0);
}

TEST(RowObjective, RejectsWrongSize) {
  const RowObjective obj(4, paper_weights());
  EXPECT_THROW((void)obj.evaluate(topo::RowTopology(5)), PreconditionError);
}

TEST(RowObjective, WeightedPointsAtTheDemand) {
  std::vector<double> w(16, 0.0);
  w[0 * 4 + 3] = 1.0;
  const RowObjective obj(4, paper_weights(), std::move(w));
  EXPECT_FALSE(obj.is_uniform());
  // Plain row: 0 -> 3 costs 12; with a direct link it costs 6.
  EXPECT_DOUBLE_EQ(obj.evaluate(topo::RowTopology(4)), 12.0);
  EXPECT_DOUBLE_EQ(obj.evaluate(topo::RowTopology(4, {{0, 3}})), 6.0);
}

TEST(RowObjective, AllZeroWeightsFallBackToUniform) {
  const RowObjective obj(4, paper_weights(), std::vector<double>(16, 0.0));
  EXPECT_TRUE(obj.is_uniform());
  EXPECT_NEAR(obj.evaluate(topo::RowTopology(4)), 4.0 * 5.0 / 3.0, 1e-12);
}

TEST(RowObjective, SubObjectiveSlicesWeights) {
  std::vector<double> w(16, 0.0);
  w[1 * 4 + 3] = 2.0;  // demand between positions 1 and 3
  const RowObjective obj(4, paper_weights(), std::move(w));
  const RowObjective sub = obj.sub_objective(1, 3);  // positions 1..3 -> 0..2
  EXPECT_DOUBLE_EQ(sub.evaluate(topo::RowTopology(3)), 8.0);  // dist 2
  const RowObjective uniform_sub =
      RowObjective(4, paper_weights()).sub_objective(0, 2);
  EXPECT_TRUE(uniform_sub.is_uniform());
}

// --------------------------------------------------------------------------
// Branch and bound

TEST(BranchAndBound, PlainRowWhenNoExpressAllowed) {
  const RowObjective obj(6, paper_weights());
  BranchAndBound bb(obj, 1);
  const ExactResult result = bb.solve();
  EXPECT_TRUE(result.placement.express_links().empty());
}

TEST(BranchAndBound, MatchesExhaustiveMatrixSearch) {
  for (const auto& [n, limit] :
       {std::pair{4, 2}, std::pair{4, 4}, std::pair{5, 2}, std::pair{6, 2},
        std::pair{6, 3}, std::pair{8, 2}}) {
    const RowObjective obj(n, paper_weights());
    BranchAndBound bb(obj, limit);
    const ExactResult result = bb.solve();
    EXPECT_TRUE(result.placement.fits_link_limit(limit));
    EXPECT_NEAR(result.value, exhaustive_optimum(obj, limit), 1e-9)
        << "n=" << n << " C=" << limit;
  }
}

TEST(BranchAndBound, OptimumNeverWorseThanPlainRow) {
  const RowObjective obj(8, paper_weights());
  BranchAndBound bb(obj, 4);
  const ExactResult result = bb.solve();
  EXPECT_LT(result.value, obj.evaluate(topo::RowTopology(8)));
  EXPECT_GT(result.nodes_explored, 1);
}

TEST(BranchAndBound, P84OptimumBeatsPaperExampleOrMatches) {
  // The paper calls (1,3),(3,7) "the best solution to P̄(8,4) given by the
  // proposed algorithm" and reports D&C_SA within 1.3% of optimal for
  // P(8,4); the exact optimum must be <= that placement's value.
  const RowObjective obj(8, paper_weights());
  BranchAndBound bb(obj, 4);
  const ExactResult result = bb.solve();
  const double paper_value =
      obj.evaluate(topo::RowTopology(8, {{1, 3}, {3, 7}}));
  EXPECT_LE(result.value, paper_value + 1e-9);
}

// --------------------------------------------------------------------------
// Simulated annealing over the connection-matrix space

TEST(SaParams, WithMovesKeepsCoolingShape) {
  const SaParams base;  // 10000 moves, cool every 1000
  const SaParams scaled = base.with_moves(2000);
  EXPECT_EQ(scaled.total_moves, 2000);
  EXPECT_EQ(scaled.moves_per_cool, 200);
}

TEST(Sa, ValidatesArguments) {
  const RowObjective obj(8, paper_weights());
  Rng rng(1);
  const topo::ConnectionMatrix wrong(6, 4);
  EXPECT_THROW(anneal_connection_matrix(wrong, obj, SaParams{}, rng),
               PreconditionError);
  SaParams bad;
  bad.initial_temperature = 0.0;
  EXPECT_THROW(anneal_connection_matrix(topo::ConnectionMatrix(8, 4), obj,
                                        bad, rng),
               PreconditionError);
}

TEST(Sa, DegenerateSpaceReturnsPlainRow) {
  const RowObjective obj(8, paper_weights());
  Rng rng(1);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 1), obj, SaParams{}, rng);
  EXPECT_EQ(result.best, topo::RowTopology(8));
  EXPECT_EQ(result.moves, 0);
}

TEST(Sa, NeverReturnsWorseThanInitial) {
  Rng rng(21);
  const RowObjective obj(8, paper_weights());
  for (int trial = 0; trial < 10; ++trial) {
    const auto initial = topo::ConnectionMatrix::random(8, 4, rng, 0.5);
    const double initial_value = obj.evaluate(initial.decode());
    Rng sa_rng = rng.fork(trial);
    const SaResult result = anneal_connection_matrix(
        initial, obj, SaParams{}.with_moves(500), sa_rng);
    EXPECT_LE(result.best_value, initial_value + 1e-12);
    EXPECT_TRUE(result.best.fits_link_limit(4));
  }
}

TEST(Sa, FindsTheExactOptimumOnSmallProblems) {
  const RowObjective obj(6, paper_weights());
  const double optimum = exhaustive_optimum(obj, 3);
  Rng rng(33);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(6, 3), obj, SaParams{}, rng);
  EXPECT_NEAR(result.best_value, optimum, 1e-9);
}

TEST(Sa, BestMatrixDecodesToBestPlacement) {
  Rng rng(5);
  const RowObjective obj(8, paper_weights());
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 4), obj, SaParams{}.with_moves(1000), rng);
  EXPECT_EQ(result.best_matrix.decode(), result.best);
  EXPECT_NEAR(obj.evaluate(result.best), result.best_value, 1e-12);
}

// --------------------------------------------------------------------------
// Naive generator (the strawman)

TEST(NaiveSa, StaysWithinTheLimit) {
  Rng rng(17);
  const RowObjective obj(8, paper_weights());
  const NaiveSaResult result = anneal_naive_links(
      topo::RowTopology(8), obj, 4, SaParams{}.with_moves(2000), rng);
  EXPECT_TRUE(result.best.fits_link_limit(4));
  EXPECT_LE(result.best_value,
            obj.evaluate(topo::RowTopology(8)) + 1e-12);
}

TEST(NaiveSa, WastesMovesOnInvalidCandidates) {
  // The paper's motivation for the connection matrix: a meaningful share of
  // naive moves falls outside the feasible region, especially at tight
  // limits.
  Rng rng(29);
  const RowObjective obj(8, paper_weights());
  const NaiveSaResult result = anneal_naive_links(
      topo::RowTopology(8), obj, 2, SaParams{}.with_moves(4000), rng);
  EXPECT_GT(result.invalid_moves, 0);
}

TEST(NaiveSa, RejectsInvalidInitial) {
  Rng rng(1);
  const RowObjective obj(8, paper_weights());
  const topo::RowTopology too_dense(8, {{0, 4}, {1, 5}, {2, 6}});
  EXPECT_THROW(anneal_naive_links(too_dense, obj, 2, SaParams{}, rng),
               PreconditionError);
}

// --------------------------------------------------------------------------
// Divide and conquer

TEST(Dnc, ProducesFeasiblePlacements) {
  for (const auto& [n, limit] :
       {std::pair{4, 2}, std::pair{8, 2}, std::pair{8, 4}, std::pair{16, 2},
        std::pair{16, 4}, std::pair{16, 8}, std::pair{12, 4}}) {
    const RowObjective obj(n, paper_weights());
    const DncResult result = dnc_initial_solution(obj, limit);
    EXPECT_TRUE(result.placement.fits_link_limit(limit))
        << "n=" << n << " C=" << limit;
    EXPECT_NEAR(result.value, obj.evaluate(result.placement), 1e-12);
  }
}

TEST(Dnc, SolvesSmallCasesExactly) {
  const RowObjective obj(4, paper_weights());
  const DncResult dnc = dnc_initial_solution(obj, 2);
  EXPECT_NEAR(dnc.value, exhaustive_optimum(obj, 2), 1e-9);
}

TEST(Dnc, BeatsThePlainRow) {
  const RowObjective obj(16, paper_weights());
  const DncResult dnc = dnc_initial_solution(obj, 4);
  EXPECT_LT(dnc.value, obj.evaluate(topo::RowTopology(16)));
}

TEST(Dnc, InitializerLandsNearTheOptimum) {
  // The initializer alone is only a starting point (the paper's Fig. 12
  // bounds apply to D&C_SA, not to I(n,C)); it should land within ~25% of
  // the exact optimum and clearly beat the plain row.
  for (const auto& [n, limit] : {std::pair{8, 2}, std::pair{8, 3}}) {
    const RowObjective obj(n, paper_weights());
    BranchAndBound bb(obj, limit);
    const double optimum = bb.solve().value;
    const DncResult dnc = dnc_initial_solution(obj, limit);
    EXPECT_LE(dnc.value, optimum * 1.25) << "n=" << n << " C=" << limit;
    EXPECT_LT(dnc.value, obj.evaluate(topo::RowTopology(n)));
  }
}

TEST(Dnc, DcsaClosesTheInitializerGap) {
  // Fig. 12 proper: D&C_SA (initializer + annealing) reaches the exact
  // optimum on P(8,2) and P(8,3).
  for (const auto& [n, limit] : {std::pair{8, 2}, std::pair{8, 3}}) {
    const RowObjective obj(n, paper_weights());
    BranchAndBound bb(obj, limit);
    const double optimum = bb.solve().value;
    Rng rng(2024);
    const PlacementResult dcsa = solve_dcsa(obj, limit, SaParams{}, rng);
    EXPECT_NEAR(dcsa.value, optimum, 1e-9) << "n=" << n << " C=" << limit;
  }
}

TEST(Dnc, LinkLimitOneGivesPlainRow) {
  const RowObjective obj(8, paper_weights());
  const DncResult dnc = dnc_initial_solution(obj, 1);
  EXPECT_TRUE(dnc.placement.express_links().empty());
}

// --------------------------------------------------------------------------
// Drivers

TEST(Drivers, DcsaBeatsOrMatchesItsInitialSolution) {
  const RowObjective obj(8, paper_weights());
  const DncResult initial = dnc_initial_solution(obj, 4);
  Rng rng(7);
  const PlacementResult dcsa =
      solve_dcsa(obj, 4, SaParams{}.with_moves(2000), rng);
  EXPECT_LE(dcsa.value, initial.value + 1e-12);
  EXPECT_EQ(dcsa.method, "D&C_SA");
  EXPECT_GT(dcsa.evaluations, 0);
}

TEST(Drivers, DcsaReachesNearOptimalOnP84) {
  // Fig. 12: D&C_SA is within 1.3% of optimal for P(8,4). Give the full
  // Table 1 budget and check a slightly looser bound for seed robustness.
  const RowObjective obj(8, paper_weights());
  BranchAndBound bb(obj, 4);
  const double optimum = bb.solve().value;
  Rng rng(42);
  const PlacementResult dcsa = solve_dcsa(obj, 4, SaParams{}, rng);
  EXPECT_LE(dcsa.value, optimum * 1.02);
}

TEST(Drivers, OnlySaProducesValidResults) {
  const RowObjective obj(8, paper_weights());
  Rng rng(11);
  const PlacementResult only_sa =
      solve_only_sa(obj, 4, SaParams{}.with_moves(2000), rng);
  EXPECT_TRUE(only_sa.placement.fits_link_limit(4));
  EXPECT_EQ(only_sa.method, "OnlySA");
}

TEST(Drivers, DcsaNotWorseThanOnlySaAtEqualBudget) {
  // Fig. 7's claim, averaged over seeds to damp SA noise. At a short budget
  // the two can tie within noise, so allow a hair of slack; the strict gap
  // at scale is exercised by bench/fig07_runtime.
  const RowObjective obj(16, paper_weights());
  const SaParams budget = SaParams{}.with_moves(1500);
  double dcsa_total = 0.0, only_total = 0.0;
  constexpr int kSeeds = 8;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng r1(seed), r2(seed + 100);
    dcsa_total += solve_dcsa(obj, 4, budget, r1).value;
    only_total += solve_only_sa(obj, 4, budget, r2).value;
  }
  EXPECT_LE(dcsa_total / kSeeds, only_total / kSeeds * 1.01);
}

TEST(Drivers, DncOnlyReportsItsEvaluations) {
  const RowObjective obj(8, paper_weights());
  const PlacementResult result = solve_dnc_only(obj, 4);
  EXPECT_GT(result.evaluations, 0);
  EXPECT_EQ(result.method, "D&C");
}

// --------------------------------------------------------------------------
// C sweep

TEST(CSweep, CoversTheValidLimits) {
  SweepOptions options;
  options.sa = SaParams{}.with_moves(300);
  Rng rng(3);
  const auto points = sweep_link_limits(8, options, rng);
  ASSERT_EQ(points.size(), 5u);  // C in {1,2,4,8,16}
  EXPECT_EQ(points[0].link_limit, 1);
  EXPECT_EQ(points[4].link_limit, 16);
  for (const auto& p : points) {
    EXPECT_TRUE(p.placement.placement.fits_link_limit(p.link_limit));
    EXPECT_EQ(p.design.flit_bits(), 256 / p.link_limit);
    EXPECT_GT(p.breakdown.total(), 0.0);
  }
}

TEST(CSweep, SerializationGrowsWithC) {
  SweepOptions options;
  options.sa = SaParams{}.with_moves(200);
  Rng rng(3);
  const auto points = sweep_link_limits(8, options, rng);
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GT(points[i].breakdown.serialization,
              points[i - 1].breakdown.serialization);
}

TEST(CSweep, HeadLatencyShrinksWithC) {
  SweepOptions options;
  options.sa = SaParams{}.with_moves(500);
  Rng rng(3);
  const auto points = sweep_link_limits(8, options, rng);
  // More cross-section budget can only help the optimized head latency
  // (weakly, given equal effort).
  EXPECT_LT(points.back().breakdown.head, points.front().breakdown.head);
}

TEST(CSweep, BestPointIsInterior8x8) {
  // Fig. 5(b): the optimum is neither C=1 (mesh) nor C=16 (max express).
  SweepOptions options;
  options.sa = SaParams{}.with_moves(1000);
  Rng rng(9);
  const auto points = sweep_link_limits(8, options, rng);
  const std::size_t best = best_point(points);
  EXPECT_GT(best, 0u);
  EXPECT_LT(best, points.size() - 1);
}

TEST(CSweep, EvaluateDesignMatchesModel) {
  const auto design = topo::make_hfb(8);
  const auto plain =
      evaluate_design(design, latency::LatencyParams::zero_load(), {});
  const latency::MeshLatencyModel model(design,
                                        latency::LatencyParams::zero_load());
  EXPECT_NEAR(plain.head, model.average().head, 1e-12);
}

// --------------------------------------------------------------------------
// Application-specific placement (Section 5.6.4)

TEST(AppSpecific, BeatsGeneralPurposeOnSkewedTraffic) {
  const int n = 8;
  // Heavily skewed demand: corner-to-corner flows dominate.
  traffic::TrafficMatrix demand(n);
  demand.set_rate(0, n * n - 1, 1.0);
  demand.set_rate(n * n - 1, 0, 1.0);
  demand.set_rate(3, 60, 0.5);

  SweepOptions options;
  options.sa = SaParams{}.with_moves(400);
  options.latency = latency::LatencyParams::zero_load();

  Rng rng(123);
  const AppSpecificResult app =
      solve_app_specific_for_limit(demand, 4, options, rng);

  // General-purpose design at the same limit, evaluated on this demand.
  options.report_traffic = demand;
  Rng rng2(123);
  const auto sweep = sweep_link_limits(n, options, rng2);
  const auto& general_c4 = *std::find_if(
      sweep.begin(), sweep.end(),
      [](const SweepPoint& p) { return p.link_limit == 4; });

  EXPECT_LE(app.breakdown.total(), general_c4.breakdown.total() + 1e-9);
  EXPECT_TRUE(app.design.is_feasible());
}

TEST(AppSpecific, FullSweepPicksFeasibleBest) {
  traffic::TrafficMatrix demand =
      traffic::TrafficMatrix::from_pattern(traffic::Pattern::kTranspose, 4,
                                           0.05);
  SweepOptions options;
  options.sa = SaParams{}.with_moves(200);
  Rng rng(77);
  const AppSpecificResult result = solve_app_specific(demand, options, rng);
  EXPECT_TRUE(result.design.is_feasible());
  EXPECT_GE(result.link_limit, 1);
  EXPECT_GT(result.evaluations, 0);
}

}  // namespace
}  // namespace xlp::core
