// Hierarchical profiler: nesting, exclusive-time accounting, deterministic
// multi-thread merge, and the disabled-by-default fast path.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

using namespace xlp;

namespace {

void spin_for(std::chrono::microseconds duration) {
  const auto end = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < end) {
  }
}

const obs::ProfileEntry* find_entry(const obs::ProfileReport& report,
                                    const std::string& path) {
  for (const auto& e : report.entries())
    if (e.path == path) return &e;
  return nullptr;
}

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Profiler::reset();
    obs::Profiler::enable();
  }
  void TearDown() override {
    obs::Profiler::disable();
    obs::Profiler::reset();
  }
};

TEST_F(ProfilerTest, RecordsNestedScopesAsTree) {
  {
    obs::ProfileScope outer("outer");
    {
      obs::ProfileScope inner("inner");
      obs::ProfileScope leaf("leaf");
    }
    { obs::ProfileScope inner("inner"); }
  }
  obs::Profiler::disable();
  const auto report = obs::Profiler::snapshot();

  const auto* outer = find_entry(report, "outer");
  const auto* inner = find_entry(report, "outer;inner");
  const auto* leaf = find_entry(report, "outer;inner;leaf");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(leaf->depth, 2);
  EXPECT_EQ(outer->hits, 1);
  EXPECT_EQ(inner->hits, 2);
  EXPECT_EQ(leaf->hits, 1);
  // No scope named "inner" or "leaf" ever ran at the root.
  EXPECT_EQ(find_entry(report, "inner"), nullptr);
  EXPECT_EQ(find_entry(report, "leaf"), nullptr);
}

TEST_F(ProfilerTest, ExclusiveTimeExcludesChildren) {
  {
    obs::ProfileScope outer("outer");
    spin_for(std::chrono::microseconds(2000));
    {
      obs::ProfileScope inner("inner");
      spin_for(std::chrono::microseconds(2000));
    }
  }
  obs::Profiler::disable();
  const auto report = obs::Profiler::snapshot();

  const auto* outer = find_entry(report, "outer");
  const auto* inner = find_entry(report, "outer;inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Inclusive covers the child; exclusive does not.
  EXPECT_GE(outer->inclusive_seconds, 3.5e-3);
  EXPECT_NEAR(outer->exclusive_seconds,
              outer->inclusive_seconds - inner->inclusive_seconds, 1e-9);
  EXPECT_GE(inner->inclusive_seconds, 1.5e-3);
  EXPECT_LT(outer->exclusive_seconds, outer->inclusive_seconds);
  // Roots account for all recorded wall time.
  EXPECT_NEAR(report.root_inclusive_seconds(), outer->inclusive_seconds,
              1e-12);
}

TEST_F(ProfilerTest, SiblingScopesReportedInNameOrderRegardlessOfRunOrder) {
  {
    obs::ProfileScope root("root");
    { obs::ProfileScope z("zeta"); }
    { obs::ProfileScope a("alpha"); }
    { obs::ProfileScope m("mid"); }
  }
  obs::Profiler::disable();
  const auto report = obs::Profiler::snapshot();

  std::vector<std::string> depth1;
  for (const auto& e : report.entries())
    if (e.depth == 1) depth1.push_back(e.name);
  EXPECT_EQ(depth1, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(ProfilerTest, MergesThreadsDeterministically) {
  // Every worker records the same shape; the merged report must sum hits
  // across threads and never depend on the interleaving.
  constexpr int kThreads = 4;
  constexpr int kRepeats = 25;
  auto work = [] {
    for (int i = 0; i < kRepeats; ++i) {
      obs::ProfileScope outer("work");
      { obs::ProfileScope a("phase_a"); }
      { obs::ProfileScope b("phase_b"); }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(work);
  for (auto& t : threads) t.join();
  obs::Profiler::disable();

  const auto report = obs::Profiler::snapshot();
  const auto* outer = find_entry(report, "work");
  const auto* a = find_entry(report, "work;phase_a");
  const auto* b = find_entry(report, "work;phase_b");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(outer->hits, static_cast<long>(kThreads) * kRepeats);
  EXPECT_EQ(a->hits, static_cast<long>(kThreads) * kRepeats);
  EXPECT_EQ(b->hits, static_cast<long>(kThreads) * kRepeats);
  // One merged node per path, not one per thread.
  int work_entries = 0;
  for (const auto& e : report.entries())
    if (e.name == "work") ++work_entries;
  EXPECT_EQ(work_entries, 1);
  // Two snapshots of the same trees are byte-identical.
  EXPECT_EQ(report.to_json().dump(),
            obs::Profiler::snapshot().to_json().dump());
  EXPECT_EQ(report.to_collapsed(), obs::Profiler::snapshot().to_collapsed());
}

TEST_F(ProfilerTest, CollapsedStackUsesSemicolonPathsAndMicroseconds) {
  {
    obs::ProfileScope outer("outer");
    spin_for(std::chrono::microseconds(1500));
    {
      obs::ProfileScope inner("inner");
      spin_for(std::chrono::microseconds(1500));
    }
  }
  obs::Profiler::disable();
  const std::string folded = obs::Profiler::snapshot().to_collapsed();
  EXPECT_NE(folded.find("outer "), std::string::npos);
  EXPECT_NE(folded.find("outer;inner "), std::string::npos);
  // Every line is "path <integer>".
  EXPECT_NE(folded.find('\n'), std::string::npos);
}

TEST_F(ProfilerTest, ExportToRegistryUsesDottedNames) {
  {
    obs::ProfileScope outer("outer");
    { obs::ProfileScope inner("inner"); }
  }
  obs::Profiler::disable();
  obs::MetricsRegistry registry;
  obs::Profiler::snapshot().export_to(registry);
  const std::string json = registry.to_json().dump();
  EXPECT_NE(json.find("profile.outer"), std::string::npos);
  EXPECT_NE(json.find("profile.outer.inner"), std::string::npos);
  EXPECT_EQ(json.find(';'), std::string::npos);
}

TEST_F(ProfilerTest, ResetDropsRecordedData) {
  { obs::ProfileScope s("gone"); }
  obs::Profiler::reset();
  { obs::ProfileScope s("kept"); }
  obs::Profiler::disable();
  const auto report = obs::Profiler::snapshot();
  EXPECT_EQ(find_entry(report, "gone"), nullptr);
  EXPECT_NE(find_entry(report, "kept"), nullptr);
}

TEST(ProfilerDisabledTest, DisabledScopesRecordNothing) {
  obs::Profiler::reset();
  ASSERT_FALSE(obs::Profiler::enabled());
  {
    obs::ProfileScope s("invisible");
    obs::ProfileScope t("also_invisible");
  }
  EXPECT_TRUE(obs::Profiler::snapshot().empty());
}

TEST(ProfilerDisabledTest, ScopeSpanningDisableStillPopsCleanly) {
  // A scope opened while enabled and closed after disable() must still
  // accrue and pop, leaving the cursor at the root for the next scope.
  obs::Profiler::reset();
  obs::Profiler::enable();
  {
    obs::ProfileScope s("spanning");
    obs::Profiler::disable();
  }
  obs::Profiler::enable();
  { obs::ProfileScope s("after"); }
  obs::Profiler::disable();
  const auto report = obs::Profiler::snapshot();
  ASSERT_EQ(report.entries().size(), 2u);
  EXPECT_EQ(report.entries()[0].depth, 0);
  EXPECT_EQ(report.entries()[1].depth, 0);
  obs::Profiler::reset();
}

}  // namespace
