#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "util/check.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace xlp {
namespace {

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(XLP_REQUIRE(false, "boom"), PreconditionError);
  EXPECT_NO_THROW(XLP_REQUIRE(true, "fine"));
}

TEST(Check, CheckThrowsInvariantError) {
  EXPECT_THROW(XLP_CHECK(false, "boom"), InvariantError);
  EXPECT_NO_THROW(XLP_CHECK(true, "fine"));
}

TEST(Check, MessagesCarryExpressionAndLocation) {
  try {
    XLP_REQUIRE(1 == 2, "my context");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("my context"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 1000; ++i) {
      const auto v = rng.uniform_below(static_cast<std::uint64_t>(bound));
      EXPECT_LT(v, static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_below(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    // Expected 10000 per bucket; 4-sigma band is about +-380.
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, 400);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng base(17);
  Rng s0 = base.fork(0);
  Rng s1 = base.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (s0() == s1()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_LT(Rng::min(), Rng::max());
}

TEST(Numeric, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(512, 256), 2);
  EXPECT_EQ(ceil_div(128, 256), 1);
}

TEST(Numeric, IsPowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(65));
}

TEST(Numeric, Mean) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_THROW(mean({}), PreconditionError);
}

TEST(Numeric, PercentChange) {
  EXPECT_DOUBLE_EQ(percent_change(75.0, 100.0), -25.0);
  EXPECT_DOUBLE_EQ(percent_change(110.0, 100.0), 10.0);
  EXPECT_THROW(percent_change(1.0, 0.0), PreconditionError);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i);
  EXPECT_GT(sw.seconds(), 0.0);
  EXPECT_GE(sw.milliseconds(), sw.seconds() * 1000.0 * 0.99);
}

TEST(Stopwatch, ReadingsAreMonotonic) {
  Stopwatch sw;
  double prev = sw.seconds();
  EXPECT_GE(prev, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = sw.seconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(Stopwatch, ElapsedCoversSleep) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Allow a small tolerance for coarse clocks; sleep_for never wakes early
  // on a steady clock, but the stopwatch read has its own granularity.
  EXPECT_GE(sw.seconds(), 0.019);
}

TEST(Stopwatch, ResetRestartsTheClock) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double before = sw.seconds();
  sw.reset();
  EXPECT_LT(sw.seconds(), before);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"a", "long_header"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("yy"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, FormatsDoubles) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
}

}  // namespace
}  // namespace xlp
