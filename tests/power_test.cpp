#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "power/area.hpp"
#include "power/model.hpp"
#include "sim/config.hpp"
#include "topo/builders.hpp"
#include "traffic/app_models.hpp"
#include "util/check.hpp"

namespace xlp::power {
namespace {

sim::ActivityCounters fake_activity(long events, int flit_bits) {
  sim::ActivityCounters a;
  a.buffer_writes = events;
  a.buffer_reads = events;
  a.crossbar_traversals = events;
  a.link_flit_units = events;
  a.measured_cycles = 10000;
  a.flit_bits = flit_bits;
  return a;
}

TEST(PowerModel, ValidatesInputs) {
  const auto mesh = topo::make_mesh(8);
  sim::ActivityCounters a = fake_activity(100, 256);
  a.measured_cycles = 0;
  EXPECT_THROW(evaluate_power(mesh, a, 40960), PreconditionError);
  a = fake_activity(100, 128);  // wrong width for this design
  EXPECT_THROW(evaluate_power(mesh, a, 40960), PreconditionError);
  a = fake_activity(100, 256);
  EXPECT_THROW(evaluate_power(mesh, a, 0), PreconditionError);
}

TEST(PowerModel, ZeroActivityMeansZeroDynamic) {
  const auto mesh = topo::make_mesh(8);
  const PowerReport report =
      evaluate_power(mesh, fake_activity(0, 256), 40960);
  EXPECT_DOUBLE_EQ(report.dynamic_total(), 0.0);
  EXPECT_GT(report.static_total(), 0.0);
}

TEST(PowerModel, DynamicScalesLinearlyWithActivity) {
  const auto mesh = topo::make_mesh(8);
  const PowerReport one = evaluate_power(mesh, fake_activity(1000, 256),
                                         40960);
  const PowerReport two = evaluate_power(mesh, fake_activity(2000, 256),
                                         40960);
  EXPECT_NEAR(two.dynamic_total(), 2.0 * one.dynamic_total(), 1e-12);
  EXPECT_DOUBLE_EQ(two.static_total(), one.static_total());
}

TEST(PowerModel, BufferStaticEqualAcrossSchemes) {
  // Section 4.6: the buffer budget is equalized, so buffer leakage matches.
  const auto mesh = topo::make_mesh(8);
  const auto hfb = topo::make_hfb(8);
  const long budget = 40960;
  const PowerReport pm = evaluate_power(mesh, fake_activity(10, 256), budget);
  const PowerReport ph = evaluate_power(hfb, fake_activity(10, 64), budget);
  EXPECT_DOUBLE_EQ(pm.static_buffer_w, ph.static_buffer_w);
}

TEST(PowerModel, CrossbarStaticDoesNotExplodeWithExpressLinks) {
  // Fig. 10's claim: thanks to the narrower flits and the sub-linear port
  // growth of good placements, crossbar leakage stays at or below mesh.
  const auto mesh = topo::make_mesh(8);
  const topo::RowTopology paper_row(8, {{1, 3}, {3, 7}});
  const auto dcsa = topo::make_design(paper_row, 4);
  const long budget = 40960;
  const PowerReport pm = evaluate_power(mesh, fake_activity(10, 256), budget);
  const PowerReport pd = evaluate_power(dcsa, fake_activity(10, 64), budget);
  EXPECT_LE(pd.static_crossbar_w, pm.static_crossbar_w * 1.05);
}

TEST(PowerModel, StaticDominatesAtParsecLoads) {
  // Section 5.5: static is about two thirds of total router power. Measure
  // real activity on the mesh at canneal's load.
  const auto mesh = topo::make_mesh(8);
  const auto demand = traffic::parsec_model("canneal").traffic_matrix(8);
  sim::SimConfig config;
  config.warmup_cycles = 300;
  config.measure_cycles = 3000;
  config.drain_cycles = 3000;
  const auto stats = exp::simulate_design(mesh, demand, config);
  const PowerReport report =
      evaluate_power(mesh, stats.activity, config.buffer_bits_per_router);
  const double static_share = report.static_total() / report.total();
  EXPECT_GT(static_share, 0.5);
  EXPECT_LT(static_share, 0.9);
}

TEST(PowerModel, ReportComponentsAddUp) {
  const auto mesh = topo::make_mesh(4);
  const PowerReport r = evaluate_power(mesh, fake_activity(500, 256), 40960);
  EXPECT_DOUBLE_EQ(r.total(), r.dynamic_total() + r.static_total());
  EXPECT_DOUBLE_EQ(r.dynamic_total(),
                   r.dynamic_buffer_w + r.dynamic_crossbar_w +
                       r.dynamic_link_w);
  EXPECT_DOUBLE_EQ(r.static_total(),
                   r.static_buffer_w + r.static_crossbar_w +
                       r.static_other_w);
}

// --------------------------------------------------------------------------
// Area / routing-table overhead

TEST(Area, TableOverheadBelowHalfPercent) {
  // Section 4.5.2: DSENT at 32 nm puts the lookup-table overhead below 0.5%
  // of the router for every evaluated size.
  for (int n : {4, 8, 16}) {
    const auto mesh = topo::make_mesh(n);
    const AreaReport report = evaluate_area(mesh, 40960);
    EXPECT_LT(report.table_overhead_fraction(), 0.005) << "n=" << n;
    EXPECT_GT(report.routing_table_um2, 0.0);
  }
}

TEST(Area, TablesGrowLinearlyWithRowSize) {
  const AreaReport small = evaluate_area(topo::make_mesh(4), 40960);
  const AreaReport large = evaluate_area(topo::make_mesh(8), 40960);
  EXPECT_NEAR(large.routing_table_um2 / small.routing_table_um2, 7.0 / 3.0,
              1e-9);
}

TEST(Area, ValidatesBudget) {
  EXPECT_THROW(evaluate_area(topo::make_mesh(4), 0), PreconditionError);
}

}  // namespace
}  // namespace xlp::power
