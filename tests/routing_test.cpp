#include <gtest/gtest.h>

#include <tuple>

#include "route/deadlock.hpp"
#include "route/directional_paths.hpp"
#include "route/mesh_routing.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp::route {
namespace {

using topo::RowLink;
using topo::RowTopology;

TEST(HopWeights, LinkCost) {
  const HopWeights w;  // Tr=3, Tl=1
  EXPECT_DOUBLE_EQ(w.link_cost(1), 4.0);
  EXPECT_DOUBLE_EQ(w.link_cost(7), 10.0);
}

TEST(DirectionalPaths, PlainRowCostsAndHops) {
  const RowTopology row(8);
  const DirectionalShortestPaths paths(row, HopWeights{});
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const int d = std::abs(i - j);
      EXPECT_EQ(paths.hops(i, j), d);
      EXPECT_DOUBLE_EQ(paths.cost(i, j), 4.0 * d);
    }
  }
}

TEST(DirectionalPaths, SelfPathsAreZero) {
  const DirectionalShortestPaths paths(RowTopology(5), HopWeights{});
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(paths.cost(i, i), 0.0);
    EXPECT_EQ(paths.hops(i, i), 0);
    EXPECT_THROW(paths.next_hop(i, i), PreconditionError);
  }
}

TEST(DirectionalPaths, ExpressLinkBeatsLocalHops) {
  const RowTopology row(8, {{0, 7}});
  const DirectionalShortestPaths paths(row, HopWeights{});
  // Direct end-to-end: one hop of length 7 = 3 + 7 = 10 (vs 7*4 = 28).
  EXPECT_DOUBLE_EQ(paths.cost(0, 7), 10.0);
  EXPECT_EQ(paths.hops(0, 7), 1);
  EXPECT_EQ(paths.next_hop(0, 7), 7);
  EXPECT_DOUBLE_EQ(paths.cost(7, 0), 10.0);  // bidirectional
  // Intermediate destinations cannot use it (no U-turns).
  EXPECT_DOUBLE_EQ(paths.cost(0, 6), 24.0);
  EXPECT_EQ(paths.hops(0, 6), 6);
}

TEST(DirectionalPaths, CostDecomposesAsRouterPlusWire) {
  // For any placement, cost = hops*Tr + distance*Tl along monotone paths.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const RowTopology row = test::random_valid_row(8, 4, rng);
    const DirectionalShortestPaths paths(row, HopWeights{});
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        EXPECT_DOUBLE_EQ(paths.cost(i, j),
                         3.0 * paths.hops(i, j) + std::abs(i - j))
            << row.to_string();
  }
}

TEST(DirectionalPaths, MatchesReferenceFloydWarshall) {
  Rng rng(123);
  for (const auto& [n, limit] :
       {std::pair{4, 2}, std::pair{8, 4}, std::pair{16, 4},
        std::pair{8, 16}, std::pair{5, 3}}) {
    for (int trial = 0; trial < 40; ++trial) {
      const RowTopology row = test::random_valid_row(n, limit, rng);
      const DirectionalShortestPaths paths(row, HopWeights{});
      const test::ReferenceDirectionalPaths ref(row, HopWeights{});
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
          EXPECT_DOUBLE_EQ(paths.cost(i, j), ref.cost(i, j))
              << row.to_string() << " pair " << i << "->" << j;
    }
  }
}

TEST(DirectionalPaths, PathsAreMonotoneAndConsistent) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const RowTopology row = test::random_valid_row(12, 4, rng);
    const DirectionalShortestPaths paths(row, HopWeights{});
    for (int i = 0; i < 12; ++i) {
      for (int j = 0; j < 12; ++j) {
        if (i == j) continue;
        const auto p = paths.path(i, j);
        ASSERT_GE(p.size(), 2u);
        EXPECT_EQ(p.front(), i);
        EXPECT_EQ(p.back(), j);
        EXPECT_EQ(static_cast<int>(p.size()) - 1, paths.hops(i, j));
        for (std::size_t k = 0; k + 1 < p.size(); ++k) {
          if (i < j)
            EXPECT_LT(p[k], p[k + 1]) << "not monotone rightward";
          else
            EXPECT_GT(p[k], p[k + 1]) << "not monotone leftward";
        }
      }
    }
  }
}

TEST(DirectionalPaths, PaperP84SolutionPathExample) {
  // Fig. 3(b): from router 1 (1-based) with dest column 7 (0-based 6),
  // the packet goes via router 4 (0-based 3) using the (1,3)+(3,7) links...
  // the 0-based placement is (1,3),(3,7); from router 0 to 6 the monotone
  // shortest path is 0 -> 1 -> 3 -> ... Verify the table agrees with the
  // hand-computed costs.
  const RowTopology row(8, {{1, 3}, {3, 7}});
  const DirectionalShortestPaths paths(row, HopWeights{});
  // 0 -> 6: 0-1 (local), 1-3 (express len 2), 3-4,4-5,5-6 locals:
  // hops 5, distance 6 -> 21. Alternative all-local: 6 hops -> 24.
  EXPECT_EQ(paths.hops(0, 6), 5);
  EXPECT_DOUBLE_EQ(paths.cost(0, 6), 21.0);
  // 0 -> 7: 0-1, 1-3, 3-7: hops 3, distance 7 -> 16.
  EXPECT_EQ(paths.hops(0, 7), 3);
  EXPECT_DOUBLE_EQ(paths.cost(0, 7), 16.0);
  EXPECT_EQ(paths.next_hop(0, 7), 1);
  EXPECT_EQ(paths.next_hop(1, 7), 3);
  EXPECT_EQ(paths.next_hop(3, 7), 7);
}

TEST(DirectionalPaths, AverageCostOfPlainRow) {
  const DirectionalShortestPaths paths(RowTopology(4), HopWeights{});
  // Ordered pairs distances: 1 (x6), 2 (x4), 3 (x2) -> avg dist 5/3.
  EXPECT_NEAR(paths.average_cost(), 4.0 * 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(paths.average_hops(), 5.0 / 3.0, 1e-12);
}

TEST(DirectionalPaths, MaxCost) {
  const DirectionalShortestPaths paths(RowTopology(8), HopWeights{});
  EXPECT_DOUBLE_EQ(paths.max_cost(), 28.0);
}

TEST(DirectionalPaths, WeightedAverageCost) {
  const RowTopology row(4);
  const DirectionalShortestPaths paths(row, HopWeights{});
  std::vector<double> w(16, 0.0);
  w[0 * 4 + 3] = 1.0;  // only 0 -> 3 matters
  EXPECT_DOUBLE_EQ(paths.weighted_average_cost(w), 12.0);
  w[3 * 4 + 0] = 3.0;
  EXPECT_DOUBLE_EQ(paths.weighted_average_cost(w), 12.0);  // symmetric costs
  EXPECT_THROW(paths.weighted_average_cost(std::vector<double>(15, 1.0)),
               PreconditionError);
  EXPECT_THROW(paths.weighted_average_cost(std::vector<double>(16, 0.0)),
               PreconditionError);
}

TEST(DirectionalPaths, AddingLinksNeverHurts) {
  // Monotonicity property the branch-and-bound pruning relies on.
  Rng rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    RowTopology row = test::random_valid_row(10, 4, rng, 0.3);
    const DirectionalShortestPaths before(row, HopWeights{});
    const int i = static_cast<int>(rng.uniform_below(8));
    const int j = i + 2 + static_cast<int>(rng.uniform_below(10 - i - 2));
    row.add_express({i, j});
    const DirectionalShortestPaths after(row, HopWeights{});
    for (int a = 0; a < 10; ++a)
      for (int b = 0; b < 10; ++b)
        EXPECT_LE(after.cost(a, b), before.cost(a, b) + 1e-12);
  }
}

// --------------------------------------------------------------------------
// 2D routing

TEST(MeshRouting, XYOrderOnPlainMesh) {
  const topo::ExpressMesh mesh = topo::make_mesh(4);
  const MeshRouting routing(mesh, HopWeights{});
  // From (0,0)=0 to (2,3)=14: x first to 2, then down column 2.
  const auto path = routing.path(0, 14);
  const std::vector<int> expected{0, 1, 2, 6, 10, 14};
  EXPECT_EQ(path, expected);
  EXPECT_EQ(routing.hops(0, 14), 5);
  EXPECT_DOUBLE_EQ(routing.head_cost(0, 14), 5 * 4.0);
}

TEST(MeshRouting, NextHopRejectsSelf) {
  const topo::ExpressMesh mesh = topo::make_mesh(4);
  const MeshRouting routing(mesh, HopWeights{});
  EXPECT_THROW(routing.next_hop(3, 3), PreconditionError);
}

TEST(MeshRouting, ExpressRowsAndColumnsCompose) {
  const RowTopology row(8, {{1, 3}, {3, 7}});
  const topo::ExpressMesh mesh(row, 4, 64);
  const MeshRouting routing(mesh, HopWeights{});
  // (0,0) -> (7,7): row 0 from x=0 to x=7 (3 hops), then column 7 from
  // y=0 to y=7 (3 hops).
  EXPECT_EQ(routing.hops(0, 63), 6);
  EXPECT_DOUBLE_EQ(routing.head_cost(0, 63), 2 * 16.0);
  const auto path = routing.path(0, 63);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 63);
  // The turning point is (7, 0) = node 7.
  EXPECT_NE(std::find(path.begin(), path.end(), 7), path.end());
}

TEST(MeshRouting, HopsMatchPathLengthEverywhere) {
  Rng rng(5);
  const RowTopology row = test::random_valid_row(8, 4, rng);
  const topo::ExpressMesh mesh(row, 4, 64);
  const MeshRouting routing(mesh, HopWeights{});
  for (int s = 0; s < 64; s += 7) {
    for (int d = 0; d < 64; d += 5) {
      if (s == d) continue;
      EXPECT_EQ(static_cast<int>(routing.path(s, d).size()) - 1,
                routing.hops(s, d));
    }
  }
}

// --------------------------------------------------------------------------
// Deadlock freedom

class DeadlockFreedom
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DeadlockFreedom, RandomExpressDesignsAreAcyclic) {
  const auto [n, limit, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const RowTopology row = test::random_valid_row(n, limit, rng);
  const topo::ExpressMesh mesh(row, limit, 64);
  const MeshRouting routing(mesh, HopWeights{});
  const ChannelDependencyGraph cdg(mesh, routing);
  EXPECT_GT(cdg.channel_count(), 0u);
  EXPECT_FALSE(cdg.has_cycle()) << row.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DeadlockFreedom,
    ::testing::Combine(::testing::Values(4, 6, 8), ::testing::Values(2, 4),
                       ::testing::Values(1, 2, 3)));

TEST(DeadlockFreedomFixed, MeshHfbAndButterfly) {
  for (const auto& design :
       {topo::make_mesh(8), topo::make_hfb(8), topo::make_flattened_butterfly(4)}) {
    const MeshRouting routing(design, HopWeights{});
    const ChannelDependencyGraph cdg(design, routing);
    EXPECT_FALSE(cdg.has_cycle());
    EXPECT_GT(cdg.dependency_count(), 0u);
  }
}

TEST(DeadlockCdg, MeshChannelCount) {
  const topo::ExpressMesh mesh = topo::make_mesh(4);
  const MeshRouting routing(mesh, HopWeights{});
  const ChannelDependencyGraph cdg(mesh, routing);
  // 4 rows * 3 links * 2 directions + same for columns = 48.
  EXPECT_EQ(cdg.channel_count(), 48u);
}

}  // namespace
}  // namespace xlp::route
