// Behavioral tests of the annealing machinery itself: acceptance
// statistics across the cooling schedule, the naive generator's waste as a
// function of the limit, branch-and-bound search effort, and the D&C
// threshold option.

#include <gtest/gtest.h>

#include <vector>

#include "core/branch_bound.hpp"
#include "core/dnc.hpp"
#include "core/naive_sa.hpp"
#include "core/sa.hpp"
#include "util/check.hpp"

namespace xlp::core {
namespace {

route::HopWeights paper_weights() { return route::HopWeights{}; }

TEST(SaBehavior, HotAnnealerAcceptsMostMoves) {
  // With T far above any latency delta, nearly every move is accepted.
  const RowObjective obj(8, paper_weights());
  SaParams params;
  params.initial_temperature = 1e6;
  params.total_moves = 2000;
  params.moves_per_cool = 2000;  // effectively no cooling
  Rng rng(1);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 4), obj, params, rng);
  EXPECT_GT(static_cast<double>(result.accepted) / result.moves, 0.95);
}

TEST(SaBehavior, ColdAnnealerOnlyAcceptsImprovements) {
  // With T near zero, exp(-d/T) underflows for any worsening move: the
  // annealer degenerates to a stochastic hill climber.
  const RowObjective obj(8, paper_weights());
  SaParams params;
  params.initial_temperature = 1e-9;
  params.total_moves = 2000;
  params.moves_per_cool = 2000;
  Rng rng(2);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 4), obj, params, rng);
  EXPECT_EQ(result.accepted, result.improved);
}

TEST(SaBehavior, AcceptanceRateFallsAsTheScheduleCools) {
  // Run two annealers from the same state: one sampled at the start of the
  // schedule, one configured to start at the final temperature. Acceptance
  // at the cold end must be lower.
  const RowObjective obj(16, paper_weights());
  Rng rng(3);
  const auto initial = topo::ConnectionMatrix::random(16, 4, rng, 0.5);

  SaParams hot;
  hot.initial_temperature = 10.0;
  hot.total_moves = 1500;
  hot.moves_per_cool = 1500;
  Rng r1(4);
  const SaResult hot_result =
      anneal_connection_matrix(initial, obj, hot, r1);

  SaParams cold = hot;
  cold.initial_temperature = 10.0 / 1024.0;  // after ten cooldowns
  Rng r2(4);
  const SaResult cold_result =
      anneal_connection_matrix(initial, obj, cold, r2);

  EXPECT_GT(static_cast<double>(hot_result.accepted) / hot_result.moves,
            static_cast<double>(cold_result.accepted) / cold_result.moves);
}

TEST(SaBehavior, ObserverSeesEveryCoolingStep) {
  const RowObjective obj(8, paper_weights());
  SaParams params;
  params.initial_temperature = 10.0;
  params.total_moves = 2000;
  params.moves_per_cool = 250;
  params.cool_scale = 2.0;
  std::vector<SaCoolingStep> steps;
  params.observer = [&steps](const SaCoolingStep& s) { steps.push_back(s); };
  Rng rng(7);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 4), obj, params, rng);

  // One event per cooling step, in order.
  ASSERT_EQ(steps.size(),
            static_cast<std::size_t>(params.total_moves /
                                     params.moves_per_cool));
  long window_sum = 0;
  long accepted_sum = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].step, static_cast<int>(i));
    EXPECT_EQ(steps[i].window_moves, params.moves_per_cool);
    EXPECT_EQ(steps[i].moves_done,
              static_cast<long>(i + 1) * params.moves_per_cool);
    EXPECT_LE(steps[i].best_value, steps[i].current_value + 1e-12);
    window_sum += steps[i].window_moves;
    accepted_sum += steps[i].window_accepted;
    if (i > 0)
      EXPECT_LT(steps[i].temperature, steps[i - 1].temperature)
          << "temperature must be strictly decreasing";
  }
  EXPECT_EQ(window_sum, result.moves);
  EXPECT_EQ(accepted_sum, result.accepted);
  EXPECT_DOUBLE_EQ(steps.front().temperature, params.initial_temperature);
}

TEST(SaBehavior, ResultExposesAcceptanceRateAndFinalTemperature) {
  const RowObjective obj(8, paper_weights());
  SaParams params;
  params.initial_temperature = 10.0;
  params.total_moves = 2000;
  params.moves_per_cool = 250;
  params.cool_scale = 2.0;
  Rng rng(8);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 4), obj, params, rng);
  EXPECT_DOUBLE_EQ(result.acceptance_rate,
                   static_cast<double>(result.accepted) / result.moves);
  // Eight cooling steps: T0 / 2^8.
  EXPECT_DOUBLE_EQ(result.final_temperature, 10.0 / 256.0);

  // A degenerate matrix (no flippable bits) never cools.
  Rng rng2(9);
  const SaResult degenerate = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 1), obj, params, rng2);
  EXPECT_EQ(degenerate.moves, 0);
  EXPECT_DOUBLE_EQ(degenerate.acceptance_rate, 0.0);
  EXPECT_DOUBLE_EQ(degenerate.final_temperature,
                   params.initial_temperature);
}

TEST(SaBehavior, MovesEqualTheConfiguredBudget) {
  const RowObjective obj(8, paper_weights());
  Rng rng(5);
  const SaResult result = anneal_connection_matrix(
      topo::ConnectionMatrix(8, 4), obj, SaParams{}.with_moves(777), rng);
  EXPECT_EQ(result.moves, 777);
}

TEST(NaiveSaBehavior, WasteGrowsAsTheLimitTightens) {
  // The tighter the cut limit, the more naive candidates are infeasible —
  // the quantitative version of Section 4.4.2's complaint.
  const RowObjective obj(8, paper_weights());
  const SaParams params = SaParams{}.with_moves(4000);
  double waste[2];
  int i = 0;
  for (const int limit : {8, 2}) {
    Rng rng(6);
    const NaiveSaResult result = anneal_naive_links(
        topo::RowTopology(8), obj, limit, params, rng);
    waste[i++] = static_cast<double>(result.invalid_moves) /
                 params.total_moves;
  }
  EXPECT_GT(waste[1], waste[0]);
}

TEST(BranchBoundBehavior, EffortGrowsWithTheLimit) {
  // More cross-section budget means a larger feasible space to enumerate.
  const RowObjective obj(8, paper_weights());
  long nodes_prev = 0;
  for (const int limit : {1, 2, 3, 4}) {
    BranchAndBound bb(obj, limit);
    const long nodes = bb.solve().nodes_explored;
    EXPECT_GE(nodes, nodes_prev) << "C=" << limit;
    nodes_prev = nodes;
  }
}

TEST(BranchBoundBehavior, OptimumImprovesWeaklyWithTheLimit) {
  const RowObjective obj(8, paper_weights());
  double prev = 1e9;
  for (const int limit : {1, 2, 3, 4}) {
    BranchAndBound bb(obj, limit);
    const double value = bb.solve().value;
    EXPECT_LE(value, prev + 1e-12) << "C=" << limit;
    prev = value;
  }
}

TEST(DncBehavior, LargerExactThresholdCanOnlyHelp) {
  // Solving bigger leaves exactly gives a weakly better initial solution.
  const RowObjective obj(16, paper_weights());
  DncOptions small;
  small.bb_threshold = 2;
  DncOptions big;
  big.bb_threshold = 8;
  const DncResult coarse = dnc_initial_solution(obj, 4, small);
  const DncResult fine = dnc_initial_solution(obj, 4, big);
  EXPECT_LE(fine.value, coarse.value + 1e-9);
}

TEST(DncBehavior, EvaluationCostGrowsWithTheThreshold) {
  RowObjective obj(16, paper_weights());
  DncOptions small;
  small.bb_threshold = 4;
  (void)dnc_initial_solution(obj, 4, small);
  const long cheap = obj.evaluations();
  obj.reset_evaluations();
  DncOptions big;
  big.bb_threshold = 8;
  (void)dnc_initial_solution(obj, 4, big);
  EXPECT_GT(obj.evaluations(), cheap);
}

}  // namespace
}  // namespace xlp::core
