// Tests of the report renderer: HTML escaping, the SVG chart and heatmap
// builders, content-based run-directory classification, and the contract
// that the rendered dashboard is self-contained and names every recorded
// series.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/ledger.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"

namespace xlp::obs {
namespace {

namespace fs = std::filesystem;

TEST(HtmlEscape, EscapesMarkupCharacters) {
  EXPECT_EQ(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(html_escape("plain"), "plain");
}

TEST(SvgLineChart, ContainsTitleLegendAndLine) {
  const ChartSeries s{"sim.load", {{0, 1}, {10, 2}, {20, 1.5}}};
  const std::string svg = svg_line_chart("Load", {s});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("Load"), std::string::npos);
  EXPECT_NE(svg.find("sim.load"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgLineChart, EmptySeriesRenderPlaceholder) {
  const std::string svg = svg_line_chart("Empty", {});
  EXPECT_NE(svg.find("no data"), std::string::npos);
}

TEST(SvgHeatmap, RendersEveryChannelWithBoundedUtilization) {
  Json channels = Json::array();
  channels.push(Json::object()
                    .set("src", 0)
                    .set("dst", 1)
                    .set("length", 1)
                    .set("flits", 10L)
                    .set("utilization", 0.25));
  channels.push(Json::object()
                    .set("src", 1)
                    .set("dst", 0)
                    .set("length", 1)
                    .set("flits", 40L)
                    .set("utilization", 1.0));
  const Json event = Json::object()
                         .set("measured_cycles", 40L)
                         .set("width", 2)
                         .set("height", 1)
                         .set("channels", std::move(channels));
  const std::string svg = svg_channel_heatmap(event);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  // One <line> per directed channel plus the legend swatches.
  std::size_t lines = 0;
  for (std::size_t pos = svg.find("<line"); pos != std::string::npos;
       pos = svg.find("<line", pos + 1))
    ++lines;
  EXPECT_GE(lines, 2u);
}

TEST(Report, NamesEverySeriesAndIsSelfContained) {
  SeriesRecorder rec(32);
  for (int i = 0; i < 100; ++i) {
    rec.append("sim.injected_flits", i, i * 0.5);
    rec.append("sa.best", i, 100.0 - i);
  }
  RunDirData data;
  data.dir = "rundir";
  data.series = rec.to_json();
  data.stats = Json::object()
                   .set("packets_offered", 100L)
                   .set("latency", Json::object().set("avg", 12.5));
  LedgerEntry entry;
  entry.subcommand = "run";
  entry.seed = 3;
  data.ledger.push_back(entry.to_json());

  const std::string html = render_report_html(data);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  for (const char* expected :
       {"sim.injected_flits", "sa.best", "Time series", "Run ledger",
        "packets_offered", "</html>"})
    EXPECT_NE(html.find(expected), std::string::npos) << expected;
  // Self-contained: no scripts, no external fetches.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

TEST(CollectRunDir, ClassifiesFilesByContent) {
  const fs::path dir = fs::path(::testing::TempDir()) / "xlp_collect_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);

  SeriesRecorder rec(16);
  rec.append("sim.load", 0, 1.0);
  // Deliberately unhelpful filenames: classification is by content.
  ASSERT_TRUE(rec.write_json_file((dir / "a.json").string()));
  {
    std::ofstream out(dir / "b.json");
    out << "{\"packets_offered\":5,\"latency\":{\"avg\":2.0}}\n";
  }
  LedgerEntry entry;
  entry.subcommand = "simulate";
  ASSERT_TRUE(
      append_ledger_entry((dir / "ledger.jsonl").string(), entry));
  {
    std::ofstream out(dir / "trace.jsonl");
    out << "{\"ts\":0,\"event\":\"sim.progress\",\"cycle\":100,"
           "\"packets_in_flight\":7,\"ejection_rate\":0.3}\n"
        << "not json at all\n";
  }

  const RunDirData data = collect_run_dir(dir.string());
  ASSERT_TRUE(data.series.has_value());
  ASSERT_TRUE(data.stats.has_value());
  EXPECT_EQ(data.ledger.size(), 1u);
  EXPECT_FALSE(data.trace_series.empty());
  EXPECT_DOUBLE_EQ(data.stats->find("latency")->find("avg")->as_number(),
                   2.0);
}

TEST(CollectRunDir, MissingDirectoryIsEmptyNotFatal) {
  const RunDirData data = collect_run_dir("/nonexistent/xlp_run_dir");
  EXPECT_FALSE(data.series.has_value());
  EXPECT_TRUE(data.ledger.empty());
}

}  // namespace
}  // namespace xlp::obs
