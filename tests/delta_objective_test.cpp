// Exactness and determinism contract of the incremental evaluator
// (DeltaRowObjective): every delta score must be bit-identical to the full
// RowObjective::evaluate on the same placement, so an anneal driven by it
// accepts the same moves, emits byte-identical checkpoints and returns the
// same SaResult. `ctest -L delta` runs exactly this suite; the asan-ubsan
// CI lane re-runs it with XLP_CHECK_DELTA=1 so every propose also
// cross-checks itself against the full evaluator at runtime.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/delta_objective.hpp"
#include "core/dnc.hpp"
#include "core/objective.hpp"
#include "core/portfolio.hpp"
#include "core/sa.hpp"
#include "topo/connection_matrix.hpp"
#include "topo/row_topology.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xlp::core {
namespace {

route::HopWeights paper_weights() { return route::HopWeights{}; }

std::vector<double> random_pair_weights(int n, Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j) w[static_cast<std::size_t>(i) * n + j] = rng.uniform01();
  return w;
}

// Drives `delta` through a random flip sequence with random accept /
// reject decisions and asserts, after every propose, that the delta score
// equals the full evaluation of the mutated placement exactly (no
// tolerance: the contract is bit-identity).
void run_flip_property(const RowObjective& objective, int n, int limit,
                       std::uint64_t seed, int moves) {
  Rng rng(seed);
  topo::ConnectionMatrix reference =
      topo::ConnectionMatrix::random(n, limit, rng, 0.5);
  DeltaRowObjective delta(objective, reference);
  for (int m = 0; m < moves; ++m) {
    const int bit = static_cast<int>(rng.uniform_below(
        static_cast<std::uint64_t>(reference.bit_count())));
    const double incremental = delta.propose_flip(bit);
    reference.flip_flat(bit);
    const double full = objective.evaluate(reference.decode());
    ASSERT_EQ(incremental, full)
        << "move " << m << " bit " << bit << " n=" << n << " C=" << limit;
    if (rng.uniform01() < 0.5) {
      delta.commit();
    } else {
      delta.revert();
      reference.flip_flat(bit);  // undo on the reference too
    }
  }
  // The cache must still be coherent after the mixed commit/revert walk:
  // one more accepted move scored from the final state.
  const int bit = 0;
  const double incremental = delta.propose_flip(bit);
  reference.flip_flat(bit);
  ASSERT_EQ(incremental, objective.evaluate(reference.decode()));
  delta.commit();
}

TEST(DeltaObjective, UniformFlipsMatchFullEvaluationExactly) {
  for (const int n : {4, 8, 13, 16}) {
    for (const int limit : {2, 3, 4}) {
      const RowObjective obj(n, paper_weights());
      ASSERT_TRUE(obj.delta_supported());
      run_flip_property(obj, n, limit, 100 + n + limit, 200);
    }
  }
}

TEST(DeltaObjective, WeightedFlipsMatchFullEvaluationExactly) {
  for (const int n : {8, 16}) {
    Rng wrng(11u + static_cast<std::uint64_t>(n));
    RowObjective obj(n, paper_weights(), random_pair_weights(n, wrng));
    run_flip_property(obj, n, 4, 200 + n, 200);
  }
}

TEST(DeltaObjective, WorstCaseBlendFlipsMatchFullEvaluationExactly) {
  for (const double w : {0.25, 1.0}) {
    RowObjective obj(16, paper_weights());
    obj.set_worst_case_weight(w);
    ASSERT_TRUE(obj.delta_supported());
    run_flip_property(obj, 16, 4, 321, 200);
  }
}

TEST(DeltaObjective, WeightedWorstCaseBlendMatchesFullEvaluationExactly) {
  Rng wrng(77);
  RowObjective obj(12, paper_weights(), random_pair_weights(12, wrng));
  obj.set_worst_case_weight(0.5);
  run_flip_property(obj, 12, 3, 555, 200);
}

TEST(DeltaObjective, NonIntegerHopWeightsStayExactWithoutTheMirror) {
  // Fractional cycle weights disable the mirror-mode shortcut (the
  // leftward table is maintained by its own cascade instead of being
  // transposed from the rightward one). The weights are binary-exact
  // fractions, so path sums are still exact and the bit-identity contract
  // must hold through the two-direction code path.
  for (const int n : {8, 16}) {
    const RowObjective obj(n, route::HopWeights{2.75, 1.5});
    ASSERT_TRUE(obj.delta_supported());
    run_flip_property(obj, n, 4, 400 + n, 200);
  }
}

TEST(DeltaObjective, TopologyModeAddMatchesFullEvaluationExactly) {
  // The D&C merge pattern: a fixed base placement, each candidate is base
  // plus one cross link, propose/revert per candidate.
  const int n = 12;
  const RowObjective obj(n, paper_weights());
  topo::RowTopology base(n, {{0, 3}, {6, 11}});
  DeltaRowObjective scan(obj, base);
  ASSERT_TRUE(scan.incremental());
  for (int i = 0; i < n / 2; ++i) {
    for (int j = n / 2; j < n; ++j) {
      if (j - i < 2) continue;
      const double incremental = scan.propose_add({i, j});
      topo::RowTopology candidate = base;
      candidate.add_express({i, j});
      ASSERT_EQ(incremental, obj.evaluate(candidate))
          << "link (" << i << ", " << j << ")";
      scan.revert();
    }
  }
  // Adding a duplicate of an existing link must also score exactly (the
  // multiset placement with the link twice).
  const double dup = scan.propose_add({0, 3});
  topo::RowTopology twice = base;
  twice.add_express({0, 3});
  ASSERT_EQ(dup, obj.evaluate(twice));
  scan.revert();
}

TEST(DeltaObjective, SecondaryBlendFallsBackButStaysExact) {
  RowObjective obj(10, paper_weights());
  obj.set_secondary(0.3, [](const topo::RowTopology& row) {
    return static_cast<double>(row.express_links().size());
  });
  ASSERT_FALSE(obj.delta_supported());
  topo::ConnectionMatrix state(10, 3);
  DeltaRowObjective delta(obj, state);
  EXPECT_FALSE(delta.incremental());
  Rng rng(9);
  for (int m = 0; m < 50; ++m) {
    const int bit = static_cast<int>(
        rng.uniform_below(static_cast<std::uint64_t>(state.bit_count())));
    const double incremental = delta.propose_flip(bit);
    state.flip_flat(bit);
    ASSERT_EQ(incremental, obj.evaluate(state.decode()));
    if (rng.uniform01() < 0.5) {
      delta.commit();
    } else {
      delta.revert();
      state.flip_flat(bit);
    }
  }
}

TEST(DeltaObjective, EveryProposeCountsExactlyOneEvaluation) {
  RowObjective obj(8, paper_weights());
  obj.reset_evaluations();
  topo::ConnectionMatrix state(8, 4);
  DeltaRowObjective delta(obj, state);
  EXPECT_EQ(obj.evaluations(), 0) << "construction must not count";
  (void)delta.propose_flip(0);
  delta.commit();
  (void)delta.propose_flip(1);
  delta.revert();
  (void)delta.propose_flip(0);
  delta.revert();
  EXPECT_EQ(obj.evaluations(), 3);
}

// The headline contract: an anneal driven by the incremental evaluator is
// byte-for-byte the run the full evaluator produces — same accepted moves,
// same counters, same best matrix, same checkpoint JSON.
TEST(DeltaObjective, AnnealTrajectoryIsBitIdenticalToFullEvaluation) {
  const int n = 16;
  const RowObjective obj(n, paper_weights());
  Rng seed_rng(3);
  const auto initial = topo::ConnectionMatrix::random(n, 4, seed_rng, 0.5);

  const auto run = [&](bool use_delta) {
    SaParams params;
    params.initial_temperature = 10.0;
    params.total_moves = 2000;
    params.moves_per_cool = 250;
    params.delta_eval = use_delta;
    params.method_label = "OnlySA";
    params.checkpoint_every_moves = 500;
    std::vector<std::string> checkpoints;
    params.checkpoint_sink = [&](const runctl::SaCheckpoint& ck) {
      checkpoints.push_back(ck.to_json().dump());
    };
    Rng rng(7);
    const SaResult result =
        anneal_connection_matrix(initial, obj, params, rng);
    return std::make_pair(result, checkpoints);
  };

  const auto [full, full_ckpts] = run(false);
  const auto [delta, delta_ckpts] = run(true);

  EXPECT_EQ(delta.best_value, full.best_value);
  EXPECT_EQ(delta.best_matrix, full.best_matrix);
  EXPECT_EQ(delta.moves, full.moves);
  EXPECT_EQ(delta.accepted, full.accepted);
  EXPECT_EQ(delta.improved, full.improved);
  EXPECT_EQ(delta.acceptance_rate, full.acceptance_rate);
  EXPECT_EQ(delta.final_temperature, full.final_temperature);
  ASSERT_EQ(delta_ckpts.size(), full_ckpts.size());
  for (std::size_t i = 0; i < full_ckpts.size(); ++i)
    EXPECT_EQ(delta_ckpts[i], full_ckpts[i]) << "checkpoint " << i;
}

TEST(DeltaObjective, ResumedDeltaRunMatchesUninterruptedFullRun) {
  // Stop a delta-driven run at a checkpoint, resume it (still delta), and
  // compare against one uninterrupted full-evaluation run: the checkpoint
  // format carries no trace of which evaluator produced it.
  const int n = 12;
  const RowObjective obj(n, paper_weights());
  Rng seed_rng(5);
  const auto initial = topo::ConnectionMatrix::random(n, 3, seed_rng, 0.5);

  SaParams base;
  base.initial_temperature = 10.0;
  base.total_moves = 1600;
  base.moves_per_cool = 200;
  base.method_label = "OnlySA";

  SaParams uninterrupted = base;
  uninterrupted.delta_eval = false;
  Rng r_full(21);
  const SaResult full =
      anneal_connection_matrix(initial, obj, uninterrupted, r_full);

  SaParams first = base;
  first.checkpoint_every_moves = 800;
  std::optional<runctl::SaCheckpoint> mid;
  first.checkpoint_sink = [&](const runctl::SaCheckpoint& ck) {
    if (!ck.complete && !mid.has_value()) mid = ck;  // the move-800 snapshot
  };
  Rng r_a(21);
  (void)anneal_connection_matrix(initial, obj, first, r_a);
  ASSERT_TRUE(mid.has_value());
  ASSERT_EQ(mid->next_move, 800);

  SaParams second_half = base;
  second_half.resume = &*mid;
  Rng r_b(999);  // overwritten by the checkpoint's RNG words
  const SaResult resumed =
      anneal_connection_matrix(initial, obj, second_half, r_b);

  EXPECT_EQ(resumed.best_value, full.best_value);
  EXPECT_EQ(resumed.best_matrix, full.best_matrix);
  EXPECT_EQ(resumed.accepted, full.accepted);
  EXPECT_EQ(resumed.improved, full.improved);
}

TEST(DeltaObjective, DncMergeSelectsTheSameLinkWithAndWithoutDelta) {
  for (const int n : {10, 16, 23}) {
    const RowObjective obj(n, paper_weights());
    DncOptions with_delta;
    with_delta.delta_eval = true;
    DncOptions without_delta;
    without_delta.delta_eval = false;
    const DncResult a = dnc_initial_solution(obj, 4, with_delta);
    const DncResult b = dnc_initial_solution(obj, 4, without_delta);
    EXPECT_EQ(a.value, b.value) << "n=" << n;
    EXPECT_EQ(a.placement.express_links(), b.placement.express_links())
        << "n=" << n;
  }
}

TEST(DeltaObjective, PortfolioIsByteIdenticalAcrossThreadCounts) {
  // Delta evaluation is on by default inside portfolio chains; the
  // cross-thread-count determinism contract must survive it.
  const auto run = [](int threads) {
    PortfolioOptions options;
    options.chains = 4;
    options.threads = threads;
    options.sa.total_moves = 800;
    options.sa.moves_per_cool = 100;
    return solve_portfolio(14, route::HopWeights{}, std::nullopt, 3, options,
                           42);
  };
  const PortfolioResult one = run(1);
  for (const int threads : {2, 4}) {
    const PortfolioResult many = run(threads);
    EXPECT_EQ(many.best.value, one.best.value) << threads << " threads";
    EXPECT_EQ(many.best.placement.express_links(),
              one.best.placement.express_links())
        << threads << " threads";
    ASSERT_EQ(many.chain_values.size(), one.chain_values.size());
    for (std::size_t i = 0; i < one.chain_values.size(); ++i)
      EXPECT_EQ(many.chain_values[i], one.chain_values[i])
          << threads << " threads, chain " << i;
  }
}

TEST(DeltaObjective, CrossCheckModeRunsCleanOnAgreement) {
  // XLP_CHECK_DELTA=1 makes every propose re-score with the full evaluator
  // and abort on divergence; on a correct implementation it is silent.
  ASSERT_EQ(setenv("XLP_CHECK_DELTA", "1", 1), 0);
  const RowObjective obj(10, paper_weights());
  SaParams params;
  params.total_moves = 300;
  params.moves_per_cool = 100;
  Rng seed_rng(13);
  const auto initial = topo::ConnectionMatrix::random(10, 3, seed_rng, 0.5);
  Rng rng(17);
  const SaResult checked =
      anneal_connection_matrix(initial, obj, params, rng);
  ASSERT_EQ(unsetenv("XLP_CHECK_DELTA"), 0);

  SaParams reference = params;
  reference.delta_eval = false;
  Rng rng2(17);
  const SaResult plain =
      anneal_connection_matrix(initial, obj, reference, rng2);
  EXPECT_EQ(checked.best_value, plain.best_value);
  EXPECT_EQ(checked.best_matrix, plain.best_matrix);
}

TEST(DeltaObjective, CrossCheckModeDoesNotDoubleCountEvaluations) {
  ASSERT_EQ(setenv("XLP_CHECK_DELTA", "1", 1), 0);
  RowObjective obj(8, paper_weights());
  obj.reset_evaluations();
  topo::ConnectionMatrix state(8, 4);
  DeltaRowObjective delta(obj, state);
  (void)delta.propose_flip(0);
  delta.commit();
  (void)delta.propose_flip(3);
  delta.revert();
  ASSERT_EQ(unsetenv("XLP_CHECK_DELTA"), 0);
  EXPECT_EQ(obj.evaluations(), 2);
}

TEST(DeltaObjective, ProposeWithoutResolutionIsRejected) {
  const RowObjective obj(8, paper_weights());
  topo::ConnectionMatrix state(8, 4);
  DeltaRowObjective delta(obj, state);
  (void)delta.propose_flip(0);
  EXPECT_THROW((void)delta.propose_flip(1), PreconditionError);
  delta.revert();
  EXPECT_THROW(delta.commit(), PreconditionError);
  EXPECT_THROW(delta.revert(), PreconditionError);
}

}  // namespace
}  // namespace xlp::core
