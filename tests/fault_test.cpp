// Tests for the fault-tolerance subsystem (src/fault + the simulator's
// mid-run injection): fault-set semantics, deadlock-safe rerouting over
// degraded subgraphs, analytic-vs-simulated degraded latency, both swap
// policies, and byte-level determinism of the Monte Carlo campaign.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "exp/fault_campaign.hpp"
#include "fault/model.hpp"
#include "fault/objective.hpp"
#include "fault/reroute.hpp"
#include "latency/model.hpp"
#include "route/deadlock.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "traffic/patterns.hpp"
#include "util/check.hpp"

namespace xlp::fault {
namespace {

sim::SimConfig quiet_config() {
  sim::SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 2000;
  config.drain_cycles = 4000;
  return config;
}

// --------------------------------------------------------------------------
// Fault model

TEST(FaultModel, KillsMatchesDirectionAndFlags) {
  FaultSet faults;
  faults.add(LinkFault{{Dim::kRow, 3, {1, 4}}});
  EXPECT_TRUE(faults.kills(Dim::kRow, 3, 1, 4));
  EXPECT_TRUE(faults.kills(Dim::kRow, 3, 4, 1));  // bidirectional default
  EXPECT_FALSE(faults.kills(Dim::kRow, 2, 1, 4)); // wrong row
  EXPECT_FALSE(faults.kills(Dim::kCol, 3, 1, 4)); // wrong dimension
  EXPECT_FALSE(faults.kills(Dim::kRow, 3, 1, 2)); // different link

  FaultSet oneway;
  oneway.add(LinkFault{{Dim::kCol, 0, {2, 5}}, /*forward=*/true,
                       /*backward=*/false});
  EXPECT_TRUE(oneway.kills(Dim::kCol, 0, 2, 5));
  EXPECT_FALSE(oneway.kills(Dim::kCol, 0, 5, 2));
}

TEST(FaultModel, PortFaultsAccumulateAndLinksRemove) {
  FaultSet faults;
  faults.add(PortFault{12, 2});
  faults.add(PortFault{12, 1});
  EXPECT_EQ(faults.extra_pipeline_cycles(12), 3);
  EXPECT_EQ(faults.extra_pipeline_cycles(11), 0);

  const LinkId id{Dim::kRow, 0, {0, 3}};
  faults.add(LinkFault{id});
  EXPECT_TRUE(faults.remove_link(id));
  EXPECT_FALSE(faults.remove_link(id));
  EXPECT_FALSE(faults.kills(Dim::kRow, 0, 0, 3));
}

TEST(FaultModel, RejectsMalformedFaults) {
  FaultSet faults;
  EXPECT_THROW(faults.add(LinkFault{{Dim::kRow, 0, {3, 1}}}),
               PreconditionError);
  EXPECT_THROW(faults.add(LinkFault{{Dim::kRow, 0, {1, 3}}, false, false}),
               PreconditionError);
  EXPECT_THROW(faults.add(PortFault{0, 0}), PreconditionError);
}

TEST(FaultModel, EnumerateLinksCoversTheMesh) {
  // 4x4 mesh: 4 rows x 3 local links + 4 cols x 3 = 24 distinct links,
  // none of them express.
  const auto mesh_links = enumerate_links(topo::make_mesh(4));
  EXPECT_EQ(mesh_links.size(), 24u);
  EXPECT_TRUE(enumerate_links(topo::make_mesh(4), true).empty());

  // HFB adds express links; duplicates (same endpoints in the same row)
  // must collapse to one entry.
  const auto hfb = topo::make_hfb(8);
  const auto express = enumerate_links(hfb, true);
  EXPECT_FALSE(express.empty());
  for (std::size_t i = 0; i < express.size(); ++i)
    for (std::size_t j = i + 1; j < express.size(); ++j)
      EXPECT_FALSE(express[i] == express[j]);
}

TEST(FaultModel, SampleKLinksDrawsDistinctExpressLinks) {
  const auto hfb = topo::make_hfb(8);
  Rng rng(7);
  const FaultSet faults = sample_k_links(hfb, 3, rng);
  EXPECT_EQ(faults.link_faults().size(), 3u);
  for (const LinkFault& f : faults.link_faults()) {
    EXPECT_TRUE(f.id.link.is_express());
    EXPECT_TRUE(f.forward && f.backward);
  }
  // Distinct links, drawn without replacement.
  const auto& lf = faults.link_faults();
  for (std::size_t i = 0; i < lf.size(); ++i)
    for (std::size_t j = i + 1; j < lf.size(); ++j)
      EXPECT_FALSE(lf[i].id == lf[j].id);

  // A plain mesh has no express links: the sampler falls back to local
  // links instead of returning nothing.
  Rng rng2(7);
  const FaultSet mesh_faults = sample_k_links(topo::make_mesh(4), 2, rng2);
  EXPECT_EQ(mesh_faults.link_faults().size(), 2u);
}

// --------------------------------------------------------------------------
// Rerouting

TEST(Reroute, IntactMeshMatchesBaselineRouting) {
  const auto design = topo::make_hfb(8);
  const route::MeshRouting baseline(design, route::HopWeights{});
  const RerouteResult rr = reroute(design, FaultSet{});
  EXPECT_TRUE(rr.fully_connected());
  EXPECT_TRUE(rr.deadlock_free());
  for (int s = 0; s < design.node_count(); ++s)
    for (int d = 0; d < design.node_count(); ++d) {
      if (s == d) continue;
      EXPECT_DOUBLE_EQ(rr.routing.head_cost(s, d), baseline.head_cost(s, d));
    }
}

TEST(Reroute, KilledExpressLinkForcesTheLocalDetour) {
  // A single express link 0-3: killing it leaves only the local chain, so
  // the 0->3 route must fall back to three local hops.
  const topo::RowTopology row(8, {{0, 3}});
  const auto design = topo::make_design(row, 2);
  FaultSet faults;
  faults.add(LinkFault{{Dim::kRow, 0, {0, 3}}});
  const RerouteResult rr = reroute(design, faults);
  EXPECT_TRUE(rr.fully_connected());  // local links survive
  EXPECT_TRUE(rr.deadlock_free());
  EXPECT_EQ(rr.routing.hops(0, 3), 3);
  const auto path = rr.routing.path(0, 3);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Reroute, KilledLocalLinkSeversPairsAndReportsThem) {
  // Mesh row 0, kill local link 0-1: node 0 can no longer move right, so
  // XY traffic from 0 to anything in columns 1.. is unreachable.
  const auto design = topo::make_mesh(4);
  FaultSet faults;
  faults.add(LinkFault{{Dim::kRow, 0, {0, 1}}});
  const RerouteResult rr = reroute(design, faults);
  EXPECT_FALSE(rr.fully_connected());
  EXPECT_TRUE(rr.deadlock_free());
  EXPECT_FALSE(rr.routing.reachable(0, 1, route::Orientation::kXYFirst));
  const bool listed_xy =
      std::find(rr.unreachable_xy.begin(), rr.unreachable_xy.end(),
                std::pair{0, 1}) != rr.unreachable_xy.end();
  EXPECT_TRUE(listed_xy);
  // Consistency: every pair is either reachable or listed, per orientation.
  for (int s = 0; s < design.node_count(); ++s)
    for (int d = 0; d < design.node_count(); ++d) {
      if (s == d) continue;
      const bool reach =
          rr.routing.reachable(s, d, route::Orientation::kXYFirst);
      const bool listed =
          std::find(rr.unreachable_xy.begin(), rr.unreachable_xy.end(),
                    std::pair{s, d}) != rr.unreachable_xy.end();
      EXPECT_NE(reach, listed) << s << "->" << d;
    }
}

TEST(Reroute, RandomPlacementsStayDeadlockFreeUnderRandomFaults) {
  // Property: any valid placement with any single-link fault reroutes to
  // tables whose channel dependency graphs are acyclic in both
  // orientations (checked independently of the flags reroute() computed).
  Rng rng(42);
  for (int iter = 0; iter < 15; ++iter) {
    const topo::RowTopology row = test::random_valid_row(8, 4, rng);
    const topo::ExpressMesh design = topo::make_design(row, 4);
    Rng fault_rng(1000 + static_cast<std::uint64_t>(iter));
    SampleOptions opts;
    opts.express_only = false;  // local links can die too
    const FaultSet faults = sample_k_links(design, 1, fault_rng, opts);
    const RerouteResult rr = reroute(design, faults);
    EXPECT_TRUE(rr.deadlock_free())
        << row.to_string() << " faults " << faults.to_string();
    const route::ChannelDependencyGraph cdg_xy(
        design, rr.routing, route::Orientation::kXYFirst);
    const route::ChannelDependencyGraph cdg_yx(
        design, rr.routing, route::Orientation::kYXFirst);
    EXPECT_FALSE(cdg_xy.has_cycle());
    EXPECT_FALSE(cdg_yx.has_cycle());
  }
}

TEST(Reroute, CycleWitnessIsConsistentWithHasCycle) {
  // Monotone DOR tables are acyclic by construction, so the witness is
  // empty exactly when has_cycle() is false; the cycle-reporting branch of
  // find_cycle() is unreachable through the public API (which is the
  // point — this pins the equivalence the fault layer relies on).
  const auto design = topo::make_hfb(8);
  const route::MeshRouting routing(design, route::HopWeights{});
  for (const auto orientation :
       {route::Orientation::kXYFirst, route::Orientation::kYXFirst}) {
    const route::ChannelDependencyGraph cdg(design, routing, orientation);
    EXPECT_EQ(cdg.has_cycle(), !cdg.find_cycle().empty());
    EXPECT_FALSE(cdg.has_cycle());
  }
  EXPECT_EQ(route::describe_channels({{12, 4}, {4, 5}}), "12->4 -> 4->5");
}

// --------------------------------------------------------------------------
// Analytic model vs simulator on the degraded network

TEST(DegradedZeroLoad, AnalyticCostMatchesSimulatedLatency) {
  // Inject the fault at cycle 0 (before any traffic), send one packet
  // through the otherwise idle degraded network, and check its latency
  // against the rerouted tables' head cost: head + 3 (the +1 router
  // convention) + serialization flits.
  Rng rng(5);
  for (int iter = 0; iter < 5; ++iter) {
    const topo::RowTopology row = test::random_valid_row(8, 4, rng);
    const topo::ExpressMesh design = topo::make_design(row, 4);
    Rng fault_rng(2000 + static_cast<std::uint64_t>(iter));
    const FaultSet faults = sample_k_links(design, 1, fault_rng);
    const RerouteResult rr = reroute(design, faults, route::HopWeights{});

    const sim::Network network(design, route::HopWeights{});
    const traffic::TrafficMatrix idle(design.side());
    const int bits = 512;
    const int flits =
        latency::PacketMix::flits_for(bits, design.flit_bits());

    for (const auto [src, dst] :
         {std::pair{0, 63}, std::pair{7, 56}, std::pair{3, 36}}) {
      if (!rr.routing.reachable(src, dst, route::Orientation::kXYFirst))
        continue;
      sim::SimConfig config = quiet_config();
      config.faults.events.push_back({0, faults, -1});
      sim::Simulator sim(network, idle, config);
      sim.schedule_packet(src, dst, bits, config.warmup_cycles + 10);
      const sim::SimStats stats = sim.run();
      ASSERT_EQ(stats.packets_finished, 1)
          << row.to_string() << " faults " << faults.to_string();
      const long expected = static_cast<long>(rr.routing.head_cost(
                                src, dst, route::Orientation::kXYFirst)) +
                            3 + flits;
      EXPECT_EQ(sim.packet_latency(0), expected)
          << row.to_string() << " " << src << "->" << dst << " faults "
          << faults.to_string();
    }
  }
}

TEST(DegradedZeroLoad, PortFaultAddsItsExtraPipelineCycles) {
  // A degraded router adds its extra cycles once per traversal: path
  // 0 -> 1 -> 2 crosses router 1, so the packet arrives exactly
  // `extra_cycles` later than on the healthy mesh.
  const auto design = topo::make_mesh(4);
  const sim::Network network(design, route::HopWeights{});
  const traffic::TrafficMatrix idle(design.side());

  auto latency_with = [&](const FaultSet& faults) {
    sim::SimConfig config = quiet_config();
    if (!faults.empty()) config.faults.events.push_back({0, faults, -1});
    sim::Simulator sim(network, idle, config);
    sim.schedule_packet(0, 2, 512, config.warmup_cycles + 10);
    const sim::SimStats stats = sim.run();
    EXPECT_EQ(stats.packets_finished, 1);
    return sim.packet_latency(0);
  };

  FaultSet faults;
  faults.add(PortFault{1, 5});
  EXPECT_EQ(latency_with(faults), latency_with(FaultSet{}) + 5);
}

// --------------------------------------------------------------------------
// Mid-run injection policies

sim::SimStats run_with_fault(sim::FaultPolicy policy, long recover_cycle) {
  const auto design = topo::make_hfb(8);
  const sim::Network network(design, route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  sim::SimConfig config = quiet_config();
  config.measure_cycles = 3000;
  config.faults.policy = policy;
  Rng rng(3);
  FaultSet faults = sample_k_links(design, 1, rng);
  config.faults.events.push_back({600, std::move(faults), recover_cycle});
  sim::Simulator sim(network, demand, config);
  return sim.run();
}

TEST(MidRunFaults, DropRetransmitReroutesAndDrains) {
  const sim::SimStats stats =
      run_with_fault(sim::FaultPolicy::kDropRetransmit, -1);
  EXPECT_EQ(stats.reroutes, 1);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.packets_lost, 0);       // express loss never severs pairs
  EXPECT_EQ(stats.packets_unroutable, 0);
  EXPECT_GT(stats.packets_finished, 100);
  // Retransmissions only happen when the fault caught packets in flight;
  // dropped and retransmitted agree unless retries ran out (they cannot
  // here, losing a pair requires a severed route).
  EXPECT_EQ(stats.packets_dropped, stats.packets_retransmitted);
}

TEST(MidRunFaults, DrainThenSwapLosesNothing) {
  const sim::SimStats stats =
      run_with_fault(sim::FaultPolicy::kDrainThenSwap, -1);
  EXPECT_EQ(stats.reroutes, 1);
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.packets_dropped, 0);  // graceful: nothing purged
  EXPECT_EQ(stats.packets_lost, 0);
  EXPECT_GT(stats.packets_finished, 100);
}

TEST(MidRunFaults, DrainThenSwapWithRecoveryNeverUsesDeadChannels) {
  // Regression: the swap must wait for packets mid-injection too. A head
  // that claimed its NI VC before the drain holds VC claims along an
  // old-table path, so swapping at zero in-network flits but with the
  // tail still queued would later grant flits onto the dead channel
  // (tripping the simulator's dead-channel invariant).
  const sim::SimStats stats =
      run_with_fault(sim::FaultPolicy::kDrainThenSwap, 1500);
  EXPECT_EQ(stats.reroutes, 2);  // degrade + recover, both graceful
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.packets_dropped, 0);
  EXPECT_EQ(stats.packets_lost, 0);
}

TEST(MidRunFaults, RecoverySwapsBack) {
  const sim::SimStats stats =
      run_with_fault(sim::FaultPolicy::kDropRetransmit, 1500);
  EXPECT_EQ(stats.reroutes, 2);  // degrade + recover
  EXPECT_TRUE(stats.drained);
}

TEST(MidRunFaults, EmptyScheduleMatchesFaultFreeRun) {
  const auto design = topo::make_hfb(8);
  const sim::Network network(design, route::HopWeights{});
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kTranspose, 8, 0.02);
  sim::SimConfig plain = quiet_config();
  sim::SimConfig with_schedule = quiet_config();
  with_schedule.faults.policy = sim::FaultPolicy::kDrainThenSwap;
  with_schedule.faults.max_retries = 7;  // no events: must change nothing

  sim::Simulator a(network, demand, plain);
  sim::Simulator b(network, demand, with_schedule);
  const sim::SimStats sa = a.run();
  const sim::SimStats sb = b.run();
  EXPECT_EQ(sa.packets_offered, sb.packets_offered);
  EXPECT_EQ(sa.packets_finished, sb.packets_finished);
  EXPECT_DOUBLE_EQ(sa.avg_latency, sb.avg_latency);
  EXPECT_EQ(sa.reroutes, 0);
  EXPECT_EQ(sb.reroutes, 0);
}

// --------------------------------------------------------------------------
// Reliability-aware objective

TEST(ReliabilityObjective, WeightZeroIsThePlainObjective) {
  const core::RowObjective plain(8, route::HopWeights{});
  const core::RowObjective blended =
      make_reliability_objective(8, route::HopWeights{}, 0.0);
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const topo::RowTopology row = test::random_valid_row(8, 4, rng);
    EXPECT_DOUBLE_EQ(blended.evaluate(row), plain.evaluate(row));
  }
}

TEST(ReliabilityObjective, BlendsInTheDegradedCost) {
  const topo::RowTopology row(8, {{0, 4}, {4, 7}});
  const route::HopWeights weights{};
  const core::RowObjective plain(8, weights);
  const double healthy = plain.evaluate(row);
  const double degraded =
      degraded_row_cost(row, weights, DegradedMetric::kExpected);
  EXPECT_GT(degraded, healthy);  // losing an express link always hurts

  const core::RowObjective blended =
      make_reliability_objective(8, weights, 0.25);
  EXPECT_NEAR(blended.evaluate(row), 0.75 * healthy + 0.25 * degraded,
              1e-9);

  // Worst-case metric dominates the expectation.
  EXPECT_GE(degraded_row_cost(row, weights, DegradedMetric::kWorst),
            degraded);
  // No express links: nothing can fail, degraded == healthy.
  const topo::RowTopology bare(8);
  EXPECT_DOUBLE_EQ(degraded_row_cost(bare, weights, DegradedMetric::kWorst),
                   plain.evaluate(bare));
}

// --------------------------------------------------------------------------
// Campaign determinism

TEST(Campaign, SameSeedProducesByteIdenticalJson) {
  // Shrink the solver/simulator budgets so two full campaigns stay cheap;
  // restore the env afterwards so later tests are unaffected.
  const char* old_scale = std::getenv("XLP_BENCH_SCALE");
  setenv("XLP_BENCH_SCALE", "0.02", 1);

  exp::FaultCampaignConfig config;
  config.n = 4;
  config.link_limit = 2;
  config.trials = 2;
  config.fault_cycle = 600;
  config.seed = 9;

  const exp::FaultCampaignResult once = exp::run_fault_campaign(config);
  const std::string first = once.to_json().dump();
  const std::string second =
      exp::run_fault_campaign(config).to_json().dump();
  if (old_scale) setenv("XLP_BENCH_SCALE", old_scale, 1);
  else unsetenv("XLP_BENCH_SCALE");

  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"designs\""), std::string::npos);
  EXPECT_EQ(once.designs.size(), 4u);
}

}  // namespace
}  // namespace xlp::fault
