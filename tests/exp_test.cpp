// Tests for the experiment-harness helpers (src/exp) plus a couple of
// structural properties that did not fit elsewhere.

#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/scenarios.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

TEST(Scenarios, FixedDesignsAreTheSchemesOfSection51) {
  const auto designs = exp::fixed_designs(8);
  ASSERT_EQ(designs.size(), 2u);
  EXPECT_EQ(designs[0].name, "Mesh");
  EXPECT_EQ(designs[0].design.link_limit(), 1);
  EXPECT_EQ(designs[1].name, "HFB");
  EXPECT_EQ(designs[1].design.link_limit(), 4);
}

TEST(Scenarios, PaperSaParamsAreTable1) {
  const auto params = exp::paper_sa_params();
  EXPECT_DOUBLE_EQ(params.initial_temperature, 10.0);
  EXPECT_EQ(params.total_moves, 10000);
  EXPECT_DOUBLE_EQ(params.cool_scale, 2.0);
  EXPECT_EQ(params.moves_per_cool, 1000);
}

TEST(Scenarios, BenchScaleReadsEnvironment) {
  // setenv/unsetenv: serial test, no other thread reads the env here.
  setenv("XLP_BENCH_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(exp::bench_scale(), 0.5);
  setenv("XLP_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(exp::bench_scale(), 1.0);
  unsetenv("XLP_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(exp::bench_scale(), 1.0);
}

TEST(Scenarios, DefaultSimConfigScales) {
  setenv("XLP_BENCH_SCALE", "0.2", 1);
  const auto small = exp::default_sim_config(1);
  unsetenv("XLP_BENCH_SCALE");
  const auto full = exp::default_sim_config(1);
  EXPECT_LT(small.measure_cycles, full.measure_cycles);
  EXPECT_EQ(full.measure_cycles, 10000);
}

TEST(VerticalCutUse, HandComputedCase) {
  // One packet 0 -> 3 on a 4x4 mesh: its three row hops cross cuts 0,1,2
  // exactly once each, rightward.
  const auto design = topo::make_mesh(4);
  const sim::Network net(design, route::HopWeights{});
  sim::SimConfig config;
  config.warmup_cycles = 50;
  config.measure_cycles = 500;
  sim::Simulator simulator(net, traffic::TrafficMatrix(4), config);
  simulator.schedule_packet(0, 3, 128, 60);  // one flit
  const auto stats = simulator.run();

  for (int cut = 0; cut < 3; ++cut) {
    const auto right = exp::vertical_cut_use(net, stats, cut, true);
    const auto left = exp::vertical_cut_use(net, stats, cut, false);
    EXPECT_EQ(right.channels, 4);  // one rightward channel per row
    EXPECT_NEAR(right.used_bits_per_cycle * config.measure_cycles,
                256.0, 1e-9)
        << "cut " << cut;
    EXPECT_DOUBLE_EQ(left.used_bits_per_cycle, 0.0);
  }
}

TEST(VerticalCutUse, Validation) {
  const auto design = topo::make_mesh(4);
  const sim::Network net(design, route::HopWeights{});
  sim::SimConfig config;
  config.warmup_cycles = 50;
  config.measure_cycles = 200;
  sim::Simulator simulator(net, traffic::TrafficMatrix(4), config);
  const auto stats = simulator.run();
  EXPECT_THROW(exp::vertical_cut_use(net, stats, 3, true),
               PreconditionError);
  EXPECT_THROW(exp::vertical_cut_use(net, stats, -1, true),
               PreconditionError);
}

TEST(VerticalCutUse, ExpressLinksCountOncePerCrossedCut) {
  // A length-3 express link crossing cuts 0..2 carries the flit once per
  // *channel*, and that channel crosses all three cuts.
  const topo::RowTopology row(4, {{0, 3}});
  const auto design = topo::make_design(row, 2);
  const sim::Network net(design, route::HopWeights{});
  sim::SimConfig config;
  config.warmup_cycles = 50;
  config.measure_cycles = 500;
  sim::Simulator simulator(net, traffic::TrafficMatrix(4), config);
  simulator.schedule_packet(0, 3, 128, 60);  // rides the express link
  const auto stats = simulator.run();
  for (int cut = 0; cut < 3; ++cut) {
    const auto right = exp::vertical_cut_use(net, stats, cut, true);
    EXPECT_NEAR(right.used_bits_per_cycle * config.measure_cycles, 128.0,
                1e-9);
  }
}

TEST(ProfileOnMesh, RectangularWorkloads) {
  traffic::TrafficMatrix demand(4, 6);
  demand.set_rate(0, 23, 0.01);
  demand.set_rate(23, 0, 0.01);
  const auto profile = exp::profile_on_mesh(demand, 4000, 5);
  EXPECT_TRUE(profile.stats.drained);
  EXPECT_EQ(profile.observed.width(), 4);
  EXPECT_EQ(profile.observed.height(), 6);
  EXPECT_GT(profile.observed.rate(0, 23), 0.0);
}

TEST(DirectionalSymmetry, CostsAreDirectionSymmetric) {
  // Links are bidirectional, so the leftward problem mirrors the rightward
  // one: cost(i, j) == cost(j, i) for every placement.
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const auto row = test::random_valid_row(9, 3, rng);
    const route::DirectionalShortestPaths paths(row, route::HopWeights{});
    for (int i = 0; i < 9; ++i)
      for (int j = i + 1; j < 9; ++j) {
        EXPECT_DOUBLE_EQ(paths.cost(i, j), paths.cost(j, i))
            << row.to_string();
        EXPECT_EQ(paths.hops(i, j), paths.hops(j, i));
      }
  }
}

TEST(TraceRect, RoundTripsThroughTheTextFormat) {
  traffic::TrafficMatrix demand(6, 3);
  demand.set_rate(0, 17, 0.02);
  Rng rng(3);
  const auto trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), 1000, rng);
  EXPECT_EQ(trace.width(), 6);
  EXPECT_EQ(trace.height(), 3);
  EXPECT_THROW(trace.side(), PreconditionError);
  std::stringstream buffer;
  trace.save(buffer);
  EXPECT_EQ(traffic::Trace::load(buffer), trace);
}

}  // namespace
}  // namespace xlp
