// Tests of the log-bucketed latency histogram: quantiles match the
// sorted-vector nearest-rank reference exactly in the exact range and
// within the documented relative error above it, merge is commutative
// counter addition (so per-thread recording is byte-deterministic at any
// thread count and merge order), and the "xlp-hist/1" serialization is
// byte-stable with a deterministic mode that zeroes value-derived fields.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "util/rng.hpp"

namespace xlp::obs {
namespace {

/// The historical sort-based percentile the simulator used: the value at
/// rank floor(q * (n - 1)) of the sorted samples.
long sorted_reference(std::vector<long> values, double q) {
  std::sort(values.begin(), values.end());
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[idx];
}

TEST(Histogram, EmptyHistogramReportsZeroes) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.min(), 0);
  EXPECT_EQ(hist.max(), 0);
  EXPECT_EQ(hist.sum(), 0);
  EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
  EXPECT_EQ(hist.value_at_quantile(0.5), 0);
}

TEST(Histogram, ExactRangeQuantilesMatchSortedReference) {
  Rng rng(7);
  std::vector<long> values;
  Histogram hist(12);  // exact below 4096
  for (int i = 0; i < 5000; ++i) {
    const long v = static_cast<long>(rng.uniform_int(0, 4095));
    values.push_back(v);
    hist.record(v);
  }
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_EQ(hist.value_at_quantile(q), sorted_reference(values, q))
        << "q=" << q;
  EXPECT_EQ(hist.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_EQ(hist.max(), *std::max_element(values.begin(), values.end()));
}

TEST(Histogram, LogRangeQuantilesStayWithinRelativeError) {
  Rng rng(11);
  std::vector<long> values;
  Histogram hist(7);  // exact below 128, ~1.6% relative error above
  for (int i = 0; i < 20000; ++i) {
    const long v = static_cast<long>(rng.uniform_int(1, 50'000'000));
    values.push_back(v);
    hist.record(v);
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const long reference = sorted_reference(values, q);
    const long measured = hist.value_at_quantile(q);
    // The bucket's lowest equivalent value is below the true value by at
    // most one bucket width = 2^-(bits-1) relative.
    EXPECT_LE(measured, reference);
    EXPECT_GE(static_cast<double>(measured),
              static_cast<double>(reference) * (1.0 - 1.0 / 64.0));
  }
  // Extrema are tracked exactly regardless of bucketing.
  EXPECT_EQ(hist.max(), *std::max_element(values.begin(), values.end()));
  EXPECT_EQ(hist.min(), *std::min_element(values.begin(), values.end()));
}

TEST(Histogram, MergeIsOrderAndPartitionInvariant) {
  // Record one stream whole, then split across 2 / 7 shards and merge in
  // different orders: every serialization must be byte-identical.
  Rng rng(3);
  std::vector<long> values;
  for (int i = 0; i < 3000; ++i)
    values.push_back(static_cast<long>(rng.uniform_int(0, 1'000'000)));

  Histogram whole(10);
  for (const long v : values) whole.record(v);

  for (const int shards : {2, 7}) {
    std::vector<Histogram> parts(static_cast<std::size_t>(shards),
                                 Histogram(10));
    for (std::size_t i = 0; i < values.size(); ++i)
      parts[i % static_cast<std::size_t>(shards)].record(values[i]);

    Histogram forward(10);
    for (const auto& part : parts) forward.merge(part);
    Histogram backward(10);
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
      backward.merge(*it);

    EXPECT_EQ(forward.to_json().dump(), whole.to_json().dump());
    EXPECT_EQ(backward.to_json().dump(), whole.to_json().dump());
  }
}

TEST(Histogram, SerializationIsByteStableAndDeterministicModeZeroes) {
  Histogram hist(4);
  hist.record(3);
  hist.record(3);
  hist.record(40);
  const std::string text = hist.to_json().dump();
  EXPECT_EQ(text,
            "{\"schema\":\"xlp-hist/1\",\"sub_bucket_bits\":4,\"count\":3,"
            "\"min\":3,\"max\":40,\"sum\":46,"
            "\"mean\":15.333333333333334,"
            "\"p50\":3,\"p90\":3,\"p99\":3,"
            "\"buckets\":[[3,2],[40,1]]}");

  // Deterministic mode: structural fields and the count survive, every
  // value-derived field zeroes — same document for any recorded values.
  Histogram other(4);
  other.record(1000);
  other.record(2);
  other.record(7);
  EXPECT_EQ(hist.to_json(true).dump(), other.to_json(true).dump());
  EXPECT_EQ(hist.to_json(true).dump(),
            "{\"schema\":\"xlp-hist/1\",\"sub_bucket_bits\":4,\"count\":3,"
            "\"min\":0,\"max\":0,\"sum\":0,\"mean\":0,"
            "\"p50\":0,\"p90\":0,\"p99\":0,\"buckets\":[]}");
}

TEST(Histogram, MergeAcrossLayoutsPreservesCountSumAndExtrema) {
  Histogram coarse(4);
  Histogram fine(12);
  fine.record(5);
  fine.record(300);
  fine.record(70'000);
  coarse.record(17);
  coarse.merge(fine);
  EXPECT_EQ(coarse.count(), 4);
  EXPECT_EQ(coarse.sum(), 5 + 300 + 70'000 + 17);
  EXPECT_EQ(coarse.min(), 5);
  EXPECT_EQ(coarse.max(), 70'000);
}

TEST(ShardedHistogram, ConcurrentRecordingSnapshotsDeterministically) {
  // The same multiset of values recorded from 1 / 4 / 8 threads must
  // snapshot to byte-identical JSON: shard assignment only partitions the
  // counters, and merging is commutative addition.
  std::vector<long> values;
  Rng rng(19);
  for (int i = 0; i < 8000; ++i)
    values.push_back(static_cast<long>(rng.uniform_int(0, 250'000)));

  std::string reference;
  for (const int threads : {1, 4, 8}) {
    ShardedHistogram sharded(10);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&values, &sharded, t, threads] {
        for (std::size_t i = static_cast<std::size_t>(t); i < values.size();
             i += static_cast<std::size_t>(threads))
          sharded.record(values[i]);
      });
    }
    for (auto& worker : pool) worker.join();

    EXPECT_EQ(sharded.count(), static_cast<long>(values.size()));
    const std::string text = sharded.snapshot().to_json().dump();
    if (reference.empty()) reference = text;
    EXPECT_EQ(text, reference) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace xlp::obs
