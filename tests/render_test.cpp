#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/render.hpp"

namespace xlp::topo {
namespace {

TEST(Render, PlainRow) {
  const std::string art = render_row(RowTopology(4));
  EXPECT_EQ(art,
            "0   1   2   3\n"
            "o---o---o---o\n");
}

TEST(Render, SingleExpressLink) {
  const std::string art = render_row(RowTopology(4, {{0, 2}}));
  EXPECT_EQ(art,
            "0   1   2   3\n"
            "o---o---o---o\n"
            "+=======+\n");
}

TEST(Render, PaperFigure2Placement) {
  const std::string art = render_row(RowTopology(8, {{1, 3}, {3, 7}}));
  EXPECT_EQ(art,
            "0   1   2   3   4   5   6   7\n"
            "o---o---o---o---o---o---o---o\n"
            "    +=======+===============+\n");
  // Note: (1,3) and (3,7) touch at router 3 and share no cut, so the
  // encoder packs them into one layer; the shared '+' marks the junction.
}

TEST(Render, OverlappingLinksUseSeparateLayers) {
  const std::string art = render_row(RowTopology(6, {{0, 3}, {2, 5}}));
  EXPECT_EQ(art,
            "0   1   2   3   4   5\n"
            "o---o---o---o---o---o\n"
            "+===========+\n"
            "        +===========+\n");
}

TEST(Render, WideRowsWrapIndexDigits) {
  const std::string art = render_row(RowTopology(12));
  EXPECT_NE(art.find("0   1   2   3   4   5   6   7   8   9   0   1"),
            std::string::npos);
}

TEST(Render, EveryRandomPlacementRendersConsistently) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const RowTopology row = test::random_valid_row(8, 4, rng);
    const std::string art = render_row(row);
    // Two header lines plus at most C-1 layers.
    const auto lines = std::count(art.begin(), art.end(), '\n');
    EXPECT_GE(lines, 2);
    EXPECT_LE(lines, 2 + row.max_cut_count() - 1 + 1);
    // The number of '+' characters is even-ish per link: each link draws
    // two endpoints but junctions can merge; just require presence.
    if (!row.express_links().empty())
      EXPECT_NE(art.find('='), std::string::npos);
  }
}

}  // namespace
}  // namespace xlp::topo
