#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace xlp {
namespace {

TEST(Csv, WritesHeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(Csv, QuotesSpecialCharacters) {
  CsvWriter csv({"field"});
  csv.add_row({"plain"});
  csv.add_row({"with,comma"});
  csv.add_row({"with\"quote"});
  csv.add_row({"with\nnewline"});
  std::ostringstream os;
  csv.write(os);
  EXPECT_EQ(os.str(),
            "field\nplain\n\"with,comma\"\n\"with\"\"quote\"\n"
            "\"with\nnewline\"\n");
}

TEST(Csv, ValidatesArity) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only one"}), PreconditionError);
  EXPECT_THROW(CsvWriter({}), PreconditionError);
}

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter csv({"x"});
  csv.add_row({"42"});
  const std::string path = testing::TempDir() + "/xlp_csv_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "x\n42\n");
}

TEST(Csv, WriteFileCreatesMissingParentDirectories) {
  CsvWriter csv({"x"});
  csv.add_row({"7"});
  const std::string path =
      testing::TempDir() + "/xlp_csv_deep/nested/file.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(Csv, WriteFileFailsGracefully) {
  // A regular file in the middle of the path cannot be turned into a
  // directory, so this fails even for privileged users (unlike a merely
  // missing directory, which write_file now creates).
  const std::string blocker = testing::TempDir() + "/xlp_csv_blocker";
  { std::ofstream(blocker) << "not a directory"; }
  CsvWriter csv({"x"});
  EXPECT_FALSE(csv.write_file(blocker + "/sub/file.csv"));
}

TEST(Csv, OutputDirFromEnvironment) {
  unsetenv("XLP_OUTPUT_DIR");
  EXPECT_TRUE(csv_output_dir().empty());
  setenv("XLP_OUTPUT_DIR", "/tmp/plots", 1);
  EXPECT_EQ(csv_output_dir(), "/tmp/plots");
  unsetenv("XLP_OUTPUT_DIR");
}

}  // namespace
}  // namespace xlp
