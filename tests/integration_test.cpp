#include <gtest/gtest.h>

#include "core/app_specific.hpp"
#include "core/c_sweep.hpp"
#include "core/drivers.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "route/deadlock.hpp"
#include "sim/throughput.hpp"
#include "topo/builders.hpp"
#include "traffic/app_models.hpp"
#include "util/numeric.hpp"

namespace xlp {
namespace {

/// One optimized 8x8 design shared by the integration tests (solving once
/// keeps the suite fast; the budget is half of Table 1's, plenty for n=8).
const core::SweepPoint& optimized_8x8() {
  static const core::SweepPoint point = [] {
    core::SweepOptions options;
    options.sa = core::SaParams{}.with_moves(5000);
    options.latency = latency::LatencyParams::zero_load();
    Rng rng(7);
    auto points = core::sweep_link_limits(8, options, rng);
    return points[core::best_point(points)];
  }();
  return point;
}

TEST(Integration, OptimizedDesignBeatsMeshAndHfbAnalytically) {
  // The headline: D&C_SA < HFB < Mesh in average latency on 8x8.
  const auto& best = optimized_8x8();
  const auto params = latency::LatencyParams::zero_load();
  const double mesh =
      latency::MeshLatencyModel(topo::make_mesh(8), params).average().total();
  const double hfb =
      latency::MeshLatencyModel(topo::make_hfb(8), params).average().total();
  const double dcsa = best.breakdown.total();
  EXPECT_LT(dcsa, hfb);
  EXPECT_LT(hfb, mesh);
  // Paper: 23.5% vs Mesh on the 8x8 network; demand the right ballpark.
  EXPECT_LT(dcsa, mesh * 0.85);
}

TEST(Integration, OptimizedDesignIsDeadlockFree) {
  const auto& best = optimized_8x8();
  const route::MeshRouting routing(best.design, route::HopWeights{});
  const route::ChannelDependencyGraph cdg(best.design, routing);
  EXPECT_FALSE(cdg.has_cycle());
}

TEST(Integration, SimulationConfirmsTheAnalyticOrdering) {
  const auto& best = optimized_8x8();
  const auto demand = traffic::parsec_model("canneal").traffic_matrix(8);
  sim::SimConfig config;
  config.warmup_cycles = 300;
  config.measure_cycles = 4000;
  config.drain_cycles = 4000;

  const auto mesh_stats = exp::simulate_design(topo::make_mesh(8), demand,
                                               config);
  const auto hfb_stats = exp::simulate_design(topo::make_hfb(8), demand,
                                              config);
  const auto dcsa_stats = exp::simulate_design(best.design, demand, config);

  EXPECT_TRUE(mesh_stats.drained);
  EXPECT_TRUE(dcsa_stats.drained);
  EXPECT_LT(dcsa_stats.avg_latency, mesh_stats.avg_latency);
  EXPECT_LT(dcsa_stats.avg_latency, hfb_stats.avg_latency * 1.05);
}

TEST(Integration, SimulationMatchesAnalyticWithinTolerance) {
  // At PARSEC loads the simulated latency should sit a little above the
  // zero-load analytic value (queueing) but well within the contention
  // allowance.
  const auto& best = optimized_8x8();
  const auto demand = traffic::parsec_model("blackscholes").traffic_matrix(8);
  sim::SimConfig config;
  config.warmup_cycles = 300;
  config.measure_cycles = 4000;
  config.drain_cycles = 4000;
  const auto stats = exp::simulate_design(best.design, demand, config);

  const latency::MeshLatencyModel model(best.design,
                                        latency::LatencyParams::zero_load());
  const auto analytic = model.weighted_average(demand.rates());
  EXPECT_GE(stats.avg_latency, analytic.total() * 0.98);
  EXPECT_LE(stats.avg_latency, analytic.total() * 1.20);
}

TEST(Integration, ThroughputOrderingMatchesSection54) {
  // Mesh > D&C_SA > HFB in saturation throughput under uniform random.
  sim::SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 1200;
  config.drain_cycles = 1200;
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 1.0);

  const auto& best = optimized_8x8();
  const sim::Network mesh(topo::make_mesh(8), route::HopWeights{});
  const sim::Network hfb(topo::make_hfb(8), route::HopWeights{});
  const sim::Network dcsa(best.design, route::HopWeights{});

  const double mesh_sat =
      find_saturation(mesh, shape, config, 0.05, 0.5).saturation_throughput;
  const double hfb_sat =
      find_saturation(hfb, shape, config, 0.05, 0.5).saturation_throughput;
  const double dcsa_sat =
      find_saturation(dcsa, shape, config, 0.05, 0.5).saturation_throughput;

  // Paper quantities: HFB keeps less than half of the Mesh's throughput,
  // D&C_SA restores more than three quarters of it and sits well above the
  // HFB. (Our model slightly favors the optimized design over the Mesh —
  // equal buffer *bits* give narrow-flit designs deeper VCs — so we do not
  // assert the strict Mesh > D&C_SA ordering; see EXPERIMENTS.md.)
  EXPECT_GT(mesh_sat, 1.5 * hfb_sat);
  EXPECT_GT(dcsa_sat, 1.3 * hfb_sat);
  EXPECT_GT(dcsa_sat, 0.75 * mesh_sat);
}

TEST(Integration, AppSpecificImprovesOnGeneralPurpose) {
  // Section 5.6.4: with the traffic known in advance, per-row/column
  // placement cuts additional latency versus the uniform design.
  const auto demand = traffic::parsec_model("dedup").traffic_matrix(8);

  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(1500);
  options.latency = latency::LatencyParams::zero_load();
  options.report_traffic = demand;

  Rng rng1(5);
  auto general = core::sweep_link_limits(8, options, rng1);
  const double general_best =
      general[core::best_point(general)].breakdown.total();

  Rng rng2(5);
  const auto app = core::solve_app_specific(demand, options, rng2);
  EXPECT_LE(app.breakdown.total(), general_best * 1.001);
}

TEST(Integration, SweepScalesTo16x16) {
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(800);
  options.latency = latency::LatencyParams::zero_load();
  Rng rng(3);
  const auto points = core::sweep_link_limits(16, options, rng);
  ASSERT_EQ(points.size(), 7u);  // C in {1..64}
  const auto& best = points[core::best_point(points)];
  const double mesh = latency::MeshLatencyModel(
                          topo::make_mesh(16), latency::LatencyParams::zero_load())
                          .average()
                          .total();
  // Paper: 36.4% reduction on 16x16; expect at least 25% with this budget.
  EXPECT_LT(best.breakdown.total(), mesh * 0.75);
}

TEST(Integration, ScenarioHelpersProduceConsistentDesigns) {
  const auto designs = exp::fixed_designs(8);
  ASSERT_EQ(designs.size(), 2u);
  EXPECT_EQ(designs[0].name, "Mesh");
  EXPECT_EQ(designs[1].name, "HFB");
  EXPECT_TRUE(designs[0].design.is_feasible());
  EXPECT_TRUE(designs[1].design.is_feasible());
  EXPECT_EQ(exp::paper_sa_params().total_moves, 10000);
}

}  // namespace
}  // namespace xlp
