// Tests of the placement service: canonical JSON / content hashing shared
// with the run ledger, the request model's kind-restricted identity, the
// persisted LRU result cache, and the batch server's dedup + determinism
// contract (identical requests -> byte-identical replies at any thread
// count, exactly one execution).

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "latency/model.hpp"
#include "obs/canonical.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"
#include "traffic/patterns.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/stopwatch.hpp"

namespace xlp::svc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "xlp_svc_" + name;
  fs::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------- canonical

TEST(CanonicalJson, SortsObjectKeysRecursively) {
  const obs::Json a = obs::Json::object()
                          .set("b", 1)
                          .set("a", obs::Json::object()
                                        .set("z", true)
                                        .set("y", "text"));
  const obs::Json b = obs::Json::object()
                          .set("a", obs::Json::object()
                                        .set("y", "text")
                                        .set("z", true))
                          .set("b", 1);
  EXPECT_EQ(obs::canonical_json(a), obs::canonical_json(b));
  EXPECT_EQ(obs::canonical_json(a),
            "{\"a\":{\"y\":\"text\",\"z\":true},\"b\":1}");
}

TEST(CanonicalJson, PreservesArrayOrder) {
  obs::Json doc = obs::Json::object();
  obs::Json arr = obs::Json::array();
  arr.push(3).push(1).push(2);
  doc.set("xs", std::move(arr));
  EXPECT_EQ(obs::canonical_json(doc), "{\"xs\":[3,1,2]}");
}

TEST(CanonicalJson, NumberFormattingIsStable) {
  // Integral doubles print without a fraction; non-integral doubles print
  // with round-trip precision — the properties the content hash rests on.
  const obs::Json doc = obs::Json::object()
                            .set("i", 4)
                            .set("d", 0.02)
                            .set("whole", 2.0);
  const std::string text = obs::canonical_json(doc);
  EXPECT_EQ(text, "{\"d\":0.02,\"i\":4,\"whole\":2}");
  // And it is a fixed point: parse + canonicalize again changes nothing.
  const auto reparsed = obs::Json::parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(obs::canonical_json(*reparsed), text);
}

TEST(Fnv1a64Hex, MatchesKnownVectors) {
  // FNV-1a 64: the empty string hashes to the offset basis.
  EXPECT_EQ(obs::fnv1a64_hex(""), "cbf29ce484222325");
  EXPECT_EQ(obs::fnv1a64_hex("a").size(), 16u);
  EXPECT_NE(obs::fnv1a64_hex("a"), obs::fnv1a64_hex("b"));
}

TEST(CanonicalJson, LedgerRunIdUsesCanonicalForm) {
  // Member insertion order must not change a ledger run id.
  const obs::Json p1 = obs::Json::object().set("n", 8).set("c", 4);
  const obs::Json p2 = obs::Json::object().set("c", 4).set("n", 8);
  EXPECT_EQ(obs::ledger_run_id("solve", p1, 7, "sha"),
            obs::ledger_run_id("solve", p2, 7, "sha"));
}

// ------------------------------------------------------------------ request

TEST(Request, IdIgnoresClientMemberOrder) {
  const auto a = obs::Json::parse(
      R"({"kind":"solve","n":8,"c":4,"method":"dcsa","moves":500,"seed":3})");
  const auto b = obs::Json::parse(
      R"({"seed":3,"moves":500,"method":"dcsa","c":4,"n":8,"kind":"solve"})");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(Request::from_json(*a).id(), Request::from_json(*b).id());
}

TEST(Request, IdRestrictedToFieldsTheKindConsumes) {
  Request solve;
  solve.kind = RequestKind::kSolve;
  Request solve2 = solve;
  solve2.load = 0.9;          // evaluate/simulate field: no effect on solve
  solve2.routing = "o1turn";  // simulate field: no effect either
  EXPECT_EQ(solve.id(), solve2.id());

  Request eval;
  eval.kind = RequestKind::kEvaluate;
  Request eval2 = eval;
  eval2.seed = 999;  // evaluate is analytic: the seed is not identity
  EXPECT_EQ(eval.id(), eval2.id());
  eval2.load = 0.5;  // but the load is
  EXPECT_NE(eval.id(), eval2.id());
}

TEST(Request, FromJsonRejectsUnknownAndMalformedFields) {
  const auto unknown = obs::Json::parse(R"({"kind":"solve","movse":5})");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_THROW((void)Request::from_json(*unknown), Error);
  const auto missing_kind = obs::Json::parse(R"({"n":8})");
  ASSERT_TRUE(missing_kind.has_value());
  EXPECT_THROW((void)Request::from_json(*missing_kind), Error);
  const auto wrong_type = obs::Json::parse(R"({"kind":"solve","n":"big"})");
  ASSERT_TRUE(wrong_type.has_value());
  EXPECT_THROW((void)Request::from_json(*wrong_type), Error);
}

TEST(Request, ValidateEnforcesRanges) {
  Request request;
  request.link_limit = 3;  // does not divide 256
  EXPECT_THROW(request.validate(), Error);
  request.link_limit = 4;
  request.method = "bogus";
  EXPECT_THROW(request.validate(), Error);
  request.method = "dcsa";
  EXPECT_NO_THROW(request.validate());
  request.kind = RequestKind::kEvaluate;
  request.workload = "not_a_workload";
  EXPECT_THROW(request.validate(), Error);
}

TEST(Request, EvaluateMatchesLatencyModel) {
  Request request;
  request.kind = RequestKind::kEvaluate;
  request.n = 8;
  request.link_limit = 4;
  request.links = "1-3,3-7";
  request.workload = "uniform_random";
  request.load = 0.02;
  const obs::Json payload = execute_request(request, nullptr);

  const topo::RowTopology row(8, {{1, 3}, {3, 7}});
  const latency::MeshLatencyModel model(topo::make_design(row, 4),
                                        latency::LatencyParams::zero_load());
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  const auto expected = model.weighted_average(demand.rates());
  ASSERT_NE(payload.find("total"), nullptr);
  EXPECT_DOUBLE_EQ(payload.find("total")->as_number(), expected.total());
}

// -------------------------------------------------------------------- cache

TEST(ResultCache, RoundTripsAndCountsHitsMisses) {
  obs::MetricsRegistry metrics;
  ResultCache cache(fresh_dir("rt"), 8, &metrics);
  const std::string id = "00000000000000aa";
  EXPECT_FALSE(cache.get(id).has_value());
  EXPECT_TRUE(cache.put(id, "{\"v\":1}"));
  const auto hit = cache.get(id);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"v\":1}");
  EXPECT_EQ(metrics.counter("svc.cache.hits"), 1);
  EXPECT_EQ(metrics.counter("svc.cache.misses"), 1);
}

TEST(ResultCache, PersistsAcrossReconstruction) {
  const std::string dir = fresh_dir("persist");
  {
    ResultCache cache(dir, 8, nullptr);
    EXPECT_TRUE(cache.put("00000000000000ab", "{\"v\":2}"));
  }
  ResultCache revived(dir, 8, nullptr);
  EXPECT_EQ(revived.size(), 1u);
  const auto hit = revived.get("00000000000000ab");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "{\"v\":2}");
}

TEST(ResultCache, EvictsLeastRecentlyUsedFromMemoryAndDisk) {
  const std::string dir = fresh_dir("lru");
  obs::MetricsRegistry metrics;
  ResultCache cache(dir, 2, &metrics);
  cache.put("00000000000000a1", "1");
  cache.put("00000000000000a2", "2");
  // Touch a1 so a2 becomes the LRU victim when a3 arrives.
  EXPECT_TRUE(cache.get("00000000000000a1").has_value());
  cache.put("00000000000000a3", "3");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.contains("00000000000000a2"));
  EXPECT_TRUE(cache.contains("00000000000000a1"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "00000000000000a2.json"));
  EXPECT_EQ(metrics.counter("svc.cache.evictions"), 1);
}

TEST(ResultCache, IgnoresForeignFilesOnRescan) {
  const std::string dir = fresh_dir("foreign");
  fs::create_directories(dir);
  ASSERT_TRUE(util::atomic_write_file(dir + "/notes.txt", "hi"));
  ASSERT_TRUE(util::atomic_write_file(dir + "/metrics.json", "{}"));
  ASSERT_TRUE(util::atomic_write_file(dir + "/00000000000000ac.json",
                                      "{\"v\":3}"));
  ResultCache cache(dir, 8, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("00000000000000ac"));
}

// ------------------------------------------------------------------- server

ServerOptions test_options(const std::string& dir,
                           obs::MetricsRegistry* metrics, int threads = 0) {
  ServerOptions options;
  options.cache_dir = dir;
  options.metrics = metrics;
  options.threads = threads;
  return options;
}

std::vector<Request> duplicate_solves(int copies) {
  Request request;
  request.kind = RequestKind::kSolve;
  request.n = 8;
  request.link_limit = 4;
  request.moves = 400;
  request.seed = 3;
  return std::vector<Request>(static_cast<std::size_t>(copies), request);
}

TEST(Server, BatchDuplicatesExecuteOnceAndShareBytes) {
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("dedupe"), &metrics, 4));
  const auto replies = server.serve_batch(duplicate_solves(4));
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(metrics.counter("svc.executed"), 1);
  EXPECT_FALSE(replies[0].cache_hit);
  for (std::size_t i = 1; i < replies.size(); ++i) {
    EXPECT_TRUE(replies[i].cache_hit);
    EXPECT_EQ(replies[i].payload_text, replies[0].payload_text);
  }
  EXPECT_EQ(server.requests_served(), 4);
}

TEST(Server, RepliesAreByteIdenticalAtAnyThreadCount) {
  // Fresh cache per thread count: both runs execute for real, and the
  // serialized reply documents must still match byte for byte.
  obs::MetricsRegistry m1, m4;
  Server one(test_options(fresh_dir("t1"), &m1, 1));
  Server four(test_options(fresh_dir("t4"), &m4, 4));
  const auto batch = sweep_batch(8, "dcsa", 400, 7);
  const auto r1 = one.serve_batch(batch);
  const auto r4 = four.serve_batch(batch);
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i)
    EXPECT_EQ(r1[i].to_text(), r4[i].to_text()) << "reply " << i;
}

TEST(Server, CachedReplyIsByteIdenticalToExecutedReply) {
  obs::MetricsRegistry metrics;
  const std::string dir = fresh_dir("replay");
  std::string executed;
  {
    Server server(test_options(dir, &metrics));
    executed = server.serve_batch(duplicate_solves(1))[0].payload_text;
  }
  Server revived(test_options(dir, &metrics));
  const auto replies = revived.serve_batch(duplicate_solves(1));
  EXPECT_TRUE(replies[0].cache_hit);
  EXPECT_EQ(replies[0].payload_text, executed);
  EXPECT_EQ(metrics.counter("svc.executed"), 1);  // never re-executed
}

TEST(Server, ConcurrentIdenticalResolvesExecuteOnce) {
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("inflight"), &metrics));
  const Request request = duplicate_solves(1)[0];
  std::vector<std::string> payloads(8);
  {
    std::vector<std::thread> clients;
    clients.reserve(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i)
      clients.emplace_back([&server, &request, &payloads, i] {
        payloads[i] = server.resolve(request).payload_text;
      });
    for (auto& t : clients) t.join();
  }
  EXPECT_EQ(metrics.counter("svc.executed"), 1);
  for (const auto& payload : payloads) EXPECT_EQ(payload, payloads[0]);
}

TEST(Server, ResubmittedSweepIsAtLeastTwiceAsFast) {
  // The acceptance scenario: an 8x8 C-sweep submitted twice. The second
  // pass is pure cache hits (microseconds vs real anneals), so the 2x bound
  // has orders of magnitude of margin.
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("speedup"), &metrics));
  const auto batch = sweep_batch(8, "dcsa", 2000, 1);
  Stopwatch cold_timer;
  (void)server.serve_batch(batch);
  const double cold = cold_timer.seconds();
  Stopwatch warm_timer;
  const auto warm_replies = server.serve_batch(batch);
  const double warm = warm_timer.seconds();
  EXPECT_EQ(metrics.counter("svc.executed"),
            static_cast<long>(batch.size()));
  for (const auto& reply : warm_replies) EXPECT_TRUE(reply.cache_hit);
  EXPECT_GE(cold, 2.0 * warm) << "cold=" << cold << "s warm=" << warm << "s";
}

TEST(Server, FailedRequestsAreNotCached) {
  obs::MetricsRegistry metrics;
  const std::string dir = fresh_dir("errors");
  Server server(test_options(dir, &metrics));
  Request bad;
  bad.kind = RequestKind::kEvaluate;
  bad.links = "1-99";  // parses, but 99 is out of range for n=8 at execute
  const Reply reply = server.resolve(bad);
  EXPECT_FALSE(reply.ok);
  EXPECT_EQ(metrics.counter("svc.errors"), 1);
  EXPECT_EQ(server.cache().size(), 0u);
  // The serialized reply carries the error, not a result.
  EXPECT_NE(reply.to_text().find("\"error\":"), std::string::npos);
}

TEST(Server, ServeTextHandlesObjectsArraysAndGarbage) {
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("text"), &metrics));
  EXPECT_NE(server.serve_text("not json").find("\"error\":"),
            std::string::npos);
  const std::string object_reply = server.serve_text(
      R"({"kind":"evaluate","n":4,"c":2,"workload":"transpose","load":0.01})");
  EXPECT_EQ(object_reply.front(), '{');
  EXPECT_NE(object_reply.find("\"result\":"), std::string::npos);
  // One bad element does not poison the batch: errors are replied in place.
  const std::string array_reply = server.serve_text(
      R"([{"kind":"evaluate","n":4,"c":2,"workload":"transpose","load":0.01},)"
      R"({"kind":"bogus"}])");
  EXPECT_EQ(array_reply.front(), '[');
  EXPECT_NE(array_reply.find("\"result\":"), std::string::npos);
  EXPECT_NE(array_reply.find("\"error\":"), std::string::npos);
}

TEST(Server, AppendsOneLedgerRecordPerRequestWithCacheHit) {
  const std::string dir = fresh_dir("ledger");
  obs::MetricsRegistry metrics;
  ServerOptions options = test_options(dir + "/cache", &metrics);
  options.ledger_path = dir + "/ledger.jsonl";
  Server server(options);
  (void)server.serve_batch(duplicate_solves(2));
  const auto records = obs::read_ledger(options.ledger_path);
  ASSERT_EQ(records.size(), 2u);
  int hits = 0;
  for (const auto& record : records) {
    const obs::Json* hit = record.find("cache_hit");
    ASSERT_NE(hit, nullptr);
    hits += hit->as_bool() ? 1 : 0;
    ASSERT_NE(record.find("subcommand"), nullptr);
    EXPECT_EQ(record.find("subcommand")->as_string(), "svc");
  }
  EXPECT_EQ(hits, 1);  // exactly the duplicate occurrence
}

// ------------------------------------------------------------ observability

TEST(Server, EmitsOneLifecycleEventPerRequestWithOutcomes) {
  const std::string dir = fresh_dir("events");
  obs::MetricsRegistry metrics;
  ServerOptions options = test_options(dir + "/cache", &metrics, 2);
  options.events_path = dir + "/server-events.jsonl";
  Server server(options);
  (void)server.serve_batch(duplicate_solves(3));   // miss + 2 batch dups
  (void)server.serve_batch(duplicate_solves(1));   // cache hit

  const auto text = util::read_file(options.events_path);
  ASSERT_TRUE(text.has_value());
  std::vector<obs::Json> events;
  std::istringstream in(*text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto record = obs::Json::parse(line);
    ASSERT_TRUE(record.has_value()) << line;
    events.push_back(std::move(*record));
  }
  ASSERT_EQ(events.size(), 4u);  // exactly one line per request served

  std::map<std::string, int> outcomes;
  for (const obs::Json& event : events) {
    // svc-events/1 contract: every record carries the full field set.
    ASSERT_NE(event.find("schema"), nullptr);
    EXPECT_EQ(event.find("schema")->as_string(), kEventsSchema);
    for (const char* key : {"request_id", "kind", "outcome", "ok",
                            "cache_corrupt", "received_s", "queue_wait_ns",
                            "execute_ns", "end_to_end_ns"})
      EXPECT_NE(event.find(key), nullptr) << key;
    EXPECT_EQ(event.find("kind")->as_string(), "solve");
    EXPECT_TRUE(event.find("ok")->as_bool());
    ++outcomes[event.find("outcome")->as_string()];
  }
  EXPECT_EQ(outcomes["miss"], 1);
  EXPECT_EQ(outcomes["batch"], 2);
  EXPECT_EQ(outcomes["cache"], 1);
}

TEST(Server, StatsSnapshotIsConsistentWithServedRequests) {
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("stats"), &metrics, 2));
  (void)server.serve_batch(duplicate_solves(3));
  (void)server.serve_batch(duplicate_solves(1));

  const obs::Json snapshot = server.stats_snapshot();
  ASSERT_NE(snapshot.find("latency"), nullptr);
  const obs::Json* e2e = snapshot.find("latency")->find("end_to_end");
  ASSERT_NE(e2e, nullptr);
  // The core invariant: exactly one end-to-end sample per request served,
  // whatever the dedup outcome.
  EXPECT_EQ(static_cast<long>(e2e->find("count")->as_number()),
            server.requests_served());
  EXPECT_EQ(static_cast<long>(
                snapshot.find("requests_served")->as_number()),
            4);
  EXPECT_EQ(static_cast<long>(
                snapshot.find("kinds")->find("solve")->as_number()),
            4);
  const obs::Json* dedup = snapshot.find("dedup");
  ASSERT_NE(dedup, nullptr);
  EXPECT_EQ(static_cast<long>(dedup->find("executed")->as_number()), 1);
  EXPECT_EQ(static_cast<long>(dedup->find("batch_hits")->as_number()), 2);
  EXPECT_EQ(static_cast<long>(dedup->find("cache_hits")->as_number()), 1);
  EXPECT_DOUBLE_EQ(dedup->find("hit_rate")->as_number(), 0.75);
  // Execution histogram counts only real executions.
  EXPECT_EQ(static_cast<long>(snapshot.find("latency")
                                  ->find("execute")
                                  ->find("count")
                                  ->as_number()),
            1);
}

TEST(Server, StatsRequestIsAnsweredFromMemoryOverBothEntryPoints) {
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("statsreq"), &metrics, 2));
  (void)server.serve_batch(duplicate_solves(2));
  const long executed_before = metrics.counter("svc.executed");
  const long served_before = server.requests_served();

  // Object document (what `xlp top` sends over the socket transport).
  const std::string reply_text = server.serve_text(stats_request_text());
  const auto reply = obs::Json::parse(reply_text);
  ASSERT_TRUE(reply.has_value());
  const obs::Json* result = reply->find("result");
  ASSERT_NE(result, nullptr) << reply_text;
  EXPECT_EQ(result->find("kind")->as_string(), "stats");
  EXPECT_EQ(static_cast<long>(result->find("requests_served")->as_number()),
            served_before);

  // Inside a batch: the stats element is answered in place while the rest
  // of the batch is served normally.
  Request probe;
  probe.kind = RequestKind::kStats;
  std::vector<Request> batch = duplicate_solves(1);
  batch.push_back(probe);
  const auto replies = server.serve_batch(batch);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(replies[1].ok);
  EXPECT_NE(replies[1].payload_text.find("\"kind\":\"stats\""),
            std::string::npos);

  // Stats probes never execute, never count as served, never enter the
  // latency histograms — only the solve in the second batch did.
  EXPECT_EQ(metrics.counter("svc.executed"), executed_before);
  EXPECT_EQ(server.requests_served(), served_before + 1);
  EXPECT_EQ(metrics.counter("svc.stats"), 2);
  const obs::Json snapshot = server.stats_snapshot();
  EXPECT_EQ(static_cast<long>(snapshot.find("latency")
                                  ->find("end_to_end")
                                  ->find("count")
                                  ->as_number()),
            server.requests_served());
}

// ------------------------------------------------------------------- client

TEST(Client, SweepBatchCoversFeasibleLimitsOnly) {
  const auto batch = sweep_batch(8, "dcsa", 500, 1);
  ASSERT_FALSE(batch.empty());
  for (const auto& request : batch) {
    EXPECT_EQ(request.kind, RequestKind::kSolve);
    EXPECT_EQ(256 % request.link_limit, 0);
    EXPECT_NO_THROW(request.validate());
  }
}

TEST(Client, QueueRoundTripThroughServer) {
  const std::string root = fresh_dir("queue");
  const std::string queue_dir = root + "/q";
  obs::MetricsRegistry metrics;
  ServerOptions options = test_options(root + "/cache", &metrics);
  Server server(options);

  const auto batch = sweep_batch(4, "dcsa", 200, 1);
  ASSERT_TRUE(queue_submit(queue_dir, "job1", batch_to_text(batch)));
  EXPECT_EQ(server.run_queue(queue_dir, /*once=*/true, 0.01), 1);
  const std::string reply = queue_wait(queue_dir, "job1", 5.0);
  EXPECT_NE(reply.find("\"result\":"), std::string::npos);
  EXPECT_EQ(reply.find("\"error\":"), std::string::npos);
  // The submission was consumed and the reply removed by queue_wait.
  EXPECT_FALSE(fs::exists(fs::path(queue_dir) / "inbox" / "job1.json"));
  EXPECT_FALSE(fs::exists(fs::path(queue_dir) / "outbox" / "job1.json"));
}

TEST(Client, QueueWaitTimeoutNamesRequestAndInboxState) {
  const std::string root = fresh_dir("queue_timeout");
  const std::string queue_dir = root + "/q";
  ASSERT_TRUE(queue_submit(queue_dir, "stuck", "[]"));
  // No server running: the timeout error must say which request timed out
  // and that the submission is still sitting in the inbox.
  try {
    (void)queue_wait(queue_dir, "stuck", 0.05);
    FAIL() << "queue_wait should have thrown on timeout";
  } catch (const Error& error) {
    EXPECT_EQ(error.code(), ErrorCode::kState);
    const std::string what = error.what();
    EXPECT_NE(what.find("stuck"), std::string::npos) << what;
    EXPECT_NE(what.find("waited"), std::string::npos) << what;
    EXPECT_NE(what.find("still in inbox"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace xlp::svc
