#pragma once

#include <limits>
#include <vector>

#include "route/directional_paths.hpp"
#include "topo/connection_matrix.hpp"
#include "topo/row_topology.hpp"
#include "util/rng.hpp"

namespace xlp::test {

/// Reference implementation of the paper's routing computation: two
/// Floyd–Warshall passes over the full row graph, each with the opposite
/// direction's edges set to infinite weight (Section 4.5.1 verbatim).
/// O(n^3) and obviously correct; production code uses a DAG DP instead.
class ReferenceDirectionalPaths {
 public:
  ReferenceDirectionalPaths(const topo::RowTopology& row,
                            route::HopWeights weights)
      : n_(row.size()),
        cost_(static_cast<std::size_t>(n_) * n_,
              std::numeric_limits<double>::infinity()) {
    // Rightward pass.
    run_pass(row, weights, /*rightward=*/true);
    run_pass(row, weights, /*rightward=*/false);
    for (int i = 0; i < n_; ++i) at(i, i) = 0.0;
  }

  [[nodiscard]] double cost(int i, int j) const {
    return cost_[static_cast<std::size_t>(i) * n_ + j];
  }

 private:
  double& at(int i, int j) {
    return cost_[static_cast<std::size_t>(i) * n_ + j];
  }

  void run_pass(const topo::RowTopology& row, route::HopWeights weights,
                bool rightward) {
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> d(static_cast<std::size_t>(n_) * n_, inf);
    auto dd = [&](int i, int j) -> double& {
      return d[static_cast<std::size_t>(i) * n_ + j];
    };
    for (int i = 0; i < n_; ++i) dd(i, i) = 0.0;
    for (const topo::RowLink& link : row.all_links()) {
      const double w = weights.link_cost(link.length());
      if (rightward)
        dd(link.lo, link.hi) = std::min(dd(link.lo, link.hi), w);
      else
        dd(link.hi, link.lo) = std::min(dd(link.hi, link.lo), w);
    }
    for (int k = 0; k < n_; ++k)
      for (int i = 0; i < n_; ++i)
        for (int j = 0; j < n_; ++j)
          if (dd(i, k) + dd(k, j) < dd(i, j)) dd(i, j) = dd(i, k) + dd(k, j);
    for (int i = 0; i < n_; ++i)
      for (int j = 0; j < n_; ++j)
        if (rightward ? i < j : i > j) at(i, j) = dd(i, j);
  }

  int n_;
  std::vector<double> cost_;
};

/// Random valid placement for P̄(n, C): decode of a random connection
/// matrix (by the reachability property this covers the whole valid space).
inline topo::RowTopology random_valid_row(int n, int link_limit, Rng& rng,
                                          double density = 0.5) {
  return topo::ConnectionMatrix::random(n, link_limit, rng, density).decode();
}

}  // namespace xlp::test
