#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "test_util.hpp"
#include "topo/connection_matrix.hpp"
#include "util/check.hpp"

namespace xlp::topo {
namespace {

TEST(ConnectionMatrix, DimensionsMatchTheFormulation) {
  const ConnectionMatrix m(8, 4);
  EXPECT_EQ(m.layers(), 3);     // C - 1
  EXPECT_EQ(m.interior(), 6);   // n - 2
  EXPECT_EQ(m.bit_count(), 18);
}

TEST(ConnectionMatrix, DegenerateCasesHaveNoBits) {
  EXPECT_EQ(ConnectionMatrix(8, 1).bit_count(), 0);  // C=1: locals only
  EXPECT_EQ(ConnectionMatrix(2, 4).bit_count(), 0);  // no interior router
  EXPECT_EQ(ConnectionMatrix(2, 1).decode(), RowTopology(2));
}

TEST(ConnectionMatrix, RejectsBadArguments) {
  EXPECT_THROW(ConnectionMatrix(1, 2), PreconditionError);
  EXPECT_THROW(ConnectionMatrix(4, 0), PreconditionError);
  ConnectionMatrix m(8, 4);
  EXPECT_THROW(m.bit(3, 0), PreconditionError);
  EXPECT_THROW(m.bit(0, 6), PreconditionError);
  EXPECT_THROW(m.flip_flat(18), PreconditionError);
  EXPECT_THROW(m.flip_flat(-1), PreconditionError);
}

TEST(ConnectionMatrix, EmptyMatrixDecodesToPlainRow) {
  const ConnectionMatrix m(8, 4);
  EXPECT_EQ(m.decode(), RowTopology(8));
}

TEST(ConnectionMatrix, PaperFigure2Decode) {
  // Figure 2: P̄(8,4); top layer has the connection point at router 3
  // (1-based) set, making an express link router 2 -> router 4; another
  // layer has points at routers 5,6,7 set, making the link 4 -> 8.
  // In 0-based coordinates: bit at interior index 1 (router 2) in layer 0,
  // bits at interior indices 3,4,5 (routers 4,5,6) in layer 1.
  ConnectionMatrix m(8, 4);
  m.set_bit(0, 1, true);
  for (int i = 3; i <= 5; ++i) m.set_bit(1, i, true);
  const RowTopology row = m.decode();
  EXPECT_EQ(row.express_links(), (std::vector<RowLink>{{1, 3}, {3, 7}}));
  EXPECT_TRUE(row.fits_link_limit(4));
}

TEST(ConnectionMatrix, SingleBitMakesTwoHopLink) {
  ConnectionMatrix m(8, 2);
  m.set_bit(0, 0, true);  // interior router 1
  EXPECT_EQ(m.decode().express_links(), (std::vector<RowLink>{{0, 2}}));
}

TEST(ConnectionMatrix, FullLayerMakesEndToEndLink) {
  ConnectionMatrix m(8, 2);
  for (int i = 0; i < 6; ++i) m.set_bit(0, i, true);
  EXPECT_EQ(m.decode().express_links(), (std::vector<RowLink>{{0, 7}}));
}

TEST(ConnectionMatrix, GapSplitsRuns) {
  ConnectionMatrix m(8, 2);
  m.set_bit(0, 0, true);
  m.set_bit(0, 1, true);
  // gap at interior 2
  m.set_bit(0, 3, true);
  EXPECT_EQ(m.decode().express_links(),
            (std::vector<RowLink>{{0, 3}, {3, 5}}));
}

TEST(ConnectionMatrix, FlatAndCoordinateBitsAgree) {
  ConnectionMatrix m(8, 4);
  m.flip_flat(7);  // layer 1, interior 1
  EXPECT_TRUE(m.bit(1, 1));
  EXPECT_TRUE(m.bit_flat(7));
  m.flip_bit(1, 1);
  EXPECT_FALSE(m.bit_flat(7));
}

TEST(ConnectionMatrix, ToStringShowsLayers) {
  ConnectionMatrix m(5, 3);
  m.set_bit(0, 0, true);
  m.set_bit(1, 2, true);
  EXPECT_EQ(m.to_string(), "100|001");
}

// ---------------------------------------------------------------------------
// Property suites over (n, C): the two halves of the paper's claim that the
// connection-matrix space is exactly the valid-placement space.

using SizeLimit = std::tuple<int, int>;

class MatrixProperty : public ::testing::TestWithParam<SizeLimit> {};

TEST_P(MatrixProperty, EveryRandomMatrixDecodesToValidPlacement) {
  const auto [n, limit] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + limit));
  for (int trial = 0; trial < 200; ++trial) {
    for (double density : {0.1, 0.5, 0.9}) {
      const auto m = ConnectionMatrix::random(n, limit, rng, density);
      const RowTopology row = m.decode();
      EXPECT_TRUE(row.fits_link_limit(limit))
          << "n=" << n << " C=" << limit << " m=" << m.to_string();
      for (const RowLink& link : row.express_links())
        EXPECT_GE(link.length(), 2);
    }
  }
}

TEST_P(MatrixProperty, EveryValidPlacementIsReachable) {
  // encode() then decode() must reproduce the same express-link multiset:
  // the constructive proof that no valid placement is lost.
  const auto [n, limit] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 7919 + limit));
  for (int trial = 0; trial < 200; ++trial) {
    const RowTopology row = test::random_valid_row(n, limit, rng);
    const auto encoded = ConnectionMatrix::encode(row, limit);
    EXPECT_EQ(encoded.decode(), row) << row.to_string();
  }
}

TEST_P(MatrixProperty, FlippingAnyBitStaysValid) {
  const auto [n, limit] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 31 + limit));
  ConnectionMatrix m = ConnectionMatrix::random(n, limit, rng, 0.5);
  for (int bit = 0; bit < m.bit_count(); ++bit) {
    m.flip_flat(bit);
    EXPECT_TRUE(m.decode().fits_link_limit(limit));
    m.flip_flat(bit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLimits, MatrixProperty,
    ::testing::Values(SizeLimit{4, 2}, SizeLimit{4, 4}, SizeLimit{8, 2},
                      SizeLimit{8, 3}, SizeLimit{8, 4}, SizeLimit{8, 16},
                      SizeLimit{16, 2}, SizeLimit{16, 4}, SizeLimit{16, 8},
                      SizeLimit{5, 3}, SizeLimit{7, 2}, SizeLimit{3, 2}),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_C" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ConnectionMatrixEncode, RejectsOverLimitPlacement) {
  const RowTopology row(8, {{0, 4}, {1, 5}, {2, 6}});  // max cut 4
  EXPECT_THROW(ConnectionMatrix::encode(row, 2), PreconditionError);
  EXPECT_NO_THROW(ConnectionMatrix::encode(row, 4));
}

TEST(ConnectionMatrixEncode, HandlesTouchingLinksInOneLayer) {
  // (0,2) and (2,4) share router 2 but no cut; one layer must suffice.
  const RowTopology row(6, {{0, 2}, {2, 4}});
  const auto m = ConnectionMatrix::encode(row, 2);
  EXPECT_EQ(m.decode(), row);
}

TEST(ConnectionMatrixEncode, HandlesDuplicateParallelLinks) {
  const RowTopology row(6, {{1, 4}, {1, 4}});
  const auto m = ConnectionMatrix::encode(row, 3);
  EXPECT_EQ(m.decode(), row);
  EXPECT_THROW(ConnectionMatrix::encode(row, 2), PreconditionError);
}

TEST(ConnectionMatrixEncode, PaperSolutionRoundTrips) {
  const RowTopology paper_best(8, {{1, 3}, {3, 7}});
  const auto m = ConnectionMatrix::encode(paper_best, 4);
  EXPECT_EQ(m.decode(), paper_best);
}

TEST(ConnectionMatrixRandom, DensityZeroAndOne) {
  Rng rng(1);
  const auto empty = ConnectionMatrix::random(8, 4, rng, 0.0);
  EXPECT_EQ(empty.decode(), RowTopology(8));
  const auto full = ConnectionMatrix::random(8, 4, rng, 1.0);
  // All bits set: every layer is the end-to-end link.
  EXPECT_EQ(full.decode().express_links(),
            (std::vector<RowLink>{{0, 7}, {0, 7}, {0, 7}}));
}

}  // namespace
}  // namespace xlp::topo
