// Cross-cutting invariants exercised over broad parameter sweeps: the
// simulator under every routing mode and topology class, exhaustive
// connection-matrix enumeration on small problems, BFS cross-checks of the
// routing tables, and differential checks of the analytic model.

#include <gtest/gtest.h>

#include <queue>
#include <tuple>

#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "power/model.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

// ---------------------------------------------------------------------------
// Simulator invariants across modes and topologies

struct SimCase {
  const char* design_name;
  traffic::Pattern pattern;
  double load;
  sim::RoutingMode routing;
  bool vec;
};

topo::ExpressMesh design_by_name(const std::string& name) {
  if (name == "mesh") return topo::make_mesh(8);
  if (name == "hfb") return topo::make_hfb(8);
  Rng rng(99);
  return topo::make_design(test::random_valid_row(8, 4, rng), 4);
}

class SimInvariants
    : public ::testing::TestWithParam<
          std::tuple<const char*, traffic::Pattern, sim::RoutingMode, bool>> {
};

TEST_P(SimInvariants, HoldAtLowLoad) {
  const auto [name, pattern, routing, vec] = GetParam();
  const topo::ExpressMesh design = design_by_name(name);
  const auto demand =
      traffic::TrafficMatrix::from_pattern(pattern, 8, 0.015);

  sim::SimConfig config;
  config.routing = routing;
  config.virtual_express_bypass = vec;
  config.warmup_cycles = 200;
  config.measure_cycles = 2500;
  config.drain_cycles = 5000;
  const auto stats = exp::simulate_design(design, demand, config);

  // Conservation and liveness.
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.packets_finished, stats.packets_offered);
  EXPECT_GT(stats.packets_finished, 50);

  // Latency floor: nothing beats the fastest possible single-hop packet.
  EXPECT_GE(stats.avg_latency, 7.0);
  EXPECT_LE(stats.p50_latency, stats.avg_latency * 1.5);

  // Activity consistency: every flit read was written; channel flits are
  // the non-ejection grants.
  long channel_total = 0;
  for (const long f : stats.channel_flits) channel_total += f;
  EXPECT_LE(channel_total, stats.activity.crossbar_traversals);
  EXPECT_GT(stats.activity.buffer_writes, 0);
  EXPECT_NEAR(static_cast<double>(stats.activity.buffer_reads),
              static_cast<double>(stats.activity.buffer_writes),
              0.1 * stats.activity.buffer_writes);

  // Hops bounded by the (row + column) diameter.
  EXPECT_LE(stats.avg_hops, 14.0);
  EXPECT_GE(stats.avg_hops, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants,
    ::testing::Combine(
        ::testing::Values("mesh", "hfb", "random"),
        ::testing::Values(traffic::Pattern::kUniformRandom,
                          traffic::Pattern::kTranspose,
                          traffic::Pattern::kTornado),
        ::testing::Values(sim::RoutingMode::kXY, sim::RoutingMode::kYX,
                          sim::RoutingMode::kO1Turn),
        ::testing::Values(false, true)));

TEST(SimDeterminism, SameSeedSameStats) {
  const auto design = topo::make_hfb(8);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.03);
  sim::SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 2000;
  config.seed = 77;
  const auto a = exp::simulate_design(design, demand, config);
  const auto b = exp::simulate_design(design, demand, config);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.packets_offered, b.packets_offered);
  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);

  config.seed = 78;
  const auto c = exp::simulate_design(design, demand, config);
  EXPECT_NE(a.packets_offered, c.packets_offered);
}

TEST(SimConfidence, IntervalShrinksWithMoreCycles) {
  const auto design = topo::make_mesh(8);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.05);
  sim::SimConfig small;
  small.warmup_cycles = 200;
  small.measure_cycles = 2000;
  sim::SimConfig large = small;
  large.measure_cycles = 16000;
  large.drain_cycles = 30000;
  const auto a = exp::simulate_design(design, demand, small);
  const auto b = exp::simulate_design(design, demand, large);
  EXPECT_GT(a.ci95_latency, 0.0);
  EXPECT_GT(b.ci95_latency, 0.0);
  EXPECT_LT(b.ci95_latency, a.ci95_latency);
  // The long run's mean should sit inside (a generous multiple of) the
  // short run's interval.
  EXPECT_NEAR(a.avg_latency, b.avg_latency, 4.0 * a.ci95_latency + 0.5);
}

// ---------------------------------------------------------------------------
// Exhaustive small-space checks

TEST(Exhaustive, EveryMatrixDecodesValidAndRoundTrips) {
  for (const auto& [n, limit] :
       {std::pair{4, 2}, std::pair{4, 3}, std::pair{5, 2}, std::pair{6, 2},
        std::pair{5, 3}}) {
    topo::ConnectionMatrix m(n, limit);
    const int bits = m.bit_count();
    ASSERT_LE(bits, 12);
    for (long code = 0; code < (1L << bits); ++code) {
      for (int b = 0; b < bits; ++b)
        m.set_bit(b / m.interior(), b % m.interior(), (code >> b) & 1);
      const topo::RowTopology row = m.decode();
      ASSERT_TRUE(row.fits_link_limit(limit))
          << "n=" << n << " C=" << limit << " code=" << code;
      const auto re = topo::ConnectionMatrix::encode(row, limit);
      ASSERT_EQ(re.decode(), row);
    }
  }
}

TEST(Exhaustive, DistinctTopologyCountMatchesHandCount) {
  // P̄(4,2): express candidates (0,2),(1,3),(0,3); capacity 1 express per
  // cut. Valid sets: {}, {(0,2)}, {(1,3)}, {(0,3)}, {(0,2),(1,3)}? cuts of
  // (0,2)={0,1}, (1,3)={1,2} overlap at cut 1 -> invalid. So 4 distinct
  // placements. The 2^2 = 4 matrices must cover exactly these.
  topo::ConnectionMatrix m(4, 2);
  std::set<std::string> seen;
  for (int code = 0; code < 4; ++code) {
    m.set_bit(0, 0, code & 1);
    m.set_bit(0, 1, (code >> 1) & 1);
    seen.insert(m.decode().to_string());
  }
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count("4:[]"));
  EXPECT_TRUE(seen.count("4:[(0,2)]"));
  EXPECT_TRUE(seen.count("4:[(1,3)]"));
  EXPECT_TRUE(seen.count("4:[(0,3)]"));
}

// ---------------------------------------------------------------------------
// BFS cross-check of the directional shortest paths

int bfs_min_hops(const topo::RowTopology& row, int from, int to) {
  // Monotone graph: only edges in the direction of travel.
  const int n = row.size();
  std::vector<int> dist(static_cast<std::size_t>(n), -1);
  std::queue<int> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push(from);
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop();
    const auto neighbors =
        from < to ? row.neighbors_right(cur) : row.neighbors_left(cur);
    for (const int next : neighbors) {
      const bool in_range = from < to ? next <= to : next >= to;
      if (!in_range || dist[static_cast<std::size_t>(next)] >= 0) continue;
      dist[static_cast<std::size_t>(next)] =
          dist[static_cast<std::size_t>(cur)] + 1;
      queue.push(next);
    }
  }
  return dist[static_cast<std::size_t>(to)];
}

TEST(BfsCrossCheck, HopsMatchBfsOnMonotoneGraph) {
  // With Tr > 0 and fixed Manhattan distance, min cost == min hops; BFS on
  // the monotone graph is an independent oracle.
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const topo::RowTopology row = test::random_valid_row(10, 4, rng);
    const route::DirectionalShortestPaths paths(row, route::HopWeights{});
    for (int i = 0; i < 10; ++i)
      for (int j = 0; j < 10; ++j) {
        if (i == j) continue;
        EXPECT_EQ(paths.hops(i, j), bfs_min_hops(row, i, j))
            << row.to_string() << " " << i << "->" << j;
      }
  }
}

// ---------------------------------------------------------------------------
// Differential checks of the analytic model

TEST(Differential, WeightedAverageMatchesBruteForce) {
  Rng rng(23);
  const topo::RowTopology row = test::random_valid_row(6, 3, rng);
  const topo::ExpressMesh mesh(row, 3, 64);
  const latency::MeshLatencyModel model(mesh,
                                        latency::LatencyParams::zero_load());
  const int nodes = mesh.node_count();
  std::vector<double> rates(static_cast<std::size_t>(nodes) * nodes, 0.0);
  for (int s = 0; s < nodes; ++s)
    for (int d = 0; d < nodes; ++d)
      if (s != d)
        rates[static_cast<std::size_t>(s) * nodes + d] =
            rng.uniform01() * 0.01;

  double num = 0.0, den = 0.0;
  for (int s = 0; s < nodes; ++s)
    for (int d = 0; d < nodes; ++d) {
      if (s == d) continue;
      const double w = rates[static_cast<std::size_t>(s) * nodes + d];
      num += w * model.pair_head_latency(s, d);
      den += w;
    }
  EXPECT_NEAR(model.weighted_average(rates).head, num / den, 1e-9);
}

TEST(Differential, RowWeightsMatchFlowEnumeration) {
  Rng rng(29);
  traffic::TrafficMatrix demand(4);
  for (int s = 0; s < 16; ++s)
    for (int d = 0; d < 16; ++d)
      if (s != d) demand.set_rate(s, d, rng.uniform01() * 0.01);

  for (int y = 0; y < 4; ++y) {
    const auto w = demand.row_weights(y);
    for (int a = 0; a < 4; ++a)
      for (int b = 0; b < 4; ++b) {
        if (a == b) continue;
        double expected = 0.0;
        for (int d = 0; d < 16; ++d)
          if (d % 4 == b) expected += demand.rate(y * 4 + a, d);
        EXPECT_NEAR(w[static_cast<std::size_t>(a) * 4 + b], expected, 1e-12);
      }
  }
}

// ---------------------------------------------------------------------------
// Power model monotonicity

TEST(PowerMonotonicity, MoreActivityMoreDynamic) {
  const auto mesh = topo::make_mesh(8);
  sim::ActivityCounters low, high;
  low.buffer_writes = low.buffer_reads = low.crossbar_traversals = 100;
  low.link_flit_units = 100;
  low.measured_cycles = 1000;
  low.flit_bits = 256;
  high = low;
  high.buffer_writes *= 3;
  const auto p_low = power::evaluate_power(mesh, low, 40960);
  const auto p_high = power::evaluate_power(mesh, high, 40960);
  EXPECT_GT(p_high.dynamic_buffer_w, p_low.dynamic_buffer_w);
  EXPECT_DOUBLE_EQ(p_high.dynamic_link_w, p_low.dynamic_link_w);
}

TEST(PowerMonotonicity, CliqueHasMoreCrossbarLeakageThanMeshAtSameWidth) {
  // At *equal* width, more ports must mean more b*k^2 leakage; the paper's
  // argument is that express designs do not keep the same width.
  const topo::ExpressMesh mesh(topo::RowTopology(8), 4, 64);
  const topo::ExpressMesh clique(topo::make_flattened_butterfly_row(8), 16,
                                 64);
  sim::ActivityCounters idle;
  idle.measured_cycles = 1;
  idle.flit_bits = 64;
  const auto p_mesh = power::evaluate_power(mesh, idle, 40960);
  const auto p_clique = power::evaluate_power(clique, idle, 40960);
  EXPECT_GT(p_clique.static_crossbar_w, p_mesh.static_crossbar_w);
  EXPECT_DOUBLE_EQ(p_clique.static_buffer_w, p_mesh.static_buffer_w);
}

}  // namespace
}  // namespace xlp
