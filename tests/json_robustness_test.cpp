// Malformed-input corpus for obs::Json::parse: the parser backs every
// loader that reads artifacts off disk (checkpoints, bench baselines,
// traces), so truncated, hostile or lossy documents must fail cleanly —
// nullopt with a useful error offset — never crash or hang.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/json.hpp"

namespace xlp::obs {
namespace {

TEST(JsonRobustness, TruncatedDocumentsFailCleanly) {
  // Every proper prefix of a small but representative document must be
  // rejected (empty string included).
  const std::string doc =
      R"({"schema":"xlp-ckpt/1","values":[1,2.5,-3e2],"ok":true,"s":"a\nb"})";
  for (std::size_t len = 0; len < doc.size(); ++len) {
    const std::string prefix = doc.substr(0, len);
    EXPECT_FALSE(Json::parse(prefix).has_value())
        << "prefix of length " << len << " parsed: " << prefix;
  }
  EXPECT_TRUE(Json::parse(doc).has_value());
}

TEST(JsonRobustness, ErrorOffsetPointsIntoDocument) {
  std::size_t offset = 9999;
  EXPECT_FALSE(Json::parse(R"({"a": 1, "b": })", &offset).has_value());
  EXPECT_LE(offset, std::string(R"({"a": 1, "b": })").size());
  EXPECT_GT(offset, 0u);
}

TEST(JsonRobustness, DeepNestingIsRejectedNotStackOverflow) {
  // Way past the parser's depth cap: must return nullopt, not crash.
  const int depth = 100000;
  std::string arrays(depth, '[');
  arrays.append(depth, ']');
  EXPECT_FALSE(Json::parse(arrays).has_value());

  std::string objects;
  for (int i = 0; i < depth; ++i) objects += "{\"k\":";
  objects += "1";
  objects.append(depth, '}');
  EXPECT_FALSE(Json::parse(objects).has_value());
}

TEST(JsonRobustness, ModerateNestingStillParses) {
  const int depth = 64;  // well inside the cap
  std::string text(depth, '[');
  text.append(depth, ']');
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_array());
}

TEST(JsonRobustness, NonFiniteNumbersRoundTripAsNull) {
  // JSON has no NaN/Inf; the dumper must emit null rather than tokens the
  // parser (or any other reader) would choke on.
  const Json doc = Json::object()
                       .set("a", Json(std::nan("")))
                       .set("b", Json(HUGE_VAL))
                       .set("c", Json(-HUGE_VAL))
                       .set("fine", Json(1.5));
  const std::string text = doc.dump();
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  const auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->find("a")->is_null());
  EXPECT_TRUE(parsed->find("b")->is_null());
  EXPECT_TRUE(parsed->find("c")->is_null());
  EXPECT_DOUBLE_EQ(parsed->find("fine")->as_number(), 1.5);

  // Bare non-finite tokens are not valid JSON input either.
  EXPECT_FALSE(Json::parse("NaN").has_value());
  EXPECT_FALSE(Json::parse("Infinity").has_value());
  EXPECT_FALSE(Json::parse("-Infinity").has_value());
}

TEST(JsonRobustness, DuplicateKeysKeepFirstViaFind) {
  // The ordered-members representation keeps both entries; find() must be
  // deterministic (first wins), so loaders cannot be confused into
  // honouring a smuggled second value.
  const auto parsed = Json::parse(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->find("k")->as_long(), 1);
}

TEST(JsonRobustness, GarbageAndTrailingContentRejected) {
  EXPECT_FALSE(Json::parse("not json").has_value());
  EXPECT_FALSE(Json::parse("{} trailing").has_value());
  EXPECT_FALSE(Json::parse("[1,]").has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(Json::parse("\"unterminated").has_value());
  EXPECT_FALSE(Json::parse("{'single': 1}").has_value());
  EXPECT_FALSE(Json::parse("\"bad \\q escape\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\u12g4\"").has_value());
  EXPECT_FALSE(Json::parse("-").has_value());
  EXPECT_FALSE(Json::parse("+1").has_value());
}

TEST(JsonRobustness, UnicodeEscapesDecodeToUtf8) {
  const auto parsed = Json::parse(R"("\u0041\u00e9\u20ac")");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), "A\xC3\xA9\xE2\x82\xAC");
}

}  // namespace
}  // namespace xlp::obs
