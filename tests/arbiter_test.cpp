#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "sim/simulator.hpp"
#include "sim/throughput.hpp"
#include "topo/builders.hpp"

namespace xlp::sim {
namespace {

SimConfig config_with(Arbiter arbiter) {
  SimConfig config;
  config.arbiter = arbiter;
  config.warmup_cycles = 200;
  config.measure_cycles = 3000;
  config.drain_cycles = 6000;
  return config;
}

TEST(Arbiter, ZeroLoadLatencyIsArbiterIndependent) {
  const auto mesh = topo::make_mesh(8);
  const Network net(mesh, route::HopWeights{});
  const traffic::TrafficMatrix idle(8);
  for (const auto arbiter : {Arbiter::kRoundRobin, Arbiter::kOldestFirst}) {
    auto config = config_with(arbiter);
    Simulator simulator(net, idle, config);
    simulator.schedule_packet(0, 63, 512, 300);
    (void)simulator.run();
    EXPECT_EQ(simulator.packet_latency(0), 15 * 3 + 14 + 2);
  }
}

TEST(Arbiter, OldestFirstDrainsAndConserves) {
  const auto mesh = topo::make_mesh(8);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.05);
  const auto stats =
      exp::simulate_design(mesh, demand, config_with(Arbiter::kOldestFirst));
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.packets_finished, stats.packets_offered);
}

TEST(Arbiter, OldestFirstDoesNotHurtTheTailUnderLoad) {
  // Age-based allocation should keep the p99 tail at or below round-robin's
  // at a moderately loaded operating point (allowing simulation noise).
  const auto mesh = topo::make_mesh(8);
  const Network net(mesh, route::HopWeights{});
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 1.0);
  const auto rr =
      simulate_at_load(net, shape, 0.15, config_with(Arbiter::kRoundRobin));
  const auto oldest =
      simulate_at_load(net, shape, 0.15, config_with(Arbiter::kOldestFirst));
  EXPECT_LE(oldest.p99_latency, rr.p99_latency * 1.10);
  // Means stay comparable.
  EXPECT_NEAR(oldest.avg_latency, rr.avg_latency, 0.15 * rr.avg_latency);
}

}  // namespace
}  // namespace xlp::sim
