// Numerical verification of the paper's central Lemma (Section 4.2): with
// dimension-order routing, the 2D placement problem reduces to the 1D row
// problem. For a homogeneous design (one placement replicated over all rows
// and columns), Eq. (5) specializes — averaging over ordered pairs with
// src != dst — to
//
//   L_D,avg  =  2 * n/(n+1) * L̄_row  +  Tr
//
// where L̄_row is the average pairwise head cost within one row and the
// trailing Tr is the destination-router cycle our calibration charges.
// (Derivation: each of the n^2*(n^2-1) ordered pairs contributes one row
// segment and one column segment; each ordered row pair (a,b), a != b,
// appears n^2 times, and there are n*(n-1) such pairs per dimension.)
//
// This is the property that makes the whole approach sound: optimizing the
// row objective *is* optimizing the mesh. It must hold for every valid
// placement, so we sweep random placements, sizes and limits.

#include <gtest/gtest.h>

#include <tuple>

#include "latency/model.hpp"
#include "route/directional_paths.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

using SizeLimitSeed = std::tuple<int, int, int>;

class ReductionLemma : public ::testing::TestWithParam<SizeLimitSeed> {};

TEST_P(ReductionLemma, MeshAverageEqualsRowAverageFormula) {
  const auto [n, limit, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed * 1009 + n * 31 + limit));
  const topo::RowTopology row = test::random_valid_row(n, limit, rng);
  const topo::ExpressMesh mesh(row, limit, 64);

  const route::DirectionalShortestPaths paths(row, route::HopWeights{});
  const double row_avg = paths.average_cost();

  const latency::MeshLatencyModel model(mesh,
                                        latency::LatencyParams::zero_load());
  const double expected = 2.0 * n / (n + 1.0) * row_avg + 3.0;
  EXPECT_NEAR(model.average().head, expected, 1e-9) << row.to_string();
}

TEST_P(ReductionLemma, RowImprovementImpliesMeshImprovement) {
  // The lemma's consequence: if placement A beats placement B on the row
  // objective, A's homogeneous mesh beats B's. Strict monotonicity over
  // random pairs of placements.
  const auto [n, limit, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed * 7907 + n * 13 + limit));
  const topo::RowTopology a = test::random_valid_row(n, limit, rng);
  const topo::RowTopology b = test::random_valid_row(n, limit, rng);
  const route::DirectionalShortestPaths pa(a, route::HopWeights{});
  const route::DirectionalShortestPaths pb(b, route::HopWeights{});
  const latency::MeshLatencyModel ma(topo::ExpressMesh(a, limit, 64),
                                     latency::LatencyParams::zero_load());
  const latency::MeshLatencyModel mb(topo::ExpressMesh(b, limit, 64),
                                     latency::LatencyParams::zero_load());
  const double row_delta = pa.average_cost() - pb.average_cost();
  const double mesh_delta = ma.average().head - mb.average().head;
  if (std::abs(row_delta) > 1e-9)
    EXPECT_GT(row_delta * mesh_delta, 0.0)
        << a.to_string() << " vs " << b.to_string();
  else
    EXPECT_NEAR(mesh_delta, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionLemma,
    ::testing::Combine(::testing::Values(4, 5, 8, 16),
                       ::testing::Values(2, 4),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(ReductionLemmaFixed, HoldsForMeshHfbAndButterfly) {
  for (int n : {4, 8}) {
    for (const auto& design :
         {topo::make_mesh(n), topo::make_hfb(n),
          topo::make_flattened_butterfly(n)}) {
      const route::DirectionalShortestPaths paths(design.row(0),
                                                  route::HopWeights{});
      const latency::MeshLatencyModel model(
          design, latency::LatencyParams::zero_load());
      EXPECT_NEAR(model.average().head,
                  2.0 * n / (n + 1.0) * paths.average_cost() + 3.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace xlp
