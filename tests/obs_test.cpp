// Tests of the observability layer: counter/gauge/timer semantics (incl.
// thread safety), JSON escaping and parse/dump round trips, and the
// trace-sink contract (null sink is a disabled no-op, JSONL sink writes
// one monotonically-timestamped record per event).

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace xlp::obs {
namespace {

TEST(Metrics, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("absent"), 0);
  reg.add("moves");
  reg.add("moves", 41);
  EXPECT_EQ(reg.counter("moves"), 42);
}

TEST(Metrics, GaugesKeepTheLatestValue) {
  MetricsRegistry reg;
  EXPECT_DOUBLE_EQ(reg.gauge("absent"), 0.0);
  reg.set_gauge("temperature", 10.0);
  reg.set_gauge("temperature", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("temperature"), 2.5);
}

TEST(Metrics, TimersAccumulateSamples) {
  MetricsRegistry reg;
  reg.record_time("phase", 0.5);
  reg.record_time("phase", 1.5);
  const TimerStat stat = reg.timer("phase");
  EXPECT_DOUBLE_EQ(stat.seconds, 2.0);
  EXPECT_EQ(stat.count, 2);
  EXPECT_DOUBLE_EQ(stat.mean_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(reg.timer("absent").mean_seconds(), 0.0);
}

TEST(Metrics, ScopedTimerRecordsOneSample) {
  MetricsRegistry reg;
  { const ScopedTimer t(reg, "scope"); }
  const TimerStat stat = reg.timer("scope");
  EXPECT_EQ(stat.count, 1);
  EXPECT_GE(stat.seconds, 0.0);
}

TEST(Metrics, ConcurrentIncrementsAreNotLost) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add("hits");
        reg.record_time("work", 1e-6);
      }
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("hits"), kThreads * kPerThread);
  EXPECT_EQ(reg.timer("work").count, kThreads * kPerThread);
}

TEST(Metrics, JsonSnapshotRoundTrips) {
  MetricsRegistry reg;
  reg.add("runs", 3);
  reg.set_gauge("load", 0.25);
  reg.record_time("solve", 1.25);
  const auto parsed = Json::parse(reg.to_json().dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("counters")->find("runs")->as_long(), 3);
  EXPECT_DOUBLE_EQ(parsed->find("gauges")->find("load")->as_number(), 0.25);
  const Json* solve = parsed->find("timers")->find("solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_DOUBLE_EQ(solve->find("seconds")->as_number(), 1.25);
  EXPECT_EQ(solve->find("count")->as_long(), 1);
}

TEST(Metrics, ClearDropsEverything) {
  MetricsRegistry reg;
  reg.add("a");
  reg.set_gauge("b", 1.0);
  reg.record_time("c", 1.0);
  reg.clear();
  EXPECT_EQ(reg.counter("a"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("b"), 0.0);
  EXPECT_EQ(reg.timer("c").count, 0);
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, EscapedStringsRoundTrip) {
  const std::string nasty = "quote\" slash\\ newline\n tab\t ctrl\x02 end";
  const std::string doc = Json(nasty).dump();
  const auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_string(), nasty);
}

TEST(Json, DumpsScalarsCompactly) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42L).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NestedDocumentRoundTrips) {
  Json doc = Json::object()
                 .set("name", "sa.cool")
                 .set("step", 3)
                 .set("temperature", 1.25)
                 .set("drained", false)
                 .set("values", Json::array().push(1).push(2.5).push("x"))
                 .set("nested", Json::object().set("k", Json()));
  const auto parsed = Json::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("name")->as_string(), "sa.cool");
  EXPECT_EQ(parsed->find("step")->as_long(), 3);
  EXPECT_DOUBLE_EQ(parsed->find("temperature")->as_number(), 1.25);
  EXPECT_FALSE(parsed->find("drained")->as_bool());
  ASSERT_EQ(parsed->find("values")->size(), 3u);
  EXPECT_EQ(parsed->find("values")->at(0).as_long(), 1);
  EXPECT_DOUBLE_EQ(parsed->find("values")->at(1).as_number(), 2.5);
  EXPECT_EQ(parsed->find("values")->at(2).as_string(), "x");
  EXPECT_TRUE(parsed->find("nested")->find("k")->is_null());
  // Second round trip is byte-identical (member order is preserved).
  EXPECT_EQ(parsed->dump(), doc.dump());
}

TEST(Json, DoublesSurviveRoundTrip) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-8}) {
    const auto parsed = Json::parse(Json(v).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->as_number(), v);
  }
}

TEST(Json, ParseRejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,", "tru", "\"unterminated", "{\"a\":}", "1 2",
        "{\"a\":1,}", "[1]]", "nul"}) {
    EXPECT_FALSE(Json::parse(bad).has_value()) << bad;
  }
}

TEST(Json, ParseReportsErrorOffset) {
  struct Case {
    const char* text;
    std::size_t offset;
  };
  // The offset points at the offending token (start of a bad literal), or
  // at text.size() when the document ends prematurely.
  for (const Case c : {Case{"{", 1}, Case{"[1,]", 3}, Case{"{\"a\":}", 5},
                       Case{"1 2", 2}, Case{"tru", 0}}) {
    std::size_t offset = 9999;
    EXPECT_FALSE(Json::parse(c.text, &offset).has_value()) << c.text;
    EXPECT_EQ(offset, c.offset) << c.text;
  }
  // Untouched on success.
  std::size_t offset = 9999;
  EXPECT_TRUE(Json::parse("{\"a\":1}", &offset).has_value());
  EXPECT_EQ(offset, 9999u);
  // And a null pointer is allowed.
  EXPECT_FALSE(Json::parse("{", nullptr).has_value());
}

TEST(Json, DumpsNonFiniteNumbersAsNull) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Json(nan).dump(), "null");
  EXPECT_EQ(Json(inf).dump(), "null");
  EXPECT_EQ(Json(-inf).dump(), "null");
  // Inside a document the member survives as null, so every emitted
  // document re-parses.
  const Json doc = Json::object().set("bad", Json(nan)).set("good", 1.5);
  EXPECT_EQ(doc.dump(), "{\"bad\":null,\"good\":1.5}");
  EXPECT_TRUE(Json::parse(doc.dump()).has_value());
}

TEST(Json, ParseAcceptsWhitespaceAndUnicodeEscapes) {
  const auto parsed = Json::parse("  { \"a\" : [ 1 , \"\\u0041\" ] }  ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("a")->at(1).as_string(), "A");
}

TEST(Json, TypeMismatchesThrow) {
  EXPECT_THROW((void)Json(1).as_string(), PreconditionError);
  EXPECT_THROW((void)Json("x").as_number(), PreconditionError);
  EXPECT_THROW((void)Json().as_bool(), PreconditionError);
  EXPECT_THROW((void)Json::object().at(0), PreconditionError);
  EXPECT_THROW(Json().set("k", Json()), PreconditionError);
  EXPECT_THROW(Json().push(Json()), PreconditionError);
}

TEST(Metrics, WriteJsonFileCreatesMissingParentDirectories) {
  MetricsRegistry reg;
  reg.add("runs");
  const std::string path =
      ::testing::TempDir() + "xlp_obs_nested/deeper/metrics.json";
  ASSERT_TRUE(reg.write_json_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Json::parse(buffer.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("counters")->find("runs")->as_long(), 1);
}

TEST(Metrics, EnsureParentDirHandlesPlainFilenames) {
  // No directory component: nothing to create, must succeed.
  EXPECT_TRUE(ensure_parent_dir("just_a_name.json"));
  EXPECT_TRUE(ensure_parent_dir(::testing::TempDir() + "xlp_obs_flat.json"));
}

TEST(Trace, NullSinkIsDisabledNoOp) {
  NullTraceSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.emit("anything", Json::object().set("k", 1));  // must not crash
  EXPECT_FALSE(null_trace_sink().enabled());
}

TEST(Trace, JsonlSinkWritesOneParsableRecordPerEvent) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  EXPECT_TRUE(sink.enabled());
  sink.emit("first", Json::object().set("value", 1));
  sink.emit("second", Json::object().set("text", "a\nb"));
  EXPECT_EQ(sink.events_written(), 2);

  std::istringstream lines(os.str());
  std::string line;
  double prev_ts = -1.0;
  std::vector<std::string> events;
  while (std::getline(lines, line)) {
    const auto record = Json::parse(line);
    ASSERT_TRUE(record.has_value()) << line;
    const double ts = record->find("ts")->as_number();
    EXPECT_GE(ts, prev_ts);
    prev_ts = ts;
    events.push_back(record->find("event")->as_string());
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "first");
  EXPECT_EQ(events[1], "second");
}

TEST(Trace, PayloadFieldsFollowTsAndEvent) {
  std::ostringstream os;
  JsonlTraceSink sink(os);
  sink.emit("e", Json::object().set("a", 1).set("b", "two"));
  const auto record = Json::parse(os.str().substr(0, os.str().size() - 1));
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->members().size(), 4u);
  EXPECT_EQ(record->members()[0].first, "ts");
  EXPECT_EQ(record->members()[1].first, "event");
  EXPECT_EQ(record->members()[2].first, "a");
  EXPECT_EQ(record->members()[3].first, "b");
  EXPECT_EQ(record->find("b")->as_string(), "two");
}

}  // namespace
}  // namespace xlp::obs
