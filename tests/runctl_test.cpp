// The resilience subsystem end to end: cancellation tokens and deadlines,
// structured errors, crash-safe writes, checkpoint serialization, and —
// the property everything else exists for — a resumed annealing run being
// bit-identical to one that was never interrupted.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/branch_bound.hpp"
#include "core/drivers.hpp"
#include "core/naive_sa.hpp"
#include "core/portfolio.hpp"
#include "exp/scenarios.hpp"
#include "runctl/checkpoint.hpp"
#include "runctl/control.hpp"
#include "sim/stats_json.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace xlp {
namespace {

using runctl::CancelToken;
using runctl::Deadline;
using runctl::RunControl;
using runctl::RunStatus;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "xlp_runctl_" + name;
}

// ---------------------------------------------------------------- control

TEST(RunControlTest, TokenIsStickyAndFirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), RunStatus::kCompleted);
  EXPECT_TRUE(token.request(RunStatus::kInterrupted));
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), RunStatus::kInterrupted);
  EXPECT_FALSE(token.request(RunStatus::kDeadline));  // later request loses
  EXPECT_EQ(token.reason(), RunStatus::kInterrupted);
}

TEST(RunControlTest, DeadlineExpiry) {
  EXPECT_TRUE(Deadline().unlimited());
  EXPECT_FALSE(Deadline().expired());
  const Deadline expired = Deadline::after_seconds(0.0);
  EXPECT_FALSE(expired.unlimited());
  EXPECT_TRUE(expired.expired());
  EXPECT_LE(expired.remaining_seconds(), 0.0);
  const Deadline far = Deadline::after_seconds(3600.0);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_seconds(), 3500.0);
}

TEST(RunControlTest, DefaultControlNeverStops) {
  RunControl control;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(control.stop_requested());
  EXPECT_EQ(control.status(), RunStatus::kCompleted);
}

TEST(RunControlTest, CancelledTokenStopsImmediately) {
  CancelToken token;
  RunControl control(&token);
  EXPECT_FALSE(control.stop_requested());
  token.request(RunStatus::kInterrupted);
  EXPECT_TRUE(control.stop_requested());
  EXPECT_EQ(control.status(), RunStatus::kInterrupted);
}

TEST(RunControlTest, ExpiredDeadlineStopsWithinOneStride) {
  RunControl control(nullptr, Deadline::after_seconds(0.0));
  // The clock is only consulted every kDeadlineStride calls, so allow up
  // to a stride's worth of polls before the stop lands — and once it has
  // landed it must be sticky.
  int polls = 0;
  while (!control.stop_requested() && polls < 200) ++polls;
  EXPECT_LT(polls, 100);
  EXPECT_TRUE(control.stop_requested());
  EXPECT_EQ(control.status(), RunStatus::kDeadline);
}

TEST(RunControlTest, InterruptOutranksDeadline) {
  CancelToken token;
  RunControl control(&token, Deadline::after_seconds(0.0));
  while (!control.stop_requested()) {
  }
  token.request(RunStatus::kInterrupted);
  EXPECT_EQ(control.status(), RunStatus::kInterrupted);
}

// ----------------------------------------------------------------- errors

TEST(ErrorTest, ContextChainReadsInnermostFirst) {
  Error err(ErrorCode::kParse, "missing field 'rng'");
  err.with_context("reading sa state").with_context("loading ck.json");
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  const std::string what = err.what();
  EXPECT_NE(what.find("missing field 'rng'"), std::string::npos);
  EXPECT_NE(what.find("reading sa state"), std::string::npos);
  EXPECT_NE(what.find("loading ck.json"), std::string::npos);
  // Innermost context precedes the outermost.
  EXPECT_LT(what.find("reading sa state"), what.find("loading ck.json"));
}

// ------------------------------------------------------------------- fsio

TEST(FsioTest, AtomicWriteRoundTripsAndReplaces) {
  const std::string path = tmp_path("atomic.txt");
  ASSERT_TRUE(util::atomic_write_file(path, "first"));
  EXPECT_EQ(util::read_file(path).value_or("<missing>"), "first");
  ASSERT_TRUE(util::atomic_write_file(path, "second"));
  EXPECT_EQ(util::read_file(path).value_or("<missing>"), "second");
}

TEST(FsioTest, AtomicWriteCreatesParentDirs) {
  const std::string path = tmp_path("nested/deeper/out.txt");
  ASSERT_TRUE(util::atomic_write_file(path, "content"));
  EXPECT_EQ(util::read_file(path).value_or("<missing>"), "content");
}

TEST(FsioTest, ReadMissingFileIsNullopt) {
  EXPECT_FALSE(util::read_file(tmp_path("never_written.txt")).has_value());
}

// ------------------------------------------------------------ checkpoints

runctl::SaCheckpoint sample_checkpoint() {
  runctl::SaCheckpoint ck;
  ck.schedule = {5.0, 4000, 2.0, 400};
  ck.method = "OnlySA";
  ck.n = 8;
  ck.link_limit = 4;
  ck.next_move = 1234;
  ck.cooling_step = 3;
  ck.temperature = 0.625;
  ck.window_start_move = 1200;
  ck.window_start_accepted = 900;
  ck.moves = 1234;
  ck.accepted = 1000;
  ck.improved = 321;
  ck.rng_state = {0xdeadbeefcafef00dULL, 1ULL, 0ULL, 0xffffffffffffffffULL};
  ck.current = topo::ConnectionMatrix(8, 4);
  ck.current_value = 13.25;
  ck.best = topo::ConnectionMatrix(8, 4);
  ck.best_value = 12.75;
  return ck;
}

TEST(CheckpointTest, SaJsonRoundTripIsLossless) {
  const runctl::SaCheckpoint ck = sample_checkpoint();
  const auto back = runctl::SaCheckpoint::from_json(ck.to_json());
  EXPECT_EQ(back.schedule.initial_temperature, 5.0);
  EXPECT_EQ(back.schedule.total_moves, 4000);
  EXPECT_EQ(back.schedule.moves_per_cool, 400);
  EXPECT_EQ(back.method, "OnlySA");
  EXPECT_EQ(back.n, 8);
  EXPECT_EQ(back.link_limit, 4);
  EXPECT_EQ(back.next_move, 1234);
  EXPECT_EQ(back.temperature, 0.625);
  EXPECT_EQ(back.rng_state, ck.rng_state);  // exact 64-bit words
  EXPECT_EQ(back.current.to_string(), ck.current.to_string());
  EXPECT_EQ(back.best_value, 12.75);
  EXPECT_FALSE(back.complete);
}

TEST(CheckpointTest, FileRoundTripThroughDisk) {
  const std::string path = tmp_path("sa_ck.json");
  runctl::save_sa_checkpoint(path, sample_checkpoint());
  const auto file = runctl::load_checkpoint_file(path);
  EXPECT_EQ(file.kind, "sa");
  ASSERT_TRUE(file.sa.has_value());
  EXPECT_FALSE(file.portfolio.has_value());
  EXPECT_EQ(file.sa->next_move, 1234);
}

ErrorCode load_failure_code(const std::string& path) {
  try {
    (void)runctl::load_checkpoint_file(path);
  } catch (const Error& e) {
    // Every load failure must carry the file path in its context chain.
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
    return e.code();
  }
  ADD_FAILURE() << "load of " << path << " unexpectedly succeeded";
  return ErrorCode::kInternal;
}

TEST(CheckpointTest, LoadRejectsForeignAndPartialFiles) {
  const std::string path = tmp_path("bad_ck.json");

  EXPECT_EQ(load_failure_code(tmp_path("missing_ck.json")), ErrorCode::kIo);

  ASSERT_TRUE(util::atomic_write_file(path, "definitely not json"));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kParse);

  ASSERT_TRUE(util::atomic_write_file(path, "{\"foo\": 1}"));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kSchema);

  ASSERT_TRUE(util::atomic_write_file(
      path, "{\"schema\": \"xlp-bench/1\", \"kind\": \"suite\"}"));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kSchema);

  ASSERT_TRUE(util::atomic_write_file(
      path, "{\"schema\": \"xlp-ckpt/999\", \"kind\": \"sa\"}"));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kVersion);

  ASSERT_TRUE(util::atomic_write_file(
      path, "{\"schema\": \"xlp-ckpt/1\", \"kind\": \"martian\"}"));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kSchema);

  // A truncated copy of a real checkpoint: kParse, never a crash.
  const std::string good_path = tmp_path("good_ck.json");
  runctl::save_sa_checkpoint(good_path, sample_checkpoint());
  const std::string good = util::read_file(good_path).value();
  ASSERT_TRUE(util::atomic_write_file(path, good.substr(0, good.size() / 2)));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kParse);

  // Well-formed envelope with a mangled payload field.
  ASSERT_TRUE(util::atomic_write_file(
      path,
      "{\"schema\": \"xlp-ckpt/1\", \"kind\": \"sa\", \"payload\": {}}"));
  EXPECT_EQ(load_failure_code(path), ErrorCode::kParse);
}

// ------------------------------------------------------- search loops stop

TEST(SearchCancelTest, SaStopsMidAnnealWithCheckpoint) {
  const core::RowObjective objective(8, route::HopWeights{});
  CancelToken token;
  RunControl control(&token);
  core::SaParams params = core::SaParams{}.with_moves(5000);
  params.control = &control;
  params.checkpoint_every_moves = 500;
  long sink_calls = 0;
  params.checkpoint_sink = [&](const runctl::SaCheckpoint&) {
    // Cancel from inside the run, at a deterministic move boundary.
    ++sink_calls;
    token.request(RunStatus::kInterrupted);
  };
  Rng rng(5);
  const auto result = core::solve_only_sa(objective, 4, params, rng);
  EXPECT_EQ(result.status, RunStatus::kInterrupted);
  ASSERT_TRUE(result.checkpoint.has_value());
  EXPECT_FALSE(result.checkpoint->complete);
  EXPECT_LT(result.checkpoint->next_move, 5000);
  EXPECT_GT(result.checkpoint->next_move, 0);
  // The interrupted result is still a valid, evaluated placement.
  EXPECT_EQ(result.placement.size(), 8);
  EXPECT_GT(result.value, 0.0);
  EXPECT_GE(sink_calls, 1);
}

TEST(SearchCancelTest, SaDeadlineReportsDeadline) {
  const core::RowObjective objective(8, route::HopWeights{});
  RunControl control(nullptr, Deadline::after_seconds(0.0));
  core::SaParams params = core::SaParams{}.with_moves(100000);
  params.control = &control;
  Rng rng(5);
  const auto result = core::solve_only_sa(objective, 4, params, rng);
  EXPECT_EQ(result.status, RunStatus::kDeadline);
  EXPECT_GT(result.value, 0.0);
}

TEST(SearchCancelTest, PeriodicSinkCadenceAndFinalSnapshot) {
  const core::RowObjective objective(8, route::HopWeights{});
  core::SaParams params;
  params.total_moves = 1000;
  params.moves_per_cool = 250;
  params.checkpoint_every_moves = 250;
  std::vector<long> boundaries;
  std::vector<bool> completes;
  params.checkpoint_sink = [&](const runctl::SaCheckpoint& ck) {
    boundaries.push_back(ck.next_move);
    completes.push_back(ck.complete);
  };
  Rng rng(9);
  const auto result = core::solve_only_sa(objective, 4, params, rng);
  EXPECT_EQ(result.status, RunStatus::kCompleted);
  // Three periodic snapshots (the final boundary is not doubled) plus one
  // complete=true snapshot at the natural end.
  ASSERT_EQ(boundaries, (std::vector<long>{250, 500, 750, 1000}));
  EXPECT_EQ(completes, (std::vector<bool>{false, false, false, true}));
}

TEST(SearchCancelTest, BranchAndBoundHonoursControl) {
  const core::RowObjective objective(8, route::HopWeights{});
  CancelToken token;
  token.request(RunStatus::kInterrupted);
  RunControl control(&token);
  core::BranchAndBound bb(objective, 2, &control);
  const auto exact = bb.solve();
  EXPECT_EQ(exact.status, RunStatus::kInterrupted);
  EXPECT_EQ(exact.placement.size(), 8);  // feasible fallback
}

TEST(SearchCancelTest, DncHonoursControl) {
  const core::RowObjective objective(8, route::HopWeights{});
  CancelToken token;
  token.request(RunStatus::kInterrupted);
  RunControl control(&token);
  core::DncOptions options;
  options.control = &control;
  const auto result = core::solve_dnc_only(objective, 4, options);
  EXPECT_EQ(result.status, RunStatus::kInterrupted);
  EXPECT_EQ(result.placement.size(), 8);
}

TEST(SearchCancelTest, NaiveSaHonoursControl) {
  const core::RowObjective objective(8, route::HopWeights{});
  CancelToken token;
  token.request(RunStatus::kInterrupted);
  RunControl control(&token);
  core::SaParams params = core::SaParams{}.with_moves(5000);
  params.control = &control;
  Rng rng(3);
  const auto result = core::anneal_naive_links(topo::RowTopology(8),
                                               objective, 4, params, rng);
  EXPECT_EQ(result.status, RunStatus::kInterrupted);
  EXPECT_EQ(result.best.size(), 8);
}

// ----------------------------------------------------------------- resume

TEST(ResumeTest, ResumedSaRunIsBitIdenticalToUninterrupted) {
  const core::RowObjective objective(8, route::HopWeights{});
  const core::SaParams base = core::SaParams{}.with_moves(4000);

  // Reference: the same schedule and seed, never interrupted.
  core::SaParams full_params = base;
  Rng full_rng(11);
  const auto full = core::solve_only_sa(objective, 4, full_params, full_rng);
  ASSERT_EQ(full.status, RunStatus::kCompleted);

  // Interrupted run: cancelled from the first periodic snapshot.
  CancelToken token;
  RunControl control(&token);
  core::SaParams cut = base;
  cut.control = &control;
  cut.checkpoint_every_moves = 1000;
  cut.checkpoint_sink = [&](const runctl::SaCheckpoint&) {
    token.request(RunStatus::kInterrupted);
  };
  Rng cut_rng(11);
  const auto stopped = core::solve_only_sa(objective, 4, cut, cut_rng);
  ASSERT_EQ(stopped.status, RunStatus::kInterrupted);
  ASSERT_TRUE(stopped.checkpoint.has_value());

  // Round-trip the checkpoint through its on-disk JSON form, then resume.
  const std::string path = tmp_path("resume_sa.json");
  runctl::save_sa_checkpoint(path, *stopped.checkpoint);
  const auto file = runctl::load_checkpoint_file(path);
  ASSERT_TRUE(file.sa.has_value());
  const auto resumed = core::resume_sa(objective, *file.sa);

  EXPECT_EQ(resumed.status, RunStatus::kCompleted);
  EXPECT_EQ(resumed.placement.to_string(), full.placement.to_string());
  EXPECT_EQ(resumed.value, full.value);  // exact, not approximate
  EXPECT_EQ(resumed.method, full.method);
}

TEST(ResumeTest, ResumeRejectsMismatchedInstance) {
  const core::RowObjective objective(16, route::HopWeights{});
  runctl::SaCheckpoint ck = sample_checkpoint();  // an n=8 checkpoint
  EXPECT_THROW((void)core::resume_sa(objective, ck), PreconditionError);
}

TEST(ResumeTest, PortfolioResumeMatchesUninterruptedRun) {
  core::PortfolioOptions base;
  base.chains = 2;
  base.sa = core::SaParams{}.with_moves(1500);
  base.solver = core::Solver::kOnlySa;
  const auto full = core::solve_portfolio(8, route::HopWeights{},
                                          std::nullopt, 4, base, 42);
  ASSERT_EQ(full.status, RunStatus::kCompleted);

  // Cancel before any chain makes a move: every chain checkpoints its
  // initial state, and the resumed portfolio must replay to the same
  // answer.
  CancelToken token;
  token.request(RunStatus::kInterrupted);
  core::PortfolioOptions cut = base;
  cut.control = RunControl(&token);
  cut.checkpoint_path = tmp_path("portfolio_ck.json");
  const auto stopped = core::solve_portfolio(8, route::HopWeights{},
                                             std::nullopt, 4, cut, 42);
  EXPECT_EQ(stopped.status, RunStatus::kInterrupted);
  ASSERT_TRUE(stopped.checkpoint.has_value());

  const auto file = runctl::load_checkpoint_file(cut.checkpoint_path);
  EXPECT_EQ(file.kind, "portfolio");
  ASSERT_TRUE(file.portfolio.has_value());
  EXPECT_EQ(file.portfolio->chains, 2);
  EXPECT_EQ(file.portfolio->seed, 42u);
  EXPECT_EQ(file.portfolio->solver, "onlysa");

  core::PortfolioOptions resume_options = base;
  resume_options.resume = &*file.portfolio;
  const auto resumed = core::solve_portfolio(8, route::HopWeights{},
                                             std::nullopt, 4, resume_options,
                                             file.portfolio->seed);
  EXPECT_EQ(resumed.status, RunStatus::kCompleted);
  EXPECT_EQ(resumed.best.placement.to_string(),
            full.best.placement.to_string());
  EXPECT_EQ(resumed.best.value, full.best.value);
}

// -------------------------------------------------------------- simulator

TEST(SimDeadlineTest, EarlyStopDrainsStatsWithoutSpuriousWarning) {
  const topo::RowTopology row(8);
  const topo::ExpressMesh design = topo::make_design(row, 4);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 0.02);
  sim::SimConfig config;
  config.measure_cycles = 2000000;  // far more than the deadline allows
  RunControl control(nullptr, Deadline::after_seconds(0.0));
  config.control = &control;
  const auto stats = exp::simulate_design(design, demand, config);
  EXPECT_EQ(stats.status, RunStatus::kDeadline);
  // An early stop is reported as a note at most, never an undrained-run
  // saturation WARNING; when packets were left in flight the call also
  // must not claim the run drained.
  ::testing::internal::CaptureStderr();
  const bool drained_ok = exp::warn_if_undrained(stats, "runctl_test");
  const std::string warn_output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(warn_output.find("WARNING"), std::string::npos) << warn_output;
  if (!stats.drained) {
    EXPECT_FALSE(drained_ok);
    EXPECT_NE(warn_output.find("stopped early"), std::string::npos);
  }
  // The truncated run still yields a consistent, serializable document.
  EXPECT_GE(stats.activity.measured_cycles, 1);
  EXPECT_LT(stats.activity.measured_cycles, config.measure_cycles);
  const auto doc = sim::stats_to_json(stats);
  ASSERT_NE(doc.find("status"), nullptr);
  EXPECT_EQ(doc.find("status")->as_string(), "deadline");
}

TEST(SimDeadlineTest, UndrainedEarlyStopIsANoteNotAWarning) {
  // Deterministic check of the reporting branch itself: an early-stopped
  // run with packets in flight notes the truncation instead of issuing
  // the saturation WARNING a completed undrained run would earn.
  sim::SimStats stats;
  stats.status = RunStatus::kDeadline;
  stats.drained = false;
  stats.packets_offered = 10;
  stats.packets_finished = 4;
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(exp::warn_if_undrained(stats, "runctl_test"));
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("WARNING"), std::string::npos) << out;
  EXPECT_NE(out.find("stopped early (deadline)"), std::string::npos) << out;

  stats.status = RunStatus::kCompleted;
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(exp::warn_if_undrained(stats, "runctl_test"));
  const std::string warn = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warn.find("WARNING"), std::string::npos) << warn;
}

TEST(SimDeadlineTest, CompletedRunStillReportsCompleted) {
  const topo::RowTopology row(4);
  const topo::ExpressMesh design = topo::make_design(row, 2);
  const auto demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 4, 0.01);
  sim::SimConfig config;
  config.measure_cycles = 2000;
  CancelToken token;  // installed but never fired
  RunControl control(&token);
  config.control = &control;
  const auto stats = exp::simulate_design(design, demand, config);
  EXPECT_EQ(stats.status, RunStatus::kCompleted);
  EXPECT_EQ(stats.activity.measured_cycles, config.measure_cycles);
}

}  // namespace
}  // namespace xlp
