// Chaos suite for the hardened service layer (docs/service.md, "Failure
// modes and chaos testing"): deterministic fault injection through
// svc::ChaosPolicy, the xlp-envelope/1 integrity envelope, cache
// quarantine, poison-request isolation, and the client retry/backoff path.
//
// The injection sites fire nondeterministically across threads, so the
// end-to-end tests assert *invariants*, not schedules: every request is
// eventually answered, no reply payload ever differs from the chaos-free
// baseline (the byte-identity contract survives injected corruption), and
// every quarantined entry is accounted by the svc.cache.corrupt counter.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runctl/control.hpp"
#include "svc/cache.hpp"
#include "svc/chaos.hpp"
#include "svc/client.hpp"
#include "svc/envelope.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace xlp::svc {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "xlp_chaos_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Arms the process-global policy for one test and guarantees it is
/// disarmed on every exit path, so chaos never leaks into other tests.
struct ChaosGuard {
  explicit ChaosGuard(const std::string& spec) {
    ChaosPolicy::global().configure(spec);
  }
  ~ChaosGuard() { ChaosPolicy::global().disable(); }
};

ServerOptions test_options(const std::string& dir,
                           obs::MetricsRegistry* metrics, int threads = 0) {
  ServerOptions options;
  options.cache_dir = dir;
  options.metrics = metrics;
  options.threads = threads;
  return options;
}

std::size_t count_entries(const fs::path& dir) {
  std::error_code ec;
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    (void)entry;
    ++count;
  }
  return count;
}

// ------------------------------------------------------------- ChaosPolicy

TEST(ChaosPolicy, FireSequenceIsDeterministicUnderSeed) {
  ChaosPolicy a, b;
  a.configure("seed=9,cache-flip=0.3");
  b.configure("seed=9,cache-flip=0.3");
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    const bool fa = a.should(ChaosSite::kCacheFlip);
    EXPECT_EQ(fa, b.should(ChaosSite::kCacheFlip)) << "check " << i;
    fired += fa ? 1 : 0;
  }
  EXPECT_EQ(a.injected(ChaosSite::kCacheFlip), fired);
  // p=0.3 over 200 checks: some but not all fire.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);
  // A different seed draws a different sequence (with overwhelming
  // probability over 200 Bernoulli trials).
  ChaosPolicy c;
  c.configure("seed=10,cache-flip=0.3");
  int agreements = 0;
  ChaosPolicy a2;
  a2.configure("seed=9,cache-flip=0.3");
  for (int i = 0; i < 200; ++i)
    agreements +=
        a2.should(ChaosSite::kCacheFlip) == c.should(ChaosSite::kCacheFlip)
            ? 1
            : 0;
  EXPECT_LT(agreements, 200);
}

TEST(ChaosPolicy, ScheduledTriggerFiresExactlyOnNthCheck) {
  ChaosPolicy policy;
  policy.configure("worker-throw@3");
  EXPECT_TRUE(policy.enabled());
  for (int check = 1; check <= 6; ++check)
    EXPECT_EQ(policy.should(ChaosSite::kWorkerThrow), check == 3)
        << "check " << check;
  EXPECT_EQ(policy.injected(ChaosSite::kWorkerThrow), 1);
  EXPECT_EQ(policy.total_injected(), 1);
}

TEST(ChaosPolicy, MalformedSpecThrowsAndLeavesPolicyUntouched) {
  ChaosPolicy policy;
  policy.configure("cache-flip=0.5");
  EXPECT_TRUE(policy.enabled());
  EXPECT_THROW(policy.configure("bogus-site=0.5"), Error);
  EXPECT_THROW(policy.configure("cache-flip=2.0"), Error);
  EXPECT_THROW(policy.configure("cache-flip=abc"), Error);
  EXPECT_THROW(policy.configure("worker-throw@0"), Error);
  EXPECT_THROW(policy.configure("cache-flip"), Error);
  EXPECT_TRUE(policy.enabled());  // the armed spec survived every reject
  policy.configure("");
  EXPECT_FALSE(policy.enabled());
}

// ---------------------------------------------------------------- envelope

TEST(Envelope, RoundTripsExactBytes) {
  const std::string payload =
      "{\"v\":1,\"text\":\"quote \\\" backslash \\\\ newline \\n\"}";
  const std::string wrapped = wrap_envelope(payload);
  std::string out;
  EXPECT_EQ(unwrap_envelope(wrapped, &out), EnvelopeStatus::kOk);
  EXPECT_EQ(out, payload);  // byte-exact, escaping round-tripped
}

TEST(Envelope, DetectsEveryCorruptionShape) {
  const std::string wrapped = wrap_envelope("{\"v\":2}");
  std::string out;
  std::string reason;

  std::string truncated = wrapped.substr(0, wrapped.size() / 2);
  EXPECT_EQ(unwrap_envelope(truncated, &out, &reason),
            EnvelopeStatus::kCorrupt);

  std::string flipped = wrapped;
  // The payload field comes last, so rfind lands on the payload's digit
  // (the checksum hex could contain a '2' too).
  flipped[wrapped.rfind('2')] = '3';  // corrupt one payload byte
  EXPECT_EQ(unwrap_envelope(flipped, &out, &reason),
            EnvelopeStatus::kCorrupt);
  EXPECT_EQ(reason, "checksum mismatch");

  EXPECT_EQ(unwrap_envelope("", &out, &reason), EnvelopeStatus::kCorrupt);
  EXPECT_EQ(unwrap_envelope(
                R"({"schema":"xlp-envelope/1","payload":"{}"})", &out,
                &reason),
            EnvelopeStatus::kCorrupt);
  EXPECT_EQ(reason, "missing checksum field");

  // Well-formed JSON of another shape is not corruption — it is the
  // back-compat branch for bare documents.
  EXPECT_EQ(unwrap_envelope("{\"v\":2}", &out, &reason),
            EnvelopeStatus::kNotEnvelope);
  EXPECT_EQ(unwrap_envelope("[1,2]", &out, &reason),
            EnvelopeStatus::kNotEnvelope);
}

// ------------------------------------------------- cache corruption corpus

TEST(CacheQuarantine, RescanQuarantinesEveryCorruptionShape) {
  const std::string dir = fresh_dir("corpus");
  fs::create_directories(dir);
  // The corpus: truncated JSON, flipped payload byte, missing checksum
  // field, zero-length file, and a directory squatting on an entry name.
  const std::string wrapped = wrap_envelope("{\"v\":1}");
  ASSERT_TRUE(util::atomic_write_file(
      dir + "/00000000000000c1.json", wrapped.substr(0, wrapped.size() / 2)));
  std::string flipped = wrapped;
  flipped[wrapped.rfind('1')] = '9';  // payload byte (the last field)
  ASSERT_TRUE(util::atomic_write_file(dir + "/00000000000000c2.json",
                                      flipped));
  ASSERT_TRUE(util::atomic_write_file(
      dir + "/00000000000000c3.json",
      R"({"schema":"xlp-envelope/1","payload":"{}"})"));
  ASSERT_TRUE(util::atomic_write_file(dir + "/00000000000000c4.json", ""));
  fs::create_directories(dir + "/00000000000000c5.json");
  // One healthy entry proves the rescan separates wheat from chaff.
  ASSERT_TRUE(util::atomic_write_file(dir + "/00000000000000c6.json",
                                      wrap_envelope("{\"v\":6}")));

  obs::MetricsRegistry metrics;
  ResultCache cache(dir, 8, &metrics);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.contains("00000000000000c6"));
  EXPECT_EQ(cache.corrupt_count(), 5);
  EXPECT_EQ(metrics.counter("svc.cache.corrupt"), 5);
  EXPECT_EQ(count_entries(fs::path(dir) / "quarantine"), 5u);
  // None of the corrupt names survived in the live directory...
  for (const char* name : {"00000000000000c1", "00000000000000c2",
                           "00000000000000c3", "00000000000000c4",
                           "00000000000000c5"}) {
    EXPECT_FALSE(cache.contains(name)) << name;
    EXPECT_FALSE(fs::exists(fs::path(dir) / (std::string(name) + ".json")))
        << name;
  }
  // ...and each id recomputes cleanly: never served corrupt, never stuck.
  EXPECT_TRUE(cache.put("00000000000000c2", "{\"v\":2}"));
  const auto recomputed = cache.get("00000000000000c2");
  ASSERT_TRUE(recomputed.has_value());
  EXPECT_EQ(*recomputed, "{\"v\":2}");
}

TEST(CacheQuarantine, InjectedReadCorruptionQuarantinesAndMisses) {
  const std::string dir = fresh_dir("readflip");
  obs::MetricsRegistry metrics;
  ResultCache cache(dir, 8, &metrics);
  const std::string id = "00000000000000d1";
  ASSERT_TRUE(cache.put(id, "{\"v\":7}"));

  ChaosGuard guard("seed=5,cache-flip@1");
  bool corrupted = false;
  EXPECT_FALSE(cache.get(id, &corrupted).has_value());
  EXPECT_TRUE(corrupted);
  EXPECT_EQ(cache.corrupt_count(), 1);
  EXPECT_EQ(metrics.counter("svc.cache.corrupt"), 1);
  EXPECT_EQ(count_entries(fs::path(dir) / "quarantine"), 1u);
  EXPECT_FALSE(cache.contains(id));

  // The transparent-recompute path: a fresh put serves clean bytes again
  // (the one-shot trigger is consumed, so this get verifies fine).
  ASSERT_TRUE(cache.put(id, "{\"v\":7}"));
  corrupted = false;
  const auto again = cache.get(id, &corrupted);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(corrupted);
  EXPECT_EQ(*again, "{\"v\":7}");
}

TEST(CacheQuarantine, MemoryOnlyCorruptEntryStillLeavesAQuarantineFile) {
  const std::string dir = fresh_dir("memonly");
  obs::MetricsRegistry metrics;
  ResultCache cache(dir, 8, &metrics);
  const std::string id = "00000000000000d2";
  {
    // write-fail@1 makes the put memory-only: no disk file exists.
    ChaosGuard guard("write-fail@1");
    EXPECT_FALSE(cache.put(id, "{\"v\":8}"));
  }
  EXPECT_FALSE(fs::exists(fs::path(dir) / (id + ".json")));
  {
    ChaosGuard guard("seed=2,cache-truncate@1");
    bool corrupted = false;
    EXPECT_FALSE(cache.get(id, &corrupted).has_value());
    EXPECT_TRUE(corrupted);
  }
  // Every svc.cache.corrupt increment has a matching quarantine file,
  // even when the live entry never reached disk.
  EXPECT_EQ(metrics.counter("svc.cache.corrupt"), 1);
  EXPECT_EQ(count_entries(fs::path(dir) / "quarantine"), 1u);
}

// --------------------------------------------------------- retry / backoff

TEST(RetryPolicy, BackoffIsDeterministicBoundedAndJittered) {
  RetryPolicy a;
  a.seed = 42;
  RetryPolicy b;
  b.seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt)
    EXPECT_DOUBLE_EQ(a.backoff_ms(attempt), b.backoff_ms(attempt));
  // Exponential envelope with jitter in [0.5, 1.0): attempt k's delay is
  // within [exp/2, exp) where exp = min(max_ms, base_ms * 2^(k-1)).
  EXPECT_GE(a.backoff_ms(1), 25.0);
  EXPECT_LT(a.backoff_ms(1), 50.0);
  EXPECT_GE(a.backoff_ms(3), 100.0);
  EXPECT_LT(a.backoff_ms(3), 200.0);
  EXPECT_LE(a.backoff_ms(12), a.max_ms);
  RetryPolicy c;
  c.seed = 43;
  EXPECT_NE(a.backoff_ms(1), c.backoff_ms(1));
}

TEST(RetryPolicy, RetryableErrorRepliesAreRecognized) {
  EXPECT_TRUE(reply_has_retryable_error(
      R"({"error":{"kind":"poisoned","retryable":true,"message":"x"}})"));
  EXPECT_FALSE(reply_has_retryable_error(
      R"({"error":{"kind":"parse","retryable":false,"message":"x"}})"));
  EXPECT_FALSE(reply_has_retryable_error(R"({"result":{"v":1}})"));
  EXPECT_TRUE(reply_has_retryable_error(
      R"([{"result":{}},{"error":{"kind":"state","retryable":true,"message":""}}])"));
  EXPECT_FALSE(reply_has_retryable_error("not json"));
  // Legacy string-shaped errors carry no retry signal.
  EXPECT_FALSE(reply_has_retryable_error(R"({"error":"boom"})"));
}

// --------------------------------------------------------------- poisoning

TEST(PoisonIsolation, OneExplodingRequestYieldsStructuredErrorOnly) {
  obs::MetricsRegistry metrics;
  Server server(test_options(fresh_dir("poison"), &metrics, 1));

  Request a;
  a.kind = RequestKind::kSolve;
  a.n = 8;
  a.link_limit = 4;
  a.moves = 200;
  a.seed = 1;
  Request b = a;
  b.seed = 2;

  // One worker thread serves the batch in submission order, so the @1
  // trigger poisons exactly the first unique request.
  ChaosGuard guard("worker-throw@1");
  const auto replies = server.serve_batch({a, b});
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_FALSE(replies[0].ok);
  EXPECT_EQ(replies[0].error_kind, "poisoned");
  EXPECT_TRUE(replies[0].retryable);
  EXPECT_TRUE(replies[1].ok) << "the batch must keep serving";
  EXPECT_EQ(metrics.counter("svc.requests.poisoned"), 1);
  // Structured error reply: kind + retryable + message, not a bare string.
  const std::string text = replies[0].to_text();
  EXPECT_NE(text.find("\"error\":{\"kind\":\"poisoned\",\"retryable\":true"),
            std::string::npos)
      << text;
  // Poisoned executions are never cached; the resubmission succeeds (the
  // one-shot trigger is consumed) — the client retry loop's contract.
  const Reply retried = server.resolve(a);
  EXPECT_TRUE(retried.ok);
  EXPECT_FALSE(retried.cache_hit);

  const obs::Json snapshot = server.stats_snapshot();
  ASSERT_NE(snapshot.find("dedup"), nullptr);
  EXPECT_EQ(static_cast<long>(
                snapshot.find("dedup")->find("poisoned")->as_number()),
            1);
  ASSERT_NE(snapshot.find("chaos"), nullptr);
  EXPECT_EQ(static_cast<long>(
                snapshot.find("chaos")->find("total")->as_number()),
            1);
}

// ------------------------------------------------------------------- queue

TEST(QueueChaos, TornReplyIsRetriedNextPassAndClientConverges) {
  const std::string root = fresh_dir("torn");
  const std::string queue_dir = root + "/q";
  obs::MetricsRegistry metrics;
  Server server(test_options(root + "/cache", &metrics));
  ASSERT_TRUE(queue_submit(queue_dir, "job",
                           batch_to_text(sweep_batch(4, "dcsa", 200, 1))));

  ChaosGuard guard("seed=4,queue-partial@1");
  // First pass: the reply is torn by a non-atomic half-write and the
  // submission is kept — served count stays 0.
  EXPECT_EQ(server.run_queue(queue_dir, /*once=*/true, 0.01), 0);
  const fs::path reply_path = fs::path(queue_dir) / "outbox" / "job.json";
  ASSERT_TRUE(fs::exists(reply_path));
  const auto torn = util::read_file(reply_path.string());
  ASSERT_TRUE(torn.has_value());
  std::string payload;
  EXPECT_EQ(unwrap_envelope(*torn, &payload), EnvelopeStatus::kCorrupt)
      << "the torn file must fail the envelope check, never be consumed";
  EXPECT_TRUE(fs::exists(fs::path(queue_dir) / "inbox" / "job.json"));

  // Second pass rewrites the reply atomically; the polling client gets
  // the complete document.
  EXPECT_EQ(server.run_queue(queue_dir, /*once=*/true, 0.01), 1);
  const std::string reply = queue_wait(queue_dir, "job", 5.0);
  EXPECT_NE(reply.find("\"result\":"), std::string::npos);
}

TEST(QueueChaos, CorruptSubmissionIsQuarantinedWithAnErrorReply) {
  const std::string root = fresh_dir("badsub");
  const std::string queue_dir = root + "/q";
  obs::MetricsRegistry metrics;
  Server server(test_options(root + "/cache", &metrics));

  std::string bad = wrap_envelope("[]");
  bad[bad.find("\"checksum\":\"") + 12] = 'x';  // break the checksum hex
  ASSERT_TRUE(util::atomic_write_file(
      (fs::path(queue_dir) / "inbox" / "bad.json").string(), bad));

  EXPECT_EQ(server.run_queue(queue_dir, /*once=*/true, 0.01), 1);
  EXPECT_TRUE(fs::exists(fs::path(queue_dir) / "quarantine" / "bad.json"));
  EXPECT_FALSE(fs::exists(fs::path(queue_dir) / "inbox" / "bad.json"));
  EXPECT_EQ(metrics.counter("svc.queue.corrupt"), 1);
  // The submitter is answered, not left polling: a non-retryable
  // structured error reply.
  const std::string reply = queue_wait(queue_dir, "bad", 5.0);
  EXPECT_NE(reply.find("\"kind\":\"parse\""), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"retryable\":false"), std::string::npos) << reply;
}

// -------------------------------------------------- end-to-end invariants

std::map<std::string, std::string> baseline_payloads(
    const std::vector<Request>& batch) {
  obs::MetricsRegistry metrics;
  Server baseline(test_options(fresh_dir("baseline"), &metrics, 4));
  std::map<std::string, std::string> payloads;
  for (const Reply& reply : baseline.serve_batch(batch)) {
    EXPECT_TRUE(reply.ok);
    payloads[reply.request_id] = reply.payload_text;
  }
  return payloads;
}

TEST(ChaosEndToEnd, BatchRepliesMatchChaosFreeBaselineUnderInjection) {
  const auto batch = sweep_batch(8, "dcsa", 300, 11);
  const auto baseline = baseline_payloads(batch);

  obs::MetricsRegistry metrics;
  const std::string cache_dir = fresh_dir("chaotic");
  Server server(test_options(cache_dir, &metrics, 4));
  // Every cache / write / worker site armed at >= 1%. Frame and queue
  // sites have dedicated transport tests.
  ChaosGuard guard(
      "seed=3,cache-flip=0.05,cache-truncate=0.05,write-fail=0.05,"
      "write-delay=0.02,worker-throw=0.05");

  // Keep resubmitting (modelling a retrying client) until a full batch
  // succeeds — but run at least kMinRounds so the probabilistic sites get
  // enough draws to have certainly fired by the time we assert they did.
  constexpr int kMinRounds = 10;
  bool all_ok = false;
  for (int round = 0; round < 50; ++round) {
    all_ok = true;
    for (const Reply& reply : server.serve_batch(batch)) {
      if (reply.ok) {
        // The headline invariant: a served payload is NEVER a corrupt
        // byte — injected corruption quarantines and recomputes instead.
        const auto expected = baseline.find(reply.request_id);
        ASSERT_NE(expected, baseline.end());
        EXPECT_EQ(reply.payload_text, expected->second)
            << "round " << round << " request " << reply.request_id;
      } else {
        // Under this spec failures are injected, hence retryable — the
        // client's signal to resubmit, which the next round models.
        EXPECT_TRUE(reply.retryable) << reply.to_text();
        all_ok = false;
      }
    }
    if (all_ok && round + 1 >= kMinRounds &&
        ChaosPolicy::global().total_injected() > 0)
      break;
  }
  EXPECT_TRUE(all_ok) << "every request must eventually be answered";
  EXPECT_GT(ChaosPolicy::global().total_injected(), 0)
      << "the spec must actually have exercised the sites";

  // Quarantine exactly accounts every injected cache corruption.
  EXPECT_EQ(static_cast<long>(
                count_entries(fs::path(cache_dir) / "quarantine")),
            server.cache().corrupt_count());
  EXPECT_EQ(metrics.counter("svc.cache.corrupt"),
            server.cache().corrupt_count());
}

// ------------------------------------------------------------------ socket

TEST(ChaosSocket, RetryingClientSurvivesFrameChaosWithoutSleeps) {
  const auto batch = sweep_batch(8, "dcsa", 200, 5);
  const auto baseline = baseline_payloads(batch);

  const std::string socket_path =
      ::testing::TempDir() + "xlp_chaos_sock.sock";
  fs::remove(socket_path);
  runctl::CancelToken cancel;
  obs::MetricsRegistry metrics;
  ServerOptions options = test_options(fresh_dir("sock_cache"), &metrics, 2);
  options.cancel = &cancel;
  Server server(options);

  ChaosGuard guard("seed=13,frame-truncate=0.15,frame-disconnect=0.15");
  std::thread daemon([&server, &socket_path] {
    EXPECT_TRUE(server.run_socket(socket_path));
  });

  {
    // No sleep before connecting: the retry policy absorbs the startup
    // race (ECONNREFUSED until the daemon binds) exactly like `xlp
    // submit` does.
    RetryPolicy policy;
    policy.retries = 12;
    policy.base_ms = 5.0;
    policy.seed = 7;
    SocketClient client(socket_path, policy);
    ASSERT_TRUE(client.ok());

    for (const Request& request : batch) {
      const auto answered =
          client.submit_with_retry(request.to_json().dump());
      ASSERT_TRUE(answered.has_value())
          << "request must eventually be served";
      const auto reply = obs::Json::parse(*answered);
      ASSERT_TRUE(reply.has_value()) << *answered;
      const obs::Json* result = reply->find("result");
      ASSERT_NE(result, nullptr) << *answered;
      const auto expected = obs::Json::parse(baseline.at(request.id()));
      ASSERT_TRUE(expected.has_value());
      EXPECT_EQ(result->dump(), expected->dump())
          << "served payload differs from the chaos-free baseline";
    }
    // The client scope closes its connection here; the drain below joins
    // workers that would otherwise block reading an open connection.
  }

  cancel.request(runctl::RunStatus::kInterrupted);
  daemon.join();
}

}  // namespace
}  // namespace xlp::svc
