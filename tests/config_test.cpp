#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp::sim {
namespace {

TEST(SimConfig, DefaultBufferBudgetMatchesMeshRouter) {
  // 5 ports x 4 VCs x 8 flits x 256 bits: the canonical mesh router.
  const SimConfig config;
  EXPECT_EQ(config.buffer_bits_per_router, 5L * 4 * 8 * 256);
}

TEST(SimConfig, VcDepthDerivesFromEqualBits) {
  const SimConfig config;
  // Mesh interior router: 5 ports, 256-bit flits -> the canonical 8 deep.
  EXPECT_EQ(config.vc_depth_flits(5, 256), 8);
  // Same budget, narrow flits: depth scales up.
  EXPECT_EQ(config.vc_depth_flits(5, 64), 32);
  // Many ports eat the budget: depth scales down but never below 2.
  EXPECT_EQ(config.vc_depth_flits(10, 256), 4);
  EXPECT_EQ(config.vc_depth_flits(40, 256), 2);
}

TEST(SimConfig, DepthFloorKeepsCreditsFlowing) {
  const SimConfig config;
  // Extreme: so many wide ports the naive division would give 0.
  EXPECT_GE(config.vc_depth_flits(100, 256), 2);
}

TEST(NetworkSide, ThrowsForRectangular) {
  const Network net(topo::make_rect_mesh(8, 4), route::HopWeights{});
  EXPECT_EQ(net.width(), 8);
  EXPECT_EQ(net.height(), 4);
  EXPECT_THROW(net.side(), PreconditionError);
  const Network square(topo::make_mesh(4), route::HopWeights{});
  EXPECT_EQ(square.side(), 4);
}

TEST(SimConfigValidation, PipelineAndVcBounds) {
  const Network net(topo::make_mesh(4), route::HopWeights{});
  const traffic::TrafficMatrix idle(4);
  SimConfig config;
  config.pipeline_stages = 0;
  EXPECT_THROW(Simulator(net, idle, config), PreconditionError);
  config = SimConfig{};
  config.vcs_per_port = 0;
  EXPECT_THROW(Simulator(net, idle, config), PreconditionError);
}

}  // namespace
}  // namespace xlp::sim
