// Rectangular (width != height) network support, end to end: topology,
// routing, the generalized reduction lemma, the simulator's zero-load
// contract, and the rectangular design sweep.

#include <gtest/gtest.h>

#include "core/app_specific.hpp"
#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "route/deadlock.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"
#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp {
namespace {

TEST(RectTopology, DimensionsAndIndexing) {
  const auto mesh = topo::make_rect_mesh(8, 4);
  EXPECT_EQ(mesh.width(), 8);
  EXPECT_EQ(mesh.height(), 4);
  EXPECT_EQ(mesh.node_count(), 32);
  EXPECT_FALSE(mesh.is_square());
  EXPECT_THROW(mesh.side(), PreconditionError);
  EXPECT_EQ(mesh.node_id({7, 3}), 31);
  EXPECT_EQ(mesh.coord(9), (topo::Coord{1, 1}));
  EXPECT_EQ(mesh.row(0).size(), 8);
  EXPECT_EQ(mesh.col(0).size(), 4);
}

TEST(RectTopology, HeterogeneousValidation) {
  // 3 rows of width 4 + 4 columns of height 3.
  std::vector<topo::RowTopology> rows(3, topo::RowTopology(4));
  std::vector<topo::RowTopology> cols(4, topo::RowTopology(3));
  EXPECT_NO_THROW(topo::ExpressMesh(rows, cols, 1, 256));
  std::vector<topo::RowTopology> bad_cols(3, topo::RowTopology(3));
  EXPECT_THROW(topo::ExpressMesh(rows, bad_cols, 1, 256),
               PreconditionError);
}

TEST(RectTopology, RouterPortsAtCorners) {
  const auto mesh = topo::make_rect_mesh(8, 4);
  EXPECT_EQ(mesh.router_ports({0, 0}), 3);  // NI + right + down
  EXPECT_EQ(mesh.router_ports({4, 1}), 5);  // interior
}

TEST(RectRouting, XyPathOn8x4) {
  const auto mesh = topo::make_rect_mesh(8, 4);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  // (1,0)=1 -> (6,3)=30: x 1..6 on row 0, then y 0..3 on column 6.
  const auto path = routing.path(1, 30);
  EXPECT_EQ(path.front(), 1);
  EXPECT_EQ(path.back(), 30);
  EXPECT_EQ(routing.hops(1, 30), 5 + 3);
  EXPECT_EQ(routing.width(), 8);
  EXPECT_EQ(routing.height(), 4);
}

TEST(RectRouting, ExpressRowsWork) {
  const topo::RowTopology row(8, {{0, 7}});
  const topo::RowTopology col(4);
  const auto mesh = topo::make_rect_design(row, col, 2);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  EXPECT_EQ(routing.hops(0, 7), 1);
  EXPECT_EQ(routing.hops(0, 31), 1 + 3);
}

TEST(RectRouting, DeadlockFreeWithExpressLinks) {
  Rng rng(5);
  const topo::RowTopology row = test::random_valid_row(8, 4, rng);
  const topo::RowTopology col = test::random_valid_row(4, 4, rng);
  const auto mesh = topo::make_rect_design(row, col, 4);
  const route::MeshRouting routing(mesh, route::HopWeights{});
  for (const auto orientation :
       {route::Orientation::kXYFirst, route::Orientation::kYXFirst}) {
    const route::ChannelDependencyGraph cdg(mesh, routing, orientation);
    EXPECT_FALSE(cdg.has_cycle());
  }
}

TEST(RectLemma, GeneralizedReductionFormula) {
  // For a homogeneous w x h design, averaging head latency over ordered
  // pairs with src != dst:
  //   L_D,avg = [h^2*w*(w-1)*rc + w^2*h*(h-1)*cc] / (wh*(wh-1)) + Tr
  // where rc/cc are the average pairwise costs within one row / column.
  Rng rng(7);
  for (const auto& [w, h] :
       {std::pair{8, 4}, std::pair{4, 8}, std::pair{6, 3}, std::pair{5, 7}}) {
    const topo::RowTopology row = test::random_valid_row(w, 3, rng);
    const topo::RowTopology col = test::random_valid_row(h, 3, rng);
    const topo::ExpressMesh mesh(row, col, 3, 64);
    const route::DirectionalShortestPaths rp(row, route::HopWeights{});
    const route::DirectionalShortestPaths cp(col, route::HopWeights{});
    const double rc = rp.average_cost();
    const double cc = cp.average_cost();
    const double n = static_cast<double>(w) * h;
    const double expected =
        (static_cast<double>(h) * h * w * (w - 1) * rc +
         static_cast<double>(w) * w * h * (h - 1) * cc) /
            (n * (n - 1)) +
        3.0;
    const latency::MeshLatencyModel model(
        mesh, latency::LatencyParams::zero_load());
    EXPECT_NEAR(model.average().head, expected, 1e-9)
        << w << "x" << h << " " << row.to_string();
  }
}

TEST(RectSim, ZeroLoadMatchesAnalytic) {
  Rng rng(3);
  const topo::RowTopology row = test::random_valid_row(8, 4, rng);
  const topo::RowTopology col = test::random_valid_row(4, 2, rng);
  const auto design = topo::make_rect_design(row, col, 4);
  const latency::MeshLatencyModel model(design,
                                        latency::LatencyParams::zero_load());

  const sim::Network network(design, route::HopWeights{});
  const traffic::TrafficMatrix idle(8, 4);
  sim::SimConfig config;
  config.warmup_cycles = 100;
  config.measure_cycles = 2000;
  sim::Simulator simulator(network, idle, config);
  simulator.schedule_packet(0, 31, 512, 150);
  simulator.schedule_packet(31, 0, 128, 600);
  const auto stats = simulator.run();
  EXPECT_EQ(stats.packets_finished, 2);

  const int flits_long = latency::PacketMix::flits_for(512,
                                                       design.flit_bits());
  const int flits_short = latency::PacketMix::flits_for(128,
                                                        design.flit_bits());
  EXPECT_EQ(simulator.packet_latency(0),
            static_cast<long>(model.pair_head_latency(0, 31)) + flits_long);
  EXPECT_EQ(simulator.packet_latency(1),
            static_cast<long>(model.pair_head_latency(31, 0)) + flits_short);
}

TEST(RectSim, UniformLoadDrains) {
  const auto design = topo::make_rect_mesh(8, 4);
  traffic::TrafficMatrix demand(8, 4);
  Rng rng(11);
  for (int src = 0; src < 32; ++src)
    for (int dst = 0; dst < 32; ++dst)
      if (src != dst) demand.set_rate(src, dst, 0.02 / 31.0);
  sim::SimConfig config;
  config.warmup_cycles = 200;
  config.measure_cycles = 2000;
  config.drain_cycles = 3000;
  const auto stats = exp::simulate_design(design, demand, config);
  EXPECT_TRUE(stats.drained);
  EXPECT_GT(stats.packets_finished, 100);
}

TEST(RectSim, MismatchedDemandIsRejected) {
  const auto design = topo::make_rect_mesh(8, 4);
  const sim::Network network(design, route::HopWeights{});
  const traffic::TrafficMatrix wrong(4, 8);
  EXPECT_THROW(sim::Simulator(network, wrong, sim::SimConfig{}),
               PreconditionError);
}

TEST(RectSweep, OptimizesBothDimensions) {
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(500);
  options.latency = latency::LatencyParams::zero_load();
  Rng rng(9);
  const auto points = core::sweep_link_limits_rect(8, 4, options, rng);
  ASSERT_GE(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_EQ(p.design.width(), 8);
    EXPECT_EQ(p.design.height(), 4);
    EXPECT_TRUE(p.design.is_feasible());
  }
  const auto& best = points[core::best_point(points)];
  const double mesh_total =
      core::evaluate_design(topo::make_rect_mesh(8, 4), options.latency, {})
          .total();
  EXPECT_LT(best.breakdown.total(), mesh_total);
}

TEST(RectAppSpecific, WorksOnRectangularDemand) {
  traffic::TrafficMatrix demand(4, 8);
  demand.set_rate(0, 31, 1.0);
  demand.set_rate(31, 0, 1.0);
  core::SweepOptions options;
  options.sa = core::SaParams{}.with_moves(200);
  options.latency = latency::LatencyParams::zero_load();
  Rng rng(13);
  const auto result = core::solve_app_specific(demand, options, rng);
  EXPECT_EQ(result.design.width(), 4);
  EXPECT_EQ(result.design.height(), 8);
  EXPECT_TRUE(result.design.is_feasible());
}

TEST(RectConcentrate, RectangularTiles) {
  const auto cores = traffic::TrafficMatrix(8, 4);
  traffic::TrafficMatrix m(8, 4);
  m.set_rate(0, 31, 0.5);  // (0,0) -> (7,3): tiles (0,0) -> (3,1) on 4x2
  const auto routers = m.concentrate(2);
  EXPECT_EQ(routers.width(), 4);
  EXPECT_EQ(routers.height(), 2);
  EXPECT_DOUBLE_EQ(routers.rate(0, 7), 0.5);
}

}  // namespace
}  // namespace xlp
