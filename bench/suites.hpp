#pragma once

namespace xlp::bench {

/// Registers every benchmark suite with Registry::global(). Registration
/// is explicit — call this from main() (the standalone bench binaries and
/// `xlp bench` both do) — so nothing depends on static-initializer order
/// or on the linker keeping unreferenced objects alive.
///
/// Suites:
///   micro_core     — optimizer/routing kernels (ns/op), including the
///                    service request hash and cache lookup
///   sim            — flit simulator throughput (cycles/sec, packets/sec)
///   svc            — batch server served-requests/sec at 0% / 90%
///                    duplicates, plus the sweep-resubmit cache speedup
///   fig07_runtime  — Fig. 7 quality-vs-budget series (payload)
///   scalability    — sweep cost/benefit vs network size
///   fault_campaign — Monte Carlo fault-resilience campaign
void register_all_suites();

}  // namespace xlp::bench
