// Reproduces Fig. 9: router power consumption on the 8x8 network, per
// PARSEC benchmark, split into static and dynamic components, for Mesh,
// HFB and the proposed D&C_SA design. Values are normalized to the Mesh
// total as in the paper's plot.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "power/model.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Fig. 9 reproduction — paper expectations: D&C_SA total router "
              "power 10.4%% below\nMesh and ~0.6%% below HFB; dynamic power "
              "down 15.1%%/6.6%%; static roughly equal\nand about two "
              "thirds of the total.\n\n");

  const auto solved = exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];
  const auto fixed = exp::fixed_designs(8);

  Table table({"benchmark", "Mesh(s)", "Mesh(d)", "HFB(s)", "HFB(d)",
               "DCSA(s)", "DCSA(d)"});
  double totals[3] = {0, 0, 0};
  double dynamics[3] = {0, 0, 0};
  double statics[3] = {0, 0, 0};
  for (const auto& model : traffic::parsec_models()) {
    const auto demand = model.traffic_matrix(8);
    const auto config = exp::default_sim_config(11);

    const topo::ExpressMesh* designs[3] = {&fixed[0].design, &fixed[1].design,
                                           &best.design};
    power::PowerReport reports[3];
    for (int i = 0; i < 3; ++i) {
      const auto stats = exp::simulate_design(*designs[i], demand, config);
      reports[i] = power::evaluate_power(*designs[i], stats.activity,
                                         config.buffer_bits_per_router);
      totals[i] += reports[i].total();
      dynamics[i] += reports[i].dynamic_total();
      statics[i] += reports[i].static_total();
    }
    const double mesh_total = reports[0].total();
    table.add_row({model.name,
                   Table::fmt(reports[0].static_total() / mesh_total),
                   Table::fmt(reports[0].dynamic_total() / mesh_total),
                   Table::fmt(reports[1].static_total() / mesh_total),
                   Table::fmt(reports[1].dynamic_total() / mesh_total),
                   Table::fmt(reports[2].static_total() / mesh_total),
                   Table::fmt(reports[2].dynamic_total() / mesh_total)});
  }
  table.print(std::cout);

  std::printf("\nsummary (average over benchmarks):\n");
  std::printf("  total power:   D&C_SA %.1f%% below Mesh, %.1f%% below HFB\n",
              -percent_change(totals[2], totals[0]),
              -percent_change(totals[2], totals[1]));
  std::printf("  dynamic power: D&C_SA %.1f%% below Mesh, %.1f%% below HFB\n",
              -percent_change(dynamics[2], dynamics[0]),
              -percent_change(dynamics[2], dynamics[1]));
  std::printf("  static share of Mesh total: %.0f%%\n",
              100.0 * statics[0] / totals[0]);
  return 0;
}
