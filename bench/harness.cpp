#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <regex>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/fsio.hpp"

namespace xlp::bench {

namespace {

using Clock = std::chrono::steady_clock;

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) return values[mid];
  return 0.5 * (values[mid - 1] + values[mid]);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::add(BenchSpec spec) { specs_.push_back(std::move(spec)); }

void register_bench(std::string suite, std::string name, std::string tags,
                    BenchFn fn) {
  Registry::global().add(
      {std::move(suite), std::move(name), std::move(tags), std::move(fn)});
}

BenchResult Runner::run_one(const BenchSpec& spec) const {
  BenchResult result;
  result.suite = spec.suite;
  result.name = spec.name;
  result.tags = spec.tags;
  result.repeats = options_.repeats;

  // Warmup runs untimed and unprofiled: scopes recorded here would show up
  // as roots outside the benchmark's own scope and dilute its coverage.
  const bool profiling = obs::Profiler::enabled();
  if (profiling) obs::Profiler::disable();
  for (int i = 0; i < options_.warmup; ++i) {
    BenchRun warm;
    spec.fn(warm);
  }
  if (profiling) obs::Profiler::enable();

  // One profiler scope per repeat, named suite/name, so a --profile dump's
  // root scopes are exactly the timed regions of the run.
  const std::string scope_name = spec.suite + "/" + spec.name;
  std::vector<double> per_op_ns;
  per_op_ns.reserve(static_cast<std::size_t>(options_.repeats));
  std::vector<std::vector<std::pair<std::string, double>>> rate_samples;
  std::vector<std::vector<std::pair<std::string, double>>> time_samples;
  for (int i = 0; i < options_.repeats; ++i) {
    BenchRun run;
    const auto start = Clock::now();
    {
      const obs::ProfileScope repeat_scope(scope_name.c_str());
      spec.fn(run);
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    result.total_seconds += seconds;
    result.items = run.items_ > 0 ? run.items_ : 1;
    per_op_ns.push_back(seconds * 1e9 / static_cast<double>(result.items));
    std::vector<std::pair<std::string, double>> rates;
    for (const auto& [name, amount] : run.rates_)
      rates.emplace_back(name + "_per_sec",
                         seconds > 0.0 ? amount / seconds : 0.0);
    rate_samples.push_back(std::move(rates));
    time_samples.push_back(run.times_);
    result.counters = run.counters_;
    if (run.has_payload()) result.payload = std::move(run.payload_);
  }

  result.min_ns = per_op_ns.empty()
                      ? 0.0
                      : *std::min_element(per_op_ns.begin(), per_op_ns.end());
  result.median_ns = median_of(per_op_ns);
  result.mean_ns = mean_of(per_op_ns);

  // Rate names are fixed per benchmark; take the median across repeats.
  if (!rate_samples.empty()) {
    const auto& names = rate_samples.front();
    for (std::size_t r = 0; r < names.size(); ++r) {
      std::vector<double> samples;
      for (const auto& repeat : rate_samples)
        if (r < repeat.size()) samples.push_back(repeat[r].second);
      result.rates.emplace_back(names[r].first, median_of(std::move(samples)));
    }
  }
  // Same treatment for body-measured latencies: fixed names, median value.
  if (!time_samples.empty()) {
    const auto& names = time_samples.front();
    for (std::size_t t = 0; t < names.size(); ++t) {
      std::vector<double> samples;
      for (const auto& repeat : time_samples)
        if (t < repeat.size()) samples.push_back(repeat[t].second);
      result.times.emplace_back(names[t].first, median_of(std::move(samples)));
    }
  }
  return result;
}

std::vector<SuiteReport> Runner::run() const {
  std::optional<std::regex> filter;
  if (!options_.filter.empty())
    filter.emplace(options_.filter, std::regex::ECMAScript);

  std::vector<SuiteReport> reports;
  for (const auto& spec : Registry::global().specs()) {
    if (filter) {
      const std::string haystack =
          spec.suite + "/" + spec.name + " " + spec.tags;
      if (!std::regex_search(haystack, *filter)) continue;
    }
    auto it = std::find_if(reports.begin(), reports.end(),
                           [&](const SuiteReport& r) {
                             return r.suite == spec.suite;
                           });
    if (it == reports.end()) {
      reports.push_back({spec.suite, {}});
      it = reports.end() - 1;
    }
    std::fprintf(stderr, "[bench] %s/%s ...\n", spec.suite.c_str(),
                 spec.name.c_str());
    it->results.push_back(run_one(spec));
  }

  if (!options_.out_dir.empty()) {
    for (const auto& report : reports) {
      const std::string path =
          write_bench_json(options_.out_dir, report.suite,
                           suite_to_json(report));
      if (path.empty())
        std::fprintf(stderr, "[bench] warning: failed to write BENCH_%s.json\n",
                     report.suite.c_str());
      else
        std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    }
  }
  return reports;
}

obs::Json Runner::suite_to_json(const SuiteReport& report) const {
  const bool det = options_.deterministic;
  obs::Json doc = obs::Json::object();
  doc.set("schema", kBenchSchema);
  doc.set("kind", "suite");
  doc.set("suite", report.suite);
  doc.set("provenance", options_.provenance.to_json());
  obs::Json opts = obs::Json::object();
  opts.set("warmup", options_.warmup);
  opts.set("repeats", options_.repeats);
  opts.set("deterministic", det);
  doc.set("options", std::move(opts));
  obs::Json benches = obs::Json::array();
  for (const auto& r : report.results) {
    obs::Json b = obs::Json::object();
    b.set("name", r.name);
    b.set("tags", r.tags);
    b.set("repeats", r.repeats);
    b.set("items", r.items);
    b.set("min_ns", det ? 0.0 : r.min_ns);
    b.set("median_ns", det ? 0.0 : r.median_ns);
    b.set("mean_ns", det ? 0.0 : r.mean_ns);
    obs::Json metrics = obs::Json::object();
    for (const auto& [name, value] : r.rates)
      metrics.set(name, det ? 0.0 : value);
    for (const auto& [name, value] : r.times)
      metrics.set(name, det ? 0.0 : value);
    for (const auto& [name, value] : r.counters) metrics.set(name, value);
    b.set("metrics", std::move(metrics));
    if (!r.payload.is_null()) b.set("payload", r.payload);
    benches.push(std::move(b));
  }
  doc.set("benchmarks", std::move(benches));
  return doc;
}

void Runner::print(const std::vector<SuiteReport>& reports) {
  std::printf("%-40s %14s %14s %14s\n", "benchmark", "min ns/op",
              "median ns/op", "mean ns/op");
  for (const auto& report : reports) {
    for (const auto& r : report.results) {
      const std::string label = report.suite + "/" + r.name;
      std::printf("%-40s %14.1f %14.1f %14.1f\n", label.c_str(), r.min_ns,
                  r.median_ns, r.mean_ns);
      for (const auto& [name, value] : r.rates)
        std::printf("%-40s   %s = %.3g\n", "", name.c_str(), value);
      for (const auto& [name, value] : r.times)
        std::printf("%-40s   %s = %.3g\n", "", name.c_str(), value);
      for (const auto& [name, value] : r.counters)
        std::printf("%-40s   %s = %.6g\n", "", name.c_str(), value);
    }
  }
}

std::string write_bench_json(const std::string& dir, const std::string& name,
                             const obs::Json& doc) {
  std::string path = dir.empty() ? std::string(".") : dir;
  if (path.back() != '/') path += '/';
  path += "BENCH_" + name + ".json";
  // Atomic write: bench_diff and CI gates read these files, and a run
  // killed mid-write must not leave a truncated baseline behind.
  if (!util::atomic_write_file(path, doc.dump() + "\n")) return {};
  return path;
}

std::string write_artifact(const std::string& dir, const std::string& name,
                           const obs::Json& data,
                           const obs::Provenance& provenance) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", kBenchSchema);
  doc.set("kind", "artifact");
  doc.set("name", name);
  doc.set("provenance", provenance.to_json());
  doc.set("data", data);
  return write_bench_json(dir, name, doc);
}

int run_and_report(const RunnerOptions& options,
                   const std::string& profile_path, bool list_only) {
  if (list_only) {
    for (const auto& spec : Registry::global().specs())
      std::printf("%s/%s %s\n", spec.suite.c_str(), spec.name.c_str(),
                  spec.tags.c_str());
    return 0;
  }

  if (!profile_path.empty()) {
    obs::Profiler::reset();
    obs::Profiler::enable();
  }
  const Runner runner(options);
  const auto reports = runner.run();
  Runner::print(reports);
  if (!profile_path.empty()) {
    obs::Profiler::disable();
    const auto report = obs::Profiler::snapshot();
    if (!util::atomic_write_file(profile_path, report.to_collapsed())) {
      std::fprintf(stderr, "error: cannot write %s\n", profile_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "[bench] wrote profile %s\n", profile_path.c_str());
  }
  return 0;
}

int run_main(int argc, char** argv, RunnerOptions defaults,
             const char* default_filter) {
  RunnerOptions options = std::move(defaults);
  options.provenance = obs::Provenance::collect(options.provenance.seed);
  std::string profile_path;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--filter") {
      const char* v = value();
      if (!v) return 2;
      options.filter = v;
    } else if (arg == "--repeats") {
      const char* v = value();
      if (!v) return 2;
      options.repeats = std::max(1, std::atoi(v));
    } else if (arg == "--warmup") {
      const char* v = value();
      if (!v) return 2;
      options.warmup = std::max(0, std::atoi(v));
    } else if (arg == "--out-dir") {
      const char* v = value();
      if (!v) return 2;
      options.out_dir = v;
    } else if (arg == "--profile") {
      const char* v = value();
      if (!v) return 2;
      profile_path = v;
    } else if (arg == "--deterministic") {
      options.deterministic = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--filter re] [--repeats n] [--warmup n]\n"
          "          [--out-dir dir] [--profile out.folded]\n"
          "          [--deterministic] [--list]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  if (options.filter.empty() && default_filter != nullptr)
    options.filter = default_filter;

  return run_and_report(options, profile_path, list_only);
}

}  // namespace xlp::bench
