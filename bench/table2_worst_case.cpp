// Reproduces Table 2: maximum zero-load packet latency (cycles) between any
// two routers, for Mesh, HFB and the D&C_SA design on 4x4, 8x8 and 16x16
// networks.
//
// The Mesh and HFB rows are fully analytic and land exactly on the paper's
// numbers for 4x4 and 8x8 (28.2 / 60.2 and 15.2 / 38.2); the paper's 16x16
// Mesh value (71.2) is inconsistent with the latency model that fits the
// other rows exactly — see EXPERIMENTS.md.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Table 2 reproduction — maximum zero-load packet latency "
              "(cycles).\nPaper: Mesh 28.2/60.2/71.2, HFB 15.2/38.2/63.8, "
              "D&C_SA 13.6/33.2/55.2.\n\n");

  Table table({"topology", "4x4", "8x8", "16x16"});
  std::vector<std::vector<std::string>> rows(3);
  rows[0] = {"Mesh"};
  rows[1] = {"HFB"};
  rows[2] = {"D&C_SA"};

  for (const int n : {4, 8, 16}) {
    const auto params = latency::LatencyParams::zero_load();
    const auto fixed = exp::fixed_designs(n);
    rows[0].push_back(Table::fmt(
        latency::MeshLatencyModel(fixed[0].design, params).worst_case(), 1));
    rows[1].push_back(Table::fmt(
        latency::MeshLatencyModel(fixed[1].design, params).worst_case(), 1));

    // The design D&C_SA would actually ship: the best point of the full
    // sweep by *average* latency (the paper's flow), then report its worst
    // case.
    const auto solved =
        exp::solve_general_purpose(n, core::Solver::kDcsa, 42);
    const auto& best = solved.points[solved.best];
    rows[2].push_back(Table::fmt(
        latency::MeshLatencyModel(best.design, params).worst_case(), 1));
  }
  for (auto& row : rows) table.add_row(std::move(row));
  table.print(std::cout);
  return 0;
}
