// Router-microarchitecture ablation: round-robin vs age-based (oldest
// packet first) switch allocation on the optimized 8x8 design under
// uniform-random load. Age-based arbitration does not change the mean much
// but tightens the latency tail (p95/p99) near saturation — a standard
// result, included here because the placement study holds the router
// constant and a skeptical reader may ask how sensitive the comparison is
// to that choice (answer: the topology ordering is unaffected).

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "sim/throughput.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Arbiter ablation — round-robin vs oldest-first switch "
              "allocation, 8x8, UR.\n\n");

  const auto solved = exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];
  const sim::Network net(best.design, route::HopWeights{});
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, 8, 1.0);

  Table table({"load", "arbiter", "avg", "p50", "p95", "p99", "max"});
  for (const double load : {0.05, 0.12, 0.18}) {
    for (const auto arbiter :
         {sim::Arbiter::kRoundRobin, sim::Arbiter::kOldestFirst}) {
      sim::SimConfig config = exp::default_sim_config(5);
      config.arbiter = arbiter;
      const auto stats = sim::simulate_at_load(net, shape, load, config);
      table.add_row({Table::fmt(load, 2),
                     arbiter == sim::Arbiter::kRoundRobin ? "round-robin"
                                                          : "oldest-first",
                     Table::fmt(stats.avg_latency),
                     Table::fmt(stats.p50_latency, 0),
                     Table::fmt(stats.p95_latency, 0),
                     Table::fmt(stats.p99_latency, 0),
                     Table::fmt(stats.max_latency, 0)});
    }
  }
  table.print(std::cout);
  return 0;
}
