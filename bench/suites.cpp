// All benchmark suites, registered explicitly via register_all_suites().
// micro_core carries the kernel benchmarks that used to live on
// google-benchmark; sim measures simulator throughput; fig07_runtime,
// scalability and fault_campaign wrap the corresponding experiments so
// their series land in schema-versioned BENCH_*.json documents.

#include "suites.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/branch_bound.hpp"
#include "core/c_sweep.hpp"
#include "core/delta_objective.hpp"
#include "core/dnc.hpp"
#include "core/drivers.hpp"
#include "core/objective.hpp"
#include "core/portfolio.hpp"
#include "core/sa.hpp"
#include "exp/fault_campaign.hpp"
#include "exp/scenarios.hpp"
#include "harness.hpp"
#include "latency/model.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "route/directional_paths.hpp"
#include "svc/cache.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "topo/builders.hpp"
#include "topo/connection_matrix.hpp"
#include "traffic/app_models.hpp"
#include "traffic/matrix.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace xlp::bench {

namespace {

// Keeps results observable so the optimizer cannot delete a kernel body.
volatile double g_sink = 0.0;

topo::RowTopology sample_row(int n, int limit) {
  Rng rng(static_cast<std::uint64_t>(n * 131 + limit));
  return topo::ConnectionMatrix::random(n, limit, rng, 0.5).decode();
}

void register_micro_core() {
  for (const int n : {8, 16, 32}) {
    register_bench("micro_core", "directional_paths_" + std::to_string(n),
                   n == 8 ? "smoke" : "", [n](BenchRun& run) {
                     const topo::RowTopology row = sample_row(n, 4);
                     constexpr int kIters = 20;
                     for (int i = 0; i < kIters; ++i) {
                       route::DirectionalShortestPaths paths(
                           row, route::HopWeights{});
                       g_sink = paths.cost(0, n - 1);
                     }
                     run.set_items(kIters);
                   });
  }
  for (const int n : {8, 32}) {
    register_bench("micro_core", "matrix_decode_" + std::to_string(n),
                   n == 8 ? "smoke" : "", [n](BenchRun& run) {
                     Rng rng(1);
                     const auto m =
                         topo::ConnectionMatrix::random(n, 4, rng, 0.5);
                     constexpr int kIters = 50;
                     for (int i = 0; i < kIters; ++i) {
                       auto row = m.decode();
                       g_sink = static_cast<double>(row.size());
                     }
                     run.set_items(kIters);
                   });
  }
  register_bench("micro_core", "matrix_encode_8", "smoke", [](BenchRun& run) {
    const topo::RowTopology row = sample_row(8, 4);
    constexpr int kIters = 50;
    for (int i = 0; i < kIters; ++i) {
      auto m = topo::ConnectionMatrix::encode(row, 4);
      g_sink = static_cast<double>(m.decode().size());
    }
    run.set_items(kIters);
  });
  for (const int n : {8, 16, 32}) {
    register_bench("micro_core", "objective_evaluate_" + std::to_string(n),
                   n == 8 ? "smoke" : "", [n](BenchRun& run) {
                     const core::RowObjective obj(n, route::HopWeights{});
                     const topo::RowTopology row = sample_row(n, 4);
                     constexpr int kIters = 20;
                     for (int i = 0; i < kIters; ++i)
                       g_sink = obj.evaluate(row);
                     run.set_items(kIters);
                   });
  }
  // sa_moves_* is the full-evaluation reference path (delta_eval off);
  // sa_delta_moves_* runs the identical schedule with the incremental
  // evaluator. Their best_value counters must agree exactly (the delta
  // contract), and the CI perf gate asserts moves_per_sec of the delta
  // variant stays well ahead of the reference.
  for (const int n : {8, 16, 32}) {
    register_bench("micro_core", "sa_moves_" + std::to_string(n),
                   n == 8 ? "smoke" : "", [n](BenchRun& run) {
                     const core::RowObjective obj(n, route::HopWeights{});
                     Rng rng(3);
                     core::SaParams params;
                     params.total_moves = 500;
                     params.moves_per_cool = 25;
                     params.delta_eval = false;
                     const auto initial =
                         topo::ConnectionMatrix::random(n, 4, rng, 0.5);
                     Rng move_rng(7);
                     const auto result = core::anneal_connection_matrix(
                         initial, obj, params, move_rng);
                     g_sink = result.best_value;
                     run.set_items(params.total_moves);
                     run.set_rate("moves",
                                  static_cast<double>(params.total_moves));
                     run.set_counter("best_value", result.best_value);
                   });
  }
  for (const int n : {8, 16, 32}) {
    register_bench("micro_core", "sa_delta_moves_" + std::to_string(n),
                   n == 8 ? "smoke" : "", [n](BenchRun& run) {
                     const core::RowObjective obj(n, route::HopWeights{});
                     Rng rng(3);
                     core::SaParams params;
                     params.total_moves = 500;
                     params.moves_per_cool = 25;
                     params.delta_eval = true;
                     const auto initial =
                         topo::ConnectionMatrix::random(n, 4, rng, 0.5);
                     Rng move_rng(7);
                     const auto result = core::anneal_connection_matrix(
                         initial, obj, params, move_rng);
                     g_sink = result.best_value;
                     run.set_items(params.total_moves);
                     run.set_rate("moves",
                                  static_cast<double>(params.total_moves));
                     run.set_counter("best_value", result.best_value);
                   });
  }
  // Head-to-head single-pair timing: the same 200-flip random walk scored
  // by the full evaluator and by the delta evaluator, interleaved into one
  // bench so both times come from the same process state. value_match is 1
  // only when every one of the 200 scores agreed bit-for-bit.
  register_bench("micro_core", "delta_vs_full_pair", "", [](BenchRun& run) {
    const int n = 16;
    const core::RowObjective obj(n, route::HopWeights{});
    Rng rng(5);
    const auto initial = topo::ConnectionMatrix::random(n, 4, rng, 0.5);
    constexpr int kMoves = 200;
    Rng walk_rng(9);
    std::vector<int> bits(kMoves);
    for (int& bit : bits)
      bit = static_cast<int>(walk_rng.uniform_below(
          static_cast<std::uint64_t>(initial.bit_count())));

    topo::ConnectionMatrix full_state = initial;
    std::vector<double> full_scores(kMoves);
    const auto full_start = std::chrono::steady_clock::now();
    for (int m = 0; m < kMoves; ++m) {
      full_state.flip_flat(bits[m]);
      full_scores[m] = obj.evaluate(full_state.decode());
    }
    const auto full_end = std::chrono::steady_clock::now();

    core::DeltaRowObjective delta(obj, initial);
    std::vector<double> delta_scores(kMoves);
    const auto delta_start = std::chrono::steady_clock::now();
    for (int m = 0; m < kMoves; ++m) {
      delta_scores[m] = delta.propose_flip(bits[m]);
      delta.commit();
    }
    const auto delta_end = std::chrono::steady_clock::now();

    bool match = true;
    for (int m = 0; m < kMoves; ++m)
      if (full_scores[m] != delta_scores[m]) match = false;
    g_sink = delta_scores.back();
    run.set_items(kMoves);
    run.set_time_ns("full_move",
                    std::chrono::duration<double, std::nano>(full_end -
                                                             full_start)
                            .count() /
                        kMoves);
    run.set_time_ns("delta_move",
                    std::chrono::duration<double, std::nano>(delta_end -
                                                             delta_start)
                            .count() /
                        kMoves);
    run.set_counter("value_match", match ? 1.0 : 0.0);
  });
  for (const int n : {8, 16, 32}) {
    register_bench("micro_core", "dnc_initializer_" + std::to_string(n),
                   n == 8 ? "smoke" : "", [n](BenchRun& run) {
                     const core::RowObjective obj(n, route::HopWeights{});
                     const auto result = core::dnc_initial_solution(obj, 4);
                     g_sink = result.value;
                     run.set_counter("value", result.value);
                   });
  }
  for (const int n : {4, 6, 8}) {
    register_bench("micro_core", "branch_bound_" + std::to_string(n),
                   n == 4 ? "smoke" : "", [n](BenchRun& run) {
                     const core::RowObjective obj(n, route::HopWeights{});
                     core::BranchAndBound bb(obj, 2);
                     const auto result = bb.solve();
                     g_sink = result.value;
                     run.set_counter("value", result.value);
                   });
  }
  // Cost of the time-series instrumentation on the simulator cycle loop.
  // The plain variant is the recording-disabled path (one predictable
  // branch per cycle) that the CI overhead gate holds to <1% against the
  // baseline; the _series variant attaches a recorder so the two medians
  // side by side show what enabling telemetry actually buys and costs.
  // Fixed cycle counts (not XLP_BENCH_SCALE) keep the timed work identical
  // across environments.
  const auto sim_run = [](obs::SeriesRecorder* recorder, BenchRun& run) {
    sim::SimConfig config;
    config.warmup_cycles = 500;
    config.measure_cycles = 2000;
    config.drain_cycles = 8000;
    config.seed = 11;
    config.series = recorder;
    const auto demand = traffic::TrafficMatrix::from_pattern(
        traffic::Pattern::kUniformRandom, 8, 0.02);
    const auto stats =
        exp::simulate_design(topo::make_mesh(8), demand, config);
    run.set_items(config.warmup_cycles + config.measure_cycles);
    run.set_counter("packets_finished",
                    static_cast<double>(stats.packets_finished));
  };
  register_bench("micro_core", "sim_run_8x8", "smoke",
                 [sim_run](BenchRun& run) { sim_run(nullptr, run); });
  register_bench("micro_core", "sim_run_8x8_series", "smoke",
                 [sim_run](BenchRun& run) {
                   obs::SeriesRecorder recorder(512);
                   sim_run(&recorder, run);
                   g_sink = static_cast<double>(recorder.names().size());
                 });
  // Service-path kernels: the request content hash (canonical JSON +
  // FNV-1a) and an in-memory cache hit — the two operations every request
  // pays before any real work happens.
  register_bench("micro_core", "request_hash", "smoke", [](BenchRun& run) {
    svc::Request request;
    request.kind = svc::RequestKind::kSolve;
    request.n = 8;
    request.link_limit = 4;
    constexpr int kIters = 200;
    for (int i = 0; i < kIters; ++i) {
      request.seed = static_cast<std::uint64_t>(i);
      g_sink = static_cast<double>(request.id().size());
    }
    run.set_items(kIters);
  });
  register_bench("micro_core", "cache_lookup", "smoke", [](BenchRun& run) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / "xlp_bench_cache_lookup")
            .string();
    std::filesystem::remove_all(dir);
    obs::MetricsRegistry metrics;
    svc::ResultCache cache(dir, 64, &metrics);
    svc::Request request;
    const std::string id = request.id();
    cache.put(id, "{\"kind\":\"solve\",\"value\":7.5}");
    constexpr int kIters = 200;
    for (int i = 0; i < kIters; ++i) {
      const auto hit = cache.get(id);
      g_sink = hit ? static_cast<double>(hit->size()) : -1.0;
    }
    run.set_items(kIters);
    std::filesystem::remove_all(dir);
  });
}

// Serves one batch on a fresh server + cache rooted at `dir` and returns
// the served-requests/sec the caller should report (requests / seconds).
void register_svc() {
  namespace fs = std::filesystem;
  const auto fresh_server = [](const std::string& dir,
                               obs::MetricsRegistry& metrics) {
    fs::remove_all(dir);
    svc::ServerOptions options;
    options.cache_dir = dir;
    options.metrics = &metrics;
    return options;
  };
  // 0% duplicates: every request of an 8x8 C-sweep batch is unique, so the
  // server executes all of them — the no-benefit floor of the cache.
  register_bench("svc", "serve_sweep8_unique", "smoke",
                 [fresh_server](BenchRun& run) {
                   const auto batch = svc::sweep_batch(8, "dcsa", 300, 1);
                   obs::MetricsRegistry metrics;
                   svc::Server server(fresh_server(
                       (fs::temp_directory_path() / "xlp_bench_svc_u")
                           .string(),
                       metrics));
                   const auto replies = server.serve_batch(batch);
                   g_sink = static_cast<double>(replies.size());
                   run.set_items(static_cast<long>(batch.size()));
                   run.set_rate("requests",
                                static_cast<double>(batch.size()));
                   run.set_counter("executed", static_cast<double>(
                                       metrics.counter("svc.executed")));
                 });
  // 90% duplicates: the same sweep batch submitted ten times over — the
  // shape of a parameter-sweep campaign. Only the first tenth executes.
  register_bench("svc", "serve_sweep8_dup90", "smoke",
                 [fresh_server](BenchRun& run) {
                   const auto unique = svc::sweep_batch(8, "dcsa", 300, 1);
                   std::vector<svc::Request> batch;
                   for (int copy = 0; copy < 10; ++copy)
                     batch.insert(batch.end(), unique.begin(), unique.end());
                   obs::MetricsRegistry metrics;
                   svc::Server server(fresh_server(
                       (fs::temp_directory_path() / "xlp_bench_svc_d")
                           .string(),
                       metrics));
                   const auto replies = server.serve_batch(batch);
                   g_sink = static_cast<double>(replies.size());
                   run.set_items(static_cast<long>(batch.size()));
                   run.set_rate("requests",
                                static_cast<double>(batch.size()));
                   run.set_counter("executed", static_cast<double>(
                                       metrics.counter("svc.executed")));
                 });
  // The acceptance scenario (docs/service.md): an 8x8 C-sweep submitted
  // twice end to end. The second submission is answered entirely from the
  // cache; the recorded speedup is cold/warm wall time.
  register_bench("svc", "sweep8_resubmit_speedup", "smoke",
                 [fresh_server](BenchRun& run) {
                   const auto batch = svc::sweep_batch(8, "dcsa", 300, 1);
                   obs::MetricsRegistry metrics;
                   svc::Server server(fresh_server(
                       (fs::temp_directory_path() / "xlp_bench_svc_r")
                           .string(),
                       metrics));
                   Stopwatch cold_timer;
                   g_sink = static_cast<double>(
                       server.serve_batch(batch).size());
                   const double cold = cold_timer.seconds();
                   Stopwatch warm_timer;
                   g_sink = static_cast<double>(
                       server.serve_batch(batch).size());
                   const double warm = warm_timer.seconds();
                   run.set_items(2L * static_cast<long>(batch.size()));
                   run.set_rate("requests",
                                2.0 * static_cast<double>(batch.size()));
                   run.set_counter("executed", static_cast<double>(
                                       metrics.counter("svc.executed")));
                   run.set_payload(obs::Json::object()
                                       .set("cold_seconds", cold)
                                       .set("warm_seconds", warm)
                                       .set("speedup",
                                            warm > 0.0 ? cold / warm : 0.0));
                 });
  // Observability overhead, measured as a pair inside one body: two
  // servers over the same warm cache contents — one with histograms /
  // per-kind counters on, one with --no-observe — alternating per request
  // document so clock-frequency drift and disk-cache state cancel out.
  // The hot path is serve_text one document at a time: the exact per-frame
  // work of the socket and queue transports (parse, resolve, serialize)
  // on a warm cache, where the relative cost of observe_request() is at
  // its worst. observed_p99_ns / unobserved_p99_ns land in bench_diff's
  // regression gate as lower-is-better tails; the p50 gap is the
  // per-request recording overhead docs/observability.md quotes (<1%).
  register_bench("svc", "observe_overhead_pair", "smoke",
                 [fresh_server](BenchRun& run) {
                   const auto batch = svc::sweep_batch(8, "dcsa", 300, 1);
                   std::vector<std::string> documents;
                   for (const svc::Request& request : batch)
                     documents.push_back(request.to_json().dump());
                   obs::MetricsRegistry metrics_on, metrics_off;
                   svc::ServerOptions on_options = fresh_server(
                       (fs::temp_directory_path() / "xlp_bench_svc_on")
                           .string(),
                       metrics_on);
                   svc::ServerOptions off_options = fresh_server(
                       (fs::temp_directory_path() / "xlp_bench_svc_off")
                           .string(),
                       metrics_off);
                   off_options.observe = false;
                   svc::Server observed(on_options);
                   svc::Server unobserved(off_options);
                   g_sink = static_cast<double>(
                       observed.serve_batch(batch).size());  // prime
                   g_sink = static_cast<double>(
                       unobserved.serve_batch(batch).size());
                   constexpr int kRounds = 100;
                   obs::Histogram on_ns(14), off_ns(14);
                   const auto timed_serve = [](svc::Server& server,
                                               const std::string& document,
                                               obs::Histogram& hist) {
                     Stopwatch request_timer;
                     g_sink = static_cast<double>(
                         server.serve_text(document).size());
                     hist.record(
                         static_cast<long>(request_timer.seconds() * 1e9));
                   };
                   for (int round = 0; round < kRounds; ++round) {
                     for (const std::string& document : documents) {
                       timed_serve(observed, document, on_ns);
                       timed_serve(unobserved, document, off_ns);
                     }
                   }
                   run.set_items(2L * kRounds *
                                 static_cast<long>(batch.size()));
                   run.set_rate("requests",
                                2.0 * kRounds *
                                    static_cast<double>(batch.size()));
                   run.set_time_ns("observed_p99_ns",
                                   static_cast<double>(
                                       on_ns.value_at_quantile(0.99)));
                   run.set_time_ns("unobserved_p99_ns",
                                   static_cast<double>(
                                       off_ns.value_at_quantile(0.99)));
                   run.set_time_ns("observed_p50_ns",
                                   static_cast<double>(
                                       on_ns.value_at_quantile(0.50)));
                   run.set_time_ns("unobserved_p50_ns",
                                   static_cast<double>(
                                       off_ns.value_at_quantile(0.50)));
                   run.set_counter(
                       "executed",
                       static_cast<double>(metrics_on.counter("svc.executed") +
                                           metrics_off.counter(
                                               "svc.executed")));
                 });
  // Checksum-verification overhead on the cache-hit hot path, measured as
  // a pair inside one body: two caches holding the same realistic payload
  // (one solve result), one re-verifying the FNV-1a checksum on every
  // get() (the default — what turns bit rot into quarantine-and-recompute
  // instead of a wrong byte served) and one trusting memory. Alternating
  // lookups cancel clock drift; the p50 gap is the cost of one FNV pass
  // over a small JSON document and must stay in the noise (the acceptance
  // bar for leaving verification on in production).
  register_bench("svc", "cache_hit_verify_pair", "smoke",
                 [](BenchRun& run) {
                   svc::Request request;
                   request.kind = svc::RequestKind::kSolve;
                   request.n = 8;
                   request.link_limit = 4;
                   request.moves = 300;
                   const std::string id = request.id();
                   obs::MetricsRegistry metrics;
                   svc::Server seed_server([&] {
                     svc::ServerOptions options;
                     options.cache_dir =
                         (fs::temp_directory_path() / "xlp_bench_svc_seed")
                             .string();
                     fs::remove_all(options.cache_dir);
                     options.metrics = &metrics;
                     return options;
                   }());
                   const std::string payload =
                       seed_server.resolve(request).payload_text;
                   const auto fresh_cache = [&](const char* name,
                                                bool verify) {
                     const std::string dir =
                         (fs::temp_directory_path() / name).string();
                     fs::remove_all(dir);
                     auto cache = std::make_unique<svc::ResultCache>(
                         dir, 64, &metrics, verify);
                     cache->put(id, payload);
                     return cache;
                   };
                   const auto verified =
                       fresh_cache("xlp_bench_svc_vfy", true);
                   const auto unverified =
                       fresh_cache("xlp_bench_svc_raw", false);
                   constexpr int kIters = 2000;
                   obs::Histogram verified_ns(14), unverified_ns(14);
                   const auto timed_get = [&](svc::ResultCache& cache,
                                              obs::Histogram& hist) {
                     Stopwatch get_timer;
                     const auto hit = cache.get(id);
                     hist.record(
                         static_cast<long>(get_timer.seconds() * 1e9));
                     g_sink = hit ? static_cast<double>(hit->size()) : -1.0;
                   };
                   for (int i = 0; i < kIters; ++i) {
                     timed_get(*verified, verified_ns);
                     timed_get(*unverified, unverified_ns);
                   }
                   run.set_items(2L * kIters);
                   run.set_rate("lookups", 2.0 * kIters);
                   run.set_time_ns("verified_p50_ns",
                                   static_cast<double>(
                                       verified_ns.value_at_quantile(0.50)));
                   run.set_time_ns(
                       "unverified_p50_ns",
                       static_cast<double>(
                           unverified_ns.value_at_quantile(0.50)));
                   run.set_time_ns("verified_p99_ns",
                                   static_cast<double>(
                                       verified_ns.value_at_quantile(0.99)));
                   run.set_counter("payload_bytes",
                                   static_cast<double>(payload.size()));
                 });
}

void register_sim() {
  // Simulator throughput on the two fixed designs. Short windows keep the
  // smoke run cheap; both rates and the deterministic packet counters land
  // in BENCH_sim.json.
  const auto simulate = [](const topo::ExpressMesh& design, BenchRun& run) {
    sim::SimConfig config = exp::default_sim_config(11);
    config.warmup_cycles = 500;
    config.measure_cycles = 2000;
    config.drain_cycles = 8000;
    const auto demand = traffic::TrafficMatrix::from_pattern(
        traffic::Pattern::kUniformRandom, 8, 0.02);
    const auto stats = exp::simulate_design(design, demand, config);
    const long cycles = config.warmup_cycles + config.measure_cycles;
    run.set_rate("simulated_cycles", static_cast<double>(cycles));
    run.set_rate("packets", static_cast<double>(stats.packets_finished));
    run.set_counter("packets_finished",
                    static_cast<double>(stats.packets_finished));
    run.set_counter("avg_latency", stats.avg_latency);
  };
  register_bench("sim", "mesh_8x8_ur", "smoke", [simulate](BenchRun& run) {
    simulate(topo::make_mesh(8), run);
  });
  register_bench("sim", "hfb_8x8_ur", "smoke", [simulate](BenchRun& run) {
    simulate(exp::fixed_designs(8)[1].design, run);
  });
}

double design_latency(const topo::RowTopology& row, int limit, int n) {
  const auto design = topo::make_design(row, limit);
  return core::evaluate_design(design,
                               latency::LatencyParams::parsec_typical(),
                               traffic::parsec_average_matrix(n))
      .total();
}

// One Fig. 7 series: latency of D&C_SA vs OnlySA at equal evaluation
// budgets, normalized to the initializer cost I(n,4). The whole series is
// the benchmark's payload; the timed quantity is the full experiment.
void fig07_series(int n, const std::vector<double>& budgets, double scale,
                  int seeds, BenchRun& run) {
  constexpr int kLimit = 4;
  const core::RowObjective objective(n, route::HopWeights{});
  const core::PlacementResult dnc = core::solve_dnc_only(objective, kLimit);
  const double unit = static_cast<double>(dnc.evaluations);

  obs::Json points = obs::Json::array();
  for (const double budget_units : budgets) {
    const long budget_evals =
        std::max<long>(1, static_cast<long>(budget_units * unit * scale));
    const long dcsa_moves =
        std::max<long>(0, budget_evals - dnc.evaluations);
    const long only_moves = budget_evals;

    double dcsa_sum = 0.0, only_sum = 0.0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng r1(static_cast<std::uint64_t>(seed * 17 + n));
      Rng r2(static_cast<std::uint64_t>(seed * 31 + n + 1));
      const auto dcsa = core::solve_dcsa(
          objective, kLimit,
          exp::paper_sa_params().with_moves(std::max<long>(1, dcsa_moves)),
          r1);
      const auto only = core::solve_only_sa(
          objective, kLimit, exp::paper_sa_params().with_moves(only_moves),
          r2);
      dcsa_sum += design_latency(dcsa.placement, kLimit, n);
      only_sum += design_latency(only.placement, kLimit, n);
    }
    points.push(obs::Json::object()
                    .set("runtime_units", budget_units)
                    .set("budget_evals", budget_evals)
                    .set("dcsa_latency", dcsa_sum / seeds)
                    .set("onlysa_latency", only_sum / seeds));
  }
  run.set_counter("unit_evals", unit);
  run.set_payload(obs::Json::object()
                      .set("figure", "fig07")
                      .set("n", n)
                      .set("unit_evals", static_cast<long>(unit))
                      .set("points", std::move(points)));
}

void register_fig07() {
  register_bench("fig07_runtime", "smoke_8x8", "smoke", [](BenchRun& run) {
    fig07_series(8, {1.0, 5.0, 30.0}, 0.05, 1, run);
  });
  const std::vector<double> full = {1.0,   2.0,   5.0,   10.0,
                                    30.0, 100.0, 300.0, 1000.0};
  for (const int n : {8, 16}) {
    register_bench("fig07_runtime",
                   std::to_string(n) + "x" + std::to_string(n), "full",
                   [n, full](BenchRun& run) {
                     fig07_series(n, full, exp::bench_scale(), 3, run);
                   });
  }
}

// One scalability point: full C sweep at size n, reporting the optimizer
// cost (evaluations) and the latency reduction against the plain mesh.
void scalability_point(int n, long moves, BenchRun& run) {
  core::SweepOptions options;
  options.sa = exp::paper_sa_params().with_moves(moves);
  options.latency = latency::LatencyParams::zero_load();

  Rng rng(static_cast<std::uint64_t>(77 + n));
  const auto points = core::sweep_link_limits(n, options, rng);
  const auto& best = points[core::best_point(points)];

  long evals = 0;
  for (const auto& p : points) evals += p.placement.evaluations;
  const double mesh_total =
      core::evaluate_design(topo::make_mesh(n), options.latency, {}).total();

  run.set_rate("evaluations", static_cast<double>(evals));
  run.set_counter("evals", static_cast<double>(evals));
  run.set_counter("mesh_total", mesh_total);
  run.set_counter("best_total", best.breakdown.total());
  run.set_counter("best_c", best.link_limit);
  run.set_counter("reduction_pct",
                  -percent_change(best.breakdown.total(), mesh_total));
}

// Thread-scaling curve of the parallel portfolio: the same 8-chain solve
// at 1/2/4/8 workers. Recorded, not gated — the speedup counters land in
// BENCH_scalability.json so regressions in the parallel layer are visible
// in the history. Also asserts (as a counter) the determinism contract:
// every thread count must produce the identical best value.
void portfolio_speedup_point(int n, int chains, long moves, BenchRun& run) {
  obs::Json curve = obs::Json::array();
  double baseline_seconds = 0.0;
  double first_value = 0.0;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    core::PortfolioOptions options;
    options.chains = chains;
    options.threads = threads;
    options.sa = exp::paper_sa_params().with_moves(moves);
    Stopwatch timer;
    const auto result = core::solve_portfolio(n, route::HopWeights{},
                                              std::nullopt, 4, options, 42);
    const double seconds = timer.seconds();
    if (threads == 1) {
      baseline_seconds = seconds;
      first_value = result.best.value;
    }
    deterministic = deterministic && result.best.value == first_value;
    const double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;
    curve.push(obs::Json::object()
                   .set("threads", threads)
                   .set("seconds", seconds)
                   .set("speedup", speedup)
                   .set("best_value", result.best.value));
    run.set_counter("speedup_" + std::to_string(threads) + "t", speedup);
  }
  g_sink = first_value;
  run.set_counter("deterministic", deterministic ? 1.0 : 0.0);
  run.set_items(4L * chains * moves);
  run.set_payload(obs::Json::object()
                      .set("n", n)
                      .set("chains", chains)
                      .set("moves", moves)
                      .set("threads_curve", std::move(curve)));
}

// Same curve for the fault campaign's simulation cells.
void campaign_speedup_point(int n, int trials, BenchRun& run) {
  obs::Json curve = obs::Json::array();
  double baseline_seconds = 0.0;
  std::string first_json;
  bool deterministic = true;
  for (const int threads : {1, 2, 4, 8}) {
    exp::FaultCampaignConfig config;
    config.n = n;
    config.trials = trials;
    config.fault_cycle = 1000;
    config.threads = threads;
    Stopwatch timer;
    const std::string json = exp::run_fault_campaign(config).to_json().dump();
    const double seconds = timer.seconds();
    if (threads == 1) {
      baseline_seconds = seconds;
      first_json = json;
    }
    deterministic = deterministic && json == first_json;
    const double speedup = seconds > 0.0 ? baseline_seconds / seconds : 0.0;
    curve.push(obs::Json::object()
                   .set("threads", threads)
                   .set("seconds", seconds)
                   .set("speedup", speedup));
    run.set_counter("speedup_" + std::to_string(threads) + "t", speedup);
  }
  run.set_counter("deterministic", deterministic ? 1.0 : 0.0);
  run.set_payload(obs::Json::object()
                      .set("n", n)
                      .set("trials", trials)
                      .set("threads_curve", std::move(curve)));
}

void register_scalability() {
  for (const int n : {4, 8, 16, 24, 32}) {
    const long moves = std::max<long>(
        200, static_cast<long>(10000 * exp::bench_scale()));
    register_bench("scalability",
                   "sweep_" + std::to_string(n) + "x" + std::to_string(n),
                   n == 4 ? "smoke" : "full", [n, moves](BenchRun& run) {
                     scalability_point(n, n == 4 ? 200 : moves, run);
                   });
  }
  register_bench("scalability", "portfolio_speedup_8x8", "smoke",
                 [](BenchRun& run) {
                   const long moves = std::max<long>(
                       500, static_cast<long>(10000 * exp::bench_scale()));
                   portfolio_speedup_point(8, 8, moves, run);
                 });
  register_bench("scalability", "campaign_speedup_8x8", "full",
                 [](BenchRun& run) { campaign_speedup_point(8, 8, run); });
}

void fault_point(const exp::FaultCampaignConfig& config, BenchRun& run) {
  const exp::FaultCampaignResult result = exp::run_fault_campaign(config);
  for (const auto& d : result.designs) {
    const double slowdown =
        d.degraded_mean > 0.0 ? d.degraded_mean / d.baseline_latency : 0.0;
    run.set_counter(d.name + "_slowdown", slowdown);
    run.set_counter(d.name + "_lost", static_cast<double>(d.lost_total));
  }
  run.set_payload(result.to_json());
}

void register_fault_campaign() {
  register_bench("fault_campaign", "smoke_8x8", "smoke", [](BenchRun& run) {
    exp::FaultCampaignConfig config;
    config.n = 8;
    config.link_limit = 4;
    config.kill_links = 1;
    config.trials = 2;
    config.fault_cycle = 1000;
    fault_point(config, run);
  });
  register_bench("fault_campaign", "8x8_c4", "full", [](BenchRun& run) {
    exp::FaultCampaignConfig config;
    config.n = 8;
    config.link_limit = 4;
    config.kill_links = 1;
    config.trials = 10;
    config.fault_cycle = 2000;
    fault_point(config, run);
  });
}

}  // namespace

void register_all_suites() {
  static bool done = false;
  if (done) return;
  done = true;
  register_micro_core();
  register_sim();
  register_svc();
  register_fig07();
  register_scalability();
  register_fault_campaign();
}

}  // namespace xlp::bench
