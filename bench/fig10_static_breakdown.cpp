// Reproduces Fig. 10: breakdown of router static power into buffer,
// crossbar and others, for Mesh, HFB and D&C_SA on the 8x8 network (static
// power does not depend on the workload, so no simulation is needed —
// exactly the point of Section 4.6).

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "power/area.hpp"
#include "power/model.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Fig. 10 reproduction — paper expectations: buffer leakage "
              "identical across\nschemes (equalized budget); crossbar "
              "leakage does not increase with express\nlinks; table "
              "overhead < 0.5%% of router area.\n\n");

  const auto solved = exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];
  const auto fixed = exp::fixed_designs(8);
  const long buffer_budget = sim::SimConfig{}.buffer_bits_per_router;

  // Zero activity: only static terms are relevant here.
  auto zero_activity = [](int flit_bits) {
    sim::ActivityCounters a;
    a.measured_cycles = 1;
    a.flit_bits = flit_bits;
    return a;
  };

  Table table({"scheme", "buffer (W)", "crossbar (W)", "others (W)",
               "total static (W)", "avg ports", "table overhead"});
  const std::vector<std::pair<std::string, const topo::ExpressMesh*>> rows = {
      {"Mesh", &fixed[0].design},
      {"HFB", &fixed[1].design},
      {"D&C_SA", &best.design}};
  for (const auto& [name, design] : rows) {
    const auto report = power::evaluate_power(
        *design, zero_activity(design->flit_bits()), buffer_budget);
    const auto area = power::evaluate_area(*design, buffer_budget);
    table.add_row({name, Table::fmt(report.static_buffer_w, 3),
                   Table::fmt(report.static_crossbar_w, 3),
                   Table::fmt(report.static_other_w, 3),
                   Table::fmt(report.static_total(), 3),
                   Table::fmt(design->average_router_ports(), 2),
                   Table::fmt(100.0 * area.table_overhead_fraction(), 2) +
                       "%"});
  }
  table.print(std::cout);
  return 0;
}
