// Reproduces Fig. 7: placement quality (average latency of the resulting
// design) as a function of allowed runtime, for OnlySA vs D&C_SA on the
// 8x8 and 16x16 networks. Runtime is normalized to the cost of the
// initial-solution procedure I(n,4), measured in objective evaluations
// (the dominant cost of both algorithms), exactly as the paper normalizes
// to I(8,4) and I(16,4).

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/c_sweep.hpp"
#include "core/drivers.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "obs/json.hpp"
#include "topo/builders.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace xlp;

namespace {

double design_latency(const topo::RowTopology& row, int limit, int n) {
  const auto design = topo::make_design(row, limit);
  return core::evaluate_design(design,
                               latency::LatencyParams::parsec_typical(),
                               traffic::parsec_average_matrix(n))
      .total();
}

void run_size(int n) {
  constexpr int kLimit = 4;  // the paper normalizes to I(n,4)
  const core::RowObjective objective(n, route::HopWeights{});

  // Cost of the initializer = the runtime unit.
  const core::PlacementResult dnc = core::solve_dnc_only(objective, kLimit);
  const double unit = static_cast<double>(dnc.evaluations);

  std::printf("\n=== Fig. 7 (%dx%d): latency vs normalized runtime "
              "(unit = I(%d,%d) = %ld evals) ===\n",
              n, n, n, kLimit, dnc.evaluations);

  Table table({"runtime", "D&C_SA", "OnlySA"});
  obs::Json points = obs::Json::array();
  const double scale = exp::bench_scale();
  for (const double budget_units :
       {1.0, 2.0, 5.0, 10.0, 30.0, 100.0, 300.0, 1000.0}) {
    // Equal total evaluation budgets: D&C_SA pays for its initializer out
    // of the same budget that OnlySA spends purely on annealing moves.
    const long budget_evals = std::max<long>(
        1, static_cast<long>(budget_units * unit * scale));
    const long dcsa_moves = std::max<long>(0, budget_evals -
                                                  dnc.evaluations);
    const long only_moves = budget_evals;

    // Average a few seeds to damp annealing noise, as the paper averages
    // over benchmarks.
    double dcsa_sum = 0.0, only_sum = 0.0;
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng r1(static_cast<std::uint64_t>(seed * 17 + n));
      Rng r2(static_cast<std::uint64_t>(seed * 31 + n + 1));
      const auto dcsa = core::solve_dcsa(
          objective, kLimit,
          exp::paper_sa_params().with_moves(std::max<long>(1, dcsa_moves)),
          r1);
      const auto only = core::solve_only_sa(
          objective, kLimit, exp::paper_sa_params().with_moves(only_moves),
          r2);
      dcsa_sum += design_latency(dcsa.placement, kLimit, n);
      only_sum += design_latency(only.placement, kLimit, n);
    }
    table.add_row({Table::fmt(budget_units, 0), Table::fmt(dcsa_sum / kSeeds),
                   Table::fmt(only_sum / kSeeds)});
    points.push(obs::Json::object()
                    .set("runtime_units", budget_units)
                    .set("budget_evals", budget_evals)
                    .set("dcsa_latency", dcsa_sum / kSeeds)
                    .set("onlysa_latency", only_sum / kSeeds));
  }
  table.print(std::cout);
  if (const std::string dir = csv_output_dir(); !dir.empty()) {
    // Machine-readable series so future PRs can track the runtime/quality
    // frontier across revisions.
    const obs::Json doc = obs::Json::object()
                              .set("figure", "fig07")
                              .set("n", n)
                              .set("unit_evals", static_cast<long>(unit))
                              .set("points", std::move(points));
    const std::string path =
        dir + "/fig07_" + std::to_string(n) + "x" + std::to_string(n) +
        ".json";
    std::ofstream out(path);
    const bool ok = out.good() && (out << doc.dump() << '\n').good();
    std::printf("  json: %s %s\n", path.c_str(),
                ok ? "written" : "NOT WRITTEN");
  }
}

}  // namespace

int main() {
  std::printf("Fig. 7 reproduction — paper expectation: D&C_SA reaches a "
              "satisfying result by\n~150 runtime units while OnlySA still "
              "trails it even at 10,000 units.\n");
  run_size(8);
  run_size(16);
  return 0;
}
