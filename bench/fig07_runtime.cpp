// Reproduces Fig. 7: placement quality (average latency of the resulting
// design) as a function of allowed runtime, for OnlySA vs D&C_SA on the
// 8x8 and 16x16 networks. Runtime is normalized to the cost of the
// initial-solution procedure I(n,4), measured in objective evaluations
// (the dominant cost of both algorithms), exactly as the paper normalizes
// to I(8,4) and I(16,4). The experiment body lives in bench/suites.cpp
// (suite "fig07_runtime"); the series lands in BENCH_fig07_runtime.json.

#include <cstdio>

#include "harness.hpp"
#include "suites.hpp"

int main(int argc, char** argv) {
  std::printf("Fig. 7 reproduction — paper expectation: D&C_SA reaches a "
              "satisfying result by\n~150 runtime units while OnlySA still "
              "trails it even at 10,000 units.\n");
  xlp::bench::register_all_suites();
  xlp::bench::RunnerOptions defaults;
  defaults.warmup = 0;
  defaults.repeats = 1;
  return xlp::bench::run_main(argc, argv, defaults,
                              "^fig07_runtime/(8x8|16x16)");
}
