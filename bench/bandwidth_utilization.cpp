// Reproduces the bandwidth-utilization mechanism behind Fig. 8(b) (Section
// 5.4): express-link topologies can leave cross-section bandwidth unused.
// The paper's example: the best P̄(8,4) placement has only three links
// between routers 1-2 where four are allowed; the HFB's quadrant-boundary
// cut carries just one narrow link, which is why its throughput collapses,
// while D&C_SA "recovers a large part of the unused bandwidth".
//
// This bench drives Mesh, HFB and D&C_SA to high uniform-random load and
// prints, for every vertical cross-section: provisioned capacity
// (bits/cycle), measured use, and utilization.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "sim/throughput.hpp"
#include "util/table.hpp"

using namespace xlp;

namespace {

void report(const char* name, const topo::ExpressMesh& design, double load) {
  const sim::Network net(design, route::HopWeights{});
  sim::SimConfig config;
  config.warmup_cycles = 300;
  config.measure_cycles = 3000;
  config.drain_cycles = 1000;  // saturated runs will not drain; that's fine
  const auto shape = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, design.side(), 1.0);
  const auto stats = sim::simulate_at_load(net, shape, load, config);

  std::printf("\n--- %s (C=%d, %d-bit flits) at %.2f offered "
              "packets/node/cycle ---\n",
              name, design.link_limit(), design.flit_bits(), load);
  Table table({"cut", "channels ->", "capacity b/cyc", "used b/cyc",
               "utilization"});
  for (int cut = 0; cut < design.side() - 1; ++cut) {
    const auto right = exp::vertical_cut_use(net, stats, cut, true);
    table.add_row({std::to_string(cut) + "-" + std::to_string(cut + 1),
                   std::to_string(right.channels),
                   Table::fmt(right.capacity_bits_per_cycle, 0),
                   Table::fmt(right.used_bits_per_cycle, 1),
                   Table::fmt(100.0 * right.utilization(), 1) + "%"});
  }
  table.print(std::cout);
  const auto middle =
      exp::vertical_cut_use(net, stats, design.side() / 2 - 1, true);
  std::printf("  accepted %.3f packets/node/cycle; middle-cut utilization "
              "%.0f%%\n",
              stats.throughput_packets_per_node_cycle,
              100.0 * middle.utilization());
}

}  // namespace

int main() {
  std::printf("Bandwidth utilization (Section 5.4) — expectation: the HFB "
              "saturates its\nquadrant-boundary cut while its intra-quadrant "
              "links idle; D&C_SA keeps its\ncuts more evenly and more "
              "fully populated.\n");

  const auto solved = exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];

  report("Mesh", topo::make_mesh(8), 0.22);
  report("HFB", topo::make_hfb(8), 0.12);
  report("D&C_SA", best.design, 0.22);
  return 0;
}
