// Reproduces Section 5.6.4: application-specific express link placement.
// For each PARSEC model the traffic matrix gamma is collected on the
// baseline (here: taken from the application model, which plays the role of
// the paper's profiling run on the mesh), each row and column is optimized
// with its own weighted objective, and the resulting demand-weighted
// latency is compared against the general-purpose design. The paper
// reports an additional ~18.1% average reduction.

#include <cstdio>
#include <iostream>

#include "core/app_specific.hpp"
#include "exp/scenarios.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Section 5.6.4 reproduction — application-specific placement; "
              "paper expectation:\n~18.1%% additional latency reduction over "
              "the general-purpose design.\n\n");

  constexpr int n = 8;
  const double scale = exp::bench_scale();
  core::SweepOptions options;
  options.sa = exp::paper_sa_params().with_moves(
      std::max<long>(100, static_cast<long>(2000 * scale)));
  options.latency = latency::LatencyParams::parsec_typical();

  // General-purpose design (uniform objective), reused for all benchmarks.
  Rng gp_rng(42);
  core::SweepOptions gp_options = options;
  gp_options.sa = exp::paper_sa_params().with_moves(
      std::max<long>(100, static_cast<long>(10000 * scale)));
  const auto gp_points = core::sweep_link_limits(n, gp_options, gp_rng);

  Table table({"benchmark", "general-purpose", "app-specific", "extra cut",
               "C(app)"});
  double total_reduction = 0.0;
  for (const auto& model : traffic::parsec_models()) {
    const auto demand = model.traffic_matrix(n);

    // Evaluate every general-purpose point on this workload, take the best.
    double gp_best = 0.0;
    bool first = true;
    for (const auto& p : gp_points) {
      const double value =
          core::evaluate_design(p.design, options.latency, demand).total();
      if (first || value < gp_best) gp_best = value;
      first = false;
    }

    Rng rng(static_cast<std::uint64_t>(std::hash<std::string>{}(model.name)));
    const auto app = core::solve_app_specific(demand, options, rng);
    const double reduction = -percent_change(app.breakdown.total(), gp_best);
    total_reduction += reduction;
    table.add_row({model.name, Table::fmt(gp_best),
                   Table::fmt(app.breakdown.total()),
                   Table::fmt(reduction, 1) + "%",
                   std::to_string(app.link_limit)});
  }
  table.print(std::cout);
  std::printf("\naverage additional reduction: %.1f%% (paper: 18.1%%)\n",
              total_reduction / traffic::parsec_models().size());

  // The magnitude of the application-specific win scales with how skewed
  // the traffic is. Our synthetic PARSEC stand-ins are closer to uniform
  // than gem5-measured coherence traffic (see EXPERIMENTS.md), so the same
  // flow is also reported on strongly structured workloads where the
  // per-row/column optimization can express itself.
  std::printf("\n--- strongly skewed workloads (same flow) ---\n");
  Table skewed({"workload", "general-purpose", "app-specific", "extra cut",
                "C(app)"});
  double skew_total = 0.0;
  int skew_count = 0;
  for (const auto pattern :
       {traffic::Pattern::kTranspose, traffic::Pattern::kBitReverse,
        traffic::Pattern::kHotspot, traffic::Pattern::kNeighbor}) {
    const auto demand =
        traffic::TrafficMatrix::from_pattern(pattern, n, 0.02);

    double gp_best = 0.0;
    bool first = true;
    for (const auto& p : gp_points) {
      const double value =
          core::evaluate_design(p.design, options.latency, demand).total();
      if (first || value < gp_best) gp_best = value;
      first = false;
    }
    Rng rng(static_cast<std::uint64_t>(17 + static_cast<int>(pattern)));
    const auto app = core::solve_app_specific(demand, options, rng);
    const double reduction = -percent_change(app.breakdown.total(), gp_best);
    skew_total += reduction;
    ++skew_count;
    skewed.add_row({traffic::to_string(pattern), Table::fmt(gp_best),
                    Table::fmt(app.breakdown.total()),
                    Table::fmt(reduction, 1) + "%",
                    std::to_string(app.link_limit)});
  }
  skewed.print(std::cout);
  std::printf("\naverage additional reduction on skewed workloads: %.1f%%\n",
              skew_total / skew_count);
  return 0;
}
