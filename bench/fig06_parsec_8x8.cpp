// Reproduces Fig. 6: average packet latency of Mesh, HFB and D&C_SA on the
// 8x8 network for each of the ten PARSEC benchmarks (simulated at each
// benchmark's load on the flit-level simulator), plus the cross-benchmark
// average.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Fig. 6 reproduction — per-benchmark latency on 8x8; paper "
              "expectation:\nD&C_SA achieves a similar reduction across all "
              "benchmarks (~23.5%% vs Mesh).\n\n");

  const auto solved =
      exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];
  std::printf("D&C_SA design: C=%d, placement %s\n\n", best.link_limit,
              best.placement.placement.to_string().c_str());

  const auto fixed = exp::fixed_designs(8);

  Table table({"benchmark", "Mesh", "HFB", "D&C_SA", "vs Mesh", "vs HFB"});
  double mesh_sum = 0, hfb_sum = 0, dcsa_sum = 0;
  for (const auto& model : traffic::parsec_models()) {
    const auto demand = model.traffic_matrix(8);
    const auto config = exp::default_sim_config(7);
    const auto mesh = exp::simulate_design(fixed[0].design, demand, config);
    const auto hfb = exp::simulate_design(fixed[1].design, demand, config);
    const auto dcsa = exp::simulate_design(best.design, demand, config);
    exp::warn_if_undrained(mesh, "fig06 mesh/" + model.name);
    exp::warn_if_undrained(hfb, "fig06 hfb/" + model.name);
    exp::warn_if_undrained(dcsa, "fig06 dcsa/" + model.name);
    mesh_sum += mesh.avg_latency;
    hfb_sum += hfb.avg_latency;
    dcsa_sum += dcsa.avg_latency;
    table.add_row({model.name, Table::fmt(mesh.avg_latency),
                   Table::fmt(hfb.avg_latency), Table::fmt(dcsa.avg_latency),
                   Table::fmt(-percent_change(dcsa.avg_latency,
                                              mesh.avg_latency), 1) + "%",
                   Table::fmt(-percent_change(dcsa.avg_latency,
                                              hfb.avg_latency), 1) + "%"});
  }
  const double k = traffic::parsec_models().size();
  table.add_row({"average", Table::fmt(mesh_sum / k), Table::fmt(hfb_sum / k),
                 Table::fmt(dcsa_sum / k),
                 Table::fmt(-percent_change(dcsa_sum, mesh_sum), 1) + "%",
                 Table::fmt(-percent_change(dcsa_sum, hfb_sum), 1) + "%"});
  table.print(std::cout);
  return 0;
}
