#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/provenance.hpp"

namespace xlp::bench {

/// Handle a benchmark body receives once per timed repeat. The harness
/// times the whole call; the body describes what it did so the harness can
/// normalize:
///   - set_items(n): n operations per call -> ns_per_op = wall / n
///   - set_rate(name, amount): amount of work per call -> harness reports
///     "<name>_per_sec" = amount / wall (e.g. simulated cycles, packets)
///   - set_counter(name, v): deterministic fact (evaluations, packets
///     finished) recorded verbatim — these must not depend on wall time
///   - set_time_ns(name, ns): a wall-derived latency the body measured
///     itself (tail quantiles, sub-phase timings). Reported as the median
///     across repeats and zeroed under --deterministic, like rates. By
///     convention tail latencies are named "<stage>_p99_ns" so bench_diff
///     treats them as lower-is-better.
///   - set_payload(json): arbitrary structured series attached to the
///     result (the figure benches park their plot points here)
class BenchRun {
 public:
  void set_items(long items) { items_ = items; }
  void set_rate(std::string name, double amount) {
    rates_.emplace_back(std::move(name), amount);
  }
  void set_counter(std::string name, double value) {
    counters_.emplace_back(std::move(name), value);
  }
  void set_time_ns(std::string name, double ns) {
    times_.emplace_back(std::move(name), ns);
  }
  void set_payload(obs::Json payload) { payload_ = std::move(payload); }

 private:
  friend class Runner;
  long items_ = 1;
  std::vector<std::pair<std::string, double>> rates_;
  std::vector<std::pair<std::string, double>> counters_;
  std::vector<std::pair<std::string, double>> times_;
  obs::Json payload_;
  bool has_payload() const { return !payload_.is_null(); }
};

using BenchFn = std::function<void(BenchRun&)>;

/// One registered benchmark. `suite` groups benchmarks into one
/// BENCH_<suite>.json document; `name` identifies it within the suite;
/// `tags` is a space-separated label list ("smoke") the filter also
/// matches against.
struct BenchSpec {
  std::string suite;
  std::string name;
  std::string tags;
  BenchFn fn;
};

/// Process-wide benchmark registry. Registration is explicit (call
/// register_all_suites() or your own registrar from main) — no static
/// initializers, so linking the harness never drags benchmarks in
/// silently.
class Registry {
 public:
  [[nodiscard]] static Registry& global();
  void add(BenchSpec spec);
  [[nodiscard]] const std::vector<BenchSpec>& specs() const noexcept {
    return specs_;
  }
  void clear() { specs_.clear(); }

 private:
  std::vector<BenchSpec> specs_;
};

/// Convenience wrapper over Registry::global().add().
void register_bench(std::string suite, std::string name, std::string tags,
                    BenchFn fn);

struct RunnerOptions {
  int warmup = 1;    // untimed calls before measuring
  int repeats = 5;   // timed calls; statistics are over these
  /// Regex filtered against "suite/name tags"; empty = run everything.
  std::string filter;
  /// Directory for BENCH_<suite>.json; empty = don't write files.
  std::string out_dir = ".";
  /// Zeroes every wall-time-derived field in the emitted JSON so two runs
  /// with the same seed produce byte-identical documents (tests, and a
  /// sanity mode for diffing structure). Counters and payloads remain.
  bool deterministic = false;
  obs::Provenance provenance;
};

/// Measured result of one benchmark: per-op nanoseconds over the repeat
/// distribution plus the rates/counters the body declared.
struct BenchResult {
  std::string suite;
  std::string name;
  std::string tags;
  int repeats = 0;
  long items = 1;
  double min_ns = 0.0;     // per op
  double median_ns = 0.0;  // per op
  double mean_ns = 0.0;    // per op
  double total_seconds = 0.0;  // wall time across all repeats
  std::vector<std::pair<std::string, double>> rates;  // median amount/sec
  std::vector<std::pair<std::string, double>> counters;  // last repeat
  std::vector<std::pair<std::string, double>> times;  // median ns
  obs::Json payload;  // null unless the body attached one
};

struct SuiteReport {
  std::string suite;
  std::vector<BenchResult> results;
};

/// Schema identifier stamped into every document this harness writes.
inline constexpr const char* kBenchSchema = "xlp-bench/1";

class Runner {
 public:
  explicit Runner(RunnerOptions options) : options_(std::move(options)) {}

  /// Runs every registered benchmark matching the filter, in registration
  /// order, grouped by suite. Also writes BENCH_<suite>.json per suite
  /// when out_dir is set.
  [[nodiscard]] std::vector<SuiteReport> run() const;

  /// Serializes one suite: {"schema","kind":"suite","suite","provenance",
  /// "options","benchmarks":[...]} with fixed member order.
  [[nodiscard]] obs::Json suite_to_json(const SuiteReport& report) const;

  /// Prints a fixed-width summary table of every result to stdout.
  static void print(const std::vector<SuiteReport>& reports);

 private:
  [[nodiscard]] BenchResult run_one(const BenchSpec& spec) const;
  RunnerOptions options_;
};

/// Writes `doc` as `<dir>/BENCH_<name>.json` (creating directories as
/// needed); returns the path, or an empty string on failure.
std::string write_bench_json(const std::string& dir, const std::string& name,
                             const obs::Json& doc);

/// Wraps an experiment's structured series in the shared schema —
/// {"schema","kind":"artifact","name","provenance","data":...} — and
/// writes it as BENCH_<name>.json under `dir`. The figure benches use this
/// so every perf artifact carries one provenance block. Returns the
/// written path or empty on failure.
std::string write_artifact(const std::string& dir, const std::string& name,
                           const obs::Json& data,
                           const obs::Provenance& provenance);

/// Runs the registry through `options` and prints the summary table. When
/// `profile_path` is set the hierarchical profiler records the run and its
/// collapsed-stack dump lands there; when `list_only` is set nothing runs
/// and the registered benchmarks are listed instead. Returns a process
/// exit code. Shared by the standalone bench binaries and `xlp bench`.
int run_and_report(const RunnerOptions& options,
                   const std::string& profile_path, bool list_only);

/// Standalone-bench entry point: parses --filter/--repeats/--warmup/
/// --out-dir/--deterministic/--profile/--list (the same surface `xlp
/// bench` exposes) on top of `defaults`, forces `default_filter` when the
/// caller gave none, then calls run_and_report(). Returns a process exit
/// code.
int run_main(int argc, char** argv, RunnerOptions defaults,
             const char* default_filter);

}  // namespace xlp::bench
