// Reproduces the virtual-vs-physical express comparison the paper builds
// on (Section 2.1, after Chen et al. [6] and Kumar et al. [19]): virtual
// express channels let packets skip the front router pipeline stages at
// intermediate hops but keep full-width links, so serialization stays low
// while per-hop savings are partial; physical express links bypass whole
// routers and cut wire hops but pay with narrower links. The paper's
// position: a well-placed physical topology wins.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "power/model.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf(
      "Virtual vs physical express (Section 2.1, after Chen et al. [6]).\n"
      "Our VEC model is an *idealized upper bound*: every straight-through\n"
      "flit bypasses the front pipeline stages dynamically, with no lane\n"
      "alignment or setup restrictions. Expectations: the two approaches\n"
      "are competitive on latency at low-load local traffic; physical\n"
      "express wins on long-haul zero-load latency, on worst-case latency,\n"
      "and on dynamic power (VEC still buffers and switches every flit at\n"
      "every router).\n\n");

  const auto solved = exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];
  const auto mesh = topo::make_mesh(8);
  const auto hfb = topo::make_hfb(8);

  Table table({"benchmark", "Mesh", "Mesh+VEC", "HFB", "D&C_SA"});
  double sums[4] = {0, 0, 0, 0};
  double power_vec = 0.0, power_phys = 0.0;
  for (const auto& model : traffic::parsec_models()) {
    const auto demand = model.traffic_matrix(8);
    sim::SimConfig plain = exp::default_sim_config(21);
    sim::SimConfig vec = plain;
    vec.virtual_express_bypass = true;

    const auto mesh_stats = exp::simulate_design(mesh, demand, plain);
    const auto vec_stats = exp::simulate_design(mesh, demand, vec);
    const auto hfb_stats = exp::simulate_design(hfb, demand, plain);
    const auto dcsa_stats = exp::simulate_design(best.design, demand, plain);
    exp::warn_if_undrained(mesh_stats, "virtual_vs_physical mesh/" +
                                           model.name);
    exp::warn_if_undrained(vec_stats, "virtual_vs_physical vec/" +
                                          model.name);
    exp::warn_if_undrained(hfb_stats, "virtual_vs_physical hfb/" +
                                          model.name);
    exp::warn_if_undrained(dcsa_stats, "virtual_vs_physical dcsa/" +
                                           model.name);

    power_vec += power::evaluate_power(mesh, vec_stats.activity,
                                       plain.buffer_bits_per_router)
                     .total();
    power_phys += power::evaluate_power(best.design, dcsa_stats.activity,
                                        plain.buffer_bits_per_router)
                      .total();

    const double values[4] = {mesh_stats.avg_latency, vec_stats.avg_latency,
                              hfb_stats.avg_latency, dcsa_stats.avg_latency};
    for (int i = 0; i < 4; ++i) sums[i] += values[i];
    table.add_row({model.name, Table::fmt(values[0]), Table::fmt(values[1]),
                   Table::fmt(values[2]), Table::fmt(values[3])});
  }
  const double k = traffic::parsec_models().size();
  table.add_row({"average", Table::fmt(sums[0] / k), Table::fmt(sums[1] / k),
                 Table::fmt(sums[2] / k), Table::fmt(sums[3] / k)});
  table.print(std::cout);
  std::printf("\nlatency:  ideal VEC cuts %.1f%% of mesh, physical D&C_SA "
              "cuts %.1f%%\n",
              -percent_change(sums[1], sums[0]),
              -percent_change(sums[3], sums[0]));
  std::printf("power:    Mesh+VEC %.2f W vs physical D&C_SA %.2f W "
              "(physical %.1f%% lower)\n",
              power_vec / k, power_phys / k,
              -percent_change(power_phys, power_vec));

  // Long-haul zero-load comparison: the structural advantage of physical
  // bypass (whole routers removed, not just pipeline stages).
  const sim::Network mesh_net(mesh, route::HopWeights{});
  const sim::Network phys_net(best.design, route::HopWeights{});
  sim::SimConfig zl;
  zl.warmup_cycles = 100;
  zl.measure_cycles = 1000;
  sim::SimConfig zl_vec = zl;
  zl_vec.virtual_express_bypass = true;
  const traffic::TrafficMatrix idle(8);

  auto one = [&](const sim::Network& net, const sim::SimConfig& cfg) {
    sim::Simulator s(net, idle, cfg);
    s.schedule_packet(0, 63, 512, 150);
    (void)s.run();
    return s.packet_latency(0);
  };
  std::printf("long-haul (0,0)->(7,7) zero-load: Mesh %ld, Mesh+VEC %ld, "
              "physical D&C_SA %ld cycles\n",
              one(mesh_net, zl), one(mesh_net, zl_vec), one(phys_net, zl));
  return 0;
}
