// Micro-benchmarks (google-benchmark) for the kernels whose cost determines
// the optimizer's runtime: routing-table construction, connection-matrix
// decode/encode, objective evaluation, one SA move, the D&C initializer and
// small exhaustive searches. These are the "runtime units" behind Fig. 7
// and Fig. 12.

#include <benchmark/benchmark.h>

#include "core/branch_bound.hpp"
#include "core/dnc.hpp"
#include "core/objective.hpp"
#include "core/sa.hpp"
#include "route/directional_paths.hpp"
#include "topo/connection_matrix.hpp"
#include "util/rng.hpp"

using namespace xlp;

namespace {

topo::RowTopology sample_row(int n, int limit) {
  Rng rng(static_cast<std::uint64_t>(n * 131 + limit));
  return topo::ConnectionMatrix::random(n, limit, rng, 0.5).decode();
}

void BM_DirectionalPaths(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const topo::RowTopology row = sample_row(n, 4);
  for (auto _ : state) {
    route::DirectionalShortestPaths paths(row, route::HopWeights{});
    benchmark::DoNotOptimize(paths.cost(0, n - 1));
  }
}
BENCHMARK(BM_DirectionalPaths)->Arg(8)->Arg(16)->Arg(32);

void BM_MatrixDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const auto m = topo::ConnectionMatrix::random(n, 4, rng, 0.5);
  for (auto _ : state) {
    auto row = m.decode();
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_MatrixDecode)->Arg(8)->Arg(16)->Arg(32);

void BM_MatrixEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const topo::RowTopology row = sample_row(n, 4);
  for (auto _ : state) {
    auto m = topo::ConnectionMatrix::encode(row, 4);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatrixEncode)->Arg(8)->Arg(16);

void BM_ObjectiveEvaluate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::RowObjective obj(n, route::HopWeights{});
  const topo::RowTopology row = sample_row(n, 4);
  for (auto _ : state) benchmark::DoNotOptimize(obj.evaluate(row));
}
BENCHMARK(BM_ObjectiveEvaluate)->Arg(8)->Arg(16)->Arg(32);

void BM_SaMoves(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::RowObjective obj(n, route::HopWeights{});
  Rng rng(3);
  core::SaParams params;
  params.total_moves = 100;
  params.moves_per_cool = 25;
  const auto initial = topo::ConnectionMatrix::random(n, 4, rng, 0.5);
  for (auto _ : state) {
    Rng move_rng(7);
    auto result = core::anneal_connection_matrix(initial, obj, params,
                                                 move_rng);
    benchmark::DoNotOptimize(result.best_value);
  }
  state.SetItemsProcessed(state.iterations() * params.total_moves);
}
BENCHMARK(BM_SaMoves)->Arg(8)->Arg(16);

void BM_DncInitializer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::RowObjective obj(n, route::HopWeights{});
  for (auto _ : state) {
    auto result = core::dnc_initial_solution(obj, 4);
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_DncInitializer)->Arg(8)->Arg(16)->Arg(32);

void BM_BranchBoundSmall(benchmark::State& state) {
  const core::RowObjective obj(static_cast<int>(state.range(0)),
                               route::HopWeights{});
  for (auto _ : state) {
    core::BranchAndBound bb(obj, 2);
    benchmark::DoNotOptimize(bb.solve().value);
  }
}
BENCHMARK(BM_BranchBoundSmall)->Arg(4)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
