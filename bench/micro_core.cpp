// Micro-benchmarks for the kernels whose cost determines the optimizer's
// runtime: routing-table construction, connection-matrix decode/encode,
// objective evaluation, one SA move, the D&C initializer and small
// exhaustive searches. These are the "runtime units" behind Fig. 7 and
// Fig. 12. The kernels live in bench/suites.cpp (suite "micro_core"); this
// binary just runs that suite through the shared harness.

#include "harness.hpp"
#include "suites.hpp"

int main(int argc, char** argv) {
  xlp::bench::register_all_suites();
  xlp::bench::RunnerOptions defaults;
  defaults.warmup = 1;
  defaults.repeats = 5;
  return xlp::bench::run_main(argc, argv, defaults, "^micro_core/");
}
