// Reproduces Fig. 12: D&C_SA versus the exhaustive branch-and-bound optimum
// on the verifiable problems P(4,2), P(8,2), P(8,3), P(8,4) and P(16,2):
// the resulting latency (left axis) and the runtime ratio
// exhaustive/D&C_SA (right axis, log scale in the paper).

#include <cstdio>
#include <iostream>

#include "core/branch_bound.hpp"
#include "core/drivers.hpp"
#include "exp/scenarios.hpp"
#include "util/numeric.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Fig. 12 reproduction — paper expectations: identical results "
              "on P(4,2), P(8,2),\nP(8,3); within 1.3%% and 0.28%% on "
              "P(8,4) and P(16,2); exhaustive runtime ~30x\n(P(8,3)) to "
              "~1000x (P(16,2)) that of D&C_SA.\n\n");

  Table table({"problem", "optimal", "D&C_SA", "gap", "runtime ratio",
               "evals ratio"});
  const std::pair<int, int> problems[] = {{4, 2}, {8, 2}, {8, 3}, {8, 4},
                                          {16, 2}};
  for (const auto& [n, limit] : problems) {
    const core::RowObjective obj(n, route::HopWeights{});

    Stopwatch bb_timer;
    const long evals_before_bb = obj.evaluations();
    core::BranchAndBound bb(obj, limit);
    const core::ExactResult exact = bb.solve();
    const double bb_seconds = bb_timer.seconds();
    const long bb_evals = obj.evaluations() - evals_before_bb;

    Rng rng(static_cast<std::uint64_t>(n * 100 + limit));
    const core::PlacementResult dcsa =
        core::solve_dcsa(obj, limit, exp::paper_sa_params(), rng);

    const std::string name =
        "P(" + std::to_string(n) + "," + std::to_string(limit) + ")";
    table.add_row(
        {name, Table::fmt(exact.value, 4), Table::fmt(dcsa.value, 4),
         Table::fmt(percent_change(dcsa.value, exact.value), 2) + "%",
         Table::fmt(bb_seconds / std::max(dcsa.seconds, 1e-9), 1) + "x",
         Table::fmt(static_cast<double>(bb_evals) /
                        static_cast<double>(dcsa.evaluations), 2) + "x"});
  }
  table.print(std::cout);
  return 0;
}
