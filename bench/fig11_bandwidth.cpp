// Reproduces Fig. 11: the impact of the bisection-bandwidth budget on the
// 8x8 network at 1.0 GHz. 2 KGb/s corresponds to 128-bit baseline flits,
// 8 KGb/s to 512-bit flits; the sweep shows that a mesh barely benefits
// from extra bandwidth (serialization only) while good express placement
// converts it into real latency reduction.

#include <cstdio>
#include <iostream>

#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

namespace {

struct BandwidthCase {
  const char* label;
  int base_flit_bits;
};

}  // namespace

int main() {
  std::printf("Fig. 11 reproduction — paper expectations: from 2 to 8 KGb/s "
              "the Mesh improves\nonly ~2.3%% (25.9 -> 25.3 cycles) while "
              "D&C_SA improves ~17.8%% (21.8 -> 17.9).\n\n");

  constexpr int n = 8;
  const BandwidthCase cases[] = {{"2KGb/s", 128}, {"4KGb/s", 256},
                                 {"8KGb/s", 512}};

  double mesh_first = 0.0, mesh_last = 0.0;
  double dcsa_first = 0.0, dcsa_last = 0.0;
  for (const auto& bw : cases) {
    core::SweepOptions options = exp::default_sweep_options(n);
    options.base_flit_bits = bw.base_flit_bits;
    Rng rng(17);
    const auto points = core::sweep_link_limits(n, options, rng);

    const auto mesh = topo::make_mesh(n, bw.base_flit_bits);
    const auto hfb = topo::make_hfb(n, bw.base_flit_bits);
    const double mesh_total =
        core::evaluate_design(mesh, options.latency, options.report_traffic)
            .total();
    const double hfb_total =
        core::evaluate_design(hfb, options.latency, options.report_traffic)
            .total();

    std::printf("--- bisection budget %s (baseline flit %d bits) ---\n",
                bw.label, bw.base_flit_bits);
    Table table({"C", "D&C_SA", "L_D", "L_S"});
    for (const auto& p : points)
      table.add_row({std::to_string(p.link_limit),
                     Table::fmt(p.breakdown.total()),
                     Table::fmt(p.breakdown.head),
                     Table::fmt(p.breakdown.serialization)});
    table.print(std::cout);
    const auto& best = points[core::best_point(points)];
    std::printf("  Mesh %.2f  HFB %.2f  best D&C_SA %.2f (C=%d)\n\n",
                mesh_total, hfb_total, best.breakdown.total(),
                best.link_limit);
    if (bw.base_flit_bits == 128) {
      mesh_first = mesh_total;
      dcsa_first = best.breakdown.total();
    }
    if (bw.base_flit_bits == 512) {
      mesh_last = mesh_total;
      dcsa_last = best.breakdown.total();
    }
  }
  std::printf("summary 2K -> 8K: Mesh improves %.1f%%, D&C_SA improves "
              "%.1f%%\n",
              -percent_change(mesh_last, mesh_first),
              -percent_change(dcsa_last, dcsa_first));
  return 0;
}
