// Extension bench: how does the paper's D&C_SA compare against other
// generic optimizers at an equal evaluation budget? Baselines:
//   * greedy long-range link insertion (Ogras & Marculescu [21] style),
//   * steepest-descent hill climbing with restarts (no-temperature SA),
//   * a genetic algorithm over connection matrices,
//   * OnlySA (random-start annealing),
// plus the exact optimum where branch-and-bound is feasible.

#include <cstdio>
#include <iostream>

#include "core/baselines.hpp"
#include "core/branch_bound.hpp"
#include "core/drivers.hpp"
#include "exp/scenarios.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Optimizer comparison at equal evaluation budgets (avg row "
              "head latency; lower is\nbetter; gap is relative to the best "
              "column in each row).\n\n");

  const long budget = std::max<long>(
      500, static_cast<long>(10000 * exp::bench_scale()));
  constexpr int kSeeds = 3;

  Table table({"problem", "exact", "D&C_SA", "OnlySA", "hill-climb", "GA",
               "greedy", "D&C-only"});
  for (const auto& [n, limit] :
       {std::pair{8, 4}, std::pair{16, 4}, std::pair{16, 8},
        std::pair{32, 4}}) {
    const core::RowObjective obj(n, route::HopWeights{});
    const core::SaParams sa = core::SaParams{}.with_moves(budget);

    std::string exact_cell = "-";
    if (n <= 8) {
      core::BranchAndBound bb(obj, limit);
      exact_cell = Table::fmt(bb.solve().value, 4);
    }

    double dcsa = 0, only = 0, hill = 0, ga = 0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng r1(seed), r2(seed + 10), r3(seed + 20), r4(seed + 30);
      dcsa += core::solve_dcsa(obj, limit, sa, r1).value;
      only += core::solve_only_sa(obj, limit, sa, r2).value;
      hill += core::solve_hill_climb(obj, limit, budget, r3).value;
      core::GaParams ga_params;
      ga_params.max_evaluations = budget;
      ga += core::solve_ga(obj, limit, ga_params, r4).value;
    }
    const auto greedy = core::solve_greedy_insertion(obj, limit);
    const auto dnc = core::solve_dnc_only(obj, limit);

    table.add_row({"P(" + std::to_string(n) + "," + std::to_string(limit) +
                       ")",
                   exact_cell, Table::fmt(dcsa / kSeeds, 4),
                   Table::fmt(only / kSeeds, 4), Table::fmt(hill / kSeeds, 4),
                   Table::fmt(ga / kSeeds, 4), Table::fmt(greedy.value, 4),
                   Table::fmt(dnc.value, 4)});
  }
  table.print(std::cout);
  std::printf("\n(the connection-matrix annealers and the hill climber "
              "share the same search\nspace; greedy insertion and D&C-only "
              "are constructive one-shot heuristics)\n");
  return 0;
}
