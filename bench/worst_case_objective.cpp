// Design-choice ablation: the paper optimizes the *average* pairwise
// latency (Section 3) and reports the worst case only as an outcome
// (Table 2). How much worst-case latency is left on the table, and what
// does reclaiming it cost? This bench re-runs D&C_SA on the 8x8 network
// with a blended objective (1-w)*average + w*worst and reports both
// metrics of the resulting designs.

#include <cstdio>
#include <iostream>

#include "core/drivers.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "topo/builders.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Worst-case-aware objective ablation on P̄(8,4) — the paper's "
              "objective is w=0.\n\n");

  const long moves = std::max<long>(
      500, static_cast<long>(10000 * exp::bench_scale()));
  const auto latency_params = latency::LatencyParams::zero_load();

  Table table({"w", "mesh avg (cycles)", "mesh worst (cycles)",
               "row placement"});
  for (const double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::RowObjective objective(8, route::HopWeights{});
    objective.set_worst_case_weight(w);
    Rng rng(static_cast<std::uint64_t>(100 + w * 100));
    const auto result = core::solve_dcsa(
        objective, 4, core::SaParams{}.with_moves(moves), rng);
    const auto design = topo::make_design(result.placement, 4);
    const latency::MeshLatencyModel model(design, latency_params);
    table.add_row({Table::fmt(w, 2), Table::fmt(model.average().total()),
                   Table::fmt(model.worst_case(), 1),
                   result.placement.to_string()});
  }
  table.print(std::cout);
  std::printf("\n(finding: at this design point the average-optimal "
              "placements already attain the\nbest worst case — the paper's "
              "pure-average objective leaves nothing on the table\nhere; "
              "only the degenerate w=1 objective gives up average latency "
              "for no gain)\n");
  return 0;
}
