// Ablation of the paper's two algorithmic ingredients (Section 4.4):
//   1. the candidate generator — connection-matrix moves (always valid)
//      versus naive add/delete/stretch/shorten moves on the link set (which
//      waste budget on infeasible candidates);
//   2. the initial solution — D&C versus random versus the plain row.
// The paper motivates both choices qualitatively; this bench quantifies
// them at equal move budgets.

#include <cstdio>
#include <iostream>

#include "core/drivers.hpp"
#include "core/naive_sa.hpp"
#include "exp/scenarios.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Ablation — candidate generator and initial solution "
              "(objective: avg row head\nlatency, lower is better; invalid%% "
              "= moves wasted on infeasible candidates).\n");

  const double scale = exp::bench_scale();
  const long moves = std::max<long>(200, static_cast<long>(10000 * scale));
  const core::SaParams params = exp::paper_sa_params().with_moves(moves);
  constexpr int kSeeds = 5;

  for (const auto& [n, limit] : {std::pair{8, 4}, std::pair{16, 4}}) {
    const core::RowObjective obj(n, route::HopWeights{});
    std::printf("\n=== P(%d,%d), %ld moves, %d seeds ===\n", n, limit, moves,
                kSeeds);

    double matrix_dc = 0.0, matrix_rand = 0.0, naive_plain = 0.0;
    double invalid_share = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      Rng r1(seed), r2(seed + 50), r3(seed + 100);
      matrix_dc += core::solve_dcsa(obj, limit, params, r1).value;
      matrix_rand += core::solve_only_sa(obj, limit, params, r2).value;
      const auto naive = core::anneal_naive_links(topo::RowTopology(n), obj,
                                                  limit, params, r3);
      naive_plain += naive.best_value;
      invalid_share += static_cast<double>(naive.invalid_moves) /
                       static_cast<double>(params.total_moves);
    }

    Table table({"generator", "initial", "objective", "invalid moves"});
    table.add_row({"connection-matrix", "D&C",
                   Table::fmt(matrix_dc / kSeeds, 4), "0.0%"});
    table.add_row({"connection-matrix", "random",
                   Table::fmt(matrix_rand / kSeeds, 4), "0.0%"});
    table.add_row({"naive link moves", "plain row",
                   Table::fmt(naive_plain / kSeeds, 4),
                   Table::fmt(100.0 * invalid_share / kSeeds, 1) + "%"});
    table.print(std::cout);
  }
  return 0;
}
