// Reproduces Fig. 8: (a) average packet latency at a typical low load and
// (b) saturation throughput, for uniform random (UR), transpose (TP) and
// bit-reverse (BR) traffic on the 8x8 network, comparing Mesh, HFB and the
// proposed D&C_SA design.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "sim/throughput.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Fig. 8 reproduction — paper expectations: D&C_SA cuts latency "
              "~24.4%% vs Mesh and\n~16.9%% vs HFB; HFB throughput < half of "
              "Mesh; D&C_SA ~63.7%% above HFB and\n>3/4 of Mesh.\n\n");

  const auto solved = exp::solve_general_purpose(8, core::Solver::kDcsa, 42);
  const auto& best = solved.points[solved.best];
  const auto fixed = exp::fixed_designs(8);

  const sim::Network mesh_net(fixed[0].design, route::HopWeights{});
  const sim::Network hfb_net(fixed[1].design, route::HopWeights{});
  const sim::Network dcsa_net(best.design, route::HopWeights{});

  const std::vector<std::pair<std::string, traffic::Pattern>> patterns = {
      {"UR", traffic::Pattern::kUniformRandom},
      {"TP", traffic::Pattern::kTranspose},
      {"BR", traffic::Pattern::kBitReverse}};

  sim::SimConfig low_cfg = exp::default_sim_config(3);
  sim::SimConfig sat_cfg = exp::default_sim_config(4);
  sat_cfg.warmup_cycles = std::max<long>(150, sat_cfg.warmup_cycles / 4);
  sat_cfg.measure_cycles = std::max<long>(800, sat_cfg.measure_cycles / 5);
  sat_cfg.drain_cycles = std::max<long>(800, sat_cfg.drain_cycles / 10);

  Table latency({"pattern", "Mesh", "HFB", "D&C_SA"});
  Table throughput({"pattern", "Mesh", "HFB", "D&C_SA"});
  constexpr double kLowLoad = 0.02;  // packets/node/cycle, PARSEC-like

  double lat[3] = {0, 0, 0};
  double thr[3] = {0, 0, 0};
  for (const auto& [name, pattern] : patterns) {
    const auto shape = traffic::TrafficMatrix::from_pattern(pattern, 8, 1.0);

    double row_lat[3];
    double row_thr[3];
    const sim::Network* nets[3] = {&mesh_net, &hfb_net, &dcsa_net};
    for (int i = 0; i < 3; ++i) {
      row_lat[i] =
          sim::simulate_at_load(*nets[i], shape, kLowLoad, low_cfg)
              .avg_latency;
      row_thr[i] = sim::find_saturation(*nets[i], shape, sat_cfg, 0.04, 0.5)
                       .saturation_throughput;
      lat[i] += row_lat[i];
      thr[i] += row_thr[i];
    }
    latency.add_row({name, Table::fmt(row_lat[0]), Table::fmt(row_lat[1]),
                     Table::fmt(row_lat[2])});
    throughput.add_row({name, Table::fmt(row_thr[0], 3),
                        Table::fmt(row_thr[1], 3), Table::fmt(row_thr[2], 3)});
  }
  const double k = static_cast<double>(patterns.size());
  latency.add_row({"Avg", Table::fmt(lat[0] / k), Table::fmt(lat[1] / k),
                   Table::fmt(lat[2] / k)});
  throughput.add_row({"Avg", Table::fmt(thr[0] / k, 3),
                      Table::fmt(thr[1] / k, 3), Table::fmt(thr[2] / k, 3)});

  std::printf("(a) Average packet latency (cycles) at %.2f packets/node/"
              "cycle\n",
              kLowLoad);
  latency.print(std::cout);
  std::printf("\n(b) Saturation throughput (packets/node/cycle)\n");
  throughput.print(std::cout);

  std::printf("\nsummary: D&C_SA latency %.1f%% below Mesh, %.1f%% below "
              "HFB; throughput %.1f%% above HFB, %.0f%% of Mesh\n",
              -percent_change(lat[2], lat[0]),
              -percent_change(lat[2], lat[1]),
              percent_change(thr[2], thr[1]), 100.0 * thr[2] / thr[0]);
  return 0;
}
