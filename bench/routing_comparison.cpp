// Reproduces the routing claims of Section 4.2 that justify assuming
// dimension-order routing in the placement problem:
//   * "the average contention per hop is almost always less than 1 cycle"
//     at multi-threaded-benchmark loads;
//   * "the overall performance difference between XY and adaptive routing
//     is less than 1%" at those loads;
//   * the non-DOR scheme only pays off near saturation (higher maximum
//     throughput on adversarial patterns).
// The non-DOR comparison point is O1TURN-style oblivious routing (random
// XY/YX per packet on disjoint VC classes) — like adaptive routing it
// spreads load over both dimension orders.

#include <cstdio>
#include <iostream>

#include "exp/scenarios.hpp"
#include "sim/throughput.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Section 4.2 reproduction — XY vs O1TURN on the 8x8 mesh.\n\n");

  const auto mesh = topo::make_mesh(8);
  const sim::Network net(mesh, route::HopWeights{});

  // (1) + (2): PARSEC loads.
  Table low({"benchmark", "XY latency", "O1TURN latency", "diff",
             "XY contention/hop"});
  double diff_sum = 0.0;
  double worst_contention = 0.0;
  for (const auto& model : traffic::parsec_models()) {
    const auto demand = model.traffic_matrix(8);
    sim::SimConfig xy_cfg = exp::default_sim_config(3);
    sim::SimConfig o1_cfg = xy_cfg;
    o1_cfg.routing = sim::RoutingMode::kO1Turn;

    const auto xy = exp::simulate_design(mesh, demand, xy_cfg);
    const auto o1 = exp::simulate_design(mesh, demand, o1_cfg);
    exp::warn_if_undrained(xy, "routing_comparison xy/" + model.name);
    exp::warn_if_undrained(o1, "routing_comparison o1turn/" + model.name);
    const double diff = percent_change(o1.avg_latency, xy.avg_latency);
    diff_sum += std::abs(diff);
    worst_contention = std::max(worst_contention, xy.avg_contention_per_hop);
    low.add_row({model.name, Table::fmt(xy.avg_latency),
                 Table::fmt(o1.avg_latency), Table::fmt(diff, 2) + "%",
                 Table::fmt(xy.avg_contention_per_hop, 3)});
  }
  low.print(std::cout);
  std::printf("\n  mean |difference|: %.2f%% (paper: < 1%%); worst "
              "contention/hop: %.2f cycles (paper: < 1)\n",
              diff_sum / traffic::parsec_models().size(), worst_contention);

  // (3): saturation throughput on an adversarial pattern.
  sim::SimConfig sat_cfg = exp::default_sim_config(4);
  sat_cfg.warmup_cycles = 200;
  sat_cfg.measure_cycles = 1200;
  sat_cfg.drain_cycles = 1200;
  sim::SimConfig sat_o1 = sat_cfg;
  sat_o1.routing = sim::RoutingMode::kO1Turn;

  std::printf("\nsaturation throughput (packets/node/cycle):\n");
  Table sat({"pattern", "XY", "O1TURN"});
  for (const auto pattern :
       {traffic::Pattern::kUniformRandom, traffic::Pattern::kTranspose}) {
    const auto shape = traffic::TrafficMatrix::from_pattern(pattern, 8, 1.0);
    const double xy_thr =
        find_saturation(net, shape, sat_cfg, 0.04, 0.5).saturation_throughput;
    const double o1_thr =
        find_saturation(net, shape, sat_o1, 0.04, 0.5).saturation_throughput;
    sat.add_row({traffic::to_string(pattern), Table::fmt(xy_thr, 3),
                 Table::fmt(o1_thr, 3)});
  }
  sat.print(std::cout);
  std::printf("\n(transpose is adversarial for XY: O1TURN should win there "
              "and only there)\n");
  return 0;
}
