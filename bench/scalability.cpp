// Extension beyond the paper's evaluation: how does the benefit of
// optimized express-link placement scale past 16x16? The paper's trend
// (8.1% -> 23.5% -> 36.4% vs mesh as the network grows) suggests the gap
// keeps widening as the mesh diameter grows; this bench extends the sweep
// to 24x24 and 32x32 and also reports the optimizer's cost scaling
// (evaluations and wall-clock), which the O(n^5) initializer analysis
// predicts.

#include <cstdio>
#include <iostream>

#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "util/numeric.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace xlp;

int main() {
  std::printf("Scalability extension — placement benefit and optimizer cost "
              "vs network size.\nPaper data points: 8.1%% (4x4), 23.5%% "
              "(8x8), 36.4%% (16x16) vs Mesh.\n\n");

  Table table({"network", "Mesh", "best D&C_SA", "C*", "reduction",
               "evals", "seconds"});
  for (const int n : {4, 8, 16, 24, 32}) {
    core::SweepOptions options;
    options.sa = exp::paper_sa_params().with_moves(
        std::max<long>(200, static_cast<long>(10000 * exp::bench_scale())));
    options.latency = latency::LatencyParams::zero_load();

    Stopwatch timer;
    Rng rng(static_cast<std::uint64_t>(77 + n));
    const auto points = core::sweep_link_limits(n, options, rng);
    const double seconds = timer.seconds();
    const auto& best = points[core::best_point(points)];

    long evals = 0;
    for (const auto& p : points) evals += p.placement.evaluations;

    const double mesh_total =
        core::evaluate_design(topo::make_mesh(n), options.latency, {})
            .total();
    table.add_row(
        {std::to_string(n) + "x" + std::to_string(n),
         Table::fmt(mesh_total), Table::fmt(best.breakdown.total()),
         std::to_string(best.link_limit),
         Table::fmt(-percent_change(best.breakdown.total(), mesh_total), 1) +
             "%",
         std::to_string(evals), Table::fmt(seconds, 2)});
  }
  table.print(std::cout);
  std::printf("\n(the reduction keeps growing with the diameter; the cost "
              "stays laptop-scale,\nas the O(n^5) initializer analysis of "
              "Section 4.4.1 predicts)\n");
  return 0;
}
