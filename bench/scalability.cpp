// Extension beyond the paper's evaluation: how does the benefit of
// optimized express-link placement scale past 16x16? The paper's trend
// (8.1% -> 23.5% -> 36.4% vs mesh as the network grows) suggests the gap
// keeps widening as the mesh diameter grows; this bench extends the sweep
// to 24x24 and 32x32 and also reports the optimizer's cost scaling
// (evaluations and wall-clock), which the O(n^5) initializer analysis
// predicts. The sweep bodies live in bench/suites.cpp (suite
// "scalability"); results land in BENCH_scalability.json.

#include <cstdio>

#include "harness.hpp"
#include "suites.hpp"

int main(int argc, char** argv) {
  std::printf("Scalability extension — placement benefit and optimizer cost "
              "vs network size.\nPaper data points: 8.1%% (4x4), 23.5%% "
              "(8x8), 36.4%% (16x16) vs Mesh.\n");
  xlp::bench::register_all_suites();
  xlp::bench::RunnerOptions defaults;
  defaults.warmup = 0;
  defaults.repeats = 1;
  return xlp::bench::run_main(argc, argv, defaults, "^scalability/");
}
