// Reproduces Fig. 5: average packet latency as a function of the link
// limit C on 4x4, 8x8 and 16x16 networks, for the proposed D&C_SA, the
// OnlySA ablation, and the fixed Mesh/HFB designs, plus the head (L_D) and
// serialization (L_S) decomposition of D&C_SA. Also prints the paper's
// headline reductions (23.5%/8.0% on 8x8, 36.4%/20.1% on 16x16).

#include <cstdio>
#include <iostream>

#include "core/c_sweep.hpp"
#include "exp/scenarios.hpp"
#include "harness.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "util/csv.hpp"
#include "util/numeric.hpp"
#include "util/table.hpp"

using namespace xlp;

namespace {

void run_size(int n, const obs::Provenance& provenance) {
  std::printf("\n=== Fig. 5 (%dx%d): average packet latency vs link limit C "
              "===\n",
              n, n);

  core::SweepOptions options = exp::default_sweep_options(n);
  Rng dcsa_rng(1001 + n);
  const auto dcsa = core::sweep_link_limits(n, options, dcsa_rng);

  options.solver = core::Solver::kOnlySa;
  Rng only_rng(2002 + n);
  const auto only = core::sweep_link_limits(n, options, only_rng);

  const auto fixed = exp::fixed_designs(n);
  const double mesh_total =
      core::evaluate_design(fixed[0].design, options.latency,
                            options.report_traffic)
          .total();
  const double hfb_total =
      core::evaluate_design(fixed[1].design, options.latency,
                            options.report_traffic)
          .total();

  Table table({"C", "D&C_SA", "OnlySA", "L_D(D&C_SA)", "L_S"});
  CsvWriter csv({"n", "C", "dcsa_total", "onlysa_total", "dcsa_head",
                 "serialization", "mesh_total", "hfb_total"});
  obs::Json points = obs::Json::array();
  for (std::size_t i = 0; i < dcsa.size(); ++i) {
    table.add_row({std::to_string(dcsa[i].link_limit),
                   Table::fmt(dcsa[i].breakdown.total()),
                   Table::fmt(only[i].breakdown.total()),
                   Table::fmt(dcsa[i].breakdown.head),
                   Table::fmt(dcsa[i].breakdown.serialization)});
    csv.add_row({std::to_string(n), std::to_string(dcsa[i].link_limit),
                 Table::fmt(dcsa[i].breakdown.total(), 4),
                 Table::fmt(only[i].breakdown.total(), 4),
                 Table::fmt(dcsa[i].breakdown.head, 4),
                 Table::fmt(dcsa[i].breakdown.serialization, 4),
                 Table::fmt(mesh_total, 4), Table::fmt(hfb_total, 4)});
    points.push(obs::Json::object()
                    .set("c", dcsa[i].link_limit)
                    .set("dcsa_total", dcsa[i].breakdown.total())
                    .set("onlysa_total", only[i].breakdown.total())
                    .set("dcsa_head", dcsa[i].breakdown.head)
                    .set("serialization", dcsa[i].breakdown.serialization)
                    .set("placement",
                         dcsa[i].placement.placement.to_string()));
  }
  table.print(std::cout);
  if (const std::string dir = csv_output_dir(); !dir.empty()) {
    const std::string path =
        dir + "/fig05_" + std::to_string(n) + "x" + std::to_string(n) +
        ".csv";
    std::printf("  csv: %s %s\n", path.c_str(),
                csv.write_file(path) ? "written" : "NOT WRITTEN");
    // Machine-readable series (one document per size) so successive runs
    // can be diffed into a bench trajectory — emitted through the shared
    // harness writer so it carries the same schema and provenance block as
    // every other BENCH_*.json.
    const obs::Json data = obs::Json::object()
                               .set("figure", "fig05")
                               .set("n", n)
                               .set("mesh_total", mesh_total)
                               .set("hfb_total", hfb_total)
                               .set("points", std::move(points));
    const std::string json_path = bench::write_artifact(
        dir, "fig05_" + std::to_string(n) + "x" + std::to_string(n), data,
        provenance);
    std::printf("  json: %s\n", json_path.empty() ? "NOT WRITTEN"
                                                  : json_path.c_str());
  }
  std::printf("  fixed points: Mesh = %.2f cycles (C=1), HFB = %.2f cycles "
              "(C=%d)\n",
              mesh_total, hfb_total, fixed[1].design.link_limit());

  const auto& best = dcsa[core::best_point(dcsa)];
  const auto& best_only = only[core::best_point(only)];
  std::printf("  best D&C_SA: C=%d, %.2f cycles, placement %s\n",
              best.link_limit, best.breakdown.total(),
              best.placement.placement.to_string().c_str());
  std::printf("  reduction vs Mesh: %.1f%%   vs HFB: %.1f%%   OnlySA gap: "
              "+%.1f%%\n",
              -percent_change(best.breakdown.total(), mesh_total),
              -percent_change(best.breakdown.total(), hfb_total),
              percent_change(best_only.breakdown.total(),
                             best.breakdown.total()));
}

}  // namespace

int main() {
  std::printf("Fig. 5 reproduction — paper expectations: best C interior; "
              "D&C_SA < HFB < Mesh;\nreductions vs Mesh/HFB: 8.1%%/~0%% "
              "(4x4), 23.5%%/8.0%% (8x8), 36.4%%/20.1%% (16x16).\n");
  const obs::Provenance provenance = obs::Provenance::collect(0);
  for (const int n : {4, 8, 16}) run_size(n, provenance);
  return 0;
}
