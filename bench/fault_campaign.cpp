// Monte Carlo resilience campaign: how do the paper's designs degrade when
// express links die mid-run?  For Mesh, HFB, D&C_SA and a reliability-aware
// D&C_SA (SA objective blended with the expected single-express-loss cost,
// see fault/objective.hpp) we sample random express-link failures, inject
// them at a fixed cycle, let the simulator reroute on the surviving
// monotone subgraph, and compare degraded latency against the fault-free
// baseline.  The paper itself does not study faults; this extends its
// experimental setup along the axis motivated in docs/fault_tolerance.md.
//
// Usage: fault_campaign [campaign.json]
//   The optional argument also dumps the full per-trial results as JSON
//   (deterministic: byte-identical across runs with the same build).

#include <cstdio>
#include <fstream>
#include <iostream>

#include "exp/fault_campaign.hpp"
#include "util/table.hpp"

using namespace xlp;

int main(int argc, char** argv) {
  exp::FaultCampaignConfig config;
  config.n = 8;
  config.link_limit = 4;
  config.kill_links = 1;
  config.trials = 10;
  config.fault_cycle = 2000;

  std::printf("fault campaign — %dx%d, C=%d, %d express link(s) killed at "
              "cycle %ld, %d trials per design, drop-and-retransmit\n\n",
              config.n, config.n, config.link_limit, config.kill_links,
              config.fault_cycle, config.trials);

  const exp::FaultCampaignResult result = exp::run_fault_campaign(config);

  Table table({"design", "baseline", "degraded mean", "degraded worst",
               "slowdown", "lost", "unroutable"});
  for (const auto& d : result.designs) {
    const double slowdown =
        d.degraded_mean > 0.0 ? d.degraded_mean / d.baseline_latency : 0.0;
    table.add_row({d.name, Table::fmt(d.baseline_latency),
                   Table::fmt(d.degraded_mean), Table::fmt(d.degraded_worst),
                   Table::fmt(slowdown, 3) + "x",
                   std::to_string(d.lost_total),
                   std::to_string(d.unroutable_total)});
  }
  table.print(std::cout);
  std::printf("\n  latencies in cycles; degraded = mean over %d sampled "
              "single-fault trials after rerouting.\n  DC_SA_rel trades a "
              "little fault-free latency for a flatter degraded profile.\n",
              config.trials);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out.good()) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    out << result.to_json().dump() << "\n";
    std::printf("  json: %s written\n", argv[1]);
  }
  return 0;
}
