// Monte Carlo resilience campaign: how do the paper's designs degrade when
// express links die mid-run?  For Mesh, HFB, D&C_SA and a reliability-aware
// D&C_SA (SA objective blended with the expected single-express-loss cost,
// see fault/objective.hpp) we sample random express-link failures, inject
// them at a fixed cycle, let the simulator reroute on the surviving
// monotone subgraph, and compare degraded latency against the fault-free
// baseline.  The paper itself does not study faults; this extends its
// experimental setup along the axis motivated in docs/fault_tolerance.md.
// The campaign body lives in bench/suites.cpp (suite "fault_campaign");
// the full per-trial series is the payload of BENCH_fault_campaign.json.

#include "harness.hpp"
#include "suites.hpp"

int main(int argc, char** argv) {
  xlp::bench::register_all_suites();
  xlp::bench::RunnerOptions defaults;
  defaults.warmup = 0;
  defaults.repeats = 1;
  return xlp::bench::run_main(argc, argv, defaults, "^fault_campaign/8x8_c4");
}
