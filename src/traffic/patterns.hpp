#pragma once

#include <optional>
#include <string>

#include "util/rng.hpp"

namespace xlp::traffic {

/// Synthetic traffic patterns. UR, TP (transpose) and BR (bit-reverse) are
/// the patterns the paper evaluates in Section 5.4; the remainder are the
/// standard suite from Dally & Towles used by the extended benches.
enum class Pattern {
  kUniformRandom,
  kTranspose,
  kBitReverse,
  kBitComplement,
  kShuffle,
  kTornado,
  kNeighbor,
  kHotspot,
};

[[nodiscard]] std::string to_string(Pattern p);
[[nodiscard]] std::optional<Pattern> pattern_from_string(
    const std::string& name);

/// Destination of a packet injected at `src` on an n x n network (node ids
/// are y*n + x). For the deterministic permutation patterns the result is a
/// function of `src` alone and `rng` is unused; UniformRandom draws any node
/// != src; Hotspot sends 20% of packets to one of four fixed hub nodes and
/// the rest uniformly. Returns nullopt when the pattern maps `src` onto
/// itself (such sources inject no traffic, the usual convention).
///
/// The bit-permutation patterns (bit-reverse, bit-complement, shuffle)
/// require the node count n*n to be a power of two.
[[nodiscard]] std::optional<int> pattern_destination(Pattern p, int src,
                                                     int n, Rng& rng);

}  // namespace xlp::traffic
