#include "traffic/matrix.hpp"

#include <numeric>

#include "util/check.hpp"

namespace xlp::traffic {

TrafficMatrix::TrafficMatrix(int n) : TrafficMatrix(n, n) {}

TrafficMatrix::TrafficMatrix(int width, int height)
    : width_(width), height_(height) {
  XLP_REQUIRE(width >= 2 && height >= 2,
              "network dimensions must be at least 2");
  rates_.assign(static_cast<std::size_t>(node_count()) * node_count(), 0.0);
}

int TrafficMatrix::side() const {
  XLP_REQUIRE(is_square(), "side() called on a rectangular matrix");
  return width_;
}

double TrafficMatrix::rate(int src, int dst) const {
  XLP_REQUIRE(src >= 0 && src < node_count() && dst >= 0 &&
                  dst < node_count(),
              "node out of range");
  return rates_[idx(src, dst)];
}

void TrafficMatrix::set_rate(int src, int dst, double packets_per_cycle) {
  XLP_REQUIRE(src >= 0 && src < node_count() && dst >= 0 &&
                  dst < node_count(),
              "node out of range");
  XLP_REQUIRE(packets_per_cycle >= 0.0, "rates must be non-negative");
  XLP_REQUIRE(src != dst || packets_per_cycle == 0.0,
              "self-traffic does not enter the network");
  rates_[idx(src, dst)] = packets_per_cycle;
}

void TrafficMatrix::add_rate(int src, int dst, double packets_per_cycle) {
  set_rate(src, dst, rate(src, dst) + packets_per_cycle);
}

double TrafficMatrix::total_rate() const {
  return std::accumulate(rates_.begin(), rates_.end(), 0.0);
}

double TrafficMatrix::node_rate(int src) const {
  XLP_REQUIRE(src >= 0 && src < node_count(), "node out of range");
  double total = 0.0;
  for (int dst = 0; dst < node_count(); ++dst) total += rates_[idx(src, dst)];
  return total;
}

void TrafficMatrix::scale_total(double target) {
  XLP_REQUIRE(target >= 0.0, "target rate must be non-negative");
  const double current = total_rate();
  XLP_REQUIRE(current > 0.0, "cannot scale an all-zero matrix");
  const double factor = target / current;
  for (double& r : rates_) r *= factor;
}

TrafficMatrix TrafficMatrix::from_pattern(Pattern p, int n,
                                          double per_node_packets_per_cycle) {
  XLP_REQUIRE(per_node_packets_per_cycle >= 0.0,
              "injection rate must be non-negative");
  TrafficMatrix m(n);
  const int nodes = n * n;
  Rng unused(0);
  for (int src = 0; src < nodes; ++src) {
    switch (p) {
      case Pattern::kUniformRandom:
        for (int dst = 0; dst < nodes; ++dst)
          if (dst != src)
            m.set_rate(src, dst, per_node_packets_per_cycle / (nodes - 1));
        break;
      case Pattern::kHotspot: {
        // Mirror pattern_destination(): 20% to four hubs, 80% uniform over
        // all nodes (self-directed draws are dropped, so slightly less than
        // the nominal rate enters the network — same as the sampler).
        const int q = n / 4;
        const int hubs[4] = {q * n + q, q * n + (n - 1 - q),
                             (n - 1 - q) * n + q,
                             (n - 1 - q) * n + (n - 1 - q)};
        for (int hub : hubs)
          if (hub != src)
            m.add_rate(src, hub, per_node_packets_per_cycle * 0.2 / 4.0);
        for (int dst = 0; dst < nodes; ++dst)
          if (dst != src)
            m.add_rate(src, dst, per_node_packets_per_cycle * 0.8 / nodes);
        break;
      }
      default: {
        const auto dest = pattern_destination(p, src, n, unused);
        if (dest) m.set_rate(src, *dest, per_node_packets_per_cycle);
        break;
      }
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::concentrate(int block) const {
  XLP_REQUIRE(block >= 1, "concentration block must be positive");
  XLP_REQUIRE(width_ % block == 0 && height_ % block == 0,
              "core grid must be a multiple of the concentration block");
  const int mw = width_ / block;
  const int mh = height_ / block;
  XLP_REQUIRE(mw >= 2 && mh >= 2,
              "concentrated network needs at least a 2x2 grid");
  TrafficMatrix routers(mw, mh);
  for (int src = 0; src < node_count(); ++src) {
    const int sx = (src % width_) / block;
    const int sy = (src / width_) / block;
    for (int dst = 0; dst < node_count(); ++dst) {
      const double r = rates_[idx(src, dst)];
      if (r <= 0.0) continue;
      const int dx = (dst % width_) / block;
      const int dy = (dst / width_) / block;
      if (sx == dx && sy == dy) continue;  // intra-tile: stays off-network
      routers.add_rate(sy * mw + sx, dy * mw + dx, r);
    }
  }
  return routers;
}

std::vector<double> TrafficMatrix::row_weights(int y) const {
  XLP_REQUIRE(y >= 0 && y < height_, "row out of range");
  std::vector<double> w(static_cast<std::size_t>(width_) * width_, 0.0);
  for (int a = 0; a < width_; ++a) {
    const int src = y * width_ + a;
    for (int dst = 0; dst < node_count(); ++dst) {
      const int b = dst % width_;
      if (b == a) continue;  // no row segment when x coordinates match
      w[static_cast<std::size_t>(a) * width_ + b] += rates_[idx(src, dst)];
    }
  }
  return w;
}

std::vector<double> TrafficMatrix::col_weights(int x) const {
  XLP_REQUIRE(x >= 0 && x < width_, "column out of range");
  std::vector<double> w(static_cast<std::size_t>(height_) * height_, 0.0);
  for (int v = 0; v < height_; ++v) {
    const int dst = v * width_ + x;
    for (int src = 0; src < node_count(); ++src) {
      const int u = src / width_;
      if (u == v) continue;  // no column segment when y coordinates match
      w[static_cast<std::size_t>(u) * height_ + v] += rates_[idx(src, dst)];
    }
  }
  return w;
}

}  // namespace xlp::traffic
