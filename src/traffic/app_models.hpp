#pragma once

#include <string>
#include <vector>

#include "traffic/matrix.hpp"
#include "util/rng.hpp"

namespace xlp::traffic {

/// Parameterized stand-in for a PARSEC 2.0 benchmark running on a CMP.
///
/// The paper collects traffic from full-system gem5 runs; that substrate is
/// unavailable here, so each benchmark is modeled by the three properties
/// that determine NoC behaviour at the level this study needs (see
/// DESIGN.md "Substitutions"):
///   * `injection_rate` — packets/node/cycle; PARSEC loads are low
///     (Section 2.2 and [7]), so rates are in the 0.5%..4% range.
///   * `locality` — share of a node's traffic that targets nearby nodes
///     (decaying with Manhattan distance); captures producer/consumer
///     pipelines vs. all-to-all sharing.
///   * `hotspot_share` — share directed to a few hub nodes (directory/
///     memory-controller style concentration).
/// The remainder is uniform-random. Rates are deterministic per benchmark
/// (hub choice is seeded by the benchmark's index), so experiments
/// reproduce exactly.
struct AppModel {
  std::string name;
  double injection_rate = 0.02;  // packets per node per cycle
  double locality = 0.3;         // fraction of near-neighbor traffic
  double hotspot_share = 0.1;    // fraction to hub nodes
  int hub_count = 2;
  double locality_scale = 2.0;   // Manhattan e-folding distance (hops)

  /// Expected traffic matrix on an n x n network.
  [[nodiscard]] TrafficMatrix traffic_matrix(int n) const;
};

/// The ten PARSEC 2.0 workloads of Fig. 6, in the paper's order.
[[nodiscard]] const std::vector<AppModel>& parsec_models();

/// Lookup by name; throws PreconditionError when unknown.
[[nodiscard]] const AppModel& parsec_model(const std::string& name);

/// The "average over the ten benchmarks" workload the paper uses for
/// Fig. 5: the mean of the per-benchmark traffic matrices.
[[nodiscard]] TrafficMatrix parsec_average_matrix(int n);

}  // namespace xlp::traffic
