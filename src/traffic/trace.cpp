#include "traffic/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace xlp::traffic {

Trace::Trace(int side, long duration_cycles, std::vector<TracePacket> packets)
    : Trace(side, side, duration_cycles, std::move(packets)) {}

Trace::Trace(int width, int height, long duration_cycles,
             std::vector<TracePacket> packets)
    : width_(width),
      height_(height),
      duration_(duration_cycles),
      packets_(std::move(packets)) {
  XLP_REQUIRE(width >= 2 && height >= 2,
              "network dimensions must be at least 2");
  XLP_REQUIRE(duration_cycles >= 1, "trace must span at least one cycle");
  const int nodes = width * height;
  long prev_cycle = 0;
  for (const TracePacket& p : packets_) {
    XLP_REQUIRE(p.cycle >= 0 && p.cycle < duration_,
                "packet cycle outside the trace duration");
    XLP_REQUIRE(p.cycle >= prev_cycle, "packets must be sorted by cycle");
    XLP_REQUIRE(p.src >= 0 && p.src < nodes && p.dst >= 0 && p.dst < nodes,
                "packet endpoint out of range");
    XLP_REQUIRE(p.src != p.dst, "self-directed packet in trace");
    XLP_REQUIRE(p.bits > 0, "packet size must be positive");
    prev_cycle = p.cycle;
  }
}

Trace Trace::sample(const TrafficMatrix& demand,
                    const latency::PacketMix& mix, long cycles, Rng& rng) {
  XLP_REQUIRE(cycles >= 1, "trace must span at least one cycle");
  const int nodes = demand.node_count();

  // Per-node destination CDFs, as the simulator builds them.
  std::vector<double> node_rate(static_cast<std::size_t>(nodes), 0.0);
  std::vector<std::vector<std::pair<double, int>>> cdf(
      static_cast<std::size_t>(nodes));
  for (int src = 0; src < nodes; ++src) {
    node_rate[src] = demand.node_rate(src);
    if (node_rate[src] <= 0.0) continue;
    double cum = 0.0;
    for (int dst = 0; dst < nodes; ++dst) {
      const double r = demand.rate(src, dst);
      if (r <= 0.0) continue;
      cum += r / node_rate[src];
      cdf[src].emplace_back(cum, dst);
    }
    cdf[src].back().first = 1.0;
  }
  std::vector<double> mix_cdf;
  std::vector<int> mix_bits;
  {
    double cum = 0.0;
    for (const auto& pc : mix.classes()) {
      cum += pc.fraction;
      mix_cdf.push_back(cum);
      mix_bits.push_back(pc.bits);
    }
    mix_cdf.back() = 1.0;
  }

  std::vector<TracePacket> packets;
  for (long cycle = 0; cycle < cycles; ++cycle) {
    for (int src = 0; src < nodes; ++src) {
      if (node_rate[src] <= 0.0 || !rng.bernoulli(node_rate[src])) continue;
      const double u = rng.uniform01();
      const auto it = std::lower_bound(
          cdf[src].begin(), cdf[src].end(), u,
          [](const auto& entry, double v) { return entry.first < v; });
      const double w = rng.uniform01();
      int bits = mix_bits.back();
      for (std::size_t k = 0; k < mix_cdf.size(); ++k)
        if (w <= mix_cdf[k]) {
          bits = mix_bits[k];
          break;
        }
      packets.push_back({cycle, src, it->second, bits});
    }
  }
  return Trace(demand.width(), demand.height(), cycles,
               std::move(packets));
}

int Trace::side() const {
  XLP_REQUIRE(width_ == height_, "side() called on a rectangular trace");
  return width_;
}

TrafficMatrix Trace::empirical_matrix() const {
  TrafficMatrix m(width_, height_);
  const double inv = 1.0 / static_cast<double>(duration_);
  for (const TracePacket& p : packets_) m.add_rate(p.src, p.dst, inv);
  return m;
}

double Trace::offered_per_node_cycle() const {
  return static_cast<double>(packets_.size()) /
         (static_cast<double>(duration_) * width_ * height_);
}

void Trace::save(std::ostream& os) const {
  os << "xlptrace " << width_ << ' ' << height_ << ' ' << duration_
     << '\n';
  os << "# cycle src dst bits\n";
  for (const TracePacket& p : packets_)
    os << p.cycle << ' ' << p.src << ' ' << p.dst << ' ' << p.bits << '\n';
}

Trace Trace::load(std::istream& is) {
  std::string line;
  XLP_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "empty trace stream");
  std::istringstream header(line);
  std::string magic;
  int width = 0, height = 0;
  long duration = 0;
  header >> magic >> width >> height >> duration;
  XLP_REQUIRE(magic == "xlptrace" && width >= 2 && height >= 2 &&
                  duration >= 1,
              "bad trace header");

  std::vector<TracePacket> packets;
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream row(line);
    TracePacket p;
    row >> p.cycle >> p.src >> p.dst >> p.bits;
    XLP_REQUIRE(!row.fail(), "bad trace line: " + line);
    packets.push_back(p);
  }
  return Trace(width, height, duration, std::move(packets));
}

}  // namespace xlp::traffic
