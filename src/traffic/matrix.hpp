#pragma once

#include <vector>

#include "traffic/patterns.hpp"
#include "util/rng.hpp"

namespace xlp::traffic {

/// Long-run traffic-rate matrix gamma: rates[src*N + dst] is the expected
/// packet injection rate (packets/cycle) from node src to node dst on an
/// n x n network. The diagonal is always zero. This is the gamma_ij of
/// Section 5.6.4 and the offered-load description the simulator samples
/// from.
class TrafficMatrix {
 public:
  /// All-zero matrix for an n x n network.
  explicit TrafficMatrix(int n);

  /// All-zero matrix for a rectangular width x height network.
  TrafficMatrix(int width, int height);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] bool is_square() const noexcept { return width_ == height_; }
  /// Routers per side; only valid for square networks (throws otherwise).
  [[nodiscard]] int side() const;
  [[nodiscard]] int node_count() const noexcept { return width_ * height_; }

  [[nodiscard]] double rate(int src, int dst) const;
  void set_rate(int src, int dst, double packets_per_cycle);
  void add_rate(int src, int dst, double packets_per_cycle);

  /// Flattened N*N row-major copy (what MeshLatencyModel::weighted_average
  /// and the row/column decompositions consume).
  [[nodiscard]] const std::vector<double>& rates() const noexcept {
    return rates_;
  }

  /// Sum of all rates: aggregate offered load in packets/cycle.
  [[nodiscard]] double total_rate() const;

  /// Offered load of one source node (row sum), packets/cycle.
  [[nodiscard]] double node_rate(int src) const;

  /// Scales every entry so that total_rate() becomes `target`.
  void scale_total(double target);

  /// Expected long-run rate matrix of a synthetic pattern at the given
  /// per-node injection rate. Stochastic patterns (UR, hotspot) use their
  /// exact expected distribution, not a sampled one.
  static TrafficMatrix from_pattern(Pattern p, int n,
                                    double per_node_packets_per_cycle);

  /// Row decomposition for the application-specific objective: under XY
  /// routing, the row-segment demand of row y between in-row positions
  /// (a, b) is the total rate from node (a, y) to any node with x = b.
  /// Returns the flattened width*width weight matrix for that row.
  [[nodiscard]] std::vector<double> row_weights(int y) const;

  /// Column decomposition: the column-segment demand of column x between
  /// in-column positions (u, v) is the total rate from any node with y = u
  /// to node (x, v); a flattened height*height matrix.
  [[nodiscard]] std::vector<double> col_weights(int x) const;

  /// Concentration: maps a core-level matrix onto a router grid where each
  /// router serves a `block` x `block` tile of cores (e.g. block=2 is the
  /// 4-way concentration used by flattened-butterfly designs [17]). Traffic
  /// between cores of the same tile never enters the network and is
  /// dropped. Requires both dimensions to be multiples of `block`.
  [[nodiscard]] TrafficMatrix concentrate(int block) const;

 private:
  [[nodiscard]] std::size_t idx(int src, int dst) const {
    return static_cast<std::size_t>(src) * node_count() + dst;
  }

  int width_;
  int height_;
  std::vector<double> rates_;
};

}  // namespace xlp::traffic
