#include "traffic/patterns.hpp"

#include <bit>

#include "util/check.hpp"
#include "util/numeric.hpp"

namespace xlp::traffic {

std::string to_string(Pattern p) {
  switch (p) {
    case Pattern::kUniformRandom: return "uniform_random";
    case Pattern::kTranspose: return "transpose";
    case Pattern::kBitReverse: return "bit_reverse";
    case Pattern::kBitComplement: return "bit_complement";
    case Pattern::kShuffle: return "shuffle";
    case Pattern::kTornado: return "tornado";
    case Pattern::kNeighbor: return "neighbor";
    case Pattern::kHotspot: return "hotspot";
  }
  XLP_CHECK(false, "unhandled pattern");
}

std::optional<Pattern> pattern_from_string(const std::string& name) {
  for (Pattern p :
       {Pattern::kUniformRandom, Pattern::kTranspose, Pattern::kBitReverse,
        Pattern::kBitComplement, Pattern::kShuffle, Pattern::kTornado,
        Pattern::kNeighbor, Pattern::kHotspot}) {
    if (to_string(p) == name) return p;
  }
  return std::nullopt;
}

namespace {

int id_bits(int node_count) {
  XLP_REQUIRE(is_power_of_two(static_cast<std::uint64_t>(node_count)),
              "bit-permutation patterns need a power-of-two node count");
  return std::countr_zero(static_cast<unsigned>(node_count));
}

int reverse_bits(int value, int bits) {
  int out = 0;
  for (int i = 0; i < bits; ++i)
    if (value & (1 << i)) out |= 1 << (bits - 1 - i);
  return out;
}

}  // namespace

std::optional<int> pattern_destination(Pattern p, int src, int n, Rng& rng) {
  XLP_REQUIRE(n >= 2, "network side must be at least 2");
  const int nodes = n * n;
  XLP_REQUIRE(src >= 0 && src < nodes, "source out of range");
  const int sx = src % n;
  const int sy = src / n;

  int dest = src;
  switch (p) {
    case Pattern::kUniformRandom: {
      dest = static_cast<int>(rng.uniform_below(
          static_cast<std::uint64_t>(nodes - 1)));
      if (dest >= src) ++dest;  // uniform over nodes != src
      break;
    }
    case Pattern::kTranspose:
      dest = sx * n + sy;  // (x,y) -> (y,x)
      break;
    case Pattern::kBitReverse:
      dest = reverse_bits(src, id_bits(nodes));
      break;
    case Pattern::kBitComplement:
      id_bits(nodes);  // validates the power-of-two requirement
      dest = (~src) & (nodes - 1);
      break;
    case Pattern::kShuffle: {
      const int bits = id_bits(nodes);
      dest = ((src << 1) | (src >> (bits - 1))) & (nodes - 1);
      break;
    }
    case Pattern::kTornado: {
      // Shift by just under half the ring in each dimension.
      const int shift = (n + 1) / 2 - 1;
      dest = ((sy + shift) % n) * n + ((sx + shift) % n);
      break;
    }
    case Pattern::kNeighbor:
      dest = sy * n + ((sx + 1) % n);
      break;
    case Pattern::kHotspot: {
      // Four hubs at the quarter points absorb 20% of the traffic.
      if (rng.uniform01() < 0.2) {
        const int q = n / 4;
        const int hubs[4] = {q * n + q, q * n + (n - 1 - q),
                             (n - 1 - q) * n + q, (n - 1 - q) * n + (n - 1 - q)};
        dest = hubs[rng.uniform_below(4)];
      } else {
        dest = static_cast<int>(rng.uniform_below(
            static_cast<std::uint64_t>(nodes)));
      }
      break;
    }
  }
  if (dest == src) return std::nullopt;
  return dest;
}

}  // namespace xlp::traffic
