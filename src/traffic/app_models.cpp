#include "traffic/app_models.hpp"

#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace xlp::traffic {

TrafficMatrix AppModel::traffic_matrix(int n) const {
  XLP_REQUIRE(injection_rate >= 0.0, "injection rate must be non-negative");
  XLP_REQUIRE(locality >= 0.0 && hotspot_share >= 0.0 &&
                  locality + hotspot_share <= 1.0,
              "traffic shares must be non-negative and sum to at most 1");
  TrafficMatrix m(n);
  const int nodes = n * n;

  // Hubs are a deterministic function of the benchmark name so that each
  // workload has a stable personality across runs and network sizes.
  std::uint64_t name_hash = 1469598103934665603ULL;
  for (const char ch : name) {
    name_hash ^= static_cast<unsigned char>(ch);
    name_hash *= 1099511628211ULL;
  }
  Rng hub_rng(name_hash);
  std::vector<int> hubs;
  for (int h = 0; h < hub_count; ++h)
    hubs.push_back(static_cast<int>(hub_rng.uniform_below(nodes)));

  const double uniform_share = 1.0 - locality - hotspot_share;
  for (int src = 0; src < nodes; ++src) {
    const int sx = src % n;
    const int sy = src / n;

    // Locality component: weights decay exponentially in Manhattan distance.
    double local_norm = 0.0;
    for (int dst = 0; dst < nodes; ++dst) {
      if (dst == src) continue;
      const int d = std::abs(dst % n - sx) + std::abs(dst / n - sy);
      local_norm += std::exp(-static_cast<double>(d) / locality_scale);
    }
    for (int dst = 0; dst < nodes; ++dst) {
      if (dst == src) continue;
      const int d = std::abs(dst % n - sx) + std::abs(dst / n - sy);
      const double local_w =
          std::exp(-static_cast<double>(d) / locality_scale) / local_norm;
      double r = injection_rate * (locality * local_w +
                                   uniform_share / (nodes - 1));
      m.add_rate(src, dst, r);
    }
    if (!hubs.empty() && hotspot_share > 0.0) {
      // Count how many hub slots point away from src; traffic to a hub that
      // happens to equal src stays off the network.
      for (int hub : hubs)
        if (hub != src)
          m.add_rate(src, hub,
                     injection_rate * hotspot_share /
                         static_cast<double>(hubs.size()));
    }
  }
  return m;
}

const std::vector<AppModel>& parsec_models() {
  // Injection rates and traffic shapes are synthetic but differentiated:
  // data-parallel kernels (blackscholes, swaptions) are light and local;
  // pipeline workloads (dedup, ferret) lean on hub nodes; canneal and
  // fluidanimate exchange more uniformly at higher load (they are the
  // memory-intensive outliers in PARSEC NoC characterizations).
  static const std::vector<AppModel> models = {
      {"blackscholes", 0.008, 0.50, 0.05, 2, 2.0},
      {"bodytrack", 0.018, 0.35, 0.15, 3, 2.0},
      {"canneal", 0.040, 0.10, 0.10, 2, 3.0},
      {"dedup", 0.025, 0.25, 0.25, 4, 2.0},
      {"ferret", 0.028, 0.20, 0.25, 4, 2.5},
      {"fluidanimate", 0.035, 0.45, 0.05, 2, 1.5},
      {"raytrace", 0.015, 0.30, 0.10, 2, 2.5},
      {"swaptions", 0.006, 0.55, 0.05, 2, 1.5},
      {"vips", 0.022, 0.30, 0.20, 3, 2.0},
      {"x264", 0.030, 0.40, 0.10, 3, 1.5},
  };
  return models;
}

const AppModel& parsec_model(const std::string& name) {
  for (const AppModel& m : parsec_models())
    if (m.name == name) return m;
  XLP_FAIL("unknown PARSEC model: " + name);
}

TrafficMatrix parsec_average_matrix(int n) {
  const auto& models = parsec_models();
  TrafficMatrix avg(n);
  for (const AppModel& m : models) {
    const TrafficMatrix tm = m.traffic_matrix(n);
    for (int src = 0; src < avg.node_count(); ++src)
      for (int dst = 0; dst < avg.node_count(); ++dst)
        if (src != dst)
          avg.add_rate(src, dst,
                       tm.rate(src, dst) /
                           static_cast<double>(models.size()));
  }
  return avg;
}

}  // namespace xlp::traffic
