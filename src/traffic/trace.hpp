#pragma once

#include <iosfwd>
#include <vector>

#include "latency/packet_mix.hpp"
#include "traffic/matrix.hpp"
#include "util/rng.hpp"

namespace xlp::traffic {

/// One packet of a recorded (or generated) workload trace.
struct TracePacket {
  long cycle = 0;  // creation cycle
  int src = 0;
  int dst = 0;
  int bits = 0;

  friend constexpr bool operator==(const TracePacket&,
                                   const TracePacket&) = default;
};

/// An explicit packet trace for trace-driven simulation and for the
/// profile-then-specialize flow of Section 5.6.4 (the paper runs each
/// benchmark once on the baseline mesh to collect traffic statistics; here
/// the profiling run yields a Trace whose empirical rate matrix feeds the
/// application-specific optimizer).
///
/// The text format is one packet per line, `cycle src dst bits`, with `#`
/// comments and a `xlptrace <width> <height> <duration>` header line.
class Trace {
 public:
  /// Square-network trace. Packets must be sorted by cycle (ties allowed);
  /// duration must cover every packet's cycle.
  Trace(int side, long duration_cycles, std::vector<TracePacket> packets);

  /// Rectangular-network trace.
  Trace(int width, int height, long duration_cycles,
        std::vector<TracePacket> packets);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  /// Routers per side; only valid for square traces (throws otherwise).
  [[nodiscard]] int side() const;
  [[nodiscard]] long duration() const noexcept { return duration_; }
  [[nodiscard]] const std::vector<TracePacket>& packets() const noexcept {
    return packets_;
  }

  /// Samples a trace from the Bernoulli process the simulator would use at
  /// this demand (one draw per node per cycle; sizes from the mix).
  static Trace sample(const TrafficMatrix& demand,
                      const latency::PacketMix& mix, long cycles, Rng& rng);

  /// The measured long-run rate matrix: packets per cycle for each pair.
  /// This is the gamma_ij a profiling run observes.
  [[nodiscard]] TrafficMatrix empirical_matrix() const;

  /// Total offered load in packets per node per cycle.
  [[nodiscard]] double offered_per_node_cycle() const;

  void save(std::ostream& os) const;
  static Trace load(std::istream& is);

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  int width_;
  int height_;
  long duration_;
  std::vector<TracePacket> packets_;
};

}  // namespace xlp::traffic
