#pragma once

#include <memory>
#include <vector>

#include "route/directional_paths.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::route {

/// Table-driven dimension-order routing over an ExpressMesh (Section 4.5):
/// a packet first travels within the source row to the turning point (the
/// router sharing the source's row and the destination's column), then within
/// the destination column. Each dimension segment follows the precomputed
/// directional shortest paths, so the whole route is deterministic, minimal
/// under the no-U-turn rule, and deadlock-free.
/// Which dimension a packet finishes first. XY (the paper's default) routes
/// the row segment first; YX the column segment. O1TURN-style oblivious
/// routing picks one of the two per packet and keeps them on disjoint VC
/// classes, which preserves deadlock freedom (each orientation's channel
/// dependency graph is acyclic on its own).
enum class Orientation { kXYFirst, kYXFirst };

class MeshRouting {
 public:
  MeshRouting(const topo::ExpressMesh& mesh, HopWeights weights);

  /// Assembles routing from externally computed per-row / per-column
  /// tables — the fault subsystem's rerouted tables over a degraded
  /// subgraph. `row_paths` needs one entry per row (each of size width),
  /// `col_paths` one per column (each of size height). Tables built this
  /// way may have unreachable pairs; check reachable() before routing.
  MeshRouting(std::vector<DirectionalShortestPaths> row_paths,
              std::vector<DirectionalShortestPaths> col_paths);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  /// True when the tables can deliver src -> dest under the orientation.
  /// Always true for tables built from an intact ExpressMesh; rerouted
  /// tables may have a severed monotone direction.
  [[nodiscard]] bool reachable(int src, int dest,
                               Orientation orientation =
                                   Orientation::kXYFirst) const;

  /// Next router id after `node` on the way to `dest`; `node == dest` is a
  /// precondition violation (the packet should eject instead), and so is an
  /// unreachable pair.
  [[nodiscard]] int next_hop(int node, int dest,
                             Orientation orientation =
                                 Orientation::kXYFirst) const;

  /// Complete router sequence src, ..., dest.
  [[nodiscard]] std::vector<int> path(int src, int dest,
                                      Orientation orientation =
                                          Orientation::kXYFirst) const;

  /// Number of links traversed from src to dest (0 when equal). For
  /// heterogeneous designs the two orientations can differ: XY uses the
  /// source's row and the destination's column, YX the source's column and
  /// the destination's row.
  [[nodiscard]] int hops(int src, int dest,
                         Orientation orientation =
                             Orientation::kXYFirst) const;

  /// Head cost (router + wire cycles) from src to dest under HopWeights,
  /// counting the row segment, the column segment, and nothing else — the
  /// +1 router convention is applied by the latency model, not here.
  [[nodiscard]] double head_cost(int src, int dest,
                                 Orientation orientation =
                                     Orientation::kXYFirst) const;

  /// Shortest-path tables of one row / one column (for inspection/tests).
  [[nodiscard]] const DirectionalShortestPaths& row_paths(int y) const;
  [[nodiscard]] const DirectionalShortestPaths& col_paths(int x) const;

 private:
  int width_;
  int height_;
  std::vector<DirectionalShortestPaths> row_paths_;  // height entries, by y
  std::vector<DirectionalShortestPaths> col_paths_;  // width entries, by x
};

}  // namespace xlp::route
