#pragma once

#include <vector>

#include "topo/row_topology.hpp"

namespace xlp::route {

namespace detail {

/// One relaxation step of the monotone shortest-path DP: candidate path
/// from `i` through neighbor `via` with tail cost/hops `base_cost` /
/// `base_hops`, against the incumbent cell (cur_cost, cur_hops, cur_next).
/// Tie-break: lower cost, then fewer hops, then the longest first hop (take
/// the express link as early as possible — deterministic and keeps packets
/// off local links that shorter-haul traffic needs).
///
/// Shared by the full DP (DirectionalShortestPaths) and the incremental
/// re-evaluation in core::DeltaRowObjective so the two can never disagree
/// on a cell — the delta evaluator's exactness contract depends on it.
template <typename Weights>
inline void relax_monotone(const Weights& weights, int i, int via,
                           double base_cost, int base_hops, double& cur_cost,
                           int& cur_hops, int& cur_next) {
  const int len = via > i ? via - i : i - via;
  const double c = weights.link_cost(len) + base_cost;
  const int h = 1 + base_hops;
  const int cur_len = cur_next > i ? cur_next - i : i - cur_next;
  const bool better =
      c < cur_cost - 1e-12 ||
      (c < cur_cost + 1e-12 &&
       (h < cur_hops || (h == cur_hops && cur_next >= 0 && len > cur_len)));
  if (cur_next < 0 || better) {
    cur_cost = c;
    cur_hops = h;
    cur_next = via;
  }
}

}  // namespace detail

/// Per-hop cost model for within-row paths: traversing a link (a,b) costs
/// `router_cycles + |b-a| * link_cycles_per_unit` (one router pipeline plus
/// a repeated/pipelined wire of |b-a| unit segments, Section 2.2).
struct HopWeights {
  double router_cycles = 3.0;        // Tr: canonical 3-stage router
  double link_cycles_per_unit = 1.0;  // Tl: one cycle per unit-length segment

  [[nodiscard]] double link_cost(int length) const noexcept {
    return router_cycles + link_cycles_per_unit * length;
  }
};

/// Directional all-pairs shortest paths within one row under the paper's
/// deadlock-free routing (Section 4.5.1): packets travel monotonically, so
/// a left-to-right packet may only use links in the rightward direction and
/// never overshoots its target ("no U-turns"). Equivalent to the paper's two
/// Floyd–Warshall passes with the opposite direction's edges set to infinite
/// weight; implemented as a DP over increasing span since the monotone
/// subgraph is a DAG.
///
/// `cost(i,j)` is the head-flit cost of the row segment, `hops(i,j)` the
/// number of links traversed, and `next_hop(i,j)` the router after `i` on
/// the selected path (deterministic; this is what the per-router lookup
/// tables of Section 4.5.2 store).
class DirectionalShortestPaths {
 public:
  DirectionalShortestPaths(const topo::RowTopology& row, HopWeights weights);

  /// Shortest paths over an explicit monotone adjacency: `right[r]` /
  /// `left[r]` are the sorted surviving neighbors of router r in each
  /// direction. Used by the fault subsystem to route around dead links, so
  /// unlike the RowTopology constructor this one tolerates severed
  /// directions: an unreachable pair keeps infinite cost, hops() == -1 and
  /// next_hop() == -1 — check reachable() before following the table.
  DirectionalShortestPaths(int n, const std::vector<std::vector<int>>& right,
                           const std::vector<std::vector<int>>& left,
                           HopWeights weights);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// True when the monotone subgraph still has a path from i to j (always
  /// true for tables built from a RowTopology, whose local links guarantee
  /// connectivity).
  [[nodiscard]] bool reachable(int i, int j) const;

  /// Head cost of the path from i to j; 0 when i == j, infinite when
  /// unreachable.
  [[nodiscard]] double cost(int i, int j) const;
  /// Links traversed from i to j; 0 when i == j, -1 when unreachable.
  [[nodiscard]] int hops(int i, int j) const;
  /// Next router after i on the path to j; j itself when directly linked,
  /// -1 when unreachable. Requires i != j.
  [[nodiscard]] int next_hop(int i, int j) const;

  /// Full router sequence i, ..., j (inclusive). Requires reachable(i, j).
  [[nodiscard]] std::vector<int> path(int i, int j) const;

  /// Average cost over all ordered pairs i != j: the objective that
  /// P̄(n, C) minimizes (uniform pairwise traffic). The averages below are
  /// only meaningful when every pair is reachable (infinities propagate).
  [[nodiscard]] double average_cost() const;

  /// Average over ordered pairs weighted by `weight[i][j]` (flattened i*n+j);
  /// the application-specific objective of Section 5.6.4. Weights must be
  /// non-negative with a positive sum.
  [[nodiscard]] double weighted_average_cost(
      const std::vector<double>& weight) const;

  /// Average hop count over all ordered pairs i != j.
  [[nodiscard]] double average_hops() const;

  /// Largest cost over all pairs (worst-case zero-load row segment).
  [[nodiscard]] double max_cost() const;

 private:
  [[nodiscard]] std::size_t idx(int i, int j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }
  void compute(const std::vector<std::vector<int>>& right,
               const std::vector<std::vector<int>>& left);

  int n_;
  HopWeights weights_;
  std::vector<double> cost_;
  std::vector<int> hops_;
  std::vector<int> next_;
};

}  // namespace xlp::route
