#include "route/mesh_routing.hpp"

#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace xlp::route {

MeshRouting::MeshRouting(const topo::ExpressMesh& mesh, HopWeights weights)
    : width_(mesh.width()), height_(mesh.height()) {
  row_paths_.reserve(static_cast<std::size_t>(height_));
  col_paths_.reserve(static_cast<std::size_t>(width_));
  {
    const obs::ProfileScope rows_scope("route.fw_rows");
    for (int y = 0; y < height_; ++y)
      row_paths_.emplace_back(mesh.row(y), weights);
  }
  {
    const obs::ProfileScope cols_scope("route.fw_cols");
    for (int x = 0; x < width_; ++x)
      col_paths_.emplace_back(mesh.col(x), weights);
  }
}

MeshRouting::MeshRouting(std::vector<DirectionalShortestPaths> row_paths,
                         std::vector<DirectionalShortestPaths> col_paths)
    : width_(0),
      height_(0),
      row_paths_(std::move(row_paths)),
      col_paths_(std::move(col_paths)) {
  XLP_REQUIRE(!row_paths_.empty() && !col_paths_.empty(),
              "routing needs at least one row and one column table");
  width_ = row_paths_.front().size();
  height_ = col_paths_.front().size();
  XLP_REQUIRE(row_paths_.size() == static_cast<std::size_t>(height_) &&
                  col_paths_.size() == static_cast<std::size_t>(width_),
              "need one table per row and per column");
  for (const auto& r : row_paths_)
    XLP_REQUIRE(r.size() == width_, "row tables must all have width entries");
  for (const auto& c : col_paths_)
    XLP_REQUIRE(c.size() == height_,
                "column tables must all have height entries");
}

bool MeshRouting::reachable(int src, int dest, Orientation orientation) const {
  XLP_REQUIRE(src >= 0 && src < width_ * height_ && dest >= 0 &&
                  dest < width_ * height_,
              "node out of range");
  if (src == dest) return true;
  const int sx = src % width_, sy = src / width_;
  const int dx = dest % width_, dy = dest / width_;
  if (orientation == Orientation::kXYFirst) {
    return row_paths_[static_cast<std::size_t>(sy)].reachable(sx, dx) &&
           col_paths_[static_cast<std::size_t>(dx)].reachable(sy, dy);
  }
  return col_paths_[static_cast<std::size_t>(sx)].reachable(sy, dy) &&
         row_paths_[static_cast<std::size_t>(dy)].reachable(sx, dx);
}

int MeshRouting::next_hop(int node, int dest, Orientation orientation) const {
  XLP_REQUIRE(node != dest, "packet at its destination should eject");
  const int nx = node % width_;
  const int ny = node / width_;
  const int dx = dest % width_;
  const int dy = dest / width_;
  const bool row_first = orientation == Orientation::kXYFirst;
  if (row_first ? nx != dx : ny == dy) {
    // Row segment (XY: first while x differs; YX: last, once y matches).
    const int next_x =
        row_paths_[static_cast<std::size_t>(ny)].next_hop(nx, dx);
    XLP_REQUIRE(next_x >= 0,
                "destination unreachable on the degraded row — check "
                "reachable() before routing");
    return ny * width_ + next_x;
  }
  const int next_y = col_paths_[static_cast<std::size_t>(nx)].next_hop(ny, dy);
  XLP_REQUIRE(next_y >= 0,
              "destination unreachable on the degraded column — check "
              "reachable() before routing");
  return next_y * width_ + nx;
}

std::vector<int> MeshRouting::path(int src, int dest,
                                   Orientation orientation) const {
  std::vector<int> out{src};
  int cur = src;
  while (cur != dest) {
    cur = next_hop(cur, dest, orientation);
    out.push_back(cur);
    XLP_CHECK(out.size() <= static_cast<std::size_t>(width_ + height_),
              "dimension-ordered route longer than one row plus one column");
  }
  return out;
}

int MeshRouting::hops(int src, int dest, Orientation orientation) const {
  const int sx = src % width_, sy = src / width_;
  const int dx = dest % width_, dy = dest / width_;
  if (orientation == Orientation::kXYFirst) {
    return row_paths_[static_cast<std::size_t>(sy)].hops(sx, dx) +
           col_paths_[static_cast<std::size_t>(dx)].hops(sy, dy);
  }
  return col_paths_[static_cast<std::size_t>(sx)].hops(sy, dy) +
         row_paths_[static_cast<std::size_t>(dy)].hops(sx, dx);
}

double MeshRouting::head_cost(int src, int dest,
                              Orientation orientation) const {
  const int sx = src % width_, sy = src / width_;
  const int dx = dest % width_, dy = dest / width_;
  if (orientation == Orientation::kXYFirst) {
    return row_paths_[static_cast<std::size_t>(sy)].cost(sx, dx) +
           col_paths_[static_cast<std::size_t>(dx)].cost(sy, dy);
  }
  return col_paths_[static_cast<std::size_t>(sx)].cost(sy, dy) +
         row_paths_[static_cast<std::size_t>(dy)].cost(sx, dx);
}

const DirectionalShortestPaths& MeshRouting::row_paths(int y) const {
  XLP_REQUIRE(y >= 0 && y < height_, "row index out of range");
  return row_paths_[static_cast<std::size_t>(y)];
}

const DirectionalShortestPaths& MeshRouting::col_paths(int x) const {
  XLP_REQUIRE(x >= 0 && x < width_, "column index out of range");
  return col_paths_[static_cast<std::size_t>(x)];
}

}  // namespace xlp::route
