#pragma once

#include <vector>

#include "route/mesh_routing.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::route {

/// A directed channel of the 2D network: the (from -> to) direction of one
/// bidirectional link within a row or a column.
struct Channel {
  int from = 0;  // node id
  int to = 0;    // node id
  friend constexpr bool operator==(const Channel&, const Channel&) = default;
};

/// Channel dependency graph under a concrete routing function [Dally &
/// Seitz]. A dependency (c1 -> c2) exists when some packet, routed by
/// `routing`, holds c1 while requesting c2 (i.e. traverses c2 immediately
/// after c1 on its path). Deadlock freedom of wormhole routing is equivalent
/// to this graph being acyclic.
class ChannelDependencyGraph {
 public:
  /// Builds the dependency graph for one routing orientation. O1TURN-style
  /// mixed routing keeps the two orientations on disjoint VC classes, so
  /// its deadlock freedom follows from each orientation's graph being
  /// acyclic separately.
  ChannelDependencyGraph(const topo::ExpressMesh& mesh,
                         const MeshRouting& routing,
                         Orientation orientation = Orientation::kXYFirst);

  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] std::size_t dependency_count() const noexcept;

  /// True when the dependency graph contains a cycle (a deadlock risk).
  [[nodiscard]] bool has_cycle() const;

  [[nodiscard]] const std::vector<Channel>& channels() const noexcept {
    return channels_;
  }

 private:
  std::vector<Channel> channels_;
  std::vector<std::vector<int>> adj_;  // dependency edges channel -> channel
};

}  // namespace xlp::route
