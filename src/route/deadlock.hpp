#pragma once

#include <string>
#include <vector>

#include "route/mesh_routing.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::route {

/// A directed channel of the 2D network: the (from -> to) direction of one
/// bidirectional link within a row or a column.
struct Channel {
  int from = 0;  // node id
  int to = 0;    // node id
  friend constexpr bool operator==(const Channel&, const Channel&) = default;
};

/// "12->4 -> 4->5 -> ..." rendering of a channel sequence, for diagnostics
/// (cycle witnesses in particular).
[[nodiscard]] std::string describe_channels(const std::vector<Channel>& seq);

/// Channel dependency graph under a concrete routing function [Dally &
/// Seitz]. A dependency (c1 -> c2) exists when some packet, routed by
/// `routing`, holds c1 while requesting c2 (i.e. traverses c2 immediately
/// after c1 on its path). Deadlock freedom of wormhole routing is equivalent
/// to this graph being acyclic.
class ChannelDependencyGraph {
 public:
  /// Builds the dependency graph for one routing orientation. O1TURN-style
  /// mixed routing keeps the two orientations on disjoint VC classes, so
  /// its deadlock freedom follows from each orientation's graph being
  /// acyclic separately. Pairs the routing reports unreachable (possible
  /// for rerouted tables over a degraded subgraph) contribute no
  /// dependencies — the fault layer reports them separately.
  ChannelDependencyGraph(const topo::ExpressMesh& mesh,
                         const MeshRouting& routing,
                         Orientation orientation = Orientation::kXYFirst);

  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] std::size_t dependency_count() const noexcept;

  /// True when the dependency graph contains a cycle (a deadlock risk).
  [[nodiscard]] bool has_cycle() const;

  /// One witness cycle as its channel sequence c0 -> c1 -> ... (the last
  /// element depends back on the first); empty when the graph is acyclic.
  /// has_cycle() == !find_cycle().empty(), but the witness lets rerouting
  /// failures and test diagnostics name the offending channels instead of
  /// reporting a bare boolean.
  [[nodiscard]] std::vector<Channel> find_cycle() const;

  [[nodiscard]] const std::vector<Channel>& channels() const noexcept {
    return channels_;
  }

 private:
  std::vector<Channel> channels_;
  std::vector<std::vector<int>> adj_;  // dependency edges channel -> channel
};

}  // namespace xlp::route
