#include "route/deadlock.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace xlp::route {

std::string describe_channels(const std::vector<Channel>& seq) {
  std::ostringstream os;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) os << " -> ";
    os << seq[i].from << "->" << seq[i].to;
  }
  return os.str();
}

ChannelDependencyGraph::ChannelDependencyGraph(const topo::ExpressMesh& mesh,
                                               const MeshRouting& routing,
                                               Orientation orientation) {
  const int w = mesh.width();
  const int h = mesh.height();

  // Enumerate every directed channel of the design. Parallel duplicate
  // links collapse onto one channel here: duplicates only add capacity and
  // cannot introduce new dependencies.
  std::map<std::pair<int, int>, int> channel_id;
  auto add_channel = [&](int from, int to) {
    const auto key = std::make_pair(from, to);
    if (channel_id.emplace(key, static_cast<int>(channels_.size())).second)
      channels_.push_back({from, to});
  };
  for (int y = 0; y < h; ++y)
    for (const topo::RowLink& link : mesh.row(y).all_links()) {
      add_channel(y * w + link.lo, y * w + link.hi);
      add_channel(y * w + link.hi, y * w + link.lo);
    }
  for (int x = 0; x < w; ++x)
    for (const topo::RowLink& link : mesh.col(x).all_links()) {
      add_channel(link.lo * w + x, link.hi * w + x);
      add_channel(link.hi * w + x, link.lo * w + x);
    }

  adj_.assign(channels_.size(), {});

  // Walk every source/destination route and record consecutive-channel
  // dependencies.
  const int nodes = mesh.node_count();
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      if (src == dst) continue;
      if (!routing.reachable(src, dst, orientation)) continue;
      const std::vector<int> path = routing.path(src, dst, orientation);
      int prev_channel = -1;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto it = channel_id.find({path[i], path[i + 1]});
        XLP_CHECK(it != channel_id.end(),
                  "routing used a link that is not in the topology");
        const int cur = it->second;
        if (prev_channel >= 0) {
          auto& edges = adj_[static_cast<std::size_t>(prev_channel)];
          if (std::find(edges.begin(), edges.end(), cur) == edges.end())
            edges.push_back(cur);
        }
        prev_channel = cur;
      }
    }
  }
}

std::size_t ChannelDependencyGraph::dependency_count() const noexcept {
  std::size_t total = 0;
  for (const auto& edges : adj_) total += edges.size();
  return total;
}

bool ChannelDependencyGraph::has_cycle() const { return !find_cycle().empty(); }

std::vector<Channel> ChannelDependencyGraph::find_cycle() const {
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> mark(channels_.size(), Mark::kWhite);

  // Iterative DFS with explicit stack of (node, next-edge-index); the stack
  // always holds the current gray path, so when an edge closes back onto a
  // gray node the witness is the stack suffix starting at that node.
  std::vector<std::pair<int, std::size_t>> stack;
  for (int start = 0; start < static_cast<int>(channels_.size()); ++start) {
    if (mark[static_cast<std::size_t>(start)] != Mark::kWhite) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    mark[static_cast<std::size_t>(start)] = Mark::kGray;
    while (!stack.empty()) {
      auto& [node, edge_idx] = stack.back();
      const auto& edges = adj_[static_cast<std::size_t>(node)];
      if (edge_idx < edges.size()) {
        const int next = edges[edge_idx++];
        const auto next_mark = mark[static_cast<std::size_t>(next)];
        if (next_mark == Mark::kGray) {
          std::vector<Channel> cycle;
          auto it = std::find_if(stack.begin(), stack.end(),
                                 [next](const auto& e) {
                                   return e.first == next;
                                 });
          XLP_CHECK(it != stack.end(), "gray node must be on the DFS path");
          for (; it != stack.end(); ++it)
            cycle.push_back(channels_[static_cast<std::size_t>(it->first)]);
          return cycle;
        }
        if (next_mark == Mark::kWhite) {
          mark[static_cast<std::size_t>(next)] = Mark::kGray;
          stack.emplace_back(next, 0);
        }
      } else {
        mark[static_cast<std::size_t>(node)] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace xlp::route
