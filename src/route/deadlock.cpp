#include "route/deadlock.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace xlp::route {

ChannelDependencyGraph::ChannelDependencyGraph(const topo::ExpressMesh& mesh,
                                               const MeshRouting& routing,
                                               Orientation orientation) {
  const int w = mesh.width();
  const int h = mesh.height();

  // Enumerate every directed channel of the design. Parallel duplicate
  // links collapse onto one channel here: duplicates only add capacity and
  // cannot introduce new dependencies.
  std::map<std::pair<int, int>, int> channel_id;
  auto add_channel = [&](int from, int to) {
    const auto key = std::make_pair(from, to);
    if (channel_id.emplace(key, static_cast<int>(channels_.size())).second)
      channels_.push_back({from, to});
  };
  for (int y = 0; y < h; ++y)
    for (const topo::RowLink& link : mesh.row(y).all_links()) {
      add_channel(y * w + link.lo, y * w + link.hi);
      add_channel(y * w + link.hi, y * w + link.lo);
    }
  for (int x = 0; x < w; ++x)
    for (const topo::RowLink& link : mesh.col(x).all_links()) {
      add_channel(link.lo * w + x, link.hi * w + x);
      add_channel(link.hi * w + x, link.lo * w + x);
    }

  adj_.assign(channels_.size(), {});

  // Walk every source/destination route and record consecutive-channel
  // dependencies.
  const int nodes = mesh.node_count();
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      if (src == dst) continue;
      const std::vector<int> path = routing.path(src, dst, orientation);
      int prev_channel = -1;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto it = channel_id.find({path[i], path[i + 1]});
        XLP_CHECK(it != channel_id.end(),
                  "routing used a link that is not in the topology");
        const int cur = it->second;
        if (prev_channel >= 0) {
          auto& edges = adj_[static_cast<std::size_t>(prev_channel)];
          if (std::find(edges.begin(), edges.end(), cur) == edges.end())
            edges.push_back(cur);
        }
        prev_channel = cur;
      }
    }
  }
}

std::size_t ChannelDependencyGraph::dependency_count() const noexcept {
  std::size_t total = 0;
  for (const auto& edges : adj_) total += edges.size();
  return total;
}

bool ChannelDependencyGraph::has_cycle() const {
  enum class Mark : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> mark(channels_.size(), Mark::kWhite);

  // Iterative DFS with explicit stack of (node, next-edge-index).
  std::vector<std::pair<int, std::size_t>> stack;
  for (int start = 0; start < static_cast<int>(channels_.size()); ++start) {
    if (mark[static_cast<std::size_t>(start)] != Mark::kWhite) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    mark[static_cast<std::size_t>(start)] = Mark::kGray;
    while (!stack.empty()) {
      auto& [node, edge_idx] = stack.back();
      const auto& edges = adj_[static_cast<std::size_t>(node)];
      if (edge_idx < edges.size()) {
        const int next = edges[edge_idx++];
        const auto next_mark = mark[static_cast<std::size_t>(next)];
        if (next_mark == Mark::kGray) return true;
        if (next_mark == Mark::kWhite) {
          mark[static_cast<std::size_t>(next)] = Mark::kGray;
          stack.emplace_back(next, 0);
        }
      } else {
        mark[static_cast<std::size_t>(node)] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace xlp::route
