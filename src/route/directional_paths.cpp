#include "route/directional_paths.hpp"

#include <algorithm>
#include <limits>

#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace xlp::route {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

DirectionalShortestPaths::DirectionalShortestPaths(
    const topo::RowTopology& row, HopWeights weights)
    : n_(row.size()),
      weights_(weights),
      cost_(static_cast<std::size_t>(n_) * n_, kInf),
      hops_(static_cast<std::size_t>(n_) * n_, -1),
      next_(static_cast<std::size_t>(n_) * n_, -1) {
  // Adjacency by direction. neighbors_right/left are sorted and de-duped.
  std::vector<std::vector<int>> right(static_cast<std::size_t>(n_));
  std::vector<std::vector<int>> left(static_cast<std::size_t>(n_));
  for (int r = 0; r < n_; ++r) {
    right[r] = row.neighbors_right(r);
    left[r] = row.neighbors_left(r);
  }
  compute(right, left);

  // Local links guarantee connectivity in both directions.
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j)
      XLP_CHECK(cost_[idx(i, j)] < kInf,
                "row with local links must be fully connected");
}

DirectionalShortestPaths::DirectionalShortestPaths(
    int n, const std::vector<std::vector<int>>& right,
    const std::vector<std::vector<int>>& left, HopWeights weights)
    : n_(n),
      weights_(weights),
      cost_(static_cast<std::size_t>(n_) * n_, kInf),
      hops_(static_cast<std::size_t>(n_) * n_, -1),
      next_(static_cast<std::size_t>(n_) * n_, -1) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
  XLP_REQUIRE(right.size() == static_cast<std::size_t>(n) &&
                  left.size() == static_cast<std::size_t>(n),
              "adjacency lists must have one entry per router");
  compute(right, left);
}

void DirectionalShortestPaths::compute(
    const std::vector<std::vector<int>>& right,
    const std::vector<std::vector<int>>& left) {
  const obs::ProfileScope profile_scope("route.monotone_sp");
  for (int i = 0; i < n_; ++i) {
    cost_[idx(i, i)] = 0.0;
    hops_[idx(i, i)] = 0;
  }

  // Monotone paths form a DAG in each direction; fill by increasing span.
  // The relaxation (and its tie-break) lives in detail::relax_monotone,
  // shared with the incremental evaluator.
  auto relax = [&](int i, int j, int via, double base_cost, int base_hops) {
    detail::relax_monotone(weights_, i, via, base_cost, base_hops,
                           cost_[idx(i, j)], hops_[idx(i, j)],
                           next_[idx(i, j)]);
  };

  for (int span = 1; span < n_; ++span) {
    for (int i = 0; i + span < n_; ++i) {
      const int j = i + span;
      // Rightward: i -> j via any right neighbor k <= j.
      for (int k : right[i]) {
        if (k > j) break;
        if (cost_[idx(k, j)] < kInf) relax(i, j, k, cost_[idx(k, j)],
                                           hops_[idx(k, j)]);
      }
      // Leftward: j -> i via any left neighbor k >= i.
      for (int k : left[j]) {
        if (k < i) continue;
        if (cost_[idx(k, i)] < kInf) relax(j, i, k, cost_[idx(k, i)],
                                           hops_[idx(k, i)]);
      }
    }
  }
}

bool DirectionalShortestPaths::reachable(int i, int j) const {
  XLP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  return cost_[idx(i, j)] < kInf;
}

double DirectionalShortestPaths::cost(int i, int j) const {
  XLP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  return cost_[idx(i, j)];
}

int DirectionalShortestPaths::hops(int i, int j) const {
  XLP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  return hops_[idx(i, j)];
}

int DirectionalShortestPaths::next_hop(int i, int j) const {
  XLP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  XLP_REQUIRE(i != j, "no next hop from a router to itself");
  return next_[idx(i, j)];
}

std::vector<int> DirectionalShortestPaths::path(int i, int j) const {
  XLP_REQUIRE(i >= 0 && i < n_ && j >= 0 && j < n_, "index out of range");
  XLP_REQUIRE(cost_[idx(i, j)] < kInf,
              "no surviving monotone path between these routers");
  std::vector<int> out{i};
  int cur = i;
  while (cur != j) {
    cur = next_hop(cur, j);
    out.push_back(cur);
    XLP_CHECK(out.size() <= static_cast<std::size_t>(n_),
              "routing table produced a path longer than the row");
  }
  return out;
}

// Both averages accumulate one partial sum per source row and then sum the
// row partials. The two-level order matters twice over: the independent row
// chains pipeline on the FP units instead of serializing 240+ dependent
// additions, and core::DeltaRowObjective reproduces the exact same bits by
// refreshing only the row partials its incremental update touched (a row
// whose cells kept their values bitwise yields a bitwise-identical
// partial). Changing the summation order here changes last-ULP results —
// keep the two implementations in lockstep.
double DirectionalShortestPaths::average_cost() const {
  double total = 0.0;
  for (int i = 0; i < n_; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * n_;
    double row = 0.0;
    for (int j = 0; j < i; ++j) row += cost_[base + j];
    for (int j = i + 1; j < n_; ++j) row += cost_[base + j];
    total += row;
  }
  return total / (static_cast<double>(n_) * (n_ - 1));
}

double DirectionalShortestPaths::weighted_average_cost(
    const std::vector<double>& weight) const {
  XLP_REQUIRE(weight.size() == cost_.size(),
              "weight matrix must be n*n, flattened row-major");
  double total = 0.0;
  double wsum = 0.0;
  for (int i = 0; i < n_; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * n_;
    double row_total = 0.0;
    double row_wsum = 0.0;
    for (int j = 0; j < n_; ++j) {
      const double w = weight[base + j];
      XLP_REQUIRE(w >= 0.0, "weights must be non-negative");
      if (i == j) continue;
      row_total += w * cost_[base + j];
      row_wsum += w;
    }
    total += row_total;
    wsum += row_wsum;
  }
  XLP_REQUIRE(wsum > 0.0, "weights must have a positive sum");
  return total / wsum;
}

double DirectionalShortestPaths::average_hops() const {
  long total = 0;
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j)
      if (i != j) total += hops_[idx(i, j)];
  return static_cast<double>(total) /
         (static_cast<double>(n_) * (n_ - 1));
}

double DirectionalShortestPaths::max_cost() const {
  return *std::max_element(cost_.begin(), cost_.end());
}

}  // namespace xlp::route
