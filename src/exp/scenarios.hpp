#pragma once

#include <string>
#include <vector>

#include "core/c_sweep.hpp"
#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "traffic/app_models.hpp"
#include "traffic/trace.hpp"

namespace xlp::exp {

/// A named design point, for tables comparing fixed topologies against the
/// optimized placements.
struct NamedDesign {
  std::string name;
  topo::ExpressMesh design;
};

/// The paper's fixed competitors: the baseline mesh and the hybrid
/// flattened butterfly (Section 5.1, schemes 1 and 2).
[[nodiscard]] std::vector<NamedDesign> fixed_designs(int n);

/// Table 1's annealing schedule.
[[nodiscard]] core::SaParams paper_sa_params();

/// Scale factor for experiment budgets: reads the environment variable
/// XLP_BENCH_SCALE (default 1.0). Values below 1 shrink SA budgets and
/// simulated cycles for quick smoke runs; above 1 lengthens them toward the
/// paper's full budgets.
[[nodiscard]] double bench_scale();

/// Default sweep options used by the reproduction benches: D&C_SA with
/// Table 1's schedule (scaled by bench_scale()), PARSEC-typical latency
/// parameters, reporting weighted by the PARSEC-average traffic matrix.
[[nodiscard]] core::SweepOptions default_sweep_options(int n);

/// Convenience: solves the full general-purpose flow for one network size
/// and returns the sweep (one point per feasible C).
struct SolvedSweep {
  std::vector<core::SweepPoint> points;
  std::size_t best = 0;
};
[[nodiscard]] SolvedSweep solve_general_purpose(int n, core::Solver solver,
                                                std::uint64_t seed);

/// Runs the flit-level simulator for a design under a demand matrix.
[[nodiscard]] sim::SimStats simulate_design(const topo::ExpressMesh& design,
                                            const traffic::TrafficMatrix& demand,
                                            const sim::SimConfig& config);

/// SimConfig with cycle counts scaled by bench_scale().
[[nodiscard]] sim::SimConfig default_sim_config(std::uint64_t seed = 1);

/// Trace-driven run: replays every packet of the trace on the design (no
/// stochastic background traffic) and measures all of them. The
/// measurement window covers the whole trace; drain defaults to the trace
/// duration plus a margin.
[[nodiscard]] sim::SimStats replay_trace(const topo::ExpressMesh& design,
                                         const traffic::Trace& trace,
                                         const sim::SimConfig& base_config);

/// The profiling half of Section 5.6.4's flow: sample a trace of the given
/// workload, replay it on the baseline mesh (the profiling platform), and
/// return the observed rate matrix together with the profiling stats.
struct ProfileResult {
  traffic::TrafficMatrix observed;
  sim::SimStats stats;
};
[[nodiscard]] ProfileResult profile_on_mesh(const traffic::TrafficMatrix& demand,
                                            long cycles, std::uint64_t seed);

/// Measured use of one vertical cross-section (between columns `cut` and
/// `cut+1`), per direction, from a simulation's per-channel flit counts.
/// Supports Section 5.4's analysis: utilization = flits carried / cycles /
/// channels; capacity in bits = channels * flit width.
struct CutUse {
  int channels = 0;            // row channels crossing the cut, one direction
  double capacity_bits_per_cycle = 0.0;
  double used_bits_per_cycle = 0.0;
  [[nodiscard]] double utilization() const noexcept {
    return capacity_bits_per_cycle > 0.0
               ? used_bits_per_cycle / capacity_bits_per_cycle
               : 0.0;
  }
};
[[nodiscard]] CutUse vertical_cut_use(const sim::Network& network,
                                      const sim::SimStats& stats, int cut,
                                      bool rightward);

/// Prints a stderr warning when the run did not drain (the network was
/// past saturation, so its reported latencies are lower bounds rather than
/// steady-state values). Returns stats.drained so call sites can branch on
/// it. Every CLI/bench driver that reports simulated latency should route
/// its stats through this instead of silently printing them.
bool warn_if_undrained(const sim::SimStats& stats, const std::string& context);

}  // namespace xlp::exp
