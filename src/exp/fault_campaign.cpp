#include "exp/fault_campaign.hpp"

#include <algorithm>

#include "core/drivers.hpp"
#include "exp/scenarios.hpp"
#include "fault/model.hpp"
#include "fault/objective.hpp"
#include "fault/reroute.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace xlp::exp {

namespace {

const char* policy_name(sim::FaultPolicy policy) {
  return policy == sim::FaultPolicy::kDrainThenSwap ? "drain_then_swap"
                                                    : "drop_retransmit";
}

}  // namespace

FaultCampaignResult run_fault_campaign(const FaultCampaignConfig& config) {
  XLP_REQUIRE(config.n >= 2, "need at least a 2x2 network");
  XLP_REQUIRE(config.trials >= 1, "need at least one trial");
  XLP_REQUIRE(config.kill_links >= 1, "need at least one link to kill");
  XLP_REQUIRE(config.fault_cycle >= 0, "fault cycle must be non-negative");
  XLP_REQUIRE(config.load > 0.0, "need a positive load");
  XLP_REQUIRE(config.max_retries >= 0, "retry budget must be non-negative");
  XLP_REQUIRE(
      config.reliability_weight >= 0.0 && config.reliability_weight <= 1.0,
      "reliability weight must be in [0, 1]");

  const route::HopWeights weights{};
  const core::SaParams sa = paper_sa_params().with_moves(
      std::max<long>(100, static_cast<long>(10000 * bench_scale())));

  // The four competitors. The optimized placements are solved here so the
  // campaign is self-contained and deterministic.
  std::vector<NamedDesign> designs = fixed_designs(config.n);
  {
    const core::RowObjective objective(config.n, weights);
    Rng rng(config.seed ^ 0x5ac1a11eULL);
    const core::PlacementResult solved =
        core::solve_dcsa(objective, config.link_limit, sa, rng);
    designs.push_back(
        {"DC_SA", topo::make_design(solved.placement, config.link_limit)});
  }
  {
    core::RowObjective objective = fault::make_reliability_objective(
        config.n, weights, config.reliability_weight);
    Rng rng(config.seed ^ 0x5ac1a11eULL);  // same stream: paired comparison
    const core::PlacementResult solved =
        core::solve_dcsa(objective, config.link_limit, sa, rng);
    designs.push_back(
        {"DC_SA_rel", topo::make_design(solved.placement, config.link_limit)});
  }

  const traffic::TrafficMatrix demand = traffic::TrafficMatrix::from_pattern(
      traffic::Pattern::kUniformRandom, config.n, config.load);

  // Every simulation cell — each design's fault-free baseline and each of
  // its trials — is independent: trials are explicitly seeded from the
  // config (never from a shared advancing stream), so the flattened cell
  // grid can run on the pool in any order and the merged result is
  // byte-identical to the sequential one. Cell c maps to design c/(T+1);
  // sub-index 0 is the baseline, 1..T are the trials.
  const long per_design = static_cast<long>(config.trials) + 1;
  const long cells = static_cast<long>(designs.size()) * per_design;
  std::vector<sim::SimStats> baselines(designs.size());
  std::vector<std::vector<FaultTrialResult>> trials(
      designs.size(),
      std::vector<FaultTrialResult>(static_cast<std::size_t>(config.trials)));

  int workers = std::min(util::resolve_thread_count(config.threads),
                         static_cast<int>(cells));
  // A shared trace sink is thread-safe but would interleave events in
  // scheduling order; keep the event stream deterministic instead.
  if (config.trace != nullptr) workers = 1;
  util::ThreadPool pool(workers);
  pool.parallel_for(cells, [&](long c) {
    const std::size_t di = static_cast<std::size_t>(c / per_design);
    const long sub = c % per_design;
    const NamedDesign& named = designs[di];

    sim::SimConfig sim_config =
        default_sim_config(config.seed + static_cast<std::uint64_t>(di));
    sim_config.trace = config.trace;

    if (sub == 0) {
      baselines[di] = simulate_design(named.design, demand, sim_config);
      return;
    }
    const long t = sub - 1;
    // Explicit per-trial seeding keeps the sampled fault independent of
    // everything the solvers or simulators drew.
    Rng trial_rng(config.seed * 1000003ULL +
                  static_cast<std::uint64_t>(di) * 1009ULL +
                  static_cast<std::uint64_t>(t));
    const fault::FaultSet faults =
        fault::sample_k_links(named.design, config.kill_links, trial_rng);

    FaultTrialResult trial;
    trial.faults = faults.to_string();
    trial.unreachable_pairs = static_cast<long>(
        fault::reroute(named.design, faults, weights).unreachable_xy.size());

    sim::SimConfig degraded_config = sim_config;
    degraded_config.faults.policy = config.policy;
    degraded_config.faults.max_retries = config.max_retries;
    degraded_config.faults.events.push_back(
        {config.fault_cycle, faults, config.recover_cycle});
    const sim::SimStats stats =
        simulate_design(named.design, demand, degraded_config);

    trial.drained = stats.drained;
    trial.reroutes = stats.reroutes;
    trial.dropped = stats.packets_dropped;
    trial.retransmitted = stats.packets_retransmitted;
    trial.lost = stats.packets_lost;
    trial.unroutable = stats.packets_unroutable;
    if (stats.packets_finished > 0) trial.avg_latency = stats.avg_latency;
    trials[di][static_cast<std::size_t>(t)] = std::move(trial);
  });

  // Merge in design order after the pool joins: aggregates, the JSON dump,
  // and the undrained-baseline warnings all come out in a fixed order.
  FaultCampaignResult result;
  result.config = config;
  for (std::size_t di = 0; di < designs.size(); ++di) {
    warn_if_undrained(baselines[di], designs[di].name + " baseline");
    FaultDesignResult out;
    out.name = designs[di].name;
    out.baseline_latency = baselines[di].avg_latency;

    double degraded_sum = 0.0;
    int degraded_count = 0;
    for (FaultTrialResult& trial : trials[di]) {
      if (trial.avg_latency >= 0.0) {
        degraded_sum += trial.avg_latency;
        ++degraded_count;
        out.degraded_worst = std::max(out.degraded_worst, trial.avg_latency);
      }
      out.lost_total += trial.lost;
      out.unroutable_total += trial.unroutable;
      out.trials.push_back(std::move(trial));
    }
    if (degraded_count > 0) out.degraded_mean = degraded_sum / degraded_count;
    result.designs.push_back(std::move(out));
  }
  return result;
}

obs::Json FaultCampaignResult::to_json() const {
  obs::Json designs_json = obs::Json::array();
  for (const FaultDesignResult& d : designs) {
    obs::Json trials_json = obs::Json::array();
    for (const FaultTrialResult& t : d.trials) {
      trials_json.push(obs::Json::object()
                           .set("faults", t.faults)
                           .set("avg_latency", t.avg_latency)
                           .set("drained", t.drained)
                           .set("reroutes", t.reroutes)
                           .set("dropped", t.dropped)
                           .set("retransmitted", t.retransmitted)
                           .set("lost", t.lost)
                           .set("unroutable", t.unroutable)
                           .set("unreachable_pairs", t.unreachable_pairs));
    }
    designs_json.push(obs::Json::object()
                          .set("name", d.name)
                          .set("baseline_latency", d.baseline_latency)
                          .set("degraded_mean", d.degraded_mean)
                          .set("degraded_worst", d.degraded_worst)
                          .set("lost_total", d.lost_total)
                          .set("unroutable_total", d.unroutable_total)
                          .set("trials", std::move(trials_json)));
  }
  // No wall-clock fields anywhere: the dump is byte-identical across runs
  // with the same config (the determinism test relies on this).
  return obs::Json::object()
      .set("config",
           obs::Json::object()
               .set("n", config.n)
               .set("link_limit", config.link_limit)
               .set("kill_links", config.kill_links)
               .set("trials", config.trials)
               .set("fault_cycle", config.fault_cycle)
               .set("recover_cycle", config.recover_cycle)
               .set("load", config.load)
               .set("policy", policy_name(config.policy))
               .set("max_retries", config.max_retries)
               .set("reliability_weight", config.reliability_weight)
               .set("seed", static_cast<long>(config.seed)))
      .set("designs", std::move(designs_json));
}

}  // namespace xlp::exp
