#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/config.hpp"

namespace xlp::obs {
class TraceSink;
}

namespace xlp::exp {

/// Monte Carlo resilience campaign: for each competing design (Mesh, HFB,
/// D&C_SA, and a reliability-aware D&C_SA), sample random link failures,
/// inject them mid-run, and measure the degraded latency after rerouting.
struct FaultCampaignConfig {
  int n = 8;              // routers per side
  int link_limit = 4;     // C for the optimized designs
  int kill_links = 1;     // links killed per trial (express when available)
  int trials = 10;        // fault samples per design
  long fault_cycle = 2000;    // cycle the fault strikes (0 = before traffic)
  long recover_cycle = -1;    // optional recovery (-1 = permanent)
  double load = 0.02;         // packets/node/cycle, uniform random traffic
  sim::FaultPolicy policy = sim::FaultPolicy::kDropRetransmit;
  int max_retries = 3;  // retransmit budget under kDropRetransmit
  /// Blend weight of the degraded-latency term in the reliability-aware
  /// D&C_SA objective.
  double reliability_weight = 0.3;
  std::uint64_t seed = 1;
  /// Pool workers for the simulation cells (per-design baselines and
  /// trials are all independent: every trial is explicitly seeded from
  /// `seed`). 0 = util::default_thread_count(); capped by the cell count.
  /// The campaign result — including its JSON dump — is byte-identical
  /// for any thread count. Forced to 1 when `trace` is set so the trace
  /// event order stays deterministic too.
  int threads = 0;
  /// Forwarded into every simulation (fault.injected / fault.rerouted
  /// events land here); null for silent runs.
  obs::TraceSink* trace = nullptr;
};

/// One sampled-fault trial on one design.
struct FaultTrialResult {
  std::string faults;          // sampled fault set, human-readable
  double avg_latency = -1.0;   // degraded average latency; -1 if nothing
                               // finished
  bool drained = false;
  long reroutes = 0;
  long dropped = 0;
  long retransmitted = 0;
  long lost = 0;
  long unroutable = 0;
  long unreachable_pairs = 0;  // analytic: severed (src,dst) pairs under XY
};

struct FaultDesignResult {
  std::string name;
  double baseline_latency = 0.0;  // fault-free run, same traffic and seed
  double degraded_mean = -1.0;    // mean over trials that finished packets
  double degraded_worst = -1.0;
  long lost_total = 0;
  long unroutable_total = 0;
  std::vector<FaultTrialResult> trials;
};

struct FaultCampaignResult {
  FaultCampaignConfig config;
  std::vector<FaultDesignResult> designs;

  /// Deterministic JSON (no wall-clock fields): byte-identical across runs
  /// with the same config.
  [[nodiscard]] obs::Json to_json() const;
};

/// Runs the campaign. Deterministic given the config: all randomness is
/// forked from `config.seed`. Shared by `xlp faults`, bench/fault_campaign
/// and the determinism test.
[[nodiscard]] FaultCampaignResult run_fault_campaign(
    const FaultCampaignConfig& config);

}  // namespace xlp::exp
