#include "exp/scenarios.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runctl/control.hpp"
#include "util/check.hpp"

namespace xlp::exp {

std::vector<NamedDesign> fixed_designs(int n) {
  return {{"Mesh", topo::make_mesh(n)}, {"HFB", topo::make_hfb(n)}};
}

core::SaParams paper_sa_params() {
  return core::SaParams{};  // Table 1 values are the defaults
}

double bench_scale() {
  if (const char* env = std::getenv("XLP_BENCH_SCALE")) {
    const double value = std::atof(env);
    if (value > 0.0) return value;
  }
  return 1.0;
}

core::SweepOptions default_sweep_options(int n) {
  core::SweepOptions options;
  options.sa = paper_sa_params().with_moves(
      std::max<long>(100, static_cast<long>(10000 * bench_scale())));
  options.latency = latency::LatencyParams::parsec_typical();
  options.report_traffic = traffic::parsec_average_matrix(n);
  // options.threads stays 0: sweeps driven through here (benches, CLI,
  // tests) inherit --threads / XLP_THREADS via util::default_thread_count.
  return options;
}

SolvedSweep solve_general_purpose(int n, core::Solver solver,
                                  std::uint64_t seed) {
  core::SweepOptions options = default_sweep_options(n);
  options.solver = solver;
  Rng rng(seed);
  SolvedSweep solved;
  solved.points = core::sweep_link_limits(n, options, rng);
  solved.best = core::best_point(solved.points);
  return solved;
}

sim::SimStats simulate_design(const topo::ExpressMesh& design,
                              const traffic::TrafficMatrix& demand,
                              const sim::SimConfig& config) {
  const sim::Network network(design, route::HopWeights{});
  sim::Simulator simulator(network, demand, config);
  return simulator.run();
}

sim::SimStats replay_trace(const topo::ExpressMesh& design,
                           const traffic::Trace& trace,
                           const sim::SimConfig& base_config) {
  sim::SimConfig config = base_config;
  config.warmup_cycles = 0;
  config.measure_cycles = trace.duration();
  config.drain_cycles = trace.duration() + 10000;

  const sim::Network network(design, route::HopWeights{});
  sim::Simulator simulator(
      network, traffic::TrafficMatrix(design.width(), design.height()),
      config);
  for (const traffic::TracePacket& p : trace.packets())
    simulator.schedule_packet(p.src, p.dst, p.bits, p.cycle);
  return simulator.run();
}

ProfileResult profile_on_mesh(const traffic::TrafficMatrix& demand,
                              long cycles, std::uint64_t seed) {
  Rng rng(seed);
  const traffic::Trace trace = traffic::Trace::sample(
      demand, latency::PacketMix::paper_default(), cycles, rng);
  const auto mesh = topo::make_rect_mesh(demand.width(), demand.height());
  sim::SimStats stats = replay_trace(mesh, trace, sim::SimConfig{});
  return {trace.empirical_matrix(), std::move(stats)};
}

CutUse vertical_cut_use(const sim::Network& network,
                        const sim::SimStats& stats, int cut, bool rightward) {
  const int w = network.width();
  XLP_REQUIRE(cut >= 0 && cut < w - 1, "cut index out of range");
  XLP_REQUIRE(stats.channel_flits.size() == network.channels().size(),
              "stats do not belong to this network");
  XLP_REQUIRE(stats.activity.measured_cycles > 0, "no measured cycles");

  CutUse use;
  for (std::size_t c = 0; c < network.channels().size(); ++c) {
    const auto& ch = network.channels()[c];
    if (ch.src_router / w != ch.dst_router / w) continue;  // column channel
    const int sx = ch.src_router % w;
    const int dx = ch.dst_router % w;
    const bool crosses = rightward ? (sx <= cut && cut < dx)
                                   : (dx <= cut && cut < sx);
    if (!crosses) continue;
    ++use.channels;
    use.used_bits_per_cycle +=
        static_cast<double>(stats.channel_flits[c]) * network.flit_bits() /
        static_cast<double>(stats.activity.measured_cycles);
  }
  use.capacity_bits_per_cycle =
      static_cast<double>(use.channels) * network.flit_bits();
  return use;
}

bool warn_if_undrained(const sim::SimStats& stats,
                       const std::string& context) {
  if (stats.drained) return true;
  const long in_flight = stats.packets_offered - stats.packets_finished;
  if (stats.status != runctl::RunStatus::kCompleted) {
    // The run was cut short by a deadline or an interrupt: undrained
    // packets are expected, not a saturation diagnosis — keep the noise
    // level down and just note the early stop.
    std::fprintf(stderr,
                 "note: %s: run stopped early (%s) with %ld of %ld measured "
                 "packets still in flight; statistics cover the simulated "
                 "prefix only\n",
                 context.c_str(), runctl::to_string(stats.status), in_flight,
                 stats.packets_offered);
    return false;
  }
  if (stats.packets_lost > 0 || stats.packets_unroutable > 0) {
    // Faults, not saturation: packets were purged with retries exhausted or
    // refused because no surviving route existed.
    std::fprintf(stderr,
                 "WARNING: %s: %ld of %ld measured packets never drained "
                 "(%ld lost to faults, %ld unroutable; last ejection at "
                 "cycle %ld) — losses come from severed routes, not "
                 "saturation\n",
                 context.c_str(), in_flight, stats.packets_offered,
                 stats.packets_lost, stats.packets_unroutable,
                 stats.last_ejection_cycle);
    return false;
  }
  std::fprintf(stderr,
               "WARNING: %s: %ld of %ld measured packets never drained "
               "(still in flight at end of run; last ejection at cycle "
               "%ld) — the network is past saturation; reported latencies "
               "are lower bounds, not steady-state values\n",
               context.c_str(), in_flight, stats.packets_offered,
               stats.last_ejection_cycle);
  if (stats.last_progress_cycle >= 0) {
    // Tracing was on: point at the last sim.progress snapshot so the
    // reader can see where the run stood without re-parsing the trace.
    // Unlike the measured count above, this mirrors the trace's
    // packets_in_flight field: network-wide, all phases.
    std::fprintf(stderr,
                 "         last progress snapshot: cycle %ld, %ld packets "
                 "in flight network-wide\n",
                 stats.last_progress_cycle, stats.last_progress_in_flight);
  }
  return false;
}

sim::SimConfig default_sim_config(std::uint64_t seed) {
  sim::SimConfig config;
  const double scale = bench_scale();
  config.warmup_cycles = std::max<long>(200, static_cast<long>(1000 * scale));
  config.measure_cycles =
      std::max<long>(1000, static_cast<long>(10000 * scale));
  config.drain_cycles = std::max<long>(2000, static_cast<long>(20000 * scale));
  config.seed = seed;
  return config;
}

}  // namespace xlp::exp
