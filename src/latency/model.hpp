#pragma once

#include <vector>

#include "latency/packet_mix.hpp"
#include "route/mesh_routing.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::latency {

/// Calibrated parameters of Eq. (1): L = H*Tr + D_M*Tl + H*Tc + S/b.
///
/// Calibration note: the paper's Table 2 mesh rows are matched exactly when
/// the router term counts routers *traversed* (hops + 1, the destination
/// router included) rather than links: 4x4 worst case = 7*3 + 6 + 1.2 = 28.2
/// and 8x8 = 15*3 + 14 + 1.2 = 60.2. We therefore charge Tr once per router
/// on the path, Tl per unit wire length, and Tc per link as the average
/// contention allowance (zero at zero load).
struct LatencyParams {
  route::HopWeights hop;              // Tr (per router) and Tl (per unit)
  double contention_per_hop = 0.0;    // Tc: average per-hop contention
  PacketMix mix = PacketMix::paper_default();

  [[nodiscard]] static LatencyParams zero_load() { return {}; }
  /// The empirical PARSEC operating point: Section 4.2 reports average
  /// contention per hop "almost always less than 1 cycle"; 0.5 is the
  /// midpoint we use when the analytic model stands in for simulation.
  [[nodiscard]] static LatencyParams parsec_typical() {
    LatencyParams p;
    p.contention_per_hop = 0.5;
    return p;
  }
};

/// Head + serialization decomposition reported throughout Section 5.
struct LatencyBreakdown {
  double head = 0.0;           // L_D
  double serialization = 0.0;  // L_S
  [[nodiscard]] double total() const noexcept { return head + serialization; }
};

/// Analytic zero-/low-load latency evaluator for a 2D design point. All
/// averages are over ordered source/destination pairs with src != dst (a
/// core never sends packets to itself through the network).
class MeshLatencyModel {
 public:
  MeshLatencyModel(const topo::ExpressMesh& mesh, LatencyParams params);

  /// Head latency of one pair: Tr * (links + 1) + Tl * Manhattan distance
  /// + Tc * links. Zero when src == dst.
  [[nodiscard]] double pair_head_latency(int src, int dst) const;

  /// Mix-averaged total latency of one pair (head + serialization).
  [[nodiscard]] double pair_latency(int src, int dst) const;

  /// Average breakdown over all ordered pairs (Eq. 2 with uniform weights).
  [[nodiscard]] LatencyBreakdown average() const;

  /// Average breakdown weighted by a flattened N*N traffic-rate matrix
  /// (Section 5.6.4). Rates must be non-negative with positive off-diagonal
  /// sum.
  [[nodiscard]] LatencyBreakdown weighted_average(
      const std::vector<double>& rates) const;

  /// Maximum zero-load packet latency over all pairs (Table 2). Includes the
  /// mix-averaged serialization term, matching how the paper reports it.
  [[nodiscard]] double worst_case() const;

  /// Average hop (link) count over all ordered pairs.
  [[nodiscard]] double average_hops() const;

  [[nodiscard]] const route::MeshRouting& routing() const noexcept {
    return routing_;
  }
  [[nodiscard]] const LatencyParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] double serialization_cycles() const {
    return serialization_;
  }

 private:
  int nodes_;
  LatencyParams params_;
  route::MeshRouting routing_;
  double serialization_;
};

}  // namespace xlp::latency
