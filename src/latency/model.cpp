#include "latency/model.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace xlp::latency {

MeshLatencyModel::MeshLatencyModel(const topo::ExpressMesh& mesh,
                                   LatencyParams params)
    : nodes_(mesh.node_count()),
      params_(std::move(params)),
      routing_(mesh, params_.hop),
      serialization_(params_.mix.serialization_cycles(mesh.flit_bits())) {}

double MeshLatencyModel::pair_head_latency(int src, int dst) const {
  if (src == dst) return 0.0;
  const int hops = routing_.hops(src, dst);
  // head_cost already charges Tr per link; add one more Tr for the
  // destination router (routers traversed = hops + 1), plus contention.
  return routing_.head_cost(src, dst) + params_.hop.router_cycles +
         params_.contention_per_hop * hops;
}

double MeshLatencyModel::pair_latency(int src, int dst) const {
  if (src == dst) return 0.0;
  return pair_head_latency(src, dst) + serialization_;
}

LatencyBreakdown MeshLatencyModel::average() const {
  const int nodes = nodes_;
  double head_total = 0.0;
  for (int src = 0; src < nodes; ++src)
    for (int dst = 0; dst < nodes; ++dst)
      if (src != dst) head_total += pair_head_latency(src, dst);
  const double pairs = static_cast<double>(nodes) * (nodes - 1);
  return {head_total / pairs, serialization_};
}

LatencyBreakdown MeshLatencyModel::weighted_average(
    const std::vector<double>& rates) const {
  const int nodes = nodes_;
  XLP_REQUIRE(rates.size() == static_cast<std::size_t>(nodes) * nodes,
              "traffic matrix must be N*N, flattened row-major");
  double head_total = 0.0;
  double weight_total = 0.0;
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      const double w = rates[static_cast<std::size_t>(src) * nodes + dst];
      XLP_REQUIRE(w >= 0.0, "traffic rates must be non-negative");
      if (src == dst) continue;
      head_total += w * pair_head_latency(src, dst);
      weight_total += w;
    }
  }
  XLP_REQUIRE(weight_total > 0.0,
              "traffic matrix must carry some off-diagonal traffic");
  return {head_total / weight_total, serialization_};
}

double MeshLatencyModel::worst_case() const {
  const int nodes = nodes_;
  double worst = 0.0;
  for (int src = 0; src < nodes; ++src)
    for (int dst = 0; dst < nodes; ++dst)
      if (src != dst)
        worst = std::max(worst, pair_head_latency(src, dst) + serialization_);
  return worst;
}

double MeshLatencyModel::average_hops() const {
  const int nodes = nodes_;
  long total = 0;
  for (int src = 0; src < nodes; ++src)
    for (int dst = 0; dst < nodes; ++dst)
      if (src != dst) total += routing_.hops(src, dst);
  return static_cast<double>(total) /
         (static_cast<double>(nodes) * (nodes - 1));
}

}  // namespace xlp::latency
