#include "latency/packet_mix.hpp"

#include <cmath>

namespace xlp::latency {

PacketMix::PacketMix(std::vector<PacketClass> classes)
    : classes_(std::move(classes)) {
  XLP_REQUIRE(!classes_.empty(), "packet mix needs at least one class");
  double sum = 0.0;
  for (const PacketClass& pc : classes_) {
    XLP_REQUIRE(pc.bits > 0, "packet size must be positive");
    XLP_REQUIRE(pc.fraction > 0.0, "packet fraction must be positive");
    sum += pc.fraction;
  }
  XLP_REQUIRE(std::abs(sum - 1.0) < 1e-9, "packet fractions must sum to 1");
}

PacketMix PacketMix::paper_default() {
  return PacketMix({{128, 0.8}, {512, 0.2}});
}

int PacketMix::flits_for(int bits, int flit_bits) {
  XLP_REQUIRE(bits > 0, "packet size must be positive");
  XLP_REQUIRE(flit_bits > 0, "flit width must be positive");
  return static_cast<int>(ceil_div(bits, flit_bits));
}

double PacketMix::serialization_cycles(int flit_bits) const {
  double total = 0.0;
  for (const PacketClass& pc : classes_)
    total += pc.fraction * flits_for(pc.bits, flit_bits);
  return total;
}

double PacketMix::average_bits() const {
  double total = 0.0;
  for (const PacketClass& pc : classes_) total += pc.fraction * pc.bits;
  return total;
}

double PacketMix::average_flits(int flit_bits) const {
  return serialization_cycles(flit_bits);
}

}  // namespace xlp::latency
