#pragma once

#include <vector>

#include "util/check.hpp"
#include "util/numeric.hpp"

namespace xlp::latency {

/// One packet class: size in bits and its share of the traffic.
struct PacketClass {
  int bits = 0;
  double fraction = 0.0;
};

/// The mix of packet types on the network (Section 3: short packets for
/// read requests / write acks, long packets for read replies / write
/// requests). Serialization latency is the mix-weighted flit count
/// `sum_k p_k * ceil(S_k / b)` — ceil, because a packet smaller than one
/// flit still occupies a whole flit; this convention makes the model land
/// exactly on the paper's Table 2 mesh values.
class PacketMix {
 public:
  /// Fractions must be positive and sum to 1 (±1e-9); sizes positive.
  explicit PacketMix(std::vector<PacketClass> classes);

  /// The paper's mix (Section 5.1, after [19]): long 512-bit to short
  /// 128-bit packets in ratio 1:4.
  static PacketMix paper_default();

  [[nodiscard]] const std::vector<PacketClass>& classes() const noexcept {
    return classes_;
  }

  /// Flits needed for a `bits`-sized packet on links `flit_bits` wide.
  [[nodiscard]] static int flits_for(int bits, int flit_bits);

  /// Mix-averaged serialization latency in cycles on `flit_bits`-wide links.
  [[nodiscard]] double serialization_cycles(int flit_bits) const;

  /// Mix-averaged packet size in bits.
  [[nodiscard]] double average_bits() const;

  /// Mix-averaged flits per packet at the given width.
  [[nodiscard]] double average_flits(int flit_bits) const;

 private:
  std::vector<PacketClass> classes_;
};

}  // namespace xlp::latency
