#include "fault/objective.hpp"

#include <algorithm>

namespace xlp::fault {

double degraded_row_cost(const topo::RowTopology& row,
                         route::HopWeights weights, DegradedMetric metric) {
  // Distinct express links; duplicates fail together (shared channel).
  std::vector<topo::RowLink> links = row.express_links();
  links.erase(std::unique(links.begin(), links.end()), links.end());
  if (links.empty())
    return route::DirectionalShortestPaths(row, weights).average_cost();

  double sum = 0.0;
  double worst = 0.0;
  for (const topo::RowLink& link : links) {
    topo::RowTopology degraded = row;
    while (degraded.remove_express(link)) {
    }
    const double cost =
        route::DirectionalShortestPaths(degraded, weights).average_cost();
    sum += cost;
    worst = std::max(worst, cost);
  }
  return metric == DegradedMetric::kWorst
             ? worst
             : sum / static_cast<double>(links.size());
}

core::RowObjective make_reliability_objective(int n,
                                              route::HopWeights weights,
                                              double degraded_weight,
                                              DegradedMetric metric) {
  core::RowObjective objective(n, weights);
  if (degraded_weight > 0.0)
    objective.set_secondary(
        degraded_weight, [weights, metric](const topo::RowTopology& row) {
          return degraded_row_cost(row, weights, metric);
        });
  return objective;
}

}  // namespace xlp::fault
