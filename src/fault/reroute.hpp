#pragma once

#include <utility>
#include <vector>

#include "fault/model.hpp"
#include "route/deadlock.hpp"
#include "route/directional_paths.hpp"
#include "route/mesh_routing.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::fault {

/// Outcome of recomputing routing tables on the surviving monotone subgraph.
///
/// The rerouted tables stay within the paper's deadlock-free routing class:
/// packets still travel monotonically per dimension with a single row->col
/// (or col->row) turn, only the within-row/column paths change. Pairs whose
/// surviving monotone subgraph is severed are reported, not routed — the
/// caller decides whether to refuse that traffic or escalate.
struct RerouteResult {
  route::MeshRouting routing;

  /// Ordered (src, dst) node pairs with no surviving route, per orientation.
  std::vector<std::pair<int, int>> unreachable_xy;
  std::vector<std::pair<int, int>> unreachable_yx;

  /// Channel-dependency acyclicity of the rerouted tables, re-verified in
  /// both orientations (Dally & Seitz). Monotone DOR tables are acyclic by
  /// construction; the explicit check guards the construction.
  bool acyclic_xy = true;
  bool acyclic_yx = true;
  /// First witness cycle found when a verification failed; empty otherwise.
  std::vector<route::Channel> cycle_witness;

  [[nodiscard]] bool fully_connected() const noexcept {
    return unreachable_xy.empty() && unreachable_yx.empty();
  }
  [[nodiscard]] bool deadlock_free() const noexcept {
    return acyclic_xy && acyclic_yx;
  }
  /// True when `dst` is reachable from `src` in at least one orientation
  /// (O1TURN traffic survives if either class of VCs still has a path).
  [[nodiscard]] bool reachable_any(int src, int dst) const {
    return routing.reachable(src, dst, route::Orientation::kXYFirst) ||
           routing.reachable(src, dst, route::Orientation::kYXFirst);
  }
};

/// Rebuilds shortest-path routing tables for `mesh` with every channel the
/// fault set kills removed from the monotone adjacency, then re-verifies
/// deadlock freedom in both orientations. Port faults do not affect routing
/// (they only slow a router down) and are ignored here.
[[nodiscard]] RerouteResult reroute(const topo::ExpressMesh& mesh,
                                    const FaultSet& faults,
                                    route::HopWeights weights = {});

}  // namespace xlp::fault
