#pragma once

#include "core/objective.hpp"
#include "route/directional_paths.hpp"
#include "topo/row_topology.hpp"

namespace xlp::fault {

/// How single-link-failure scenarios are aggregated into one number.
enum class DegradedMetric {
  kExpected,  // mean over failure scenarios (uniform failure probability)
  kWorst,     // worst scenario
};

/// Average pairwise head cost of `row` under single-express-link failures:
/// each distinct express link is removed in turn (all parallel duplicates
/// with it — they share one physical channel) and the surviving row is
/// re-scored; the scenarios aggregate per `metric`. Local links stay, so
/// every scenario remains fully connected. A row without express links has
/// no failure scenarios and scores as itself.
[[nodiscard]] double degraded_row_cost(const topo::RowTopology& row,
                                       route::HopWeights weights,
                                       DegradedMetric metric);

/// Reliability-aware placement objective (usable by DcSa and OnlySa):
///   (1 - degraded_weight) * L_ok + degraded_weight * L_degraded
/// where L_ok is the paper's average pairwise cost and L_degraded is
/// degraded_row_cost() under `metric`. With weight 0 this is exactly the
/// baseline objective.
[[nodiscard]] core::RowObjective make_reliability_objective(
    int n, route::HopWeights weights, double degraded_weight,
    DegradedMetric metric = DegradedMetric::kExpected);

}  // namespace xlp::fault
