#pragma once

#include <string>
#include <vector>

#include "topo/express_mesh.hpp"
#include "topo/row_topology.hpp"
#include "util/rng.hpp"

namespace xlp::fault {

/// Which dimension of the mesh a link belongs to.
enum class Dim { kRow, kCol };

/// One bidirectional link of an ExpressMesh: `index` selects the row (y for
/// kRow) or column (x for kCol), `link` its endpoints within that
/// RowTopology. Local links (length 1) are addressable too — placements
/// treat them as always present, but the fault model may kill them, which
/// is exactly the case that can sever a monotone routing direction.
/// Parallel duplicate express links share one physical channel in the
/// simulator, so a fault on a duplicated link kills every duplicate.
struct LinkId {
  Dim dim = Dim::kRow;
  int index = 0;
  topo::RowLink link;

  friend constexpr bool operator==(const LinkId&, const LinkId&) = default;
  /// Compact text form, e.g. "row3:(1,4)" or "col0:(2,3)".
  [[nodiscard]] std::string to_string() const;
};

/// Loss of a link. By default both directed channels die; clearing one of
/// the flags models a unidirectional driver failure.
struct LinkFault {
  LinkId id;
  bool forward = true;   // lo -> hi channel dead
  bool backward = true;  // hi -> lo channel dead
};

/// Router-port degradation: every flit arriving at `router` pays
/// `extra_cycles` additional pipeline cycles (a partially failed
/// port/arbiter running in a slow recovery mode). Routing is unaffected.
struct PortFault {
  int router = 0;
  int extra_cycles = 1;
};

/// A set of concurrent faults over one ExpressMesh. Value type; the
/// simulator's FaultSchedule activates and retires whole sets at scheduled
/// cycles, and fault::reroute() rebuilds routing tables around one.
class FaultSet {
 public:
  FaultSet() = default;

  void add(LinkFault f);
  void add(PortFault f);

  [[nodiscard]] bool empty() const noexcept {
    return links_.empty() && ports_.empty();
  }
  [[nodiscard]] const std::vector<LinkFault>& link_faults() const noexcept {
    return links_;
  }
  [[nodiscard]] const std::vector<PortFault>& port_faults() const noexcept {
    return ports_;
  }

  /// True when the directed channel from position `from` to position `to`
  /// within row/column `index` of dimension `dim` is dead.
  [[nodiscard]] bool kills(Dim dim, int index, int from, int to) const;

  /// Total extra pipeline cycles at `router` (0 when undegraded; multiple
  /// port faults on one router accumulate).
  [[nodiscard]] int extra_pipeline_cycles(int router) const;

  /// Removes every link fault on the given link; true when any was present.
  bool remove_link(const LinkId& id);

  /// Human-readable summary, e.g. "links[row3:(1,4)] ports[12:+2]".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<LinkFault> links_;
  std::vector<PortFault> ports_;
};

/// All distinct bidirectional links of the design (duplicates collapse),
/// rows first then columns, in deterministic order. With `express_only`
/// local links are skipped.
[[nodiscard]] std::vector<LinkId> enumerate_links(
    const topo::ExpressMesh& mesh, bool express_only = false);

/// What the samplers may draw.
struct SampleOptions {
  /// Restrict the draw to express links (the long wires most exposed to
  /// faults). Designs without express links fall back to all links so a
  /// plain mesh can still be degraded.
  bool express_only = true;
  /// Kill a single uniformly chosen direction instead of both.
  bool directional = false;
};

/// k distinct random link losses, drawn without replacement. Deterministic
/// given the rng state; k is clamped to the number of candidate links.
[[nodiscard]] FaultSet sample_k_links(const topo::ExpressMesh& mesh, int k,
                                      Rng& rng,
                                      const SampleOptions& opts = {});

/// Bernoulli per-link sampler: each express link fails independently with
/// probability `p_express`, each local link with `p_local`.
[[nodiscard]] FaultSet sample_per_link(const topo::ExpressMesh& mesh,
                                       double p_express, double p_local,
                                       Rng& rng,
                                       const SampleOptions& opts = {});

}  // namespace xlp::fault
