#include "fault/model.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace xlp::fault {

std::string LinkId::to_string() const {
  std::ostringstream os;
  os << (dim == Dim::kRow ? "row" : "col") << index << ":(" << link.lo << ','
     << link.hi << ')';
  return os.str();
}

void FaultSet::add(LinkFault f) {
  XLP_REQUIRE(f.id.link.lo >= 0 && f.id.link.hi > f.id.link.lo,
              "link endpoints must satisfy 0 <= lo < hi");
  XLP_REQUIRE(f.id.index >= 0, "row/column index must be non-negative");
  XLP_REQUIRE(f.forward || f.backward,
              "a link fault must kill at least one direction");
  links_.push_back(f);
}

void FaultSet::add(PortFault f) {
  XLP_REQUIRE(f.router >= 0, "router id must be non-negative");
  XLP_REQUIRE(f.extra_cycles >= 1,
              "port degradation must add at least one cycle");
  ports_.push_back(f);
}

bool FaultSet::kills(Dim dim, int index, int from, int to) const {
  const int lo = std::min(from, to);
  const int hi = std::max(from, to);
  const bool is_forward = from < to;  // lo -> hi direction
  for (const LinkFault& f : links_) {
    if (f.id.dim != dim || f.id.index != index || f.id.link.lo != lo ||
        f.id.link.hi != hi)
      continue;
    if (is_forward ? f.forward : f.backward) return true;
  }
  return false;
}

int FaultSet::extra_pipeline_cycles(int router) const {
  int extra = 0;
  for (const PortFault& f : ports_)
    if (f.router == router) extra += f.extra_cycles;
  return extra;
}

bool FaultSet::remove_link(const LinkId& id) {
  const auto end = std::remove_if(
      links_.begin(), links_.end(),
      [&id](const LinkFault& f) { return f.id == id; });
  const bool removed = end != links_.end();
  links_.erase(end, links_.end());
  return removed;
}

std::string FaultSet::to_string() const {
  std::ostringstream os;
  os << "links[";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i > 0) os << ' ';
    os << links_[i].id.to_string();
    if (!links_[i].forward) os << "<-";
    else if (!links_[i].backward) os << "->";
  }
  os << "] ports[";
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (i > 0) os << ' ';
    os << ports_[i].router << ":+" << ports_[i].extra_cycles;
  }
  os << ']';
  return os.str();
}

std::vector<LinkId> enumerate_links(const topo::ExpressMesh& mesh,
                                    bool express_only) {
  std::vector<LinkId> out;
  auto add_dim = [&](Dim dim, int count,
                     const topo::RowTopology& (topo::ExpressMesh::*get)(int)
                         const) {
    for (int i = 0; i < count; ++i) {
      const topo::RowTopology& row = (mesh.*get)(i);
      topo::RowLink prev{-1, -1};
      for (const topo::RowLink& link : row.all_links()) {
        if (link == prev) continue;  // duplicates share a channel
        prev = link;
        if (express_only && !link.is_express()) continue;
        out.push_back({dim, i, link});
      }
    }
  };
  add_dim(Dim::kRow, mesh.height(), &topo::ExpressMesh::row);
  add_dim(Dim::kCol, mesh.width(), &topo::ExpressMesh::col);
  return out;
}

namespace {

std::vector<LinkId> candidates(const topo::ExpressMesh& mesh,
                               const SampleOptions& opts) {
  std::vector<LinkId> pool = enumerate_links(mesh, opts.express_only);
  if (pool.empty() && opts.express_only)
    pool = enumerate_links(mesh, /*express_only=*/false);
  return pool;
}

LinkFault make_fault(LinkId id, const SampleOptions& opts, Rng& rng) {
  LinkFault f{id, true, true};
  if (opts.directional) {
    if (rng.bernoulli(0.5)) f.backward = false;
    else f.forward = false;
  }
  return f;
}

}  // namespace

FaultSet sample_k_links(const topo::ExpressMesh& mesh, int k, Rng& rng,
                        const SampleOptions& opts) {
  XLP_REQUIRE(k >= 0, "cannot kill a negative number of links");
  std::vector<LinkId> pool = candidates(mesh, opts);
  FaultSet faults;
  const int draws = std::min<int>(k, static_cast<int>(pool.size()));
  for (int i = 0; i < draws; ++i) {
    const auto pick =
        static_cast<std::size_t>(rng.uniform_below(pool.size()));
    faults.add(make_fault(pool[pick], opts, rng));
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return faults;
}

FaultSet sample_per_link(const topo::ExpressMesh& mesh, double p_express,
                         double p_local, Rng& rng,
                         const SampleOptions& opts) {
  XLP_REQUIRE(p_express >= 0.0 && p_express <= 1.0 && p_local >= 0.0 &&
                  p_local <= 1.0,
              "failure probabilities must be in [0, 1]");
  FaultSet faults;
  for (const LinkId& id : enumerate_links(mesh, /*express_only=*/false)) {
    const double p = id.link.is_express() ? p_express : p_local;
    if (rng.bernoulli(p)) faults.add(make_fault(id, opts, rng));
  }
  return faults;
}

}  // namespace xlp::fault
