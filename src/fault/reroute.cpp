#include "fault/reroute.hpp"

namespace xlp::fault {

namespace {

/// Shortest paths over one row/column with dead channels filtered out of the
/// monotone adjacency. Local links are filtered like any other link, so a
/// local-link fault can legitimately sever a direction.
route::DirectionalShortestPaths degraded_paths(const topo::RowTopology& row,
                                               Dim dim, int index,
                                               const FaultSet& faults,
                                               route::HopWeights weights) {
  const int n = row.size();
  std::vector<std::vector<int>> right(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> left(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int nbr : row.neighbors_right(r))
      if (!faults.kills(dim, index, r, nbr))
        right[static_cast<std::size_t>(r)].push_back(nbr);
    for (int nbr : row.neighbors_left(r))
      if (!faults.kills(dim, index, r, nbr))
        left[static_cast<std::size_t>(r)].push_back(nbr);
  }
  return {n, right, left, weights};
}

}  // namespace

RerouteResult reroute(const topo::ExpressMesh& mesh, const FaultSet& faults,
                      route::HopWeights weights) {
  std::vector<route::DirectionalShortestPaths> row_paths;
  std::vector<route::DirectionalShortestPaths> col_paths;
  row_paths.reserve(static_cast<std::size_t>(mesh.height()));
  col_paths.reserve(static_cast<std::size_t>(mesh.width()));
  for (int y = 0; y < mesh.height(); ++y)
    row_paths.push_back(
        degraded_paths(mesh.row(y), Dim::kRow, y, faults, weights));
  for (int x = 0; x < mesh.width(); ++x)
    col_paths.push_back(
        degraded_paths(mesh.col(x), Dim::kCol, x, faults, weights));

  RerouteResult result{
      route::MeshRouting(std::move(row_paths), std::move(col_paths)),
      {}, {}, true, true, {}};

  const int nodes = mesh.node_count();
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      if (src == dst) continue;
      if (!result.routing.reachable(src, dst, route::Orientation::kXYFirst))
        result.unreachable_xy.emplace_back(src, dst);
      if (!result.routing.reachable(src, dst, route::Orientation::kYXFirst))
        result.unreachable_yx.emplace_back(src, dst);
    }
  }

  const route::ChannelDependencyGraph cdg_xy(mesh, result.routing,
                                             route::Orientation::kXYFirst);
  std::vector<route::Channel> cycle = cdg_xy.find_cycle();
  if (!cycle.empty()) {
    result.acyclic_xy = false;
    result.cycle_witness = std::move(cycle);
  }
  const route::ChannelDependencyGraph cdg_yx(mesh, result.routing,
                                             route::Orientation::kYXFirst);
  cycle = cdg_yx.find_cycle();
  if (!cycle.empty()) {
    result.acyclic_yx = false;
    if (result.cycle_witness.empty()) result.cycle_witness = std::move(cycle);
  }
  return result;
}

}  // namespace xlp::fault
