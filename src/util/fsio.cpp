#include "util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace xlp::util {

bool ensure_parent_dir(const std::string& path) noexcept {
  try {
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty()) return true;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);  // ok when already there
    return !ec;
  } catch (...) {
    return false;
  }
}

bool atomic_write_file(const std::string& path,
                       const std::string& content) noexcept {
  if (!ensure_parent_dir(path)) return false;
  // The temp file must live in the same directory as the target so the
  // final rename stays within one filesystem (rename(2) is only atomic
  // then). The pid + per-process sequence suffix makes the name unique
  // across concurrent writers in other processes AND other threads of
  // this one — two threads sharing a pid-only name would write into each
  // other's temp file and orphan it. The last rename wins, which is still
  // a complete document.
  static std::atomic<unsigned long> sequence{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  bool ok = true;
  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd, data, remaining);
    if (written < 0) {
      ok = false;
      break;
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  // fsync before rename: otherwise the rename can hit disk before the
  // data and a power loss would publish an empty file under `path`.
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (ok) {
    // fsync the parent directory too: the rename itself lives in the
    // directory, and until that is durable a crash can roll the entry
    // back to the old file — or to nothing. With this, the durability
    // contract is: when atomic_write_file returns true, `path` holds the
    // complete new content and survives an immediate power loss; on any
    // failure or crash the old content (or absence) is untouched. A
    // directory-fsync failure is reported as a write failure: the data
    // landed but its durability is not established.
    const std::string parent =
        std::filesystem::path(path).parent_path().string();
    const int dir_fd = ::open(parent.empty() ? "." : parent.c_str(),
                              O_RDONLY | O_DIRECTORY);
    if (dir_fd < 0) {
      ok = false;
    } else {
      if (::fsync(dir_fd) != 0) ok = false;
      ::close(dir_fd);
    }
  }
  if (!ok) std::remove(tmp.c_str());  // best-effort cleanup
  return ok;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buffer.str();
}

}  // namespace xlp::util
