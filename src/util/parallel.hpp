#pragma once

#include <functional>
#include <vector>

#include "runctl/control.hpp"

namespace xlp::util {

/// Number of hardware threads, never less than 1 (hardware_concurrency()
/// is allowed to return 0 on exotic platforms).
[[nodiscard]] int hardware_threads() noexcept;

/// The process-wide default worker count used when a caller asks for 0
/// threads. Resolution order: the last set_default_thread_count() call
/// (the CLI's --threads flag), then the XLP_THREADS environment variable,
/// then hardware_threads(). Always >= 1.
[[nodiscard]] int default_thread_count() noexcept;

/// Installs a process-wide override for default_thread_count(); values
/// below 1 clear the override (back to XLP_THREADS / hardware).
void set_default_thread_count(int threads) noexcept;

/// Maps a user-facing thread request to an actual worker count:
/// `requested <= 0` means "use the default", anything else is clamped to
/// at least 1. Call sites additionally cap by their own item count.
[[nodiscard]] int resolve_thread_count(int requested) noexcept;

/// Fixed-size pool of worker threads for embarrassingly parallel loops.
///
/// Determinism contract: parallel_for / parallel_map never let the thread
/// count or the scheduling order influence *what* is computed — work item
/// i always sees the same inputs and writes only its own slot. Any
/// randomness must be forked per item *before* dispatch (see Rng::fork).
/// A pool of size 1 spawns no threads at all and runs every item inline
/// on the calling thread, in index order — bit-identical to a plain loop.
///
/// Exceptions: if work items throw, the exception of the lowest-indexed
/// failing item is rethrown on the calling thread after all workers have
/// finished (lowest index, not first-in-time, so failures are
/// deterministic too).
///
/// Cancellation: when a RunControl is passed, the pool stops *dispatching*
/// new items once a stop is requested; items already running are left to
/// finish (they are expected to poll the same control internally).
/// parallel_for returns false in that case so the caller knows the loop
/// is incomplete.
class ThreadPool {
 public:
  /// `threads <= 0` resolves to default_thread_count(). The workers are
  /// started eagerly and live until destruction; keep pools scoped to the
  /// parallel phase so profiler snapshots never observe a live worker.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return threads_; }

  /// Runs fn(i) for every i in [0, count), distributing items dynamically
  /// over the workers (atomic counter; an idle worker grabs the next
  /// index). Blocks until every dispatched item finished. Returns true
  /// when all `count` items ran, false when a cancellation skipped the
  /// tail. Rethrows the lowest-index exception, if any.
  bool parallel_for(long count, const std::function<void(long)>& fn,
                    runctl::RunControl* control = nullptr);

 private:
  struct Impl;
  Impl* impl_ = nullptr;  // null for the inline (size-1) pool
  int threads_ = 1;
};

/// Convenience: evaluates fn(i) for i in [0, count) on `pool` and returns
/// the results in index order, independent of scheduling. T must be
/// default-constructible. Throws (never truncates) when a cancellation
/// kept the map from completing, since a partial map has no meaningful
/// result slotting.
template <typename T>
std::vector<T> parallel_map(ThreadPool& pool, long count,
                            const std::function<T(long)>& fn) {
  std::vector<T> out(static_cast<std::size_t>(count));
  pool.parallel_for(count,
                    [&](long i) { out[static_cast<std::size_t>(i)] = fn(i); });
  return out;
}

}  // namespace xlp::util
