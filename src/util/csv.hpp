#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xlp {

/// Minimal RFC-4180-ish CSV writer for the experiment harnesses: every
/// bench can dump the series behind its printed table so the paper's plots
/// can be regenerated with any plotting tool. Fields containing commas,
/// quotes or newlines are quoted; quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  void write(std::ostream& os) const;

  /// Writes to a file; returns false (without throwing) when the file
  /// cannot be opened — benches treat CSV output as best-effort.
  [[nodiscard]] bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Directory benches write their CSVs into: the XLP_OUTPUT_DIR environment
/// variable, or an empty string when unset (meaning: don't write).
[[nodiscard]] std::string csv_output_dir();

}  // namespace xlp
