#pragma once

#include <exception>
#include <string>
#include <vector>

namespace xlp {

/// Machine-readable failure category carried by xlp::Error. The CLI maps
/// these onto its documented exit codes (kUsage -> 2, everything else ->
/// 1); library callers can branch without parsing message text.
enum class ErrorCode {
  kUsage,     // bad flags / arguments from the user
  kIo,        // file could not be read, written or renamed
  kParse,     // malformed input (truncated JSON, bad field, bad hex)
  kSchema,    // well-formed input but not the expected document kind
  kVersion,   // recognized document written by a newer format version
  kState,     // operation invalid for the current state
  kInternal,  // a bug in this library
};

[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// Structured error for the toolchain's load/validate paths: an ErrorCode
/// plus a context chain built up as the error propagates. Loaders throw
/// `Error(kParse, "missing field 'rng'")` and callers annotate it on the
/// way out with `with_context("checkpoint ck.json")`, so what() reads
///
///   parse error: missing field 'rng' (while reading sa state; while
///   loading checkpoint ck.json)
///
/// instead of silent garbage or std::abort.
class Error : public std::exception {
 public:
  Error(ErrorCode code, std::string message);

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }
  [[nodiscard]] const std::vector<std::string>& context() const noexcept {
    return context_;
  }

  /// Appends one frame to the context chain (innermost first); returns
  /// *this so a catch block can annotate and rethrow in one expression.
  Error& with_context(std::string frame);

  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }

 private:
  void rebuild_what();

  ErrorCode code_;
  std::string message_;
  std::vector<std::string> context_;  // innermost first
  std::string what_;
};

}  // namespace xlp
