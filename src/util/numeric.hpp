#pragma once

#include <cstdint>
#include <numeric>
#include <span>

#include "util/check.hpp"

namespace xlp {

/// ceil(a / b) for non-negative integers; b must be > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

constexpr bool is_power_of_two(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Arithmetic mean of a non-empty range.
inline double mean(std::span<const double> xs) {
  XLP_REQUIRE(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Relative change (a - b) / b as a percentage; b must be non-zero.
inline double percent_change(double a, double b) {
  XLP_REQUIRE(b != 0.0, "percent_change with zero base");
  return (a - b) / b * 100.0;
}

}  // namespace xlp
