#include "util/csv.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <system_error>

#include "util/check.hpp"

namespace xlp {

namespace {

std::string escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  XLP_REQUIRE(!header_.empty(), "CSV needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  XLP_REQUIRE(cells.size() == header_.size(),
              "row arity does not match header");
  rows_.push_back(std::move(cells));
}

void CsvWriter::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

bool CsvWriter::write_file(const std::string& path) const {
  // Best-effort like the JSON writers: create missing parent directories
  // rather than failing silently on a fresh output tree.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) return false;
  }
  std::ofstream out(path);
  if (!out.good()) return false;
  write(out);
  return out.good();
}

std::string csv_output_dir() {
  if (const char* dir = std::getenv("XLP_OUTPUT_DIR")) return dir;
  return {};
}

}  // namespace xlp
