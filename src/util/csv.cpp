#include "util/csv.hpp"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include "util/check.hpp"
#include "util/fsio.hpp"

namespace xlp {

namespace {

std::string escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  XLP_REQUIRE(!header_.empty(), "CSV needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  XLP_REQUIRE(cells.size() == header_.size(),
              "row arity does not match header");
  rows_.push_back(std::move(cells));
}

void CsvWriter::write(std::ostream& os) const {
  auto write_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

bool CsvWriter::write_file(const std::string& path) const {
  // Render in memory and publish with an atomic rename, so readers (and
  // crash recovery) never observe a half-written table.
  std::ostringstream out;
  write(out);
  return util::atomic_write_file(path, out.str());
}

std::string csv_output_dir() {
  if (const char* dir = std::getenv("XLP_OUTPUT_DIR")) return dir;
  return {};
}

}  // namespace xlp
