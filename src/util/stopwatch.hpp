#pragma once

#include <chrono>

namespace xlp {

/// Monotonic wall-clock stopwatch used to report optimizer runtimes
/// (Fig. 7 and Fig. 12 compare algorithm runtimes).
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xlp
