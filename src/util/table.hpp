#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xlp {

/// Minimal fixed-column text table used by the experiment harnesses to print
/// the rows/series that the paper's tables and figures report.
///
/// Usage:
///   Table t({"benchmark", "mesh", "hfb", "dcsa"});
///   t.add_row({"canneal", "25.9", "21.4", "19.8"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xlp
