#include "util/rng.hpp"

namespace xlp {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& word : state_) word = splitmix64(x);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-then-reject method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() noexcept {
  // 53 top bits → double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::array<std::uint64_t, 4> Rng::state() const noexcept {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& words) noexcept {
  for (int i = 0; i < 4; ++i) state_[i] = words[static_cast<std::size_t>(i)];
}

Rng Rng::fork(std::uint64_t stream_id) noexcept {
  const std::uint64_t base = (*this)();
  // Mix the stream id so fork(0) and fork(1) are decorrelated.
  std::uint64_t x = base ^ (stream_id * 0xda942042e4dd58b5ULL + 1);
  return Rng(splitmix64(x));
}

}  // namespace xlp
