#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xlp {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace xlp

/// Validate a caller-supplied argument; throws xlp::PreconditionError.
#define XLP_REQUIRE(expr, msg)                                             \
  do {                                                                     \
    if (!(expr))                                                           \
      ::xlp::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Validate an internal invariant; throws xlp::InvariantError.
#define XLP_CHECK(expr, msg)                                            \
  do {                                                                   \
    if (!(expr))                                                         \
      ::xlp::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Unconditional failure for a path that must not be reached (an
/// exhausted lookup, an impossible enum value). Equivalent to
/// XLP_REQUIRE(false, msg) but [[noreturn]], so callers need no dead
/// return or std::abort() after it to satisfy the compiler.
#define XLP_FAIL(msg) \
  ::xlp::detail::throw_precondition("unreachable", __FILE__, __LINE__, (msg))
