#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace xlp::util {

namespace {

std::atomic<int> g_thread_override{0};

int env_thread_count() noexcept {
  if (const char* env = std::getenv("XLP_THREADS")) {
    const int value = std::atoi(env);
    if (value >= 1) return value;
  }
  return 0;
}

}  // namespace

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n >= 1 ? static_cast<int>(n) : 1;
}

int default_thread_count() noexcept {
  const int override = g_thread_override.load(std::memory_order_relaxed);
  if (override >= 1) return override;
  if (const int env = env_thread_count(); env >= 1) return env;
  return hardware_threads();
}

void set_default_thread_count(int threads) noexcept {
  g_thread_override.store(threads >= 1 ? threads : 0,
                          std::memory_order_relaxed);
}

int resolve_thread_count(int requested) noexcept {
  return requested <= 0 ? default_thread_count() : requested;
}

/// Worker-side state of one parallel_for call. The pool reuses its threads
/// across calls; each call installs a fresh Job, wakes the workers, and
/// waits until every dispatched item has finished.
struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;    // workers wait here for a job
  std::condition_variable done;    // parallel_for waits here for completion
  std::vector<std::thread> workers;

  // Current job; guarded by mutex except where noted.
  const std::function<void(long)>* fn = nullptr;
  runctl::RunControl* control = nullptr;
  long count = 0;
  std::atomic<long> next{0};       // dispatch counter (lock-free hot path)
  long active = 0;                 // workers currently inside the job
  std::uint64_t generation = 0;    // bumped per job so workers never rerun one
  bool shutdown = false;

  // Lowest-index exception of the job, if any.
  long error_index = -1;
  std::exception_ptr error;

  void record_error(long index, std::exception_ptr e) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (error_index < 0 || index < error_index) {
      error_index = index;
      error = std::move(e);
    }
  }

  /// Claims and runs items until the range is exhausted or a stop is
  /// requested. `my_control` must be a private copy per worker (the poll
  /// stride inside RunControl is not shareable).
  void drain(runctl::RunControl my_control, bool has_control) {
    while (true) {
      if (has_control && my_control.stop_requested()) return;
      const long i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*fn)(i);
      } catch (...) {
        record_error(i, std::current_exception());
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(long)>* job;
      runctl::RunControl my_control;
      bool has_control;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        job = fn;
        has_control = control != nullptr;
        if (has_control) my_control = *control;
        ++active;
      }
      if (job != nullptr) drain(my_control, has_control);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        --active;
      }
      done.notify_one();
    }
  }
};

ThreadPool::ThreadPool(int threads) {
  threads_ = resolve_thread_count(threads);
  if (threads_ <= 1) {
    threads_ = 1;
    return;  // inline pool: no workers, no Impl
  }
  impl_ = new Impl;
  impl_->workers.reserve(static_cast<std::size_t>(threads_));
  try {
    for (int i = 0; i < threads_; ++i)
      impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  } catch (...) {
    // Thread creation failed (resource limits): keep whatever started.
    if (impl_->workers.empty()) {
      delete impl_;
      impl_ = nullptr;
      threads_ = 1;
    } else {
      threads_ = static_cast<int>(impl_->workers.size());
    }
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

bool ThreadPool::parallel_for(long count,
                              const std::function<void(long)>& fn,
                              runctl::RunControl* control) {
  XLP_REQUIRE(count >= 0, "parallel_for needs a non-negative item count");
  if (count == 0) return true;

  if (impl_ == nullptr) {
    // Sequential path: index order, no threads — bit-identical to a loop.
    runctl::RunControl my_control;
    if (control != nullptr) my_control = *control;
    long i = 0;
    for (; i < count; ++i) {
      if (control != nullptr && my_control.stop_requested()) break;
      fn(i);
    }
    return i == count;
  }

  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->fn = &fn;
    impl_->control = control;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->error_index = -1;
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  // The calling thread works too: one extra lane, and a pool used from a
  // pool-less context still makes progress if workers are saturated.
  runctl::RunControl my_control;
  if (control != nullptr) my_control = *control;
  impl_->drain(my_control, control != nullptr);

  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done.wait(lock, [&] { return impl_->active == 0; });
  impl_->fn = nullptr;
  impl_->control = nullptr;
  const bool complete =
      impl_->next.load(std::memory_order_relaxed) >= count &&
      impl_->error_index < 0;
  if (impl_->error) {
    std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
  return complete;
}

}  // namespace xlp::util
