#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace xlp {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the toolkit (simulated annealing, traffic
/// injection, application models) draws from an explicitly seeded Rng so
/// that experiments are reproducible bit-for-bit across runs and platforms.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state via SplitMix64, as recommended by the
  /// xoshiro authors; any 64-bit seed (including 0) yields a good stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire) so the distribution is exactly uniform.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Forks an independent stream: deterministic function of this generator's
  /// current state and the stream id, without advancing this generator more
  /// than one step.
  Rng fork(std::uint64_t stream_id) noexcept;

  /// The four raw state words, for checkpointing. set_state() restores a
  /// generator to an exact earlier point so a resumed run draws the same
  /// stream bit-for-bit.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept;
  void set_state(const std::array<std::uint64_t, 4>& words) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace xlp
