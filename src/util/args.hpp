#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xlp {

/// Minimal command-line parser for the tools: positional arguments plus
/// `--key value` options and `--flag` booleans. No external dependencies,
/// deterministic error messages.
class Args {
 public:
  /// Parses argv[1..]. A token starting with "--" is an option; it consumes
  /// the next token as its value unless that token also starts with "--"
  /// or is absent (then it is a boolean flag). Everything else is
  /// positional.
  Args(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& key) const;

  /// Value of `--key`; nullopt when absent or boolean.
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_or(const std::string& key,
                                   const std::string& fallback) const;
  [[nodiscard]] long get_long(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

  /// Keys that were provided but never queried — call after parsing all
  /// known options to reject typos.
  [[nodiscard]] std::vector<std::string> unknown_keys() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // "" marks boolean flags
  mutable std::map<std::string, bool> queried_;
};

}  // namespace xlp
