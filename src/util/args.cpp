#include "util/args.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace xlp {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      XLP_REQUIRE(!key.empty(), "bare '--' is not a valid option");
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[key] = argv[++i];
      } else {
        options_[key] = "";
      }
    } else {
      positional_.push_back(token);
    }
  }
}

bool Args::has(const std::string& key) const {
  queried_[key] = true;
  return options_.count(key) > 0;
}

std::optional<std::string> Args::get(const std::string& key) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& key,
                         const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long Args::get_long(const std::string& key, long fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value->c_str(), &end, 10);
  XLP_REQUIRE(end && *end == '\0', "option --" + key + " needs an integer");
  return parsed;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  XLP_REQUIRE(end && *end == '\0', "option --" + key + " needs a number");
  return parsed;
}

std::vector<std::string> Args::unknown_keys() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : options_)
    if (!queried_.count(key)) unknown.push_back(key);
  return unknown;
}

}  // namespace xlp
