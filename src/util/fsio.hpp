#pragma once

#include <optional>
#include <string>

namespace xlp::util {

/// Creates any missing parent directories of `path` so a subsequent open
/// for writing can succeed (no-op when the path has no directory
/// component). Returns false, without throwing, when creation failed.
bool ensure_parent_dir(const std::string& path) noexcept;

/// Crash-safe whole-file write: the content goes to a temporary file in
/// the same directory, is fsync'd to stable storage, renamed over `path`,
/// and the parent directory is fsync'd so the rename itself is durable.
/// A crash (or kill) at any point leaves either the old file or the new
/// one — never a truncated hybrid that would poison a reader like
/// bench_diff or a checkpoint load.
///
/// Durability contract: when this returns true, `path` holds the complete
/// new content and survives an immediate power loss; when it returns
/// false (or the process dies mid-call), the previous content — or the
/// file's absence — is untouched on disk.
///
/// Missing parent directories are created. Safe to call concurrently from
/// several threads or processes targeting the same path: temp names are
/// pid+sequence unique, so the writers never clobber each other and the
/// published file is always one writer's complete document. Returns
/// false, without throwing, on any failure (the temporary file is removed
/// best-effort).
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     const std::string& content) noexcept;

/// Reads a whole file into a string; nullopt when it cannot be opened or
/// read.
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

}  // namespace xlp::util
