#include "util/error.hpp"

#include <utility>

namespace xlp {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUsage: return "usage error";
    case ErrorCode::kIo: return "i/o error";
    case ErrorCode::kParse: return "parse error";
    case ErrorCode::kSchema: return "schema error";
    case ErrorCode::kVersion: return "version error";
    case ErrorCode::kState: return "state error";
    case ErrorCode::kInternal: return "internal error";
  }
  return "error";
}

Error::Error(ErrorCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  rebuild_what();
}

Error& Error::with_context(std::string frame) {
  context_.push_back(std::move(frame));
  rebuild_what();
  return *this;
}

void Error::rebuild_what() {
  what_ = error_code_name(code_);
  what_ += ": ";
  what_ += message_;
  if (!context_.empty()) {
    what_ += " (";
    for (std::size_t i = 0; i < context_.size(); ++i) {
      if (i > 0) what_ += "; ";
      what_ += "while ";
      what_ += context_[i];
    }
    what_ += ")";
  }
}

}  // namespace xlp
