#pragma once

#include "core/drivers.hpp"
#include "core/objective.hpp"
#include "util/rng.hpp"

namespace xlp::core {

/// Greedy long-range link insertion in the style of Ogras & Marculescu
/// [21] (the application-specific predecessor the paper cites), adapted to
/// the cross-section constraint: repeatedly add the single express link
/// that most reduces the objective, among links that keep every cut within
/// the limit; stop when no link improves. Deterministic; O(n^2) candidate
/// evaluations per inserted link.
[[nodiscard]] PlacementResult solve_greedy_insertion(
    const RowObjective& objective, int link_limit);

/// Steepest-descent hill climbing over the connection-matrix space with
/// random restarts: from a random matrix, repeatedly flip the single bit
/// with the best improvement; on a local minimum, restart. Stops when the
/// evaluation budget is exhausted. The natural "no-temperature" ablation
/// of the annealer.
[[nodiscard]] PlacementResult solve_hill_climb(const RowObjective& objective,
                                               int link_limit,
                                               long max_evaluations,
                                               Rng& rng);

/// Genetic-algorithm parameters. The default population/rates follow
/// common practice for bit-string GAs; the mutation rate defaults to
/// 1/bit_count at run time when left at 0.
struct GaParams {
  int population = 32;
  int tournament = 2;
  double crossover_rate = 0.9;
  double mutation_rate = 0.0;  // 0 = auto (1 / bit_count)
  int elites = 2;
  long max_evaluations = 10000;
};

/// Genetic algorithm over connection matrices: tournament selection,
/// uniform crossover, per-bit mutation, elitism. Every individual is a
/// valid placement by construction (the same property the SA leans on).
[[nodiscard]] PlacementResult solve_ga(const RowObjective& objective,
                                       int link_limit, const GaParams& params,
                                       Rng& rng);

}  // namespace xlp::core
