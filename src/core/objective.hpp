#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "route/directional_paths.hpp"
#include "topo/row_topology.hpp"

namespace xlp::core {

class DeltaRowObjective;

/// The quantity P̄(n, C) minimizes: average head latency between router
/// pairs of one row (Section 4.2). Uniform weighting is the paper's
/// general-purpose objective; a weight matrix turns it into the
/// application-specific objective of Section 5.6.4.
///
/// Constant offsets shared by all placements (the destination-router cycle,
/// serialization, the column contribution) are deliberately excluded — they
/// do not change the argmin.
///
/// The evaluation counter tracks how many placements have been scored; the
/// paper's Fig. 7 and Fig. 12 report runtimes of algorithms whose cost is
/// dominated by exactly these evaluations, so the counter doubles as a
/// machine-independent runtime unit.
class RowObjective {
 public:
  /// Uniform pairwise objective for rows of n routers.
  RowObjective(int n, route::HopWeights weights);

  /// Weighted objective: `weights[i*n + j]` is the traffic demand from
  /// position i to position j within the row. If every off-diagonal weight
  /// is zero the objective falls back to uniform (placement is then
  /// irrelevant for this row, but evaluation must still be well-defined).
  RowObjective(int n, route::HopWeights weights,
               std::vector<double> pair_weights);

  [[nodiscard]] int row_size() const noexcept { return n_; }
  [[nodiscard]] const route::HopWeights& hop_weights() const noexcept {
    return hop_;
  }

  /// Scores a placement (lower is better). The row must have n routers.
  /// With a non-zero worst-case weight w, the score is
  /// (1-w)*average + w*max over pairs — a Table-2-aware variant that trades
  /// a little average latency for a better worst case.
  [[nodiscard]] double evaluate(const topo::RowTopology& row) const;

  /// Sets the worst-case blend weight, in [0, 1]. 0 (the default) is the
  /// paper's pure-average objective.
  void set_worst_case_weight(double weight);
  [[nodiscard]] double worst_case_weight() const noexcept {
    return worst_weight_;
  }

  /// Blends a secondary row metric into the score:
  ///   (1 - weight) * primary + weight * metric(row).
  /// The fault subsystem uses this for reliability-aware placement (metric =
  /// degraded latency under link failures), but any row-scored criterion
  /// works. The metric must be size-agnostic — divide-and-conquer applies
  /// the objective to sub-rows. A zero weight (the default) disables the
  /// blend; passing weight 0 clears the metric.
  void set_secondary(double weight,
                     std::function<double(const topo::RowTopology&)> metric);
  [[nodiscard]] double secondary_weight() const noexcept {
    return secondary_weight_;
  }

  /// True when the objective weights all pairs equally (the general-purpose
  /// case); lets the divide-and-conquer initializer reuse a half-solution
  /// for both halves.
  [[nodiscard]] bool is_uniform() const noexcept {
    return pair_weights_.empty() || weights_all_zero_;
  }

  /// Number of evaluate() calls so far, *including* calls made through
  /// sub-objectives derived with sub_objective() — the divide-and-conquer
  /// initializer's recursive work is part of its runtime — and incremental
  /// scores produced by a DeltaRowObjective built over this objective.
  /// Thread-safe: portfolio chains share one root objective across the
  /// thread pool, so the counter uses relaxed atomic increments (each
  /// increment is an independent tally; no ordering is implied).
  [[nodiscard]] long evaluations() const noexcept {
    return evals_->load(std::memory_order_relaxed);
  }
  void reset_evaluations() noexcept {
    evals_->store(0, std::memory_order_relaxed);
  }

  /// True when evaluate() can be reproduced incrementally by a
  /// DeltaRowObjective: uniform, weighted, and worst-case-blend objectives
  /// qualify; a secondary-metric blend (set_secondary) scores an opaque
  /// row-level function and forces full evaluation.
  [[nodiscard]] bool delta_supported() const noexcept {
    return secondary_weight_ <= 0.0;
  }

  /// Objective for the sub-row covering positions [lo, lo+len): uniform
  /// objectives are position-independent; weighted objectives slice the
  /// weight matrix. Used by the divide-and-conquer initializer.
  [[nodiscard]] RowObjective sub_objective(int lo, int len) const;

 private:
  // The incremental evaluator reproduces evaluate() from cached per-pair
  // costs; it needs the blend weights, the shared counter, and the
  // uncounted evaluation below for its XLP_CHECK_DELTA lockstep mode.
  friend class DeltaRowObjective;

  /// evaluate() without the precondition and counter bump: the
  /// cross-check path scores a placement the delta evaluator already
  /// counted, so counting again would double evaluations().
  [[nodiscard]] double evaluate_uncounted(const topo::RowTopology& row) const;

  void count_evaluation() const noexcept {
    evals_->fetch_add(1, std::memory_order_relaxed);
  }

  int n_;
  route::HopWeights hop_;
  std::vector<double> pair_weights_;  // empty => uniform
  bool weights_all_zero_ = false;
  double worst_weight_ = 0.0;
  double secondary_weight_ = 0.0;
  std::function<double(const topo::RowTopology&)> secondary_;
  // Shared with sub-objectives so recursive work is attributed to the root.
  std::shared_ptr<std::atomic<long>> evals_ =
      std::make_shared<std::atomic<long>>(0);
};

}  // namespace xlp::core
