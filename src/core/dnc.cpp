#include "core/dnc.hpp"

#include <limits>
#include <optional>

#include "core/branch_bound.hpp"
#include "core/delta_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace xlp::core {

namespace {

topo::RowTopology concat_halves(const topo::RowTopology& left,
                                const topo::RowTopology& right, int n) {
  std::vector<topo::RowLink> links = left.express_links();
  const int offset = left.size();
  for (const topo::RowLink& link : right.express_links())
    links.push_back({link.lo + offset, link.hi + offset});
  return topo::RowTopology(n, std::move(links));
}

topo::RowTopology solve_recursive(const RowObjective& objective,
                                  int link_limit, const DncOptions& options) {
  const int n = objective.row_size();
  if (link_limit <= 1 || n <= 2) return topo::RowTopology(n);
  if (options.control != nullptr && options.control->stop_requested())
    return topo::RowTopology(n);  // feasible fallback: the plain row
  if (n <= options.bb_threshold) {
    const obs::ProfileScope leaf_scope("dnc.bb_leaf");
    BranchAndBound bb(objective, link_limit, options.control);
    return bb.solve().placement;
  }

  const int half = n / 2;
  const RowObjective left_obj = objective.sub_objective(0, half);
  const RowObjective right_obj = objective.sub_objective(half, n - half);

  const topo::RowTopology left =
      solve_recursive(left_obj, link_limit - 1, options);
  // The paper's footnote: when both halves have the same size (and the
  // objective treats positions identically) the first half's placement is
  // reused directly.
  const topo::RowTopology right =
      (objective.is_uniform() && half == n - half)
          ? left
          : solve_recursive(right_obj, link_limit - 1, options);

  const topo::RowTopology base = concat_halves(left, right, n);

  const obs::ProfileScope merge_scope("dnc.merge");
  double best_value = objective.evaluate(base);  // the adjacent-pair case
  std::optional<topo::RowLink> best_link;
  // Every candidate is `base` plus one cross link, so the incremental
  // evaluator recomputes only the spans containing that link instead of
  // rebuilding shortest paths per candidate. Scores are bit-identical to
  // objective.evaluate(candidate), so the selected link cannot change.
  std::optional<DeltaRowObjective> scan;
  if (options.delta_eval) scan.emplace(objective, base);
  for (int i = 0; i < half; ++i) {
    if (options.control != nullptr && options.control->stop_requested())
      break;  // keep the best merge candidate evaluated so far
    for (int j = half; j < n; ++j) {
      if (j - i < 2) continue;  // adjacent: covered by the base candidate
      double value;
      if (scan.has_value()) {
        value = scan->propose_add({i, j});
        scan->revert();
      } else {
        topo::RowTopology candidate = base;
        candidate.add_express({i, j});
        value = objective.evaluate(candidate);
      }
      if (value < best_value) {
        best_value = value;
        best_link = topo::RowLink{i, j};
      }
    }
  }
  if (!best_link.has_value()) return base;
  topo::RowTopology best = base;
  best.add_express(*best_link);
  return best;
}

}  // namespace

DncResult dnc_initial_solution(const RowObjective& objective, int link_limit,
                               const DncOptions& options) {
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("core.dnc.runs");
  const obs::ScopedTimer timer(metrics, "core.dnc.seconds");
  const obs::ProfileScope profile_scope("dnc.initial");
  topo::RowTopology placement =
      solve_recursive(objective, link_limit, options);
  XLP_CHECK(placement.fits_link_limit(link_limit),
            "divide-and-conquer produced an infeasible placement");
  const double value = objective.evaluate(placement);
  DncResult result{std::move(placement), value};
  if (options.control != nullptr) result.status = options.control->status();
  return result;
}

}  // namespace xlp::core
