#include "core/objective.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xlp::core {

RowObjective::RowObjective(int n, route::HopWeights weights)
    : n_(n), hop_(weights) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
}

RowObjective::RowObjective(int n, route::HopWeights weights,
                           std::vector<double> pair_weights)
    : n_(n), hop_(weights), pair_weights_(std::move(pair_weights)) {
  XLP_REQUIRE(n >= 2, "a row needs at least two routers");
  XLP_REQUIRE(pair_weights_.size() ==
                  static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
              "pair weights must be n*n, flattened row-major");
  double off_diag = 0.0;
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j) {
      const double w = pair_weights_[static_cast<std::size_t>(i) * n_ + j];
      XLP_REQUIRE(w >= 0.0, "pair weights must be non-negative");
      if (i != j) off_diag += w;
    }
  weights_all_zero_ = off_diag <= 0.0;
}

void RowObjective::set_worst_case_weight(double weight) {
  XLP_REQUIRE(weight >= 0.0 && weight <= 1.0,
              "worst-case weight must be in [0, 1]");
  worst_weight_ = weight;
}

void RowObjective::set_secondary(
    double weight, std::function<double(const topo::RowTopology&)> metric) {
  XLP_REQUIRE(weight >= 0.0 && weight <= 1.0,
              "secondary weight must be in [0, 1]");
  XLP_REQUIRE(weight == 0.0 || metric,
              "a positive secondary weight needs a metric");
  secondary_weight_ = weight;
  secondary_ = weight > 0.0 ? std::move(metric) : nullptr;
}

double RowObjective::evaluate(const topo::RowTopology& row) const {
  XLP_REQUIRE(row.size() == n_, "placement size does not match objective");
  count_evaluation();
  return evaluate_uncounted(row);
}

double RowObjective::evaluate_uncounted(const topo::RowTopology& row) const {
  const route::DirectionalShortestPaths paths(row, hop_);
  const double average = (pair_weights_.empty() || weights_all_zero_)
                             ? paths.average_cost()
                             : paths.weighted_average_cost(pair_weights_);
  double primary = average;
  if (worst_weight_ > 0.0)
    primary =
        (1.0 - worst_weight_) * average + worst_weight_ * paths.max_cost();
  if (secondary_weight_ <= 0.0) return primary;
  return (1.0 - secondary_weight_) * primary +
         secondary_weight_ * secondary_(row);
}

RowObjective RowObjective::sub_objective(int lo, int len) const {
  XLP_REQUIRE(lo >= 0 && len >= 2 && lo + len <= n_,
              "sub-row out of range");
  RowObjective sub = [&] {
    if (pair_weights_.empty()) return RowObjective(len, hop_);
    std::vector<double> w(static_cast<std::size_t>(len) * len, 0.0);
    for (int i = 0; i < len; ++i)
      for (int j = 0; j < len; ++j)
        w[static_cast<std::size_t>(i) * len + j] =
            pair_weights_[static_cast<std::size_t>(lo + i) * n_ + (lo + j)];
    return RowObjective(len, hop_, std::move(w));
  }();
  sub.evals_ = evals_;  // attribute recursive work to the root objective
  sub.worst_weight_ = worst_weight_;
  sub.secondary_weight_ = secondary_weight_;
  sub.secondary_ = secondary_;
  return sub;
}

}  // namespace xlp::core
