#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/objective.hpp"
#include "topo/connection_matrix.hpp"
#include "topo/row_topology.hpp"

namespace xlp::core {

/// Incremental (delta) evaluation of a RowObjective for single-link
/// neighborhood moves — the SA inner loop's "flip one connection point" and
/// the divide-and-conquer merge's "add one cross link".
///
/// RowObjective::evaluate rebuilds DirectionalShortestPaths from scratch:
/// O(n^2 · degree) relaxations plus a decode and per-router adjacency
/// allocations, on every move. This class caches the full per-pair span
/// table (cost / hops / next-hop, exactly the cells the full DP produces)
/// for the *current* placement and, when one link is added or removed,
/// recomputes only the pairs whose span contains a changed link: a
/// monotone path from i to j never leaves [i, j], so a pair (i, j) with no
/// changed link inside its span keeps its cached cells verbatim. The
/// objective reduction (uniform / weighted average, worst-case blend) is
/// then re-run over the cached table in the full evaluator's exact
/// summation order.
///
/// Exactness contract: every score this class returns is bit-identical to
/// what RowObjective::evaluate would return on the same placement — same
/// relaxation (route::detail::relax_monotone, shared code), same
/// tie-breaks, same summation order — so an anneal driven by it accepts
/// the same moves, visits the same states, and emits byte-identical
/// checkpoints and results. Set XLP_CHECK_DELTA=1 to run the full
/// evaluator in lockstep and abort (InvariantError) on any divergence.
///
/// Objectives with a secondary-metric blend (RowObjective::set_secondary)
/// score an opaque row-level function that cannot be maintained span-wise;
/// for those this class transparently falls back to full evaluation
/// (incremental() reports false), so call sites stay uniform.
///
/// Evaluation accounting: every propose_* call bumps the owning
/// objective's evaluations() counter by exactly one, the same as one
/// evaluate() call — Fig. 7 / Fig. 12 runtime units and SA checkpoints are
/// unchanged. Construction counts nothing.
///
/// Not thread-safe; build one per annealing loop (portfolio chains each
/// build their own, sharing only the atomic counter).
class DeltaRowObjective {
 public:
  /// Span cache over `state.decode()` for the SA connection-matrix loop.
  /// The matrix is copied; drive it exclusively through propose_flip /
  /// commit / revert.
  DeltaRowObjective(const RowObjective& objective,
                    const topo::ConnectionMatrix& state);

  /// Span cache over an explicit placement for the D&C merge scan.
  DeltaRowObjective(const RowObjective& objective, topo::RowTopology base);

  [[nodiscard]] int row_size() const noexcept { return n_; }

  /// False when the objective forced the full-evaluation fallback.
  [[nodiscard]] bool incremental() const noexcept { return incremental_; }

  /// Score of the placement with connection point `flat_idx` flipped
  /// (matrix mode only). Counts one evaluation. The proposal stays pending
  /// until commit() or revert(); exactly one of them must be called before
  /// the next propose_*.
  [[nodiscard]] double propose_flip(int flat_idx);

  /// Score of the placement with one `link` instance added (topology mode
  /// only). Counts one evaluation. Pending like propose_flip.
  [[nodiscard]] double propose_add(topo::RowLink link);

  /// Accepts the pending proposal: the proposed placement becomes current.
  void commit();

  /// Rejects the pending proposal: restores every cached cell and
  /// adjacency entry the proposal touched.
  void revert();

 private:
  struct CellSave {
    std::size_t at = 0;
    std::size_t mirror = 0;  // idx of the opposite-direction cell
    double cost = 0.0;
    int hops = 0;
    int next = 0;
  };
  struct RowSave {
    int row = 0;
    double part = 0.0;
  };
  struct LinkChange {
    topo::RowLink link;
    int delta = 0;  // +1 added, -1 removed
  };

  [[nodiscard]] std::size_t idx(int i, int j) const noexcept {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(j);
  }

  void build_tables(const topo::RowTopology& row);
  void mark_row(int r);
  bool apply_link(topo::RowLink link, int delta);
  void recompute_affected();
  void apply_light(std::uint32_t entry, int span);
  void propagate_light(int src, int dst, bool leftward, double cost);
  void recompute_right(int i, int j);
  void recompute_left(int i, int j);
  [[nodiscard]] double reduce_and_count();
  [[nodiscard]] double checked(double value) const;
  void flip_matrix_links(int flat_idx, std::vector<LinkChange>& out);

  const RowObjective* objective_;
  int n_;
  route::HopWeights hop_;
  bool incremental_;
  bool check_;  // XLP_CHECK_DELTA lockstep mode
  // Mirror mode (integer-valued hop weights, i.e. every configuration in
  // this repo): every leftward monotone path is the reverse of a rightward
  // one with the same links, and with integer cycle costs every path sum
  // is exact in a double, so the leftward (cost, hops) table is the
  // bitwise transpose of the rightward one at every state — lexicographic
  // (cost, hops) optimality survives reversal; only the first-hop-length
  // tie-break (which picks next_, never read by the reduction) differs.
  // The incremental cascade then runs in the rightward direction only and
  // transposes each changed cell into its leftward slot afterwards,
  // halving the event count. Leftward next_ entries go stale in this mode;
  // nothing reads them. Non-integer weights (where reversed FP sums could
  // round differently) keep the full two-direction cascade.
  bool mirror_ = false;
  bool pending_ = false;

  // Matrix mode: the mutable SA state; flips are applied at propose time
  // and undone by revert. Topology mode: disengaged.
  std::optional<topo::ConnectionMatrix> matrix_;
  // Topology mode (and its fallback): the placement, with the pending link
  // present between propose_add and commit/revert. Matrix mode: unused.
  topo::RowTopology row_;
  int pending_bit_ = -1;
  std::optional<topo::RowLink> pending_link_;

  // Span cache, same layout and contents as DirectionalShortestPaths.
  std::vector<double> cost_;
  std::vector<int> hops_;
  std::vector<int> next_;
  // Express-link multiplicity per (lo, hi) pair and the derived per-router
  // directional neighbor lists (sorted, unique, local neighbor included) —
  // exactly RowTopology::neighbors_right/left without the allocations.
  std::vector<int> link_count_;
  std::vector<std::vector<int>> right_;
  std::vector<std::vector<int>> left_;

  // Worklist machinery for the event-driven recompute (see
  // recompute_affected), indexed by span. "Full" entries are cells that
  // must re-scan their whole candidate list (their stored winner was
  // removed or got worse); "light" entries carry one candidate whose value
  // changed (or that was just added) and resolve with a single relaxation
  // against the stored cell. Entry packing: bit 0 = direction (0 rightward,
  // 1 leftward), bits 1..15 = the cell's smaller endpoint, bits 16..31 =
  // the candidate router (light entries only).
  std::vector<std::vector<std::uint32_t>> buckets_full_;
  std::vector<std::vector<std::uint32_t>> buckets_light_;

  // Cached reduction state mirroring the two-level summation order of
  // DirectionalShortestPaths::average_cost / weighted_average_cost: one
  // partial per source row (uniform: sum of costs; weighted: sum of
  // w * cost), the constant weight sum, and a dirty-row bitmask so each
  // propose refreshes only the row partials its cell updates touched. A
  // row whose cells kept their cost bits yields a bitwise-identical
  // partial, so the cached value stands in for the full evaluator's.
  bool uniform_ = true;
  double wsum_ = 0.0;
  std::vector<double> row_part_;
  std::vector<std::uint64_t> row_dirty_;
  // Preallocated to n_ entries (one propose saves each row at most once);
  // saved_rows_n_ is the bump index, like saved_cells_n_.
  std::vector<RowSave> saved_rows_;
  std::size_t saved_rows_n_ = 0;

  // Undo logs for the pending proposal. toggled_ keeps the subset of
  // pending_changes_ that actually changed adjacency (multiplicity crossed
  // 0 <-> 1); a duplicate-link change routes nothing differently and
  // triggers no recomputation at all. The cell log is a preallocated
  // buffer indexed by saved_cells_n_ — the hot path writes through a
  // bounds-checked bump index (save_cell) instead of push_back, whose
  // out-of-line grow path costs more than the save itself.
  std::vector<CellSave> saved_cells_;
  std::size_t saved_cells_n_ = 0;
  std::vector<LinkChange> pending_changes_;
  std::vector<LinkChange> toggled_;

  void save_cell(std::size_t at, std::size_t mirror_at) {
    if (saved_cells_n_ == saved_cells_.size())
      saved_cells_.resize(saved_cells_.size() * 2);
    CellSave& s = saved_cells_[saved_cells_n_++];
    s.at = at;
    s.mirror = mirror_at;
    s.cost = cost_[at];
    s.hops = hops_[at];
    s.next = next_[at];
  }
};

}  // namespace xlp::core
