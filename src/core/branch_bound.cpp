#include "core/branch_bound.hpp"

#include <limits>

#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace xlp::core {

BranchAndBound::BranchAndBound(const RowObjective& objective, int link_limit,
                               runctl::RunControl* control)
    : objective_(objective),
      n_(objective.row_size()),
      link_limit_(link_limit),
      control_(control),
      cut_express_(static_cast<std::size_t>(n_ > 1 ? n_ - 1 : 0), 0),
      current_(n_),
      best_(n_),
      best_value_(std::numeric_limits<double>::infinity()) {
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  for (int i = 0; i < n_; ++i)
    for (int j = i + 2; j < n_; ++j) candidates_.push_back({i, j});
  lower_bound_ = direct_connection_bound();
}

double BranchAndBound::direct_connection_bound() const {
  // If every ordered pair were one hop apart, the head cost of (i,j) would
  // be Tr + Tl*|i-j|; no placement can beat the (weighted) average of that.
  const auto& w = objective_.hop_weights();
  // Evaluate through a fully connected row: a single evaluation, exact.
  std::vector<topo::RowLink> full;
  for (int i = 0; i < n_; ++i)
    for (int j = i + 2; j < n_; ++j) full.push_back({i, j});
  (void)w;
  const topo::RowTopology clique(n_, std::move(full));
  return objective_.evaluate(clique);
}

ExactResult BranchAndBound::solve() {
  const obs::ProfileScope profile_scope("bb.solve");
  best_value_ = objective_.evaluate(current_);
  best_ = current_;
  nodes_ = 0;
  stopped_ = false;
  dfs(0);
  ExactResult result{best_, best_value_, nodes_};
  if (stopped_ && control_ != nullptr) result.status = control_->status();
  return result;
}

void BranchAndBound::dfs(std::size_t next_candidate) {
  if (stopped_) return;
  if (control_ != nullptr && control_->stop_requested()) {
    stopped_ = true;
    return;
  }
  ++nodes_;
  const double value = objective_.evaluate(current_);
  if (value < best_value_) {
    best_value_ = value;
    best_ = current_;
  }
  // The incumbent already matches the strongest possible relaxation: no
  // superset can improve on it.
  if (best_value_ <= lower_bound_ + 1e-12) return;

  for (std::size_t c = next_candidate; c < candidates_.size(); ++c) {
    if (stopped_) return;
    const topo::RowLink link = candidates_[c];
    bool fits = true;
    for (int cut = link.lo; cut < link.hi; ++cut) {
      if (cut_express_[static_cast<std::size_t>(cut)] + 1 >
          link_limit_ - 1) {  // one layer is reserved for the local link
        fits = false;
        break;
      }
    }
    if (!fits) continue;
    for (int cut = link.lo; cut < link.hi; ++cut)
      ++cut_express_[static_cast<std::size_t>(cut)];
    current_.add_express(link);
    dfs(c + 1);
    current_.remove_express(link);
    for (int cut = link.lo; cut < link.hi; ++cut)
      --cut_express_[static_cast<std::size_t>(cut)];
  }
}

}  // namespace xlp::core
