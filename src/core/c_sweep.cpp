#include "core/c_sweep.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xlp::core {

latency::LatencyBreakdown evaluate_design(
    const topo::ExpressMesh& design, const latency::LatencyParams& params,
    const std::optional<traffic::TrafficMatrix>& report_traffic) {
  const latency::MeshLatencyModel model(design, params);
  if (report_traffic) {
    XLP_REQUIRE(report_traffic->width() == design.width() &&
                    report_traffic->height() == design.height(),
                "traffic matrix dimensions do not match the design");
    return model.weighted_average(report_traffic->rates());
  }
  return model.average();
}

std::vector<SweepPoint> sweep_link_limits(int n, const SweepOptions& options,
                                          Rng& rng) {
  XLP_REQUIRE(n >= 2, "network side must be at least 2");
  const RowObjective objective(n, options.latency.hop);

  std::vector<SweepPoint> points;
  for (const int limit : topo::valid_link_limits(n)) {
    if (options.base_flit_bits % limit != 0) continue;

    PlacementResult placement = [&] {
      switch (options.solver) {
        case Solver::kOnlySa:
          return solve_only_sa(objective, limit, options.sa, rng);
        case Solver::kDncOnly:
          return solve_dnc_only(objective, limit, options.dnc);
        case Solver::kDcsa:
        default:
          return solve_dcsa(objective, limit, options.sa, rng, options.dnc);
      }
    }();

    topo::ExpressMesh design = topo::make_design(placement.placement, limit,
                                                 options.base_flit_bits);
    latency::LatencyBreakdown breakdown =
        evaluate_design(design, options.latency, options.report_traffic);
    points.push_back({limit, std::move(placement), std::move(design),
                      breakdown});
  }
  XLP_CHECK(!points.empty(), "no feasible link limit found");
  return points;
}

std::vector<SweepPoint> sweep_link_limits_rect(int width, int height,
                                               const SweepOptions& options,
                                               Rng& rng) {
  XLP_REQUIRE(width >= 2 && height >= 2,
              "network dimensions must be at least 2");
  const RowObjective row_objective(width, options.latency.hop);
  const RowObjective col_objective(height, options.latency.hop);

  auto solve = [&](const RowObjective& objective, int limit) {
    switch (options.solver) {
      case Solver::kOnlySa:
        return solve_only_sa(objective, limit, options.sa, rng);
      case Solver::kDncOnly:
        return solve_dnc_only(objective, limit, options.dnc);
      case Solver::kDcsa:
      default:
        return solve_dcsa(objective, limit, options.sa, rng, options.dnc);
    }
  };

  std::vector<SweepPoint> points;
  for (const int limit : topo::valid_link_limits(std::max(width, height))) {
    if (options.base_flit_bits % limit != 0) continue;

    // Each dimension can only use cross-section up to its own C_full.
    const int row_limit = std::min(limit, topo::full_link_limit(width));
    const int col_limit = std::min(limit, topo::full_link_limit(height));
    PlacementResult row_placement = solve(row_objective, row_limit);
    PlacementResult col_placement = solve(col_objective, col_limit);

    topo::ExpressMesh design = topo::make_rect_design(
        row_placement.placement, col_placement.placement, limit,
        options.base_flit_bits);
    latency::LatencyBreakdown breakdown =
        evaluate_design(design, options.latency, options.report_traffic);
    SweepPoint point;
    point.link_limit = limit;
    point.placement = std::move(row_placement);
    point.placement.evaluations += col_placement.evaluations;
    point.design = std::move(design);
    point.breakdown = breakdown;
    points.push_back(std::move(point));
  }
  XLP_CHECK(!points.empty(), "no feasible link limit found");
  return points;
}

std::size_t best_point(const std::vector<SweepPoint>& points) {
  XLP_REQUIRE(!points.empty(), "empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].breakdown.total() < points[best].breakdown.total())
      best = i;
  return best;
}

}  // namespace xlp::core
