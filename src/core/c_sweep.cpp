#include "core/c_sweep.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace xlp::core {

namespace {

/// Feasible sweep cells: the valid link limits that keep the flit an
/// integer number of bits.
std::vector<int> feasible_limits(int n, int base_flit_bits) {
  std::vector<int> limits;
  for (const int limit : topo::valid_link_limits(n))
    if (base_flit_bits % limit == 0) limits.push_back(limit);
  return limits;
}

PlacementResult solve_cell(const RowObjective& objective, int limit,
                           const SweepOptions& options, const SaParams& sa,
                           const DncOptions& dnc, Rng& rng) {
  switch (options.solver) {
    case Solver::kOnlySa:
      return solve_only_sa(objective, limit, sa, rng);
    case Solver::kDncOnly:
      return solve_dnc_only(objective, limit, dnc);
    case Solver::kDcsa:
    default:
      return solve_dcsa(objective, limit, sa, rng, dnc);
  }
}

/// Per-cell copies of the caller's run controls. SaParams/DncOptions carry
/// RunControl pointers whose poll stride is thread-local state, so a cell
/// running on a pool worker must never share the caller's object — it
/// copies it (token/deadline stay shared) and repoints the params.
struct CellControl {
  runctl::RunControl sa_control;
  runctl::RunControl dnc_control;
  SaParams sa;
  DncOptions dnc;

  CellControl(const SweepOptions& options) : sa(options.sa), dnc(options.dnc) {
    if (options.sa.control != nullptr) {
      sa_control = *options.sa.control;
      sa.control = &sa_control;
    }
    if (options.dnc.control != nullptr) {
      dnc_control = *options.dnc.control;
      dnc.control = &dnc_control;
    }
  }
};

}  // namespace

latency::LatencyBreakdown evaluate_design(
    const topo::ExpressMesh& design, const latency::LatencyParams& params,
    const std::optional<traffic::TrafficMatrix>& report_traffic) {
  const latency::MeshLatencyModel model(design, params);
  if (report_traffic) {
    XLP_REQUIRE(report_traffic->width() == design.width() &&
                    report_traffic->height() == design.height(),
                "traffic matrix dimensions do not match the design");
    return model.weighted_average(report_traffic->rates());
  }
  return model.average();
}

std::vector<SweepPoint> sweep_link_limits(int n, const SweepOptions& options,
                                          Rng& rng) {
  XLP_REQUIRE(n >= 2, "network side must be at least 2");
  const std::vector<int> limits = feasible_limits(n, options.base_flit_bits);
  XLP_CHECK(!limits.empty(), "no feasible link limit found");

  // One decorrelated stream per cell, forked up front in cell order: the
  // sweep result is a function of the caller's rng state alone, identical
  // for any thread count, and the caller's rng advances the same way
  // whether or not the cells run concurrently.
  std::vector<Rng> streams;
  streams.reserve(limits.size());
  for (std::size_t i = 0; i < limits.size(); ++i)
    streams.push_back(rng.fork(static_cast<std::uint64_t>(i)));

  std::vector<SweepPoint> points(limits.size());
  util::ThreadPool pool(
      std::min(util::resolve_thread_count(options.threads),
               static_cast<int>(limits.size())));
  pool.parallel_for(static_cast<long>(limits.size()), [&](long i) {
    const int limit = limits[static_cast<std::size_t>(i)];
    // Per-cell objective: its evaluation counter is not shareable across
    // threads (solvers report per-call deltas, so counts are unchanged).
    const RowObjective objective(n, options.latency.hop);
    CellControl cell(options);

    PlacementResult placement =
        solve_cell(objective, limit, options, cell.sa, cell.dnc,
                   streams[static_cast<std::size_t>(i)]);
    topo::ExpressMesh design = topo::make_design(placement.placement, limit,
                                                 options.base_flit_bits);
    latency::LatencyBreakdown breakdown =
        evaluate_design(design, options.latency, options.report_traffic);
    points[static_cast<std::size_t>(i)] = {limit, std::move(placement),
                                           std::move(design), breakdown};
  });
  return points;
}

std::vector<SweepPoint> sweep_link_limits_rect(int width, int height,
                                               const SweepOptions& options,
                                               Rng& rng) {
  XLP_REQUIRE(width >= 2 && height >= 2,
              "network dimensions must be at least 2");
  const std::vector<int> limits =
      feasible_limits(std::max(width, height), options.base_flit_bits);
  XLP_CHECK(!limits.empty(), "no feasible link limit found");

  std::vector<Rng> streams;
  streams.reserve(limits.size());
  for (std::size_t i = 0; i < limits.size(); ++i)
    streams.push_back(rng.fork(static_cast<std::uint64_t>(i)));

  std::vector<SweepPoint> points(limits.size());
  util::ThreadPool pool(
      std::min(util::resolve_thread_count(options.threads),
               static_cast<int>(limits.size())));
  pool.parallel_for(static_cast<long>(limits.size()), [&](long i) {
    const int limit = limits[static_cast<std::size_t>(i)];
    const RowObjective row_objective(width, options.latency.hop);
    const RowObjective col_objective(height, options.latency.hop);
    CellControl cell(options);
    Rng& stream = streams[static_cast<std::size_t>(i)];

    // Each dimension can only use cross-section up to its own C_full; the
    // two solves share the cell's stream sequentially (rows then columns).
    const int row_limit = std::min(limit, topo::full_link_limit(width));
    const int col_limit = std::min(limit, topo::full_link_limit(height));
    PlacementResult row_placement =
        solve_cell(row_objective, row_limit, options, cell.sa, cell.dnc,
                   stream);
    PlacementResult col_placement =
        solve_cell(col_objective, col_limit, options, cell.sa, cell.dnc,
                   stream);

    topo::ExpressMesh design = topo::make_rect_design(
        row_placement.placement, col_placement.placement, limit,
        options.base_flit_bits);
    latency::LatencyBreakdown breakdown =
        evaluate_design(design, options.latency, options.report_traffic);
    SweepPoint point;
    point.link_limit = limit;
    point.placement = std::move(row_placement);
    point.placement.evaluations += col_placement.evaluations;
    point.design = std::move(design);
    point.breakdown = breakdown;
    points[static_cast<std::size_t>(i)] = std::move(point);
  });
  return points;
}

std::size_t best_point(const std::vector<SweepPoint>& points) {
  XLP_REQUIRE(!points.empty(), "empty sweep");
  std::size_t best = 0;
  for (std::size_t i = 1; i < points.size(); ++i)
    if (points[i].breakdown.total() < points[best].breakdown.total())
      best = i;
  return best;
}

}  // namespace xlp::core
