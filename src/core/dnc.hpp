#pragma once

#include "core/objective.hpp"
#include "runctl/control.hpp"
#include "topo/row_topology.hpp"

namespace xlp::core {

/// Divide-and-conquer initial-solution generator, Procedure I(n, C) of
/// Section 4.4.1:
///
///   I(n, C):
///     if n <= bb_threshold or C == 1: solve exactly (branch and bound)
///     else:
///       left  = I(floor(n/2), C-1) on routers [0, floor(n/2))
///       right = I(ceil(n/2),  C-1) on routers [floor(n/2), n)
///       for every pair (i, j) with i < floor(n/2) <= j:
///         evaluate left ∪ right ∪ {express link (i, j)}
///       return the best combination
///
/// The halves are solved with limit C-1 so that the joining link (which
/// crosses the middle and may overlap links inside either half) can never
/// push a cross-section above C. When both halves have the same size the
/// sub-solution is computed once and reused, as the paper's pseudocode
/// notes. Complexity O(n^5) (master theorem with an O(n^2)-pair combine
/// step, each evaluated in O(n^3)).
struct DncOptions {
  int bb_threshold = 4;  // solve exactly at or below this row size
  /// Cooperative stop checked at every recursion level, inside the
  /// branch-and-bound leaves and between merge candidates. Not owned; may
  /// be null. A stopped run returns the best feasible placement assembled
  /// so far (possibly the plain row).
  runctl::RunControl* control = nullptr;
  /// Score the O(n^2) cross-pair merge candidates with the incremental
  /// evaluator (each candidate is the base placement plus one link, so only
  /// the spans containing that link are recomputed). Values are
  /// bit-identical to full evaluation; off is the reference path.
  bool delta_eval = true;
};

struct DncResult {
  topo::RowTopology placement;
  double value = 0.0;
  /// kCompleted when the full recursion ran; otherwise the placement is
  /// best-effort.
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
};

/// Runs I(n, C) for the (possibly weighted) objective; `link_limit` is C.
[[nodiscard]] DncResult dnc_initial_solution(const RowObjective& objective,
                                             int link_limit,
                                             const DncOptions& options = {});

}  // namespace xlp::core
