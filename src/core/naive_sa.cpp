#include "core/naive_sa.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xlp::core {

namespace {

/// Proposes one naive move in place; returns false when the move produced a
/// placement outside the feasible region (caller counts it and rolls back).
bool propose_naive_move(topo::RowTopology& row, int link_limit, Rng& rng) {
  const int n = row.size();
  const int kind = static_cast<int>(rng.uniform_below(4));
  const auto& links = row.express_links();

  switch (kind) {
    case 0: {  // add a random express link
      if (n < 3) return false;  // no express link fits in a 2-router row
      const int i = static_cast<int>(rng.uniform_below(n - 2));
      const int j =
          i + 2 + static_cast<int>(rng.uniform_below(n - i - 2));
      row.add_express({i, j});
      break;
    }
    case 1: {  // delete a random express link
      if (links.empty()) return false;
      row.remove_express(
          links[rng.uniform_below(links.size())]);
      break;
    }
    case 2: {  // stretch a random link by one router on a random side
      if (links.empty()) return false;
      const topo::RowLink link = links[rng.uniform_below(links.size())];
      topo::RowLink stretched = link;
      if (rng.bernoulli(0.5)) {
        if (link.lo == 0) return false;
        stretched.lo = link.lo - 1;
      } else {
        if (link.hi == n - 1) return false;
        stretched.hi = link.hi + 1;
      }
      row.remove_express(link);
      row.add_express(stretched);
      break;
    }
    default: {  // shorten a random link by one router on a random side
      if (links.empty()) return false;
      const topo::RowLink link = links[rng.uniform_below(links.size())];
      topo::RowLink shortened = link;
      if (rng.bernoulli(0.5))
        shortened.lo = link.lo + 1;
      else
        shortened.hi = link.hi - 1;
      if (shortened.length() < 2) return false;
      row.remove_express(link);
      row.add_express(shortened);
      break;
    }
  }
  return row.fits_link_limit(link_limit);
}

}  // namespace

NaiveSaResult anneal_naive_links(const topo::RowTopology& initial,
                                 const RowObjective& objective,
                                 int link_limit, const SaParams& params,
                                 Rng& rng) {
  XLP_REQUIRE(initial.size() == objective.row_size(),
              "initial placement and objective sizes must match");
  XLP_REQUIRE(initial.fits_link_limit(link_limit),
              "initial placement violates the link limit");

  topo::RowTopology current = initial;
  double current_value = objective.evaluate(current);
  NaiveSaResult result{current, current_value, 0, 0, 0};

  double temperature = params.initial_temperature;
  for (long move = 0; move < params.total_moves; ++move) {
    if (params.control != nullptr && params.control->stop_requested()) {
      result.status = params.control->status();
      break;
    }
    topo::RowTopology candidate = current;
    if (!propose_naive_move(candidate, link_limit, rng)) {
      ++result.invalid_moves;
    } else {
      ++result.moves;
      const double candidate_value = objective.evaluate(candidate);
      const double delta = candidate_value - current_value;
      bool accept = delta <= 0.0;
      if (!accept && temperature > 0.0)
        accept = rng.uniform01() < std::exp(-delta / temperature);
      if (accept) {
        current = std::move(candidate);
        current_value = candidate_value;
        ++result.accepted;
        if (current_value < result.best_value) {
          result.best_value = current_value;
          result.best = current;
        }
      }
    }
    if ((move + 1) % params.moves_per_cool == 0)
      temperature /= params.cool_scale;
  }
  return result;
}

}  // namespace xlp::core
