#pragma once

#include <vector>

#include "core/c_sweep.hpp"
#include "traffic/matrix.hpp"

namespace xlp::core {

/// Application-specific placement (Section 5.6.4): when the traffic matrix
/// gamma is known, each row and each column gets its *own* placement,
/// optimized for the demand that dimension-order routing actually puts on
/// it (rows see source-row demand, columns see destination-column demand).
struct AppSpecificResult {
  topo::ExpressMesh design{topo::RowTopology(2), 1, 1};
  latency::LatencyBreakdown breakdown;  // weighted by the traffic matrix
  int link_limit = 1;
  long evaluations = 0;
};

/// Solves the application-specific problem for one link limit: 2n
/// independent weighted 1D problems (n rows + n columns), each via D&C_SA.
[[nodiscard]] AppSpecificResult solve_app_specific_for_limit(
    const traffic::TrafficMatrix& demand, int link_limit,
    const SweepOptions& options, Rng& rng);

/// Full flow: sweep every feasible link limit and keep the design with the
/// lowest demand-weighted average latency.
[[nodiscard]] AppSpecificResult solve_app_specific(
    const traffic::TrafficMatrix& demand, const SweepOptions& options,
    Rng& rng);

}  // namespace xlp::core
