#include "core/portfolio.hpp"

#include <limits>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

namespace xlp::core {

namespace {

const char* solver_name(Solver solver) noexcept {
  switch (solver) {
    case Solver::kOnlySa:
      return "onlysa";
    case Solver::kDncOnly:
      return "dnc";
    case Solver::kDcsa:
    default:
      return "dcsa";
  }
}

runctl::RunStatus worse(runctl::RunStatus a, runctl::RunStatus b) noexcept {
  if (a == runctl::RunStatus::kInterrupted ||
      b == runctl::RunStatus::kInterrupted)
    return runctl::RunStatus::kInterrupted;
  if (a == runctl::RunStatus::kDeadline || b == runctl::RunStatus::kDeadline)
    return runctl::RunStatus::kDeadline;
  return runctl::RunStatus::kCompleted;
}

}  // namespace

PortfolioResult solve_portfolio(
    int row_size, route::HopWeights hop_weights,
    const std::optional<std::vector<double>>& pair_weights, int link_limit,
    const PortfolioOptions& options, std::uint64_t seed) {
  XLP_REQUIRE(options.chains >= 1, "portfolio needs at least one chain");
  XLP_REQUIRE(options.resume == nullptr ||
                  static_cast<int>(options.resume->chain_states.size()) ==
                      options.chains,
              "portfolio checkpoint does not match the chain count");

  Stopwatch timer;
  std::vector<PlacementResult> results(
      static_cast<std::size_t>(options.chains));
  // Which chains actually ran; a cancellation can skip queued chains
  // entirely (their checkpoint entry then stays nullopt and resume
  // restarts them from scratch, deterministically).
  std::vector<std::uint8_t> ran(static_cast<std::size_t>(options.chains), 0);

  // Latest per-chain annealer snapshot, fed by the checkpoint sinks. Only
  // SA solvers produce snapshots; for kDncOnly all entries stay nullopt.
  std::mutex ckpt_mutex;
  std::vector<std::optional<runctl::SaCheckpoint>> latest(
      static_cast<std::size_t>(options.chains));

  // Per-chain private recorders (SeriesRecorder is not thread-safe);
  // merged into options.series in chain-index order after the pool joins.
  std::vector<obs::SeriesRecorder> chain_series;
  if (options.series != nullptr)
    chain_series.assign(static_cast<std::size_t>(options.chains),
                        obs::SeriesRecorder(options.series->capacity()));

  const auto snapshot_portfolio = [&]() {
    // Caller holds ckpt_mutex (or all workers have joined).
    runctl::PortfolioCheckpoint pc;
    pc.n = row_size;
    pc.link_limit = link_limit;
    pc.chains = options.chains;
    pc.seed = seed;
    pc.solver = solver_name(options.solver);
    pc.schedule = {options.sa.initial_temperature, options.sa.total_moves,
                   options.sa.cool_scale, options.sa.moves_per_cool};
    pc.chain_states = latest;
    return pc;
  };

  const auto run_chain = [&](long chain) {
    // Per-chain wall time lands in the shared (thread-safe) registry.
    const obs::ScopedTimer chain_timer(obs::MetricsRegistry::global(),
                                       "core.portfolio.chain_seconds");
    // Per-chain objective (evaluation counters are not shareable across
    // threads) and a decorrelated per-chain stream: the result is a
    // function of (seed, chain index) alone, never of which pool worker
    // picked the chain up or how many workers there are.
    const RowObjective objective =
        pair_weights ? RowObjective(row_size, hop_weights, *pair_weights)
                     : RowObjective(row_size, hop_weights);
    Rng base(seed);
    Rng rng = base.fork(static_cast<std::uint64_t>(chain));

    // Every chain gets a private copy of the control so the deadline
    // poll stride is thread-local; the cancel token stays shared.
    runctl::RunControl control = options.control;

    SaParams sa = options.sa;
    sa.control = &control;
    if (options.series != nullptr) {
      sa.series = &chain_series[static_cast<std::size_t>(chain)];
      sa.series_prefix = "chain" + std::to_string(chain) + ".";
    } else {
      sa.series = nullptr;
    }
    sa.checkpoint_every_moves = options.checkpoint_every_moves;
    sa.checkpoint_sink = [&, chain](const runctl::SaCheckpoint& ck) {
      const std::lock_guard<std::mutex> lock(ckpt_mutex);
      latest[static_cast<std::size_t>(chain)] = ck;
      // Chain 0 is the designated writer so the file cadence does not
      // multiply with the chain count. Periodic writes are best-effort:
      // a full disk must not kill the search.
      if (chain == 0 && !options.checkpoint_path.empty()) {
        try {
          save_portfolio_checkpoint(options.checkpoint_path,
                                    snapshot_portfolio());
        } catch (const Error&) {
        }
      }
    };
    DncOptions dnc = options.dnc;
    dnc.control = &control;

    const std::optional<runctl::SaCheckpoint>* resume_state = nullptr;
    if (options.resume != nullptr)
      resume_state =
          &options.resume->chain_states[static_cast<std::size_t>(chain)];

    auto& slot = results[static_cast<std::size_t>(chain)];
    switch (options.solver) {
      case Solver::kOnlySa:
        slot = (resume_state && *resume_state)
                   ? resume_sa(objective, **resume_state, sa)
                   : solve_only_sa(objective, link_limit, sa, rng);
        break;
      case Solver::kDncOnly:
        slot = solve_dnc_only(objective, link_limit, dnc);
        break;
      case Solver::kDcsa:
      default:
        slot = (resume_state && *resume_state)
                   ? resume_sa(objective, **resume_state, sa)
                   : solve_dcsa(objective, link_limit, sa, rng, dnc);
        break;
    }
    ran[static_cast<std::size_t>(chain)] = 1;
  };

  // The pool is scoped to this call: workers are joined before we merge,
  // so the (thread-local) profiler trees they grew are stable and the
  // merge below never races a live chain.
  const int workers = std::min(util::resolve_thread_count(options.threads),
                               options.chains);
  bool all_ran;
  {
    util::ThreadPool pool(workers);
    runctl::RunControl pool_control = options.control;
    all_ran = pool.parallel_for(options.chains, run_chain, &pool_control);
  }
  if (!ran[0] && options.chains >= 1) {
    // A stop that arrived before any chain was dispatched must still
    // produce a usable (best-effort) result and checkpoint: run chain 0
    // inline — its own control poll makes it return almost immediately.
    run_chain(0);
  }

  if (options.series != nullptr) {
    // Chain-index order, after the join: the merged document depends only
    // on (seed, chains, parameters), never on worker scheduling.
    for (const obs::SeriesRecorder& rec : chain_series)
      options.series->adopt(rec);
  }

  PortfolioResult portfolio;
  portfolio.seconds = timer.seconds();
  portfolio.chain_values.reserve(results.size());
  std::size_t best = results.size();
  for (std::size_t chain = 0; chain < results.size(); ++chain) {
    if (!ran[chain]) {
      // Skipped by a cancellation: infinity keeps the slot out of the
      // best-of selection while chain_values stays index-aligned.
      portfolio.chain_values.push_back(
          std::numeric_limits<double>::infinity());
      continue;
    }
    portfolio.chain_values.push_back(results[chain].value);
    portfolio.total_evaluations += results[chain].evaluations;
    portfolio.status = worse(portfolio.status, results[chain].status);
    if (best == results.size() ||
        results[chain].value < results[best].value)
      best = chain;
  }
  XLP_CHECK(best < results.size(), "no portfolio chain produced a result");
  portfolio.best = std::move(results[best]);
  portfolio.best.method += "-portfolio";
  if (!all_ran) {
    // Chains were skipped: the run as a whole did not complete even if
    // every chain that did start finished its schedule.
    runctl::CancelToken* token = options.control.token();
    portfolio.status = worse(portfolio.status,
                             token != nullptr && token->cancelled()
                                 ? token->reason()
                                 : runctl::RunStatus::kDeadline);
  }

  const bool is_sa_solver = options.solver != Solver::kDncOnly;
  if (is_sa_solver &&
      portfolio.status != runctl::RunStatus::kCompleted) {
    portfolio.checkpoint = snapshot_portfolio();
  }
  if (is_sa_solver && !options.checkpoint_path.empty()) {
    // Final write (complete or not) so the file on disk always reflects
    // the joined state; this one is allowed to throw.
    save_portfolio_checkpoint(options.checkpoint_path, snapshot_portfolio());
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("core.portfolio.runs");
  metrics.add("core.portfolio.chains", options.chains);
  metrics.add("core.portfolio.threads", workers);
  metrics.record_time("core.portfolio.seconds", portfolio.seconds);
  return portfolio;
}

}  // namespace xlp::core
