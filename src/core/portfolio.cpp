#include "core/portfolio.hpp"

#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace xlp::core {

namespace {

const char* solver_name(Solver solver) noexcept {
  switch (solver) {
    case Solver::kOnlySa:
      return "onlysa";
    case Solver::kDncOnly:
      return "dnc";
    case Solver::kDcsa:
    default:
      return "dcsa";
  }
}

runctl::RunStatus worse(runctl::RunStatus a, runctl::RunStatus b) noexcept {
  if (a == runctl::RunStatus::kInterrupted ||
      b == runctl::RunStatus::kInterrupted)
    return runctl::RunStatus::kInterrupted;
  if (a == runctl::RunStatus::kDeadline || b == runctl::RunStatus::kDeadline)
    return runctl::RunStatus::kDeadline;
  return runctl::RunStatus::kCompleted;
}

}  // namespace

PortfolioResult solve_portfolio(
    int row_size, route::HopWeights hop_weights,
    const std::optional<std::vector<double>>& pair_weights, int link_limit,
    const PortfolioOptions& options, std::uint64_t seed) {
  XLP_REQUIRE(options.chains >= 1, "portfolio needs at least one chain");
  XLP_REQUIRE(options.resume == nullptr ||
                  static_cast<int>(options.resume->chain_states.size()) ==
                      options.chains,
              "portfolio checkpoint does not match the chain count");

  Stopwatch timer;
  std::vector<PlacementResult> results(
      static_cast<std::size_t>(options.chains));

  // Latest per-chain annealer snapshot, fed by the checkpoint sinks. Only
  // SA solvers produce snapshots; for kDncOnly all entries stay nullopt.
  std::mutex ckpt_mutex;
  std::vector<std::optional<runctl::SaCheckpoint>> latest(
      static_cast<std::size_t>(options.chains));

  const auto snapshot_portfolio = [&]() {
    // Caller holds ckpt_mutex (or all workers have joined).
    runctl::PortfolioCheckpoint pc;
    pc.n = row_size;
    pc.link_limit = link_limit;
    pc.chains = options.chains;
    pc.seed = seed;
    pc.solver = solver_name(options.solver);
    pc.schedule = {options.sa.initial_temperature, options.sa.total_moves,
                   options.sa.cool_scale, options.sa.moves_per_cool};
    pc.chain_states = latest;
    return pc;
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options.chains));

  for (int chain = 0; chain < options.chains; ++chain) {
    workers.emplace_back([&, chain] {
      // Per-chain wall time lands in the shared (thread-safe) registry.
      const obs::ScopedTimer chain_timer(obs::MetricsRegistry::global(),
                                         "core.portfolio.chain_seconds");
      // Per-chain objective (evaluation counters are not shareable across
      // threads) and a decorrelated per-chain stream.
      const RowObjective objective =
          pair_weights ? RowObjective(row_size, hop_weights, *pair_weights)
                       : RowObjective(row_size, hop_weights);
      Rng base(seed);
      Rng rng = base.fork(static_cast<std::uint64_t>(chain));

      // Every worker gets a private copy of the control so the deadline
      // poll stride is thread-local; the cancel token stays shared.
      runctl::RunControl control = options.control;

      SaParams sa = options.sa;
      sa.control = &control;
      sa.checkpoint_every_moves = options.checkpoint_every_moves;
      sa.checkpoint_sink = [&, chain](const runctl::SaCheckpoint& ck) {
        const std::lock_guard<std::mutex> lock(ckpt_mutex);
        latest[static_cast<std::size_t>(chain)] = ck;
        // Chain 0 is the designated writer so the file cadence does not
        // multiply with the chain count. Periodic writes are best-effort:
        // a full disk must not kill the search.
        if (chain == 0 && !options.checkpoint_path.empty()) {
          try {
            save_portfolio_checkpoint(options.checkpoint_path,
                                      snapshot_portfolio());
          } catch (const Error&) {
          }
        }
      };
      DncOptions dnc = options.dnc;
      dnc.control = &control;

      const std::optional<runctl::SaCheckpoint>* resume_state = nullptr;
      if (options.resume != nullptr)
        resume_state =
            &options.resume->chain_states[static_cast<std::size_t>(chain)];

      auto& slot = results[static_cast<std::size_t>(chain)];
      switch (options.solver) {
        case Solver::kOnlySa:
          slot = (resume_state && *resume_state)
                     ? resume_sa(objective, **resume_state, sa)
                     : solve_only_sa(objective, link_limit, sa, rng);
          break;
        case Solver::kDncOnly:
          slot = solve_dnc_only(objective, link_limit, dnc);
          break;
        case Solver::kDcsa:
        default:
          slot = (resume_state && *resume_state)
                     ? resume_sa(objective, **resume_state, sa)
                     : solve_dcsa(objective, link_limit, sa, rng, dnc);
          break;
      }
    });
  }
  for (auto& worker : workers) worker.join();

  PortfolioResult portfolio;
  portfolio.seconds = timer.seconds();
  portfolio.chain_values.reserve(results.size());
  std::size_t best = 0;
  for (std::size_t chain = 0; chain < results.size(); ++chain) {
    portfolio.chain_values.push_back(results[chain].value);
    portfolio.total_evaluations += results[chain].evaluations;
    portfolio.status = worse(portfolio.status, results[chain].status);
    if (results[chain].value < results[best].value) best = chain;
  }
  portfolio.best = std::move(results[best]);
  portfolio.best.method += "-portfolio";

  const bool is_sa_solver = options.solver != Solver::kDncOnly;
  if (is_sa_solver &&
      portfolio.status != runctl::RunStatus::kCompleted) {
    portfolio.checkpoint = snapshot_portfolio();
  }
  if (is_sa_solver && !options.checkpoint_path.empty()) {
    // Final write (complete or not) so the file on disk always reflects
    // the joined state; this one is allowed to throw.
    save_portfolio_checkpoint(options.checkpoint_path, snapshot_portfolio());
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("core.portfolio.runs");
  metrics.add("core.portfolio.chains", options.chains);
  metrics.record_time("core.portfolio.seconds", portfolio.seconds);
  return portfolio;
}

}  // namespace xlp::core
