#include "core/portfolio.hpp"

#include <thread>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace xlp::core {

PortfolioResult solve_portfolio(
    int row_size, route::HopWeights hop_weights,
    const std::optional<std::vector<double>>& pair_weights, int link_limit,
    const PortfolioOptions& options, std::uint64_t seed) {
  XLP_REQUIRE(options.chains >= 1, "portfolio needs at least one chain");

  Stopwatch timer;
  std::vector<PlacementResult> results(
      static_cast<std::size_t>(options.chains));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(options.chains));

  for (int chain = 0; chain < options.chains; ++chain) {
    workers.emplace_back([&, chain] {
      // Per-chain wall time lands in the shared (thread-safe) registry.
      const obs::ScopedTimer chain_timer(obs::MetricsRegistry::global(),
                                         "core.portfolio.chain_seconds");
      // Per-chain objective (evaluation counters are not shareable across
      // threads) and a decorrelated per-chain stream.
      const RowObjective objective =
          pair_weights ? RowObjective(row_size, hop_weights, *pair_weights)
                       : RowObjective(row_size, hop_weights);
      Rng base(seed);
      Rng rng = base.fork(static_cast<std::uint64_t>(chain));
      switch (options.solver) {
        case Solver::kOnlySa:
          results[static_cast<std::size_t>(chain)] =
              solve_only_sa(objective, link_limit, options.sa, rng);
          break;
        case Solver::kDncOnly:
          results[static_cast<std::size_t>(chain)] =
              solve_dnc_only(objective, link_limit, options.dnc);
          break;
        case Solver::kDcsa:
        default:
          results[static_cast<std::size_t>(chain)] = solve_dcsa(
              objective, link_limit, options.sa, rng, options.dnc);
          break;
      }
    });
  }
  for (auto& worker : workers) worker.join();

  PortfolioResult portfolio;
  portfolio.seconds = timer.seconds();
  portfolio.chain_values.reserve(results.size());
  std::size_t best = 0;
  for (std::size_t chain = 0; chain < results.size(); ++chain) {
    portfolio.chain_values.push_back(results[chain].value);
    portfolio.total_evaluations += results[chain].evaluations;
    if (results[chain].value < results[best].value) best = chain;
  }
  portfolio.best = std::move(results[best]);
  portfolio.best.method += "-portfolio";

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("core.portfolio.runs");
  metrics.add("core.portfolio.chains", options.chains);
  metrics.record_time("core.portfolio.seconds", portfolio.seconds);
  return portfolio;
}

}  // namespace xlp::core
