#pragma once

#include <optional>
#include <vector>

#include "core/c_sweep.hpp"  // for Solver
#include "core/drivers.hpp"

namespace xlp::core {

/// Parallel portfolio annealing: run several independent D&C_SA (or
/// OnlySA) chains on separate threads with decorrelated seeds and keep the
/// best placement. Simulated annealing parallelizes embarrassingly this
/// way, and a portfolio also reduces seed variance — the multi-seed
/// averaging the evaluation section does by hand, executed concurrently.
///
/// Determinism: the result depends only on (seed, chains, parameters),
/// never on thread scheduling — each chain derives its RNG from the seed
/// and its chain index, and ties between equal-valued chains break toward
/// the lower chain index.
struct PortfolioOptions {
  int chains = 4;          // worker threads (and independent chains)
  SaParams sa;             // per-chain schedule
  DncOptions dnc;
  Solver solver = Solver::kDcsa;
};

struct PortfolioResult {
  PlacementResult best;
  std::vector<double> chain_values;  // final value of every chain
  long total_evaluations = 0;
  double seconds = 0.0;  // wall clock for the whole portfolio
};

/// Solves P̄(row_size, link_limit) with a portfolio of chains. The
/// objective is described by its ingredients (size, hop weights, optional
/// pair weights) because RowObjective instances are not safe to share
/// across threads; each chain builds its own.
[[nodiscard]] PortfolioResult solve_portfolio(
    int row_size, route::HopWeights hop_weights,
    const std::optional<std::vector<double>>& pair_weights, int link_limit,
    const PortfolioOptions& options, std::uint64_t seed);

}  // namespace xlp::core
