#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/c_sweep.hpp"  // for Solver
#include "core/drivers.hpp"
#include "runctl/checkpoint.hpp"
#include "runctl/control.hpp"

namespace xlp::core {

/// Parallel portfolio annealing: run several independent D&C_SA (or
/// OnlySA) chains on a util::ThreadPool with decorrelated seeds and keep
/// the best placement. Simulated annealing parallelizes embarrassingly
/// this way, and a portfolio also reduces seed variance — the multi-seed
/// averaging the evaluation section does by hand, executed concurrently.
///
/// Determinism: the result depends only on (seed, chains, parameters),
/// never on thread count or scheduling — each chain derives its RNG from
/// the seed and its chain index, ties between equal-valued chains break
/// toward the lower chain index, and chain metrics/checkpoints are merged
/// by chain index after the pool joins (see docs/parallelism.md).
struct PortfolioOptions {
  int chains = 4;          // independent chains (work items, not threads)
  /// Pool workers running the chains. 0 = util::default_thread_count()
  /// (the --threads flag / XLP_THREADS / hardware); always additionally
  /// capped by `chains`. The thread count never changes the result —
  /// `threads = 1` is bit-identical to `threads = chains`.
  int threads = 0;
  SaParams sa;             // per-chain schedule
  DncOptions dnc;
  Solver solver = Solver::kDcsa;

  /// Stop signal shared by every chain. Held by value: each worker copies
  /// it (the deadline and token pointer are shared state, the poll-stride
  /// counter inside must stay thread-local). The SaParams/DncOptions
  /// control pointers are ignored here — the portfolio wires its own
  /// copies.
  runctl::RunControl control;

  /// When non-empty, chain 0 periodically persists a whole-portfolio
  /// checkpoint to this path (atomically), and a final one is written
  /// after the chains join. checkpoint_every_moves is the per-chain sink
  /// cadence (0 = only the final snapshot).
  std::string checkpoint_path;
  long checkpoint_every_moves = 0;

  /// Resume from a saved portfolio state. The caller must rebuild chains /
  /// solver / sa schedule from the checkpoint so they match; chain entries
  /// that are nullopt (the chain never reached its annealer) restart from
  /// scratch, which is deterministic because chain RNGs are forked from
  /// the seed. Not owned; may be null.
  const runctl::PortfolioCheckpoint* resume = nullptr;

  /// Optional cooling-trajectory recorder (not owned; must outlive the
  /// call). Each chain records into a private recorder under a "chainK."
  /// prefix; after the pool joins they are merged into this one in chain
  /// index order, so the merged document is identical for any thread
  /// count. The SaParams::series pointer above is ignored here.
  obs::SeriesRecorder* series = nullptr;
};

struct PortfolioResult {
  PlacementResult best;
  /// Final value of every chain, by chain index. +inf marks a chain a
  /// cancellation skipped before it could start (only possible when the
  /// run was stopped early).
  std::vector<double> chain_values;
  long total_evaluations = 0;
  double seconds = 0.0;  // wall clock for the whole portfolio
  /// Worst chain outcome: interrupted > deadline > completed. The best
  /// placement is feasible either way.
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
  /// Engaged when the run stopped early (SA solvers only): the state
  /// `xlp run --resume` continues from.
  std::optional<runctl::PortfolioCheckpoint> checkpoint;
};

/// Solves P̄(row_size, link_limit) with a portfolio of chains. The
/// objective is described by its ingredients (size, hop weights, optional
/// pair weights) because RowObjective instances are not safe to share
/// across threads; each chain builds its own.
[[nodiscard]] PortfolioResult solve_portfolio(
    int row_size, route::HopWeights hop_weights,
    const std::optional<std::vector<double>>& pair_weights, int link_limit,
    const PortfolioOptions& options, std::uint64_t seed);

}  // namespace xlp::core
