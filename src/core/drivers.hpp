#pragma once

#include <string>

#include "core/dnc.hpp"
#include "core/objective.hpp"
#include "core/sa.hpp"
#include "util/rng.hpp"

namespace xlp::core {

/// A solved 1D placement plus the bookkeeping the evaluation section needs.
struct PlacementResult {
  topo::RowTopology placement = topo::RowTopology(2);
  double value = 0.0;        // objective (average row head latency)
  long evaluations = 0;      // objective evaluations consumed
  double seconds = 0.0;      // wall-clock time
  std::string method;
  /// kCompleted for a full run; kDeadline / kInterrupted when a
  /// RunControl stopped the search early (the placement is then the best
  /// feasible solution found before the stop).
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
  /// Engaged when an annealing phase stopped early: the state to persist
  /// for resume_sa / `xlp run --resume`.
  std::optional<runctl::SaCheckpoint> checkpoint;
};

/// OnlySA (Section 5.1, comparison scheme 3): simulated annealing over the
/// connection-matrix space from a *random* initial placement.
[[nodiscard]] PlacementResult solve_only_sa(const RowObjective& objective,
                                            int link_limit,
                                            const SaParams& params, Rng& rng);

/// D&C_SA (comparison scheme 4, the paper's proposal): simulated annealing
/// seeded with the divide-and-conquer initial solution I(n, C).
[[nodiscard]] PlacementResult solve_dcsa(const RowObjective& objective,
                                         int link_limit,
                                         const SaParams& params, Rng& rng,
                                         const DncOptions& dnc = {});

/// The initializer alone (no annealing): used to normalize runtimes in
/// Fig. 7 and as a cheap standalone heuristic.
[[nodiscard]] PlacementResult solve_dnc_only(const RowObjective& objective,
                                             int link_limit,
                                             const DncOptions& dnc = {});

/// Continues an annealing run from a saved checkpoint. The cooling
/// schedule is rebuilt from the checkpoint (so the trajectory matches the
/// uninterrupted run bit-for-bit); only the runtime hooks of `hooks` —
/// observer, control, checkpoint sink/cadence — are honoured. The
/// objective must describe the same P(n, C) instance the checkpoint was
/// taken for.
[[nodiscard]] PlacementResult resume_sa(const RowObjective& objective,
                                        const runctl::SaCheckpoint& ckpt,
                                        const SaParams& hooks = {});

}  // namespace xlp::core
