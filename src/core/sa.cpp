#include "core/sa.hpp"

#include <cmath>
#include <optional>

#include "core/delta_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "util/check.hpp"

namespace xlp::core {

SaResult anneal_connection_matrix(const topo::ConnectionMatrix& initial,
                                  const RowObjective& objective,
                                  const SaParams& params, Rng& rng) {
  XLP_REQUIRE(initial.row_size() == objective.row_size(),
              "matrix and objective sizes must match");
  XLP_REQUIRE(params.initial_temperature > 0.0,
              "initial temperature must be positive");
  XLP_REQUIRE(params.cool_scale > 1.0, "cooling must reduce temperature");
  XLP_REQUIRE(params.moves_per_cool >= 1, "cooling period must be positive");

  const obs::ScopedTimer run_timer(obs::MetricsRegistry::global(),
                                   "core.sa.seconds");
  const obs::ProfileScope profile_scope("sa.anneal");

  topo::ConnectionMatrix current = initial;
  double temperature = params.initial_temperature;
  int cooling_step = 0;
  long window_start_move = 0;
  long window_start_accepted = 0;
  long start_move = 0;
  double current_value;

  SaResult result{current.decode(), 0.0, current, 0, 0, 0};
  result.final_temperature = params.initial_temperature;

  if (params.resume != nullptr) {
    const runctl::SaCheckpoint& ck = *params.resume;
    XLP_REQUIRE(ck.n == initial.row_size() &&
                    ck.link_limit == initial.link_limit(),
                "checkpoint was taken for a different problem size");
    current = ck.current;
    current_value = ck.current_value;
    rng.set_state(ck.rng_state);
    temperature = ck.temperature;
    cooling_step = static_cast<int>(ck.cooling_step);
    window_start_move = ck.window_start_move;
    window_start_accepted = ck.window_start_accepted;
    start_move = ck.next_move;
    result.best_matrix = ck.best;
    result.best_value = ck.best_value;
    result.best = result.best_matrix.decode();
    result.moves = ck.moves;
    result.accepted = ck.accepted;
    result.improved = ck.improved;
  } else {
    current_value = objective.evaluate(current.decode());
    result.best_value = current_value;
    result.best = current.decode();
  }

  // A degenerate matrix (C == 1 or n <= 2) has no flippable bits: the plain
  // row is the only state.
  if (initial.bit_count() == 0) return result;

  // The incremental evaluator scores each flip in O(affected spans) with
  // bit-identical values (see DeltaRowObjective). Built after any resume
  // restore so its span cache describes the restored matrix; its copy of
  // the state advances in lockstep with `current` via commit/revert.
  std::optional<DeltaRowObjective> delta;
  if (params.delta_eval) delta.emplace(objective, current);

  // Snapshots the loop state at a move boundary: `next_move` is the first
  // move the continuation will execute, and every field — including the
  // raw RNG words — is captured so the continuation replays the exact
  // trajectory the uninterrupted run would have taken.
  const auto capture = [&](long next_move, bool complete) {
    runctl::SaCheckpoint ck;
    ck.schedule = {params.initial_temperature, params.total_moves,
                   params.cool_scale, params.moves_per_cool};
    ck.method = params.method_label;
    ck.n = initial.row_size();
    ck.link_limit = initial.link_limit();
    ck.next_move = next_move;
    ck.cooling_step = cooling_step;
    ck.temperature = temperature;
    ck.window_start_move = window_start_move;
    ck.window_start_accepted = window_start_accepted;
    ck.moves = result.moves;
    ck.accepted = result.accepted;
    ck.improved = result.improved;
    ck.rng_state = rng.state();
    ck.current = current;
    ck.current_value = current_value;
    ck.best = result.best_matrix;
    ck.best_value = result.best_value;
    ck.complete = complete;
    return ck;
  };

  long move = start_move;
  for (; move < params.total_moves; ++move) {
    if (params.control != nullptr && params.control->stop_requested()) {
      result.status = params.control->status();
      break;
    }
    const int bit = static_cast<int>(
        rng.uniform_below(static_cast<std::uint64_t>(current.bit_count())));
    double candidate_value;
    {
      const obs::ProfileScope eval_scope("sa.evaluate");
      if (delta.has_value()) {
        candidate_value = delta->propose_flip(bit);
      } else {
        current.flip_flat(bit);
        candidate_value = objective.evaluate(current.decode());
      }
    }
    const double value_delta = candidate_value - current_value;

    bool accept = value_delta <= 0.0;
    if (!accept && temperature > 0.0)
      accept = rng.uniform01() < std::exp(-value_delta / temperature);

    if (accept) {
      if (delta.has_value()) {
        delta->commit();
        current.flip_flat(bit);
      }
      current_value = candidate_value;
      ++result.accepted;
      if (value_delta <= 0.0) ++result.improved;
      if (candidate_value < result.best_value) {
        result.best_value = candidate_value;
        result.best_matrix = current;
      }
    } else if (delta.has_value()) {
      delta->revert();
    } else {
      current.flip_flat(bit);  // undo
    }

    ++result.moves;
    if ((move + 1) % params.moves_per_cool == 0) {
      if (params.observer) {
        SaCoolingStep snapshot;
        snapshot.step = cooling_step;
        snapshot.moves_done = move + 1;
        snapshot.temperature = temperature;
        snapshot.current_value = current_value;
        snapshot.best_value = result.best_value;
        snapshot.window_moves = (move + 1) - window_start_move;
        snapshot.window_accepted = result.accepted - window_start_accepted;
        params.observer(snapshot);
      }
      if (params.series != nullptr) {
        const double x = static_cast<double>(move + 1);
        const long window_moves = (move + 1) - window_start_move;
        const long window_accepted = result.accepted - window_start_accepted;
        obs::SeriesRecorder& rec = *params.series;
        rec.append(params.series_prefix + "sa.objective", x, current_value);
        rec.append(params.series_prefix + "sa.best", x, result.best_value);
        rec.append(params.series_prefix + "sa.temperature", x, temperature);
        rec.append(params.series_prefix + "sa.acceptance", x,
                   window_moves > 0
                       ? static_cast<double>(window_accepted) / window_moves
                       : 0.0);
      }
      ++cooling_step;
      window_start_move = move + 1;
      window_start_accepted = result.accepted;
      temperature /= params.cool_scale;
    }
    if (params.checkpoint_sink && params.checkpoint_every_moves > 0 &&
        (move + 1) % params.checkpoint_every_moves == 0 &&
        move + 1 < params.total_moves) {
      params.checkpoint_sink(capture(move + 1, false));
    }
  }

  if (result.status != runctl::RunStatus::kCompleted)
    result.checkpoint = capture(move, false);
  if (params.checkpoint_sink) {
    params.checkpoint_sink(
        capture(move, result.status == runctl::RunStatus::kCompleted));
  }

  result.best = result.best_matrix.decode();
  result.acceptance_rate =
      result.moves > 0
          ? static_cast<double>(result.accepted) / result.moves
          : 0.0;
  result.final_temperature = temperature;

  auto& metrics = obs::MetricsRegistry::global();
  metrics.add("core.sa.runs");
  metrics.add("core.sa.moves", result.moves);
  metrics.add("core.sa.accepted", result.accepted);
  return result;
}

}  // namespace xlp::core
