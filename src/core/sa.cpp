#include "core/sa.hpp"

#include <cmath>

#include "util/check.hpp"

namespace xlp::core {

SaResult anneal_connection_matrix(const topo::ConnectionMatrix& initial,
                                  const RowObjective& objective,
                                  const SaParams& params, Rng& rng) {
  XLP_REQUIRE(initial.row_size() == objective.row_size(),
              "matrix and objective sizes must match");
  XLP_REQUIRE(params.initial_temperature > 0.0,
              "initial temperature must be positive");
  XLP_REQUIRE(params.cool_scale > 1.0, "cooling must reduce temperature");
  XLP_REQUIRE(params.moves_per_cool >= 1, "cooling period must be positive");

  topo::ConnectionMatrix current = initial;
  double current_value = objective.evaluate(current.decode());

  SaResult result{current.decode(), current_value, current, 0, 0, 0};

  // A degenerate matrix (C == 1 or n <= 2) has no flippable bits: the plain
  // row is the only state.
  if (initial.bit_count() == 0) return result;

  double temperature = params.initial_temperature;
  for (long move = 0; move < params.total_moves; ++move) {
    const int bit = static_cast<int>(
        rng.uniform_below(static_cast<std::uint64_t>(current.bit_count())));
    current.flip_flat(bit);
    const double candidate_value = objective.evaluate(current.decode());
    const double delta = candidate_value - current_value;

    bool accept = delta <= 0.0;
    if (!accept && temperature > 0.0)
      accept = rng.uniform01() < std::exp(-delta / temperature);

    if (accept) {
      current_value = candidate_value;
      ++result.accepted;
      if (delta <= 0.0) ++result.improved;
      if (candidate_value < result.best_value) {
        result.best_value = candidate_value;
        result.best_matrix = current;
      }
    } else {
      current.flip_flat(bit);  // undo
    }

    ++result.moves;
    if ((move + 1) % params.moves_per_cool == 0)
      temperature /= params.cool_scale;
  }

  result.best = result.best_matrix.decode();
  return result;
}

}  // namespace xlp::core
