#pragma once

#include "core/objective.hpp"
#include "runctl/control.hpp"
#include "topo/row_topology.hpp"

namespace xlp::core {

/// Result of an exact search over P̄(n, C).
struct ExactResult {
  topo::RowTopology placement;
  double value = 0.0;
  long nodes_explored = 0;  // search-tree nodes visited
  /// kCompleted when the tree was searched exhaustively (the placement is
  /// provably optimal); otherwise the search was cut short and the
  /// placement is only the best node visited.
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
};

/// Exhaustive branch-and-bound solver for the 1D placement problem
/// (Section 5.6.3 and the base case of the divide-and-conquer initializer).
///
/// The search enumerates express-link subsets in lexicographic order with
/// two prunings:
///   * capacity: a partial placement whose cross-section already carries C
///     links cannot accept another link over the same cut;
///   * optimality: adding links never increases shortest-path costs, so the
///     value of the "everything allowed" relaxation bounds every extension;
///     we use the cheap global bound Tr + Tl * avg(weighted distance), the
///     cost when every pair were directly connected, and stop exploring a
///     subtree once the incumbent matches it.
///
/// Practical for the paper's verification set — P(4,2), P(8,2), P(8,3),
/// P(8,4), P(16,2) — where the valid space ranges up to a few hundred
/// thousand placements.
class BranchAndBound {
 public:
  /// `control` (not owned, may be null) lets a deadline or interrupt cut
  /// the search short; the result then carries the non-completed status
  /// and loses its optimality guarantee.
  explicit BranchAndBound(const RowObjective& objective, int link_limit,
                          runctl::RunControl* control = nullptr);

  /// Runs the exact search and returns the best placement found.
  [[nodiscard]] ExactResult solve();

 private:
  void dfs(std::size_t next_candidate);
  [[nodiscard]] double direct_connection_bound() const;

  const RowObjective& objective_;
  int n_;
  int link_limit_;
  runctl::RunControl* control_;
  std::vector<topo::RowLink> candidates_;
  std::vector<int> cut_express_;  // express links currently crossing each cut
  topo::RowTopology current_;
  topo::RowTopology best_;
  double best_value_;
  double lower_bound_;
  long nodes_ = 0;
  bool stopped_ = false;
};

}  // namespace xlp::core
