#pragma once

#include "core/objective.hpp"
#include "topo/row_topology.hpp"

namespace xlp::core {

/// Result of an exact search over P̄(n, C).
struct ExactResult {
  topo::RowTopology placement;
  double value = 0.0;
  long nodes_explored = 0;  // search-tree nodes visited
};

/// Exhaustive branch-and-bound solver for the 1D placement problem
/// (Section 5.6.3 and the base case of the divide-and-conquer initializer).
///
/// The search enumerates express-link subsets in lexicographic order with
/// two prunings:
///   * capacity: a partial placement whose cross-section already carries C
///     links cannot accept another link over the same cut;
///   * optimality: adding links never increases shortest-path costs, so the
///     value of the "everything allowed" relaxation bounds every extension;
///     we use the cheap global bound Tr + Tl * avg(weighted distance), the
///     cost when every pair were directly connected, and stop exploring a
///     subtree once the incumbent matches it.
///
/// Practical for the paper's verification set — P(4,2), P(8,2), P(8,3),
/// P(8,4), P(16,2) — where the valid space ranges up to a few hundred
/// thousand placements.
class BranchAndBound {
 public:
  explicit BranchAndBound(const RowObjective& objective, int link_limit);

  /// Runs the exact search and returns the best placement found.
  [[nodiscard]] ExactResult solve();

 private:
  void dfs(std::size_t next_candidate);
  [[nodiscard]] double direct_connection_bound() const;

  const RowObjective& objective_;
  int n_;
  int link_limit_;
  std::vector<topo::RowLink> candidates_;
  std::vector<int> cut_express_;  // express links currently crossing each cut
  topo::RowTopology current_;
  topo::RowTopology best_;
  double best_value_;
  double lower_bound_;
  long nodes_ = 0;
};

}  // namespace xlp::core
