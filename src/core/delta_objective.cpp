#include "core/delta_objective.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "route/directional_paths.hpp"
#include "util/check.hpp"

namespace xlp::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool check_delta_enabled() {
  const char* env = std::getenv("XLP_CHECK_DELTA");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Inserts `value` into a sorted unique vector; no-op when present.
void sorted_insert(std::vector<int>& values, int value) {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it == values.end() || *it != value) values.insert(it, value);
}

void sorted_erase(std::vector<int>& values, int value) {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it != values.end() && *it == value) values.erase(it);
}

}  // namespace

void DeltaRowObjective::mark_row(int r) {
  row_dirty_[static_cast<std::size_t>(r) >> 6] |= std::uint64_t{1}
                                                  << (r & 63);
}

DeltaRowObjective::DeltaRowObjective(const RowObjective& objective,
                                     const topo::ConnectionMatrix& state)
    : objective_(&objective),
      n_(objective.row_size()),
      hop_(objective.hop_weights()),
      incremental_(objective.delta_supported()),
      check_(check_delta_enabled()),
      matrix_(state),
      row_(n_) {
  XLP_REQUIRE(state.row_size() == n_,
              "matrix and objective sizes must match");
  if (incremental_) build_tables(matrix_->decode());
}

DeltaRowObjective::DeltaRowObjective(const RowObjective& objective,
                                     topo::RowTopology base)
    : objective_(&objective),
      n_(objective.row_size()),
      hop_(objective.hop_weights()),
      incremental_(objective.delta_supported()),
      check_(check_delta_enabled()),
      row_(std::move(base)) {
  XLP_REQUIRE(row_.size() == n_,
              "placement and objective sizes must match");
  if (incremental_) build_tables(row_);
}

void DeltaRowObjective::build_tables(const topo::RowTopology& row) {
  const std::size_t cells = static_cast<std::size_t>(n_) * n_;
  cost_.assign(cells, kInf);
  hops_.assign(cells, -1);
  next_.assign(cells, -1);
  link_count_.assign(cells, 0);
  for (const topo::RowLink& link : row.express_links())
    ++link_count_[idx(link.lo, link.hi)];

  // Directional neighbor lists, identical to neighbors_right/left: sorted,
  // unique, with the implicit local neighbor (express links span >= 2, so
  // the local entry never collides with an express one).
  right_.assign(static_cast<std::size_t>(n_), {});
  left_.assign(static_cast<std::size_t>(n_), {});
  for (int r = 0; r < n_; ++r) {
    if (r + 1 < n_) right_[r].push_back(r + 1);
    for (int h = r + 2; h < n_; ++h)
      if (link_count_[idx(r, h)] > 0) right_[r].push_back(h);
    for (int l = 0; l + 2 <= r; ++l)
      if (link_count_[idx(l, r)] > 0) left_[r].push_back(l);
    if (r - 1 >= 0) left_[r].push_back(r - 1);
  }

  // Integer cycle weights make every monotone path sum exact, so the
  // leftward table is the bitwise transpose of the rightward one (see the
  // mirror_ comment in the header) and the cascade can skip the leftward
  // direction entirely.
  const auto is_integer = [](double w) {
    return w >= 0.0 && w == std::floor(w) && w <= 1e9;
  };
  mirror_ = is_integer(hop_.router_cycles) &&
            is_integer(hop_.link_cycles_per_unit);

  XLP_REQUIRE(n_ <= 0x7fff, "row too large for worklist entry packing");
  buckets_full_.assign(static_cast<std::size_t>(n_), {});
  buckets_light_.assign(static_cast<std::size_t>(n_), {});
  for (int s = 0; s < n_; ++s) {
    buckets_full_[s].reserve(32);
    buckets_light_[s].reserve(64);
  }
  saved_cells_.resize(512);
  saved_cells_n_ = 0;
  saved_rows_.resize(static_cast<std::size_t>(n_));
  saved_rows_n_ = 0;

  // The same span-ordered DP as DirectionalShortestPaths::compute, down to
  // the shared relaxation — the cache must hold the exact cells the full
  // evaluator would build.
  for (int i = 0; i < n_; ++i) {
    cost_[idx(i, i)] = 0.0;
    hops_[idx(i, i)] = 0;
  }
  for (int span = 1; span < n_; ++span) {
    for (int i = 0; i + span < n_; ++i) {
      const int j = i + span;
      for (const int k : right_[i]) {
        if (k > j) break;
        if (cost_[idx(k, j)] < kInf)
          route::detail::relax_monotone(hop_, i, k, cost_[idx(k, j)],
                                        hops_[idx(k, j)], cost_[idx(i, j)],
                                        hops_[idx(i, j)], next_[idx(i, j)]);
      }
      for (const int k : left_[j]) {
        if (k < i) continue;
        if (cost_[idx(k, i)] < kInf)
          route::detail::relax_monotone(hop_, j, k, cost_[idx(k, i)],
                                        hops_[idx(k, i)], cost_[idx(j, i)],
                                        hops_[idx(j, i)], next_[idx(j, i)]);
      }
    }
  }

  // Per-row reduction partials in the full evaluator's exact per-row
  // summation order (see DirectionalShortestPaths::average_cost).
  const std::vector<double>& weights = objective_->pair_weights_;
  uniform_ = weights.empty() || objective_->weights_all_zero_;
  row_part_.assign(static_cast<std::size_t>(n_), 0.0);
  row_dirty_.assign(static_cast<std::size_t>((n_ + 63) / 64), 0);
  wsum_ = 0.0;
  for (int i = 0; i < n_; ++i) {
    const std::size_t base = static_cast<std::size_t>(i) * n_;
    if (uniform_) {
      double part = 0.0;
      for (int j = 0; j < i; ++j) part += cost_[base + j];
      for (int j = i + 1; j < n_; ++j) part += cost_[base + j];
      row_part_[i] = part;
    } else {
      double row_total = 0.0;
      double row_wsum = 0.0;
      for (int j = 0; j < n_; ++j) {
        if (i == j) continue;
        row_total += weights[base + j] * cost_[base + j];
        row_wsum += weights[base + j];
      }
      row_part_[i] = row_total;
      wsum_ += row_wsum;
    }
  }
  XLP_REQUIRE(uniform_ || wsum_ > 0.0, "weights must have a positive sum");
}

bool DeltaRowObjective::apply_link(topo::RowLink link, int delta) {
  int& count = link_count_[idx(link.lo, link.hi)];
  if (delta > 0) {
    if (++count == 1) {
      sorted_insert(right_[link.lo], link.hi);
      sorted_insert(left_[link.hi], link.lo);
      return true;
    }
  } else {
    XLP_CHECK(count > 0, "removing an express link that is not present");
    if (--count == 0) {
      sorted_erase(right_[link.lo], link.hi);
      sorted_erase(left_[link.hi], link.lo);
      return true;
    }
  }
  return false;  // a duplicate link: routing is unchanged
}

void DeltaRowObjective::recompute_right(int i, int j) {
  const std::size_t ij = idx(i, j);
  save_cell(ij, idx(j, i));
  double cost = kInf;
  int hops = -1;
  int next = -1;
  for (const int k : right_[i]) {
    if (k > j) break;
    if (cost_[idx(k, j)] < kInf)
      route::detail::relax_monotone(hop_, i, k, cost_[idx(k, j)],
                                    hops_[idx(k, j)], cost, hops, next);
  }
  // Only a cost or hop change can influence larger-span cells (next-hop is
  // not a relaxation input). The cells that read (i, j) rightward are
  // (p, j) with an edge p -> i, i.e. p in left_[i] — all strictly larger
  // spans, so they land in buckets not yet drained. An improved cell may be
  // adopted by any of them (light entries); a worsened cell can never beat
  // a dependent's stored maximum — which already dominated the old, better
  // value — so only dependents that stored it as their winner are affected,
  // and those need a full re-scan.
  //
  if (cost != cost_[ij] || hops != hops_[ij]) {
    if (cost != cost_[ij]) mark_row(i);
    const bool improved = cost < cost_[ij] - 1e-12 ||
                          (cost < cost_[ij] + 1e-12 && hops < hops_[ij]);
    if (improved) {
      propagate_light(i, j, /*leftward=*/false, cost);
    } else {
      for (const int p : left_[i])
        if (next_[idx(p, j)] == i)
          buckets_full_[j - p].push_back(static_cast<std::uint32_t>(p) << 1);
    }
  }
  cost_[ij] = cost;
  hops_[ij] = hops;
  next_[ij] = next;
}

void DeltaRowObjective::recompute_left(int i, int j) {
  const std::size_t ji = idx(j, i);
  save_cell(ji, idx(i, j));
  double cost = kInf;
  int hops = -1;
  int next = -1;
  for (const int k : left_[j]) {
    if (k < i) continue;
    if (cost_[idx(k, i)] < kInf)
      route::detail::relax_monotone(hop_, j, k, cost_[idx(k, i)],
                                    hops_[idx(k, i)], cost, hops, next);
  }
  // The leftward cells that read (j, i) are (p, i) with an edge j <- p,
  // i.e. p in right_[j] — again strictly larger spans only, with the same
  // improved/worsened split and push-time filter as recompute_right.
  if (cost != cost_[ji] || hops != hops_[ji]) {
    if (cost != cost_[ji]) mark_row(j);
    const bool improved = cost < cost_[ji] - 1e-12 ||
                          (cost < cost_[ji] + 1e-12 && hops < hops_[ji]);
    if (improved) {
      propagate_light(j, i, /*leftward=*/true, cost);
    } else {
      for (const int p : right_[j])
        if (next_[idx(p, i)] == j)
          buckets_full_[p - i].push_back(
              1u | (static_cast<std::uint32_t>(i) << 1));
    }
  }
  cost_[ji] = cost;
  hops_[ji] = hops;
  next_[ji] = next;
}

// Queues light entries for every in-neighbor of the just-updated cell
// (src -> dst, stored value `cost`), filtered at push time: a dependent
// whose stored cost already beats the candidate by more than the tie band
// can only sink further below it (outside a full re-scan its value never
// rises, and a re-scan reads every candidate from the tables, needing no
// entry), so the relaxation is a foregone reject and the entry is dropped.
// A dependent that stored this cell as its winner always passes the
// filter: its stored value is the candidate's old contribution, and an
// improved contribution is below it (or tied within the band).
void DeltaRowObjective::propagate_light(int src, int dst, bool leftward,
                                        double cost) {
  if (leftward) {
    for (const int p : right_[src])
      if (hop_.link_cost(p - src) + cost < cost_[idx(p, dst)] + 1e-12)
        buckets_light_[p - dst].push_back(
            1u | (static_cast<std::uint32_t>(dst) << 1) |
            (static_cast<std::uint32_t>(src) << 16));
  } else {
    for (const int p : left_[src])
      if (hop_.link_cost(src - p) + cost < cost_[idx(p, dst)] + 1e-12)
        buckets_light_[dst - p].push_back(
            (static_cast<std::uint32_t>(p) << 1) |
            (static_cast<std::uint32_t>(src) << 16));
  }
}

void DeltaRowObjective::apply_light(std::uint32_t entry, int span) {
  const int small = static_cast<int>((entry >> 1) & 0x7fffu);
  const int k = static_cast<int>(entry >> 16);
  const bool leftward = (entry & 1u) != 0;
  const int src = leftward ? small + span : small;  // the cell's source
  const int dst = leftward ? small : small + span;  // the cell's target
  const std::size_t at = idx(src, dst);
  const std::size_t dep = idx(k, dst);
  if (!(cost_[dep] < kInf)) return;  // mirror the full scan's guard
  // Fast reject: relax_monotone can only replace the stored cell when the
  // candidate's cost is inside the tie band, so the common lose case takes
  // one predictable comparison (same expression as relax_monotone, so the
  // bits agree). A rejected candidate still escalates when it is the
  // stored winner — its contribution moved, so the cell must re-scan.
  const double quick =
      hop_.link_cost(src > k ? src - k : k - src) + cost_[dep];
  if (!(quick < cost_[at] + 1e-12)) {
    if (next_[at] == k) {
      if (leftward)
        recompute_left(dst, src);
      else
        recompute_right(src, dst);
    }
    return;
  }
  if (quick < cost_[at] - 1e-12) {
    // Clear win, outside the tie band: relax_monotone would adopt the
    // candidate unconditionally (quick is the same expression, bit for
    // bit), so skip its tie-break chain and store the result directly.
    save_cell(at, idx(dst, src));
    mark_row(src);
    cost_[at] = quick;
    hops_[at] = hops_[dep] + 1;
    next_[at] = k;
    propagate_light(src, dst, leftward, quick);
    return;
  }
  double cost = cost_[at];
  int hops = hops_[at];
  int next = next_[at];
  route::detail::relax_monotone(hop_, src, k, cost_[dep], hops_[dep], cost,
                                hops, next);
  if (cost != cost_[at] || hops != hops_[at] || next != next_[at]) {
    // The candidate beat the stored cell, so it beats every other
    // candidate's current value (each is <= the stored maximum): the cell
    // is exactly the candidate's path, as a full re-scan would conclude.
    save_cell(at, idx(dst, src));
    const bool value_changed = cost != cost_[at] || hops != hops_[at];
    if (cost != cost_[at]) mark_row(src);
    cost_[at] = cost;
    hops_[at] = hops;
    next_[at] = next;
    if (!value_changed) return;  // next-hop-only change: no one reads it
    propagate_light(src, dst, leftward, cost);
  } else if (next == k) {
    // The stored winner's own contribution changed (its dependency moved)
    // yet failed to beat its previous value: it got worse, and the true
    // best may now be any other candidate — re-scan the whole list.
    if (leftward)
      recompute_left(dst, src);
    else
      recompute_right(src, dst);
  }
}

void DeltaRowObjective::recompute_affected() {
  // A monotone path from i to j never leaves [i, j], so only pairs whose
  // span contains a changed link can change. Of those, almost every
  // affected cell resolves with a single relaxation: the shared relax
  // tie-break (cost, then hops, then longest first hop) is a strict total
  // order over candidates — two distinct candidates always differ in
  // first-hop length — so the stored cell is the order-maximum of its
  // candidates and the scan's outcome does not depend on scan position.
  // Relaxing one added/changed candidate against the stored maximum
  // therefore reproduces exactly what the full re-scan would store. Only
  // when the stored winner itself is removed or got worse does the true
  // maximum hide among the other candidates, forcing a full re-scan.
  // (With degenerate hop weights where distinct path costs differ by less
  // than the 1e-12 tie band the order argument breaks down; every
  // configuration in this repo uses integer-cycle weights where ties are
  // exact, and XLP_CHECK_DELTA guards the general case.)
  if (toggled_.empty()) return;  // duplicate-only change: nothing moves

  // Seeds. An added link (lo, hi) inserts one candidate into every
  // rightward cell (lo, j >= hi) and leftward cell (hi, i <= lo) — light
  // entries. A removed link deletes a candidate: cells that did not store
  // it as winner keep their maximum verbatim (no entry at all); cells that
  // did must re-scan — full entries.
  for (const LinkChange& change : toggled_) {
    const int lo = change.link.lo;
    const int hi = change.link.hi;
    const auto ulo = static_cast<std::uint32_t>(lo);
    const auto uhi = static_cast<std::uint32_t>(hi);
    if (change.delta > 0) {
      // The new candidate for cell (lo, j) reads dependency (hi, j), which
      // is already final iff no toggled link fits inside [hi, j] — only
      // cells whose span contains a toggled link ever change. For those j
      // the candidate is evaluated right here: a contiguous compare over
      // the two cost rows rejects the common lose case (same expression as
      // apply_light's fast reject), and the rare winner goes through
      // apply_light for the exact relax and its propagation. Cells past
      // the safety threshold fall back to a queued light entry. The
      // leftward direction ((hi, i) reading (lo, i)) is symmetric.
      int j_unsafe = n_;  // first j whose dependency (hi, j) may still move
      int i_unsafe = -1;  // last i whose dependency (lo, i) may still move
      for (const LinkChange& other : toggled_) {
        if (other.link.lo >= hi) j_unsafe = std::min(j_unsafe, other.link.hi);
        if (other.link.hi <= lo) i_unsafe = std::max(i_unsafe, other.link.lo);
      }
      const double base = hop_.link_cost(hi - lo);
      const double* dep_r = cost_.data() + static_cast<std::size_t>(hi) * n_;
      const double* cell_r = cost_.data() + static_cast<std::size_t>(lo) * n_;
      for (int j = hi; j < j_unsafe; ++j)
        if (base + dep_r[j] < cell_r[j] + 1e-12)
          apply_light((ulo << 1) | (uhi << 16), j - lo);
      for (int j = j_unsafe; j < n_; ++j)
        buckets_light_[j - lo].push_back((ulo << 1) | (uhi << 16));
      if (mirror_) continue;  // leftward cells arrive via the mirror pass
      const double* dep_l = cost_.data() + static_cast<std::size_t>(lo) * n_;
      const double* cell_l = cost_.data() + static_cast<std::size_t>(hi) * n_;
      for (int i = lo; i > i_unsafe; --i)
        if (base + dep_l[i] < cell_l[i] + 1e-12)
          apply_light(1u | (static_cast<std::uint32_t>(i) << 1) | (ulo << 16),
                      hi - i);
      for (int i = i_unsafe; i >= 0; --i)
        buckets_light_[hi - i].push_back(
            1u | (static_cast<std::uint32_t>(i) << 1) | (ulo << 16));
    } else {
      for (int j = hi; j < n_; ++j)
        if (next_[idx(lo, j)] == hi)
          buckets_full_[j - lo].push_back(ulo << 1);
      if (mirror_) continue;
      for (int i = lo; i >= 0; --i)
        if (next_[idx(hi, i)] == lo)
          buckets_full_[hi - i].push_back(
              1u | (static_cast<std::uint32_t>(i) << 1));
    }
  }

  // Drain in increasing span order: every dependency of a cell has
  // strictly smaller span, so each entry is resolved after all its inputs
  // are final — the full DP's evaluation order restricted to the affected
  // set. Full entries drain before light ones so a light relax never runs
  // ahead of a pending re-scan of the same cell; both kinds push further
  // light work into strictly larger buckets only. A light relax against a
  // cell that was already re-scanned (or updated by a sibling entry) is a
  // harmless no-op: the stored value is already the maximum over all
  // candidates' final values, which no single candidate beats.
  for (int span = 2; span < n_; ++span) {
    std::vector<std::uint32_t>& full = buckets_full_[span];
    for (std::size_t b = 0; b < full.size(); ++b) {
      const std::uint32_t entry = full[b];
      const int i = static_cast<int>(entry >> 1);
      if ((entry & 1u) != 0)
        recompute_left(i, i + span);
      else
        recompute_right(i, i + span);
    }
    full.clear();
    std::vector<std::uint32_t>& light = buckets_light_[span];
    for (std::size_t b = 0; b < light.size(); ++b)
      apply_light(light[b], span);
    light.clear();
  }

  // Mirror pass: in mirror mode only rightward cells ran through the
  // cascade; copy each changed cell's (cost, hops) into its leftward
  // transpose, which the symmetry argument proves is exactly what the
  // leftward cascade would have stored. Unchanged saves (a re-scan that
  // concluded the same triple) leave their transpose untouched. Duplicate
  // saves are harmless: the first visit updates the transpose, later
  // visits see it already equal. next_ is deliberately left stale — the
  // reduction never reads it and no leftward relaxation runs in this mode.
  if (mirror_) {
    const std::size_t changed = saved_cells_n_;
    for (std::size_t s = 0; s < changed; ++s) {
      const std::size_t at = saved_cells_[s].at;
      const std::size_t m = saved_cells_[s].mirror;
      if (cost_[m] != cost_[at] || hops_[m] != hops_[at]) {
        save_cell(m, at);
        if (cost_[m] != cost_[at])
          mark_row(static_cast<int>(m) / n_);
        cost_[m] = cost_[at];
        hops_[m] = hops_[at];
      }
    }
  }
}

double DeltaRowObjective::reduce_and_count() {
  objective_->count_evaluation();
  // Mirrors DirectionalShortestPaths::average_cost / weighted_average_cost
  // / max_cost bit-for-bit: both sides sum one partial per source row and
  // then sum the partials, so only the rows whose cost bits changed need a
  // fresh partial — the rest reuse their cached, bitwise-identical value.
  const std::vector<double>& weights = objective_->pair_weights_;
  const std::size_t words = row_dirty_.size();
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = row_dirty_[w];
    row_dirty_[w] = 0;
    while (bits != 0) {
      const int i = static_cast<int>(w * 64) + __builtin_ctzll(bits);
      bits &= bits - 1;
      RowSave& save = saved_rows_[saved_rows_n_++];
      save.row = i;
      save.part = row_part_[i];
      const std::size_t base = static_cast<std::size_t>(i) * n_;
      if (uniform_) {
        double row = 0.0;
        for (int j = 0; j < i; ++j) row += cost_[base + j];
        for (int j = i + 1; j < n_; ++j) row += cost_[base + j];
        row_part_[i] = row;
      } else {
        double row_total = 0.0;
        for (int j = 0; j < n_; ++j) {
          if (i == j) continue;
          row_total += weights[base + j] * cost_[base + j];
        }
        row_part_[i] = row_total;
      }
    }
  }
  double total = 0.0;
  for (int i = 0; i < n_; ++i) total += row_part_[i];
  const double average =
      uniform_ ? total / (static_cast<double>(n_) * (n_ - 1)) : total / wsum_;
  const double worst_weight = objective_->worst_weight_;
  if (worst_weight <= 0.0) return average;
  double max_cost = cost_[0];
  const std::size_t cells = static_cast<std::size_t>(n_) * n_;
  for (std::size_t at = 1; at < cells; ++at)
    if (cost_[at] > max_cost) max_cost = cost_[at];
  return (1.0 - worst_weight) * average + worst_weight * max_cost;
}

double DeltaRowObjective::checked(double value) const {
  if (!check_) return value;
  const topo::RowTopology placement = matrix_ ? matrix_->decode() : row_;
  const double reference = objective_->evaluate_uncounted(placement);
  if (value != reference) {
    std::ostringstream os;
    os.precision(17);
    os << "XLP_CHECK_DELTA: delta evaluation diverged from the full "
          "evaluator on "
       << placement.to_string() << ": delta=" << value
       << " full=" << reference;
    XLP_CHECK(value == reference, os.str());
  }
  return value;
}

void DeltaRowObjective::flip_matrix_links(int flat_idx,
                                          std::vector<LinkChange>& out) {
  const int interior = matrix_->interior();
  const int layer = flat_idx / interior;
  const int r = flat_idx % interior;
  const auto set = [&](int i) { return matrix_->bit(layer, i); };
  // decode() turns a maximal run of set bits over interior indices [a, b]
  // into the express link (a, b+2) in physical-router coordinates. One
  // flipped bit therefore merges, splits, extends, shrinks, creates or
  // destroys runs of this layer only — at most three links change, all
  // contained in the widest run's span.
  int a = r;
  while (a > 0 && set(a - 1)) --a;
  int b = r;
  while (b + 1 < interior && set(b + 1)) ++b;
  if (!set(r)) {
    // Setting bit r fuses the runs on both sides into [a, b].
    if (a <= r - 1) out.push_back({{a, r + 1}, -1});
    if (r + 1 <= b) out.push_back({{r + 1, b + 2}, -1});
    out.push_back({{a, b + 2}, +1});
  } else {
    // Clearing bit r splits the run [a, b] around r.
    out.push_back({{a, b + 2}, -1});
    if (a <= r - 1) out.push_back({{a, r + 1}, +1});
    if (r + 1 <= b) out.push_back({{r + 1, b + 2}, +1});
  }
  matrix_->flip_flat(flat_idx);
  toggled_.clear();
  for (const LinkChange& change : out)
    if (apply_link(change.link, change.delta)) toggled_.push_back(change);
}

double DeltaRowObjective::propose_flip(int flat_idx) {
  XLP_REQUIRE(matrix_.has_value(),
              "propose_flip needs a connection-matrix evaluator");
  XLP_REQUIRE(!pending_, "resolve the pending proposal first");
  XLP_REQUIRE(flat_idx >= 0 && flat_idx < matrix_->bit_count(),
              "flat index out of range");
  pending_ = true;
  pending_bit_ = flat_idx;
  if (!incremental_) {
    matrix_->flip_flat(flat_idx);
    return objective_->evaluate(matrix_->decode());
  }
  saved_cells_n_ = 0;
  saved_rows_n_ = 0;
  pending_changes_.clear();
  flip_matrix_links(flat_idx, pending_changes_);
  recompute_affected();
  return checked(reduce_and_count());
}

double DeltaRowObjective::propose_add(topo::RowLink link) {
  XLP_REQUIRE(!matrix_.has_value(),
              "propose_add needs a topology-mode evaluator");
  XLP_REQUIRE(!pending_, "resolve the pending proposal first");
  pending_ = true;
  pending_link_ = link;
  row_.add_express(link);
  if (!incremental_) return objective_->evaluate(row_);
  saved_cells_n_ = 0;
  saved_rows_n_ = 0;
  pending_changes_.clear();
  pending_changes_.push_back({link, +1});
  toggled_.clear();
  if (apply_link(link, +1)) toggled_.push_back({link, +1});
  recompute_affected();
  return checked(reduce_and_count());
}

void DeltaRowObjective::commit() {
  XLP_REQUIRE(pending_, "no pending proposal to commit");
  pending_ = false;
  pending_bit_ = -1;
  pending_link_.reset();
  saved_cells_n_ = 0;
  saved_rows_n_ = 0;
  pending_changes_.clear();
}

void DeltaRowObjective::revert() {
  XLP_REQUIRE(pending_, "no pending proposal to revert");
  if (matrix_.has_value()) {
    matrix_->flip_flat(pending_bit_);
  } else if (pending_link_.has_value()) {
    const bool removed = row_.remove_express(*pending_link_);
    XLP_CHECK(removed, "pending link vanished from the placement");
  }
  if (incremental_) {
    for (auto it = pending_changes_.rbegin(); it != pending_changes_.rend();
         ++it)
      apply_link(it->link, -it->delta);
    for (std::size_t s = saved_cells_n_; s-- > 0;) {
      const CellSave& save = saved_cells_[s];
      cost_[save.at] = save.cost;
      hops_[save.at] = save.hops;
      next_[save.at] = save.next;
    }
    for (std::size_t s = saved_rows_n_; s-- > 0;)
      row_part_[saved_rows_[s].row] = saved_rows_[s].part;
  }
  pending_ = false;
  pending_bit_ = -1;
  pending_link_.reset();
  saved_cells_n_ = 0;
  saved_rows_n_ = 0;
  pending_changes_.clear();
}

}  // namespace xlp::core
