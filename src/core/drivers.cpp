#include "core/drivers.hpp"

#include "topo/connection_matrix.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace xlp::core {

namespace {

PlacementResult from_sa(const SaResult& sa, long evaluations, double seconds,
                        std::string method) {
  PlacementResult out{sa.best, sa.best_value, evaluations, seconds,
                      std::move(method)};
  out.status = sa.status;
  out.checkpoint = sa.checkpoint;
  return out;
}

}  // namespace

PlacementResult solve_only_sa(const RowObjective& objective, int link_limit,
                              const SaParams& params, Rng& rng) {
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  const auto initial = topo::ConnectionMatrix::random(
      objective.row_size(), link_limit, rng, 0.5);
  SaParams labelled = params;
  if (labelled.method_label.empty()) labelled.method_label = "OnlySA";
  const SaResult sa =
      anneal_connection_matrix(initial, objective, labelled, rng);
  return from_sa(sa, objective.evaluations() - evals_before, timer.seconds(),
                 labelled.method_label);
}

PlacementResult solve_dcsa(const RowObjective& objective, int link_limit,
                           const SaParams& params, Rng& rng,
                           const DncOptions& dnc) {
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  DncOptions dnc_options = dnc;
  if (dnc_options.control == nullptr) dnc_options.control = params.control;
  const DncResult initial =
      dnc_initial_solution(objective, link_limit, dnc_options);
  const auto matrix =
      topo::ConnectionMatrix::encode(initial.placement, link_limit);
  SaParams labelled = params;
  if (labelled.method_label.empty()) labelled.method_label = "D&C_SA";
  const SaResult sa =
      anneal_connection_matrix(matrix, objective, labelled, rng);
  // The annealer's best can only match or improve on the initial solution,
  // since the initial state is scored first.
  return from_sa(sa, objective.evaluations() - evals_before, timer.seconds(),
                 labelled.method_label);
}

PlacementResult solve_dnc_only(const RowObjective& objective, int link_limit,
                               const DncOptions& dnc) {
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  DncResult result = dnc_initial_solution(objective, link_limit, dnc);
  PlacementResult out{std::move(result.placement), result.value,
                      objective.evaluations() - evals_before, timer.seconds(),
                      "D&C"};
  out.status = result.status;
  return out;
}

PlacementResult resume_sa(const RowObjective& objective,
                          const runctl::SaCheckpoint& ckpt,
                          const SaParams& hooks) {
  XLP_REQUIRE(objective.row_size() == ckpt.n,
              "checkpoint was taken for a different row size");
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  SaParams params = hooks;
  params.initial_temperature = ckpt.schedule.initial_temperature;
  params.total_moves = ckpt.schedule.total_moves;
  params.cool_scale = ckpt.schedule.cool_scale;
  params.moves_per_cool = ckpt.schedule.moves_per_cool;
  params.method_label = ckpt.method.empty() ? "SA-resumed" : ckpt.method;
  params.resume = &ckpt;
  // The generator's state is overwritten from the checkpoint inside the
  // annealer; the seed here is irrelevant.
  Rng rng(0);
  const SaResult sa =
      anneal_connection_matrix(ckpt.current, objective, params, rng);
  return from_sa(sa, objective.evaluations() - evals_before, timer.seconds(),
                 params.method_label);
}

}  // namespace xlp::core
