#include "core/drivers.hpp"

#include "topo/connection_matrix.hpp"
#include "util/stopwatch.hpp"

namespace xlp::core {

PlacementResult solve_only_sa(const RowObjective& objective, int link_limit,
                              const SaParams& params, Rng& rng) {
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  const auto initial = topo::ConnectionMatrix::random(
      objective.row_size(), link_limit, rng, 0.5);
  const SaResult sa = anneal_connection_matrix(initial, objective, params,
                                               rng);
  return {sa.best, sa.best_value, objective.evaluations() - evals_before,
          timer.seconds(), "OnlySA"};
}

PlacementResult solve_dcsa(const RowObjective& objective, int link_limit,
                           const SaParams& params, Rng& rng,
                           const DncOptions& dnc) {
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  const DncResult initial = dnc_initial_solution(objective, link_limit, dnc);
  const auto matrix =
      topo::ConnectionMatrix::encode(initial.placement, link_limit);
  const SaResult sa = anneal_connection_matrix(matrix, objective, params,
                                               rng);
  // The annealer's best can only match or improve on the initial solution,
  // since the initial state is scored first.
  return {sa.best, sa.best_value, objective.evaluations() - evals_before,
          timer.seconds(), "D&C_SA"};
}

PlacementResult solve_dnc_only(const RowObjective& objective, int link_limit,
                               const DncOptions& dnc) {
  const long evals_before = objective.evaluations();
  Stopwatch timer;
  DncResult result = dnc_initial_solution(objective, link_limit, dnc);
  return {std::move(result.placement), result.value,
          objective.evaluations() - evals_before, timer.seconds(), "D&C"};
}

}  // namespace xlp::core
