#include "core/app_specific.hpp"

#include "topo/builders.hpp"
#include "util/check.hpp"

namespace xlp::core {

AppSpecificResult solve_app_specific_for_limit(
    const traffic::TrafficMatrix& demand, int link_limit,
    const SweepOptions& options, Rng& rng) {
  const int w = demand.width();
  const int h = demand.height();
  XLP_REQUIRE(options.base_flit_bits % link_limit == 0,
              "link limit must divide the baseline flit width");

  long evaluations = 0;
  auto solve_weighted = [&](int length, std::vector<double> weights) {
    const RowObjective objective(length, options.latency.hop,
                                 std::move(weights));
    PlacementResult result =
        solve_dcsa(objective, link_limit, options.sa, rng, options.dnc);
    evaluations += result.evaluations;
    return result.placement;
  };

  std::vector<topo::RowTopology> rows;
  std::vector<topo::RowTopology> cols;
  rows.reserve(static_cast<std::size_t>(h));
  cols.reserve(static_cast<std::size_t>(w));
  for (int y = 0; y < h; ++y)
    rows.push_back(solve_weighted(w, demand.row_weights(y)));
  for (int x = 0; x < w; ++x)
    cols.push_back(solve_weighted(h, demand.col_weights(x)));

  topo::ExpressMesh design(
      std::move(rows), std::move(cols), link_limit,
      topo::flit_bits_for_limit(link_limit, options.base_flit_bits));

  latency::LatencyBreakdown breakdown =
      evaluate_design(design, options.latency, demand);
  return {std::move(design), breakdown, link_limit, evaluations};
}

AppSpecificResult solve_app_specific(const traffic::TrafficMatrix& demand,
                                     const SweepOptions& options, Rng& rng) {
  // Feasible limits are bounded by the shorter dimension's C_full.
  const int n = std::min(demand.width(), demand.height());
  AppSpecificResult best;
  bool first = true;
  for (const int limit : topo::valid_link_limits(n)) {
    if (options.base_flit_bits % limit != 0) continue;
    AppSpecificResult candidate =
        solve_app_specific_for_limit(demand, limit, options, rng);
    if (first || candidate.breakdown.total() < best.breakdown.total()) {
      best = std::move(candidate);
      first = false;
    }
  }
  XLP_CHECK(!first, "no feasible link limit found");
  return best;
}

}  // namespace xlp::core
