#include "core/baselines.hpp"

#include <algorithm>
#include <limits>

#include "topo/connection_matrix.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace xlp::core {

PlacementResult solve_greedy_insertion(const RowObjective& objective,
                                       int link_limit) {
  XLP_REQUIRE(link_limit >= 1, "link limit must be at least 1");
  const int n = objective.row_size();
  const long evals_before = objective.evaluations();
  Stopwatch timer;

  topo::RowTopology current(n);
  double current_value = objective.evaluate(current);

  while (true) {
    topo::RowLink best_link{0, 0};
    double best_value = current_value;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 2; j < n; ++j) {
        topo::RowTopology candidate = current;
        candidate.add_express({i, j});
        if (!candidate.fits_link_limit(link_limit)) continue;
        const double value = objective.evaluate(candidate);
        if (value < best_value - 1e-12) {
          best_value = value;
          best_link = {i, j};
        }
      }
    }
    if (best_link.length() < 2) break;  // no improving insertion
    current.add_express(best_link);
    current_value = best_value;
  }
  return {std::move(current), current_value,
          objective.evaluations() - evals_before, timer.seconds(),
          "greedy-insertion"};
}

PlacementResult solve_hill_climb(const RowObjective& objective,
                                 int link_limit, long max_evaluations,
                                 Rng& rng) {
  XLP_REQUIRE(max_evaluations >= 1, "need a positive evaluation budget");
  const int n = objective.row_size();
  const long evals_before = objective.evaluations();
  Stopwatch timer;

  topo::RowTopology best(n);
  double best_value = objective.evaluate(best);

  auto budget_left = [&] {
    return objective.evaluations() - evals_before < max_evaluations;
  };

  while (budget_left()) {
    topo::ConnectionMatrix current =
        topo::ConnectionMatrix::random(n, link_limit, rng, 0.5);
    double current_value = objective.evaluate(current.decode());
    if (current.bit_count() == 0) break;  // only one state exists

    bool improved = true;
    while (improved && budget_left()) {
      improved = false;
      int best_bit = -1;
      double best_neighbor = current_value;
      for (int bit = 0; bit < current.bit_count() && budget_left(); ++bit) {
        current.flip_flat(bit);
        const double value = objective.evaluate(current.decode());
        current.flip_flat(bit);
        if (value < best_neighbor - 1e-12) {
          best_neighbor = value;
          best_bit = bit;
        }
      }
      if (best_bit >= 0) {
        current.flip_flat(best_bit);
        current_value = best_neighbor;
        improved = true;
      }
    }
    if (current_value < best_value) {
      best_value = current_value;
      best = current.decode();
    }
  }
  return {std::move(best), best_value,
          objective.evaluations() - evals_before, timer.seconds(),
          "hill-climb"};
}

PlacementResult solve_ga(const RowObjective& objective, int link_limit,
                         const GaParams& params, Rng& rng) {
  XLP_REQUIRE(params.population >= 2, "GA needs a population of at least 2");
  XLP_REQUIRE(params.elites >= 0 && params.elites < params.population,
              "elite count must be below the population size");
  XLP_REQUIRE(params.tournament >= 1, "tournament size must be positive");
  const int n = objective.row_size();
  const long evals_before = objective.evaluations();
  Stopwatch timer;

  struct Individual {
    topo::ConnectionMatrix genome;
    double value;
  };

  const topo::ConnectionMatrix prototype(n, link_limit);
  const int bits = prototype.bit_count();
  const double mutation =
      params.mutation_rate > 0.0
          ? params.mutation_rate
          : (bits > 0 ? 1.0 / bits : 0.0);

  auto evaluate = [&](const topo::ConnectionMatrix& genome) {
    return objective.evaluate(genome.decode());
  };

  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(params.population));
  for (int i = 0; i < params.population; ++i) {
    auto genome = topo::ConnectionMatrix::random(n, link_limit, rng, 0.5);
    const double value = evaluate(genome);
    population.push_back({std::move(genome), value});
  }

  auto by_value = [](const Individual& a, const Individual& b) {
    return a.value < b.value;
  };
  std::sort(population.begin(), population.end(), by_value);

  auto tournament_pick = [&]() -> const Individual& {
    std::size_t best_idx = rng.uniform_below(population.size());
    for (int t = 1; t < params.tournament; ++t) {
      const std::size_t idx = rng.uniform_below(population.size());
      if (population[idx].value < population[best_idx].value) best_idx = idx;
    }
    return population[best_idx];
  };

  while (objective.evaluations() - evals_before <
             params.max_evaluations &&
         bits > 0) {
    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < params.elites; ++e)
      next.push_back(population[static_cast<std::size_t>(e)]);

    while (static_cast<int>(next.size()) < params.population) {
      const Individual& a = tournament_pick();
      const Individual& b = tournament_pick();
      topo::ConnectionMatrix child = a.genome;
      if (rng.bernoulli(params.crossover_rate)) {
        for (int bit = 0; bit < bits; ++bit)
          if (rng.bernoulli(0.5) &&
              child.bit_flat(bit) != b.genome.bit_flat(bit))
            child.flip_flat(bit);
      }
      for (int bit = 0; bit < bits; ++bit)
        if (rng.bernoulli(mutation)) child.flip_flat(bit);
      const double value = evaluate(child);
      next.push_back({std::move(child), value});
    }
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_value);
  }

  return {population.front().genome.decode(), population.front().value,
          objective.evaluations() - evals_before, timer.seconds(), "GA"};
}

}  // namespace xlp::core
