#pragma once

#include "core/sa.hpp"

namespace xlp::core {

/// Outcome of the naive-neighborhood annealer, with the extra accounting
/// the connection-matrix design makes unnecessary.
struct NaiveSaResult {
  topo::RowTopology best;
  double best_value = 0.0;
  long moves = 0;           // moves that produced a *valid* candidate
  long invalid_moves = 0;   // candidates rejected for violating the limit
  long accepted = 0;
  /// kCompleted unless SaParams::control stopped the loop early; the best
  /// placement is valid either way.
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
};

/// The strawman candidate generator the paper argues against (Section
/// 4.4.2): each move adds, deletes, stretches, or shortens a randomly
/// selected link directly on the link set. Candidates that violate the
/// cross-section limit are discarded — those attempts still consume move
/// budget, which is precisely the inefficiency the connection-matrix space
/// eliminates. Kept as an ablation baseline (bench/ablation_generators).
[[nodiscard]] NaiveSaResult anneal_naive_links(const topo::RowTopology& initial,
                                               const RowObjective& objective,
                                               int link_limit,
                                               const SaParams& params,
                                               Rng& rng);

}  // namespace xlp::core
