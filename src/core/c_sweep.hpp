#pragma once

#include <optional>
#include <vector>

#include "core/drivers.hpp"
#include "latency/model.hpp"
#include "topo/builders.hpp"
#include "traffic/matrix.hpp"

namespace xlp::core {

/// Which placement algorithm a sweep uses for each link limit.
enum class Solver { kDcsa, kOnlySa, kDncOnly };

/// One design point of the Fig. 5 curve: the best placement found for a
/// given link limit C, packaged with its flit width and its analytic
/// latency breakdown.
struct SweepPoint {
  int link_limit = 1;
  PlacementResult placement;
  topo::ExpressMesh design{topo::RowTopology(2), 1, 1};
  latency::LatencyBreakdown breakdown;
};

struct SweepOptions {
  Solver solver = Solver::kDcsa;
  SaParams sa;
  DncOptions dnc;
  latency::LatencyParams latency = latency::LatencyParams::parsec_typical();
  int base_flit_bits = topo::kBaseFlitBits;
  /// When set, the reported latency breakdown is weighted by this traffic
  /// matrix (e.g. the PARSEC-average workload); the *placement* is still
  /// optimized for the uniform general-purpose objective, as in the paper.
  std::optional<traffic::TrafficMatrix> report_traffic;
  /// Pool workers for the per-limit cells (each limit is independent).
  /// 0 = util::default_thread_count(); always additionally capped by the
  /// number of feasible limits. Every cell draws from its own stream
  /// forked off the caller's rng in cell order, so the sweep result and
  /// the caller's rng state afterwards are identical for any thread count
  /// (see docs/parallelism.md).
  int threads = 0;
};

/// The paper's overall flow (Section 4, opening): enumerate the possible
/// link limits C, solve P̄(n, C) for each, and compare total latencies to
/// find the best design. Limits that do not divide the baseline flit width
/// are skipped (the flit must remain an integer number of bits).
[[nodiscard]] std::vector<SweepPoint> sweep_link_limits(
    int n, const SweepOptions& options, Rng& rng);

/// Index of the sweep point with the lowest total average latency.
[[nodiscard]] std::size_t best_point(const std::vector<SweepPoint>& points);

/// Rectangular generalization of the sweep: rows and columns have
/// different lengths, so each link limit solves *two* 1D problems —
/// P̄(width, C) for the rows and P̄(height, C) for the columns (each
/// dimension capped at its own C_full). Everything else (flit width,
/// replication, reporting) works as in the square flow.
[[nodiscard]] std::vector<SweepPoint> sweep_link_limits_rect(
    int width, int height, const SweepOptions& options, Rng& rng);

/// Evaluates a fixed design (Mesh, HFB, ...) under the same latency params
/// and optional report weighting, so fixed topologies and sweep points are
/// comparable.
[[nodiscard]] latency::LatencyBreakdown evaluate_design(
    const topo::ExpressMesh& design, const latency::LatencyParams& params,
    const std::optional<traffic::TrafficMatrix>& report_traffic);

}  // namespace xlp::core
