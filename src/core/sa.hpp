#pragma once

#include <algorithm>
#include <functional>

#include "core/objective.hpp"
#include "topo/connection_matrix.hpp"
#include "util/rng.hpp"

namespace xlp::core {

/// Snapshot handed to the optional SaParams::observer at the end of every
/// cooling window (just before the temperature is divided): the telemetry
/// behind a per-run cooling trajectory.
struct SaCoolingStep {
  int step = 0;                // 0-based cooling-step index
  long moves_done = 0;         // moves completed so far, including this window
  double temperature = 0.0;    // temperature the window ran at
  double current_value = 0.0;  // objective of the current state
  double best_value = 0.0;     // best objective seen so far
  long window_moves = 0;       // moves in this cooling window
  long window_accepted = 0;    // accepted moves in this window
  [[nodiscard]] double window_acceptance_rate() const noexcept {
    return window_moves > 0
               ? static_cast<double>(window_accepted) / window_moves
               : 0.0;
  }
};

/// Per-cooling-step observer; called synchronously from the annealing
/// loop, so it must be cheap (or buffer internally). Empty by default.
using SaObserver = std::function<void(const SaCoolingStep&)>;

/// Simulated-annealing schedule, Table 1 of the paper: exponential
/// acceptance exp(-dL/T), linear cooling implemented as T <- T / cool_scale
/// every moves_per_cool moves, starting from T0.
struct SaParams {
  double initial_temperature = 10.0;  // T0, in cycles
  long total_moves = 10000;           // m
  double cool_scale = 2.0;            // Sc
  long moves_per_cool = 1000;         // mc

  /// Invoked once per cooling step when set; see SaCoolingStep.
  SaObserver observer;

  /// Scales the move budget while keeping the same cooling profile shape
  /// (used by the runtime-comparison experiment, Fig. 7).
  [[nodiscard]] SaParams with_moves(long moves) const {
    SaParams p = *this;
    p.total_moves = moves;
    // Keep the number of cooling steps constant so the temperature profile
    // is the same function of move fraction.
    p.moves_per_cool = std::max<long>(1, (moves * moves_per_cool) /
                                             std::max<long>(1, total_moves));
    return p;
  }
};

/// Outcome of one annealing run.
struct SaResult {
  topo::RowTopology best;
  double best_value = 0.0;
  topo::ConnectionMatrix best_matrix;
  long moves = 0;
  long accepted = 0;
  long improved = 0;  // accepted moves with dL <= 0
  /// accepted / moves over the whole run (0 when no moves were made), so
  /// callers stop re-deriving it.
  double acceptance_rate = 0.0;
  /// Temperature after the last cooling step (== initial_temperature when
  /// the schedule never cooled or the matrix was degenerate).
  double final_temperature = 0.0;
};

/// The paper's annealer over the connection-matrix search space (Section
/// 4.4.2): the state is a (n-2)x(C-1) bit matrix, one move flips one
/// uniformly chosen connection point, and every state decodes to a valid
/// placement — no move is ever wasted on an infeasible candidate.
[[nodiscard]] SaResult anneal_connection_matrix(
    const topo::ConnectionMatrix& initial, const RowObjective& objective,
    const SaParams& params, Rng& rng);

}  // namespace xlp::core
