#pragma once

#include <algorithm>

#include "core/objective.hpp"
#include "topo/connection_matrix.hpp"
#include "util/rng.hpp"

namespace xlp::core {

/// Simulated-annealing schedule, Table 1 of the paper: exponential
/// acceptance exp(-dL/T), linear cooling implemented as T <- T / cool_scale
/// every moves_per_cool moves, starting from T0.
struct SaParams {
  double initial_temperature = 10.0;  // T0, in cycles
  long total_moves = 10000;           // m
  double cool_scale = 2.0;            // Sc
  long moves_per_cool = 1000;         // mc

  /// Scales the move budget while keeping the same cooling profile shape
  /// (used by the runtime-comparison experiment, Fig. 7).
  [[nodiscard]] SaParams with_moves(long moves) const {
    SaParams p = *this;
    p.total_moves = moves;
    // Keep the number of cooling steps constant so the temperature profile
    // is the same function of move fraction.
    p.moves_per_cool = std::max<long>(1, (moves * moves_per_cool) /
                                             std::max<long>(1, total_moves));
    return p;
  }
};

/// Outcome of one annealing run.
struct SaResult {
  topo::RowTopology best;
  double best_value = 0.0;
  topo::ConnectionMatrix best_matrix;
  long moves = 0;
  long accepted = 0;
  long improved = 0;  // accepted moves with dL <= 0
};

/// The paper's annealer over the connection-matrix search space (Section
/// 4.4.2): the state is a (n-2)x(C-1) bit matrix, one move flips one
/// uniformly chosen connection point, and every state decodes to a valid
/// placement — no move is ever wasted on an infeasible candidate.
[[nodiscard]] SaResult anneal_connection_matrix(
    const topo::ConnectionMatrix& initial, const RowObjective& objective,
    const SaParams& params, Rng& rng);

}  // namespace xlp::core
