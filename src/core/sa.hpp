#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <string>

#include "core/objective.hpp"
#include "runctl/checkpoint.hpp"
#include "runctl/control.hpp"
#include "topo/connection_matrix.hpp"
#include "util/rng.hpp"

namespace xlp::obs {
class SeriesRecorder;
}

namespace xlp::core {

/// Snapshot handed to the optional SaParams::observer at the end of every
/// cooling window (just before the temperature is divided): the telemetry
/// behind a per-run cooling trajectory.
struct SaCoolingStep {
  int step = 0;                // 0-based cooling-step index
  long moves_done = 0;         // moves completed so far, including this window
  double temperature = 0.0;    // temperature the window ran at
  double current_value = 0.0;  // objective of the current state
  double best_value = 0.0;     // best objective seen so far
  long window_moves = 0;       // moves in this cooling window
  long window_accepted = 0;    // accepted moves in this window
  [[nodiscard]] double window_acceptance_rate() const noexcept {
    return window_moves > 0
               ? static_cast<double>(window_accepted) / window_moves
               : 0.0;
  }
};

/// Per-cooling-step observer; called synchronously from the annealing
/// loop, so it must be cheap (or buffer internally). Empty by default.
using SaObserver = std::function<void(const SaCoolingStep&)>;

/// Simulated-annealing schedule, Table 1 of the paper: exponential
/// acceptance exp(-dL/T), linear cooling implemented as T <- T / cool_scale
/// every moves_per_cool moves, starting from T0.
struct SaParams {
  double initial_temperature = 10.0;  // T0, in cycles
  long total_moves = 10000;           // m
  double cool_scale = 2.0;            // Sc
  long moves_per_cool = 1000;         // mc

  /// Invoked once per cooling step when set; see SaCoolingStep.
  SaObserver observer;

  /// Optional bounded-memory recorder (not owned; must outlive the run).
  /// When set, the annealer appends objective / best-so-far / temperature /
  /// window acceptance-rate samples once per cooling step, under names
  /// prefixed with series_prefix (portfolio chains pass "chainK." so their
  /// merged recordings stay disjoint and deterministic).
  obs::SeriesRecorder* series = nullptr;
  std::string series_prefix;

  /// Cooperative stop: when set, the annealing loop polls it once per move
  /// and stops early (keeping the best solution found so far) on a
  /// deadline or an interrupt. Not owned; may be null.
  runctl::RunControl* control = nullptr;

  /// When set together with checkpoint_every_moves > 0, the annealer hands
  /// a full state snapshot to this sink every checkpoint_every_moves
  /// moves, once more if it stops early, and a final one (complete=true)
  /// when the schedule finishes. Called synchronously from the loop —
  /// sinks that hit the filesystem should keep the cadence coarse.
  std::function<void(const runctl::SaCheckpoint&)> checkpoint_sink;
  long checkpoint_every_moves = 0;

  /// Resume from a previously captured snapshot instead of starting fresh:
  /// restores the matrix, counters, temperature and RNG words, so the
  /// continued run is bit-identical to one that was never stopped. The
  /// schedule fields above must equal the checkpoint's (drivers rebuild
  /// them from it). Not owned; may be null.
  const runctl::SaCheckpoint* resume = nullptr;

  /// Label recorded in emitted checkpoints so `xlp run --resume` knows
  /// which driver produced them (e.g. "OnlySA").
  std::string method_label;

  /// Score each move with the incremental evaluator (DeltaRowObjective):
  /// O(affected spans) per flipped connection point instead of a full
  /// shortest-paths rebuild, with bit-identical values — the trajectory,
  /// checkpoints and SaResult are byte-for-byte the same either way, so
  /// this is a pure speed knob. Off is the reference path (benchmarks
  /// measure it; XLP_CHECK_DELTA=1 cross-checks every delta score against
  /// it at runtime). Objectives a delta evaluator cannot reproduce
  /// (secondary-metric blends) fall back to full evaluation internally.
  bool delta_eval = true;

  /// Scales the move budget while keeping the same cooling profile shape
  /// (used by the runtime-comparison experiment, Fig. 7).
  [[nodiscard]] SaParams with_moves(long moves) const {
    SaParams p = *this;
    p.total_moves = moves;
    // Keep the number of cooling steps constant so the temperature profile
    // is the same function of move fraction.
    p.moves_per_cool = std::max<long>(1, (moves * moves_per_cool) /
                                             std::max<long>(1, total_moves));
    return p;
  }
};

/// Outcome of one annealing run.
struct SaResult {
  topo::RowTopology best;
  double best_value = 0.0;
  topo::ConnectionMatrix best_matrix;
  long moves = 0;
  long accepted = 0;
  long improved = 0;  // accepted moves with dL <= 0
  /// accepted / moves over the whole run (0 when no moves were made), so
  /// callers stop re-deriving it.
  double acceptance_rate = 0.0;
  /// Temperature after the last cooling step (== initial_temperature when
  /// the schedule never cooled or the matrix was degenerate).
  double final_temperature = 0.0;
  /// kCompleted when the schedule ran out naturally; kDeadline /
  /// kInterrupted when SaParams::control stopped the loop early. The best
  /// solution fields are valid either way.
  runctl::RunStatus status = runctl::RunStatus::kCompleted;
  /// Engaged when the run stopped early: the snapshot to persist so the
  /// run can be continued with SaParams::resume.
  std::optional<runctl::SaCheckpoint> checkpoint;
};

/// The paper's annealer over the connection-matrix search space (Section
/// 4.4.2): the state is a (n-2)x(C-1) bit matrix, one move flips one
/// uniformly chosen connection point, and every state decodes to a valid
/// placement — no move is ever wasted on an infeasible candidate.
[[nodiscard]] SaResult anneal_connection_matrix(
    const topo::ConnectionMatrix& initial, const RowObjective& objective,
    const SaParams& params, Rng& rng);

}  // namespace xlp::core
