#include "power/model.hpp"

#include "util/check.hpp"

namespace xlp::power {

PowerReport evaluate_power(const topo::ExpressMesh& design,
                           const sim::ActivityCounters& activity,
                           long buffer_bits_per_router,
                           const EnergyParams& params) {
  XLP_REQUIRE(activity.measured_cycles > 0,
              "activity counters cover zero cycles");
  XLP_REQUIRE(activity.flit_bits == design.flit_bits(),
              "activity was measured at a different flit width than the "
              "design declares");
  XLP_REQUIRE(buffer_bits_per_router > 0, "buffer budget must be positive");

  PowerReport report;
  const double bits = design.flit_bits();
  const double events_to_watts =
      params.frequency_hz / static_cast<double>(activity.measured_cycles);

  report.dynamic_buffer_w =
      (static_cast<double>(activity.buffer_writes) *
           params.e_buffer_write_per_bit +
       static_cast<double>(activity.buffer_reads) *
           params.e_buffer_read_per_bit) *
      bits * events_to_watts;
  report.dynamic_crossbar_w =
      static_cast<double>(activity.crossbar_traversals) *
      params.e_crossbar_per_bit * bits * events_to_watts;
  report.dynamic_link_w = static_cast<double>(activity.link_flit_units) *
                          params.e_link_per_bit_per_unit * bits *
                          events_to_watts;

  report.static_buffer_w = params.p_buffer_static_per_bit *
                           static_cast<double>(buffer_bits_per_router) *
                           design.node_count();
  double ports_total = 0.0;
  double xbar_bit_port2 = 0.0;
  for (int y = 0; y < design.height(); ++y) {
    for (int x = 0; x < design.width(); ++x) {
      const int k = design.router_ports({x, y});
      ports_total += k;
      xbar_bit_port2 += bits * static_cast<double>(k) * k;
    }
  }
  report.static_crossbar_w =
      params.p_xbar_static_per_bit_port2 * xbar_bit_port2;
  report.static_other_w =
      params.p_other_static_per_router * design.node_count() +
      params.p_other_static_per_port * ports_total;
  return report;
}

}  // namespace xlp::power
