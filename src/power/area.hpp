#pragma once

#include "topo/express_mesh.hpp"

namespace xlp::power {

/// DSENT-style area coefficients at 32 nm used to bound the routing-table
/// hardware overhead (Section 4.5.2 reports it below 0.5% of the router).
struct AreaParams {
  double um2_per_buffer_bit = 0.5;
  double um2_per_xbar_bit_port2 = 0.25;
  double um2_per_table_bit = 0.5;   // SRAM lookup-table cell + decode share
  int bits_per_table_entry = 6;     // output-port number (64 ports max)
};

struct AreaReport {
  double router_um2 = 0.0;        // average buffers + crossbar area
  double routing_table_um2 = 0.0;  // both dimension tables
  [[nodiscard]] double table_overhead_fraction() const noexcept {
    return router_um2 > 0.0 ? routing_table_um2 / router_um2 : 0.0;
  }
};

/// Average per-router area and the lookup-table overhead for a design.
/// Each router holds two tables (X and Y) of at most n-1 entries each —
/// Section 4.5.2's "at most 2(n-1) entries".
[[nodiscard]] AreaReport evaluate_area(const topo::ExpressMesh& design,
                                       long buffer_bits_per_router,
                                       const AreaParams& params = {});

}  // namespace xlp::power
