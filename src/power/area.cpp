#include "power/area.hpp"

#include "util/check.hpp"

namespace xlp::power {

AreaReport evaluate_area(const topo::ExpressMesh& design,
                         long buffer_bits_per_router,
                         const AreaParams& params) {
  XLP_REQUIRE(buffer_bits_per_router > 0, "buffer budget must be positive");

  double xbar_um2_total = 0.0;
  for (int y = 0; y < design.height(); ++y)
    for (int x = 0; x < design.width(); ++x) {
      const double k = design.router_ports({x, y});
      xbar_um2_total +=
          params.um2_per_xbar_bit_port2 * design.flit_bits() * k * k;
    }

  AreaReport report;
  report.router_um2 =
      params.um2_per_buffer_bit * static_cast<double>(buffer_bits_per_router) +
      xbar_um2_total / design.node_count();
  // One X table (width-1 entries) plus one Y table (height-1 entries).
  report.routing_table_um2 =
      params.um2_per_table_bit *
      static_cast<double>(design.width() - 1 + design.height() - 1) *
      params.bits_per_table_entry;
  return report;
}

}  // namespace xlp::power
