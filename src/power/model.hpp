#pragma once

#include "sim/stats.hpp"
#include "topo/express_mesh.hpp"

namespace xlp::power {

/// First-order NoC energy coefficients, standing in for DSENT at 32 nm bulk
/// CMOS (Section 5.1). Dynamic energies are per bit per event; static
/// coefficients implement exactly the dependencies Section 4.6 relies on:
/// buffer leakage proportional to total buffer bits, crossbar leakage
/// proportional to b * k^2 (width times input-port count squared), and a
/// per-router / per-port "others" term (allocators, clocking).
struct EnergyParams {
  double frequency_hz = 1e9;  // Section 5.6.2 operates the NoC at 1.0 GHz

  // Dynamic, joules per bit per event. Calibrated so that at PARSEC loads
  // the 8x8 mesh lands near the paper's operating point: static about two
  // thirds of total router power (Section 5.5).
  double e_buffer_write_per_bit = 0.040e-12;
  double e_buffer_read_per_bit = 0.025e-12;
  double e_crossbar_per_bit = 0.050e-12;
  double e_link_per_bit_per_unit = 0.075e-12;

  // Static, watts.
  double p_buffer_static_per_bit = 0.25e-3 / 1024.0;  // 0.25 mW per kbit
  double p_xbar_static_per_bit_port2 = 0.78e-6;       // per bit * ports^2
  double p_other_static_per_router = 2.0e-3;
  double p_other_static_per_port = 0.15e-3;
};

/// Network-wide router power split the way Figs. 9 and 10 report it.
struct PowerReport {
  double dynamic_buffer_w = 0.0;
  double dynamic_crossbar_w = 0.0;
  double dynamic_link_w = 0.0;
  double static_buffer_w = 0.0;
  double static_crossbar_w = 0.0;
  double static_other_w = 0.0;

  [[nodiscard]] double dynamic_total() const noexcept {
    return dynamic_buffer_w + dynamic_crossbar_w + dynamic_link_w;
  }
  [[nodiscard]] double static_total() const noexcept {
    return static_buffer_w + static_crossbar_w + static_other_w;
  }
  [[nodiscard]] double total() const noexcept {
    return dynamic_total() + static_total();
  }
};

/// Computes the power report for a design point from measured activity.
/// `buffer_bits_per_router` must be the same value the simulation used
/// (Section 4.6 equalizes it across schemes).
[[nodiscard]] PowerReport evaluate_power(const topo::ExpressMesh& design,
                                         const sim::ActivityCounters& activity,
                                         long buffer_bits_per_router,
                                         const EnergyParams& params = {});

}  // namespace xlp::power
