#include "runctl/checkpoint.hpp"

#include <cstdio>

#include "util/check.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace xlp::runctl {
namespace {

constexpr const char* kSchemaTag = "xlp-ckpt/1";
constexpr const char* kSchemaPrefix = "xlp-ckpt/";

std::string hex_word(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

// RNG words do not fit in a double (Json's only number type), so they are
// serialized as 16-digit hex strings and decoded by hand here.
std::uint64_t parse_hex_word(const std::string& text) {
  if (text.empty() || text.size() > 16)
    throw Error(ErrorCode::kParse, "bad hex word '" + text + "'");
  std::uint64_t value = 0;
  for (const char ch : text) {
    int digit;
    if (ch >= '0' && ch <= '9')
      digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f')
      digit = ch - 'a' + 10;
    else if (ch >= 'A' && ch <= 'F')
      digit = ch - 'A' + 10;
    else
      throw Error(ErrorCode::kParse, "bad hex word '" + text + "'");
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

const obs::Json& field(const obs::Json& obj, const char* key) {
  if (!obj.is_object())
    throw Error(ErrorCode::kParse, "expected a JSON object");
  const obs::Json* f = obj.find(key);
  if (f == nullptr)
    throw Error(ErrorCode::kParse,
                std::string("missing field '") + key + "'");
  return *f;
}

double number_field(const obs::Json& obj, const char* key) {
  const obs::Json& f = field(obj, key);
  if (!f.is_number())
    throw Error(ErrorCode::kParse,
                std::string("field '") + key + "' must be a number");
  return f.as_number();
}

long long_field(const obs::Json& obj, const char* key) {
  return static_cast<long>(number_field(obj, key));
}

const std::string& string_field(const obs::Json& obj, const char* key) {
  const obs::Json& f = field(obj, key);
  if (!f.is_string())
    throw Error(ErrorCode::kParse,
                std::string("field '") + key + "' must be a string");
  return f.as_string();
}

bool bool_field(const obs::Json& obj, const char* key) {
  const obs::Json& f = field(obj, key);
  if (f.type() != obs::Json::Type::kBool)
    throw Error(ErrorCode::kParse,
                std::string("field '") + key + "' must be a boolean");
  return f.as_bool();
}

obs::Json schedule_to_json(const SaSchedule& s) {
  obs::Json j = obs::Json::object();
  j.set("initial_temperature", s.initial_temperature)
      .set("total_moves", s.total_moves)
      .set("cool_scale", s.cool_scale)
      .set("moves_per_cool", s.moves_per_cool);
  return j;
}

SaSchedule schedule_from_json(const obs::Json& j) {
  SaSchedule s;
  s.initial_temperature = number_field(j, "initial_temperature");
  s.total_moves = long_field(j, "total_moves");
  s.cool_scale = number_field(j, "cool_scale");
  s.moves_per_cool = long_field(j, "moves_per_cool");
  return s;
}

obs::Json matrix_to_json(const topo::ConnectionMatrix& m, double value) {
  obs::Json j = obs::Json::object();
  j.set("matrix", m.to_string()).set("value", value);
  return j;
}

topo::ConnectionMatrix matrix_from_json(const obs::Json& j, int n,
                                        int link_limit) {
  const std::string& text = string_field(j, "matrix");
  try {
    return topo::ConnectionMatrix::from_string(n, link_limit, text);
  } catch (const PreconditionError& pe) {
    throw Error(ErrorCode::kParse, pe.what());
  }
}

obs::Json envelope(const char* kind, obs::Json payload) {
  obs::Json j = obs::Json::object();
  j.set("schema", kSchemaTag).set("kind", kind).set("payload",
                                                    std::move(payload));
  return j;
}

void save_envelope(const std::string& path, obs::Json document) {
  if (!util::atomic_write_file(path, document.dump() + "\n")) {
    throw Error(ErrorCode::kIo, "cannot write file")
        .with_context("saving checkpoint " + path);
  }
}

}  // namespace

obs::Json SaCheckpoint::to_json() const {
  obs::Json rng = obs::Json::array();
  for (const std::uint64_t word : rng_state) rng.push(hex_word(word));

  obs::Json j = obs::Json::object();
  j.set("schedule", schedule_to_json(schedule))
      .set("method", method)
      .set("n", n)
      .set("link_limit", link_limit)
      .set("next_move", next_move)
      .set("cooling_step", cooling_step)
      .set("temperature", temperature)
      .set("window_start_move", window_start_move)
      .set("window_start_accepted", window_start_accepted)
      .set("moves", moves)
      .set("accepted", accepted)
      .set("improved", improved)
      .set("rng", std::move(rng))
      .set("current", matrix_to_json(current, current_value))
      .set("best", matrix_to_json(best, best_value))
      .set("complete", complete);
  return j;
}

SaCheckpoint SaCheckpoint::from_json(const obs::Json& json) {
  SaCheckpoint c;
  c.schedule = schedule_from_json(field(json, "schedule"));
  c.method = string_field(json, "method");
  c.n = static_cast<int>(long_field(json, "n"));
  c.link_limit = static_cast<int>(long_field(json, "link_limit"));
  if (c.n < 2 || c.link_limit < 1)
    throw Error(ErrorCode::kParse, "invalid problem size in checkpoint");

  c.next_move = long_field(json, "next_move");
  c.cooling_step = long_field(json, "cooling_step");
  c.temperature = number_field(json, "temperature");
  c.window_start_move = long_field(json, "window_start_move");
  c.window_start_accepted = long_field(json, "window_start_accepted");
  c.moves = long_field(json, "moves");
  c.accepted = long_field(json, "accepted");
  c.improved = long_field(json, "improved");

  const obs::Json& rng = field(json, "rng");
  if (!rng.is_array() || rng.size() != c.rng_state.size())
    throw Error(ErrorCode::kParse, "field 'rng' must be an array of 4 words");
  for (std::size_t i = 0; i < c.rng_state.size(); ++i) {
    const obs::Json& word = rng.at(i);
    if (!word.is_string())
      throw Error(ErrorCode::kParse, "rng words must be hex strings");
    c.rng_state[i] = parse_hex_word(word.as_string());
  }

  const obs::Json& current = field(json, "current");
  c.current = matrix_from_json(current, c.n, c.link_limit);
  c.current_value = number_field(current, "value");
  const obs::Json& best = field(json, "best");
  c.best = matrix_from_json(best, c.n, c.link_limit);
  c.best_value = number_field(best, "value");
  c.complete = bool_field(json, "complete");
  return c;
}

obs::Json PortfolioCheckpoint::to_json() const {
  obs::Json states = obs::Json::array();
  for (const std::optional<SaCheckpoint>& state : chain_states)
    states.push(state ? state->to_json() : obs::Json());

  obs::Json j = obs::Json::object();
  j.set("n", n)
      .set("link_limit", link_limit)
      .set("chains", chains)
      .set("seed", hex_word(seed))
      .set("solver", solver)
      .set("schedule", schedule_to_json(schedule))
      .set("chain_states", std::move(states));
  return j;
}

PortfolioCheckpoint PortfolioCheckpoint::from_json(const obs::Json& json) {
  PortfolioCheckpoint p;
  p.n = static_cast<int>(long_field(json, "n"));
  p.link_limit = static_cast<int>(long_field(json, "link_limit"));
  p.chains = static_cast<int>(long_field(json, "chains"));
  if (p.n < 2 || p.link_limit < 1 || p.chains < 1)
    throw Error(ErrorCode::kParse, "invalid portfolio shape in checkpoint");
  p.seed = parse_hex_word(string_field(json, "seed"));
  p.solver = string_field(json, "solver");
  p.schedule = schedule_from_json(field(json, "schedule"));

  const obs::Json& states = field(json, "chain_states");
  if (!states.is_array() || states.size() != static_cast<std::size_t>(p.chains))
    throw Error(ErrorCode::kParse,
                "field 'chain_states' must list one entry per chain");
  for (std::size_t i = 0; i < states.size(); ++i) {
    const obs::Json& state = states.at(i);
    if (state.is_null()) {
      p.chain_states.emplace_back(std::nullopt);
    } else {
      try {
        p.chain_states.emplace_back(SaCheckpoint::from_json(state));
      } catch (Error& e) {
        e.with_context("chain " + std::to_string(i));
        throw;
      }
    }
  }
  return p;
}

void save_sa_checkpoint(const std::string& path, const SaCheckpoint& ckpt) {
  save_envelope(path, envelope("sa", ckpt.to_json()));
}

void save_portfolio_checkpoint(const std::string& path,
                               const PortfolioCheckpoint& ckpt) {
  save_envelope(path, envelope("portfolio", ckpt.to_json()));
}

CheckpointFile load_checkpoint_file(const std::string& path) {
  try {
    const std::optional<std::string> text = util::read_file(path);
    if (!text) throw Error(ErrorCode::kIo, "cannot read file");

    std::size_t error_offset = 0;
    const std::optional<obs::Json> doc = obs::Json::parse(*text, &error_offset);
    if (!doc)
      throw Error(ErrorCode::kParse, "JSON syntax error at character " +
                                         std::to_string(error_offset));
    if (!doc->is_object())
      throw Error(ErrorCode::kSchema, "checkpoint must be a JSON object");

    const obs::Json* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string())
      throw Error(ErrorCode::kSchema,
                  "missing 'schema' marker — not an xlp checkpoint");
    const std::string& tag = schema->as_string();
    if (tag.rfind(kSchemaPrefix, 0) != 0)
      throw Error(ErrorCode::kSchema,
                  "schema '" + tag + "' is not an xlp checkpoint");
    if (tag != kSchemaTag)
      throw Error(ErrorCode::kVersion,
                  "checkpoint format '" + tag +
                      "' is not supported by this build (expected " +
                      kSchemaTag + ")");

    CheckpointFile file;
    file.kind = string_field(*doc, "kind");
    // Reject an unknown kind before reaching into the payload, so a
    // foreign-but-envelope-shaped file reads as a schema problem, not a
    // parse error inside a payload we had no business interpreting.
    if (file.kind != "sa" && file.kind != "portfolio")
      throw Error(ErrorCode::kSchema,
                  "unknown checkpoint kind '" + file.kind + "'");
    const obs::Json& payload = field(*doc, "payload");
    if (file.kind == "sa") {
      file.sa = SaCheckpoint::from_json(payload);
    } else {
      file.portfolio = PortfolioCheckpoint::from_json(payload);
    }
    return file;
  } catch (Error& e) {
    e.with_context("loading checkpoint " + path);
    throw;
  }
}

}  // namespace xlp::runctl
