#pragma once

#include <atomic>
#include <chrono>
#include <string>

namespace xlp::runctl {

/// How a run ended. Every search and simulation loop that honours a
/// RunControl reports one of these alongside its result, so callers can
/// distinguish a converged answer from a best-effort one.
enum class RunStatus {
  kCompleted,    ///< ran to natural completion
  kDeadline,     ///< stopped by a time limit; result is best-so-far
  kInterrupted,  ///< stopped by SIGINT/SIGTERM or an explicit cancel
};

[[nodiscard]] const char* to_string(RunStatus status) noexcept;

/// Cooperative cancellation flag, safe to set from a signal handler.
///
/// The token is sticky: the first request() wins and later requests are
/// ignored, so a deadline that fires after the user pressed Ctrl-C still
/// reports "interrupted". All operations are lock-free atomics.
class CancelToken {
 public:
  /// Requests cancellation with the given reason (kDeadline or
  /// kInterrupted). The first caller wins; returns true when this call
  /// installed the reason. Async-signal-safe.
  bool request(RunStatus reason) noexcept;

  [[nodiscard]] bool cancelled() const noexcept {
    return state_.load(std::memory_order_relaxed) != kClear;
  }

  /// The winning reason; kCompleted when no cancellation was requested.
  [[nodiscard]] RunStatus reason() const noexcept;

 private:
  static constexpr int kClear = -1;
  std::atomic<int> state_{kClear};
};

/// A wall-clock budget measured against std::chrono::steady_clock.
/// Default-constructed deadlines never expire.
class Deadline {
 public:
  Deadline() noexcept = default;

  /// Deadline `seconds` from now; seconds <= 0 means already expired.
  [[nodiscard]] static Deadline after_seconds(double seconds) noexcept;

  [[nodiscard]] bool unlimited() const noexcept { return unlimited_; }
  // Inline (with stop_requested below) so header-only users — notably
  // util::ThreadPool, which sits *below* the runctl library in the link
  // order — need no xlp_runctl symbols to poll a control.
  [[nodiscard]] bool expired() const noexcept {
    if (unlimited_) return false;
    return std::chrono::steady_clock::now() >= at_;
  }
  /// Seconds until expiry (negative when past due, +inf when unlimited).
  [[nodiscard]] double remaining_seconds() const noexcept;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool unlimited_ = true;
};

/// The handle hot loops poll. Bundles an optional shared CancelToken with
/// an optional Deadline and amortizes the deadline's clock read over a
/// stride of calls (the token check is a relaxed atomic load and runs on
/// every call).
///
/// RunControl has value semantics on purpose: each worker thread copies
/// one, so the stride counter is thread-local while the token — a plain
/// pointer — stays shared. The pointed-to CancelToken must outlive every
/// copy.
class RunControl {
 public:
  RunControl() noexcept = default;
  explicit RunControl(CancelToken* token, Deadline deadline = {}) noexcept
      : token_(token), deadline_(deadline) {}

  /// True once the token is cancelled or the deadline has expired. The
  /// deadline result is sticky: after it fires once, every later call
  /// returns true without touching the clock.
  [[nodiscard]] bool stop_requested() noexcept {
    if (token_ != nullptr && token_->cancelled()) return true;
    if (deadline_hit_) return true;
    if (deadline_.unlimited()) return false;
    if (--calls_until_clock_ > 0) return false;
    calls_until_clock_ = kDeadlineStride;
    deadline_hit_ = deadline_.expired();
    return deadline_hit_;
  }

  /// The status a loop should report given how (or whether) it was
  /// stopped. An interrupt outranks a deadline.
  [[nodiscard]] RunStatus status() const noexcept;

  [[nodiscard]] const Deadline& deadline() const noexcept { return deadline_; }
  [[nodiscard]] CancelToken* token() const noexcept { return token_; }

 private:
  static constexpr int kDeadlineStride = 64;

  CancelToken* token_ = nullptr;
  Deadline deadline_{};
  bool deadline_hit_ = false;
  int calls_until_clock_ = 0;
};

/// Installs SIGINT/SIGTERM handlers that request kInterrupted on `token`.
/// A second signal restores the default disposition and re-raises, so an
/// unresponsive run can still be killed the usual way. The token must
/// outlive the handlers (in practice: a main()-scope object). Calling
/// again replaces the registered token.
void install_signal_handlers(CancelToken& token) noexcept;

}  // namespace xlp::runctl
