#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "topo/connection_matrix.hpp"

namespace xlp::runctl {

/// The cooling-schedule parameters a checkpoint must carry so a resumed
/// run replays the identical temperature trajectory. Mirrors the schedule
/// subset of core::SaParams (runctl sits below core, so it cannot include
/// it).
struct SaSchedule {
  double initial_temperature = 10.0;
  long total_moves = 10000;
  double cool_scale = 2.0;
  long moves_per_cool = 1000;
};

/// Complete annealer state at a move boundary. Restoring every field —
/// including the raw RNG words — makes a resumed run bit-identical to one
/// that was never interrupted (asserted by the runctl tests).
struct SaCheckpoint {
  SaSchedule schedule;
  std::string method;  // driver label, e.g. "D&C_SA"
  int n = 2;
  int link_limit = 1;

  long next_move = 0;  // first move the resumed run will execute
  long cooling_step = 0;
  double temperature = 0.0;
  long window_start_move = 0;
  long window_start_accepted = 0;
  long moves = 0;
  long accepted = 0;
  long improved = 0;

  std::array<std::uint64_t, 4> rng_state{};
  topo::ConnectionMatrix current{2, 1};
  double current_value = 0.0;
  topo::ConnectionMatrix best{2, 1};
  double best_value = 0.0;

  bool complete = false;  // true once the schedule ran to its end

  [[nodiscard]] obs::Json to_json() const;
  /// Throws xlp::Error (kParse / kSchema) on any malformed document.
  [[nodiscard]] static SaCheckpoint from_json(const obs::Json& json);
};

/// State of a multi-chain portfolio run. Chains that were cancelled
/// mid-anneal carry their SaCheckpoint; chains that never reached the
/// annealer (nullopt) are restarted from scratch on resume — both paths
/// are deterministic because each chain's RNG is forked from the seed.
struct PortfolioCheckpoint {
  int n = 2;
  int link_limit = 1;
  int chains = 0;
  std::uint64_t seed = 0;
  std::string solver;  // "onlysa", "dnc" or "dcsa"
  SaSchedule schedule;
  std::vector<std::optional<SaCheckpoint>> chain_states;

  [[nodiscard]] obs::Json to_json() const;
  [[nodiscard]] static PortfolioCheckpoint from_json(const obs::Json& json);
};

/// A parsed checkpoint file: exactly one of `sa` / `portfolio` is engaged,
/// matching `kind`.
struct CheckpointFile {
  std::string kind;  // "sa" | "portfolio"
  std::optional<SaCheckpoint> sa;
  std::optional<PortfolioCheckpoint> portfolio;
};

/// Atomically writes a versioned checkpoint file ("xlp-ckpt/1" envelope).
/// Throws xlp::Error(kIo) when the file cannot be written.
void save_sa_checkpoint(const std::string& path, const SaCheckpoint& ckpt);
void save_portfolio_checkpoint(const std::string& path,
                               const PortfolioCheckpoint& ckpt);

/// Loads and validates a checkpoint file. Throws xlp::Error with kIo
/// (unreadable), kParse (not JSON / bad field), kSchema (JSON but not a
/// checkpoint) or kVersion (checkpoint from a newer format), each with the
/// file path in the context chain.
[[nodiscard]] CheckpointFile load_checkpoint_file(const std::string& path);

}  // namespace xlp::runctl
