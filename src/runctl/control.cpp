#include "runctl/control.hpp"

#include <csignal>
#include <limits>

namespace xlp::runctl {

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kCompleted:
      return "completed";
    case RunStatus::kDeadline:
      return "deadline";
    case RunStatus::kInterrupted:
      return "interrupted";
  }
  return "unknown";
}

bool CancelToken::request(RunStatus reason) noexcept {
  int expected = kClear;
  return state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                        std::memory_order_relaxed);
}

RunStatus CancelToken::reason() const noexcept {
  const int raw = state_.load(std::memory_order_relaxed);
  if (raw == kClear) return RunStatus::kCompleted;
  return static_cast<RunStatus>(raw);
}

Deadline Deadline::after_seconds(double seconds) noexcept {
  Deadline d;
  d.unlimited_ = false;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(seconds > 0.0 ? seconds : 0.0));
  return d;
}

double Deadline::remaining_seconds() const noexcept {
  if (unlimited_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(at_ - std::chrono::steady_clock::now())
      .count();
}

RunStatus RunControl::status() const noexcept {
  if (token_ != nullptr && token_->cancelled()) return token_->reason();
  if (deadline_hit_) return RunStatus::kDeadline;
  return RunStatus::kCompleted;
}

namespace {

// The handler may only touch async-signal-safe state: one relaxed atomic
// pointer load plus the token's lock-free CAS.
std::atomic<CancelToken*> g_signal_token{nullptr};

extern "C" void xlp_runctl_signal_handler(int signum) {
  CancelToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr && token->request(RunStatus::kInterrupted)) return;
  // Second signal (or no token): fall back to the default action so the
  // process can still be terminated forcibly.
  std::signal(signum, SIG_DFL);
  std::raise(signum);
}

}  // namespace

void install_signal_handlers(CancelToken& token) noexcept {
  g_signal_token.store(&token, std::memory_order_relaxed);
  std::signal(SIGINT, xlp_runctl_signal_handler);
  std::signal(SIGTERM, xlp_runctl_signal_handler);
}

}  // namespace xlp::runctl
