#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>

#include "obs/json.hpp"
#include "svc/envelope.hpp"
#include "topo/row_topology.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace xlp::svc {

namespace fs = std::filesystem;

std::vector<Request> sweep_batch(int n, const std::string& method,
                                 long moves, std::uint64_t seed,
                                 int base_flit_bits) {
  std::vector<Request> batch;
  for (const int limit : topo::valid_link_limits(n)) {
    if (base_flit_bits % limit != 0) continue;
    Request request;
    request.kind = RequestKind::kSolve;
    request.n = n;
    request.link_limit = limit;
    request.base_flit_bits = base_flit_bits;
    request.method = method;
    request.moves = moves;
    request.seed = seed;
    batch.push_back(std::move(request));
  }
  return batch;
}

std::string batch_to_text(const std::vector<Request>& batch) {
  std::string out = "[";
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (i > 0) out += ",";
    out += batch[i].to_json().dump();
  }
  out += "]";
  return out;
}

double RetryPolicy::backoff_ms(int attempt) const {
  const int step = std::max(attempt, 1);
  const double exponential =
      std::min(max_ms, base_ms * std::pow(2.0, step - 1));
  // Jitter is a pure function of (seed, attempt): fork an independent
  // stream per attempt so the schedule is reproducible yet spread out.
  Rng base(seed);
  Rng stream = base.fork(static_cast<std::uint64_t>(step));
  return exponential * (0.5 + 0.5 * stream.uniform01());
}

namespace {

bool is_retryable_error_reply(const obs::Json& reply) {
  if (!reply.is_object()) return false;
  const obs::Json* error = reply.find("error");
  if (error == nullptr || !error->is_object()) return false;
  const obs::Json* retryable = error->find("retryable");
  return retryable != nullptr &&
         retryable->type() == obs::Json::Type::kBool &&
         retryable->as_bool();
}

}  // namespace

bool reply_has_retryable_error(const std::string& reply_text) {
  const auto doc = obs::Json::parse(reply_text);
  if (!doc) return false;
  if (doc->is_array()) {
    for (std::size_t i = 0; i < doc->size(); ++i)
      if (is_retryable_error_reply(doc->at(i))) return true;
    return false;
  }
  return is_retryable_error_reply(*doc);
}

bool queue_submit(const std::string& queue_dir, const std::string& name,
                  const std::string& text) {
  return util::atomic_write_file(
      (fs::path(queue_dir) / "inbox" / (name + ".json")).string(),
      wrap_envelope(text));
}

std::string queue_wait(const std::string& queue_dir, const std::string& name,
                       double timeout_seconds) {
  const fs::path reply_path =
      fs::path(queue_dir) / "outbox" / (name + ".json");
  const fs::path inbox_path =
      fs::path(queue_dir) / "inbox" / (name + ".json");
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(timeout_seconds);
  while (true) {
    if (auto text = util::read_file(reply_path.string())) {
      std::string payload;
      switch (unwrap_envelope(*text, &payload)) {
        case EnvelopeStatus::kOk: {
          std::error_code ec;
          fs::remove(reply_path, ec);
          return payload;
        }
        case EnvelopeStatus::kNotEnvelope: {
          // A pre-envelope server's bare reply document.
          std::error_code ec;
          fs::remove(reply_path, ec);
          return *text;
        }
        case EnvelopeStatus::kCorrupt:
          // A torn or in-progress write: leave it and keep polling — the
          // server replaces outbox files via atomic rename on its next
          // pass over the still-present submission.
          break;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      const double elapsed =
          std::chrono::duration<double>(now - start).count();
      std::error_code ec;
      const bool pending = fs::exists(inbox_path, ec);
      char waited[48];
      std::snprintf(waited, sizeof(waited), "waited %.1fs", elapsed);
      throw Error(ErrorCode::kState, "timed out waiting for queue reply")
          .with_context("request '" + name + "', " + waited)
          .with_context(pending ? "submission still in inbox — server down "
                                  "or backlogged"
                                : "submission was consumed but no reply "
                                  "arrived");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

namespace {

bool write_exact(int fd, const char* data, std::size_t bytes) {
  while (bytes > 0) {
    const ssize_t put = ::write(fd, data, bytes);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    data += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return true;
}

bool read_exact(int fd, char* data, std::size_t bytes) {
  while (bytes > 0) {
    const ssize_t got = ::read(fd, data, bytes);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    data += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Connected AF_UNIX stream socket to `socket_path`, or -1.
int connect_unix(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool write_frame(int fd, const std::string& text) {
  const auto length = static_cast<std::uint32_t>(text.size());
  const char header[4] = {static_cast<char>(length & 0xff),
                          static_cast<char>((length >> 8) & 0xff),
                          static_cast<char>((length >> 16) & 0xff),
                          static_cast<char>((length >> 24) & 0xff)};
  return write_exact(fd, header, 4) &&
         (text.empty() || write_exact(fd, text.data(), text.size()));
}

bool read_frame(int fd, std::string& out) {
  char header[4];
  if (!read_exact(fd, header, 4)) return false;
  const std::uint32_t length =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]))
       << 24);
  out.assign(length, '\0');
  return length == 0 || read_exact(fd, out.data(), length);
}

}  // namespace

SocketClient::SocketClient(const std::string& socket_path,
                           RetryPolicy retry)
    : socket_path_(socket_path),
      retry_(retry),
      fd_(connect_unix(socket_path)) {
  // Retrying the connect covers the startup race: a client launched
  // alongside the daemon reaches connect() before the socket is bound.
  for (int attempt = 1; fd_ < 0 && attempt <= retry_.retries; ++attempt) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(
            retry_.backoff_ms(attempt)));
    fd_ = connect_unix(socket_path_);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<std::string> SocketClient::submit(const std::string& text) {
  if (fd_ < 0) return std::nullopt;
  std::string reply;
  if (write_frame(fd_, text) && read_frame(fd_, reply)) return reply;
  ::close(fd_);
  fd_ = -1;
  return std::nullopt;
}

std::optional<std::string> SocketClient::submit_with_retry(
    const std::string& text) {
  std::optional<std::string> last;
  for (int attempt = 0; attempt <= retry_.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(
              retry_.backoff_ms(attempt)));
      if (fd_ < 0) fd_ = connect_unix(socket_path_);
    }
    if (fd_ < 0) continue;
    last = submit(text);
    if (!last) continue;  // transport error; reconnect next attempt
    if (!reply_has_retryable_error(*last)) return last;
    // A retryable error reply: resubmitting is safe — the server dedups
    // by content id, so completed work comes back as a cache hit.
  }
  return last;
}

std::optional<std::string> socket_submit(const std::string& socket_path,
                                         const std::string& text) {
  SocketClient client(socket_path);
  if (!client.ok()) return std::nullopt;
  return client.submit(text);
}

std::string stats_request_text() {
  Request probe;
  probe.kind = RequestKind::kStats;
  return probe.to_json().dump();
}

}  // namespace xlp::svc
