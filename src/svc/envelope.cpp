#include "svc/envelope.hpp"

#include "obs/canonical.hpp"
#include "obs/json.hpp"

namespace xlp::svc {

std::string wrap_envelope(const std::string& payload) {
  std::string out;
  out.reserve(payload.size() + 96);
  out += "{\"schema\":\"";
  out += kEnvelopeSchema;
  out += "\",\"checksum\":\"";
  out += obs::fnv1a64_hex(payload);
  out += "\",\"payload\":\"";
  out += obs::json_escape(payload);
  out += "\"}";
  return out;
}

EnvelopeStatus unwrap_envelope(const std::string& text, std::string* payload,
                               std::string* reason) {
  const auto fail = [reason](const char* why) {
    if (reason != nullptr) *reason = why;
    return EnvelopeStatus::kCorrupt;
  };
  if (text.empty()) return fail("empty file");
  const auto doc = obs::Json::parse(text);
  if (!doc) return fail("truncated or not JSON");
  if (!doc->is_object()) return EnvelopeStatus::kNotEnvelope;
  const obs::Json* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kEnvelopeSchema)
    return EnvelopeStatus::kNotEnvelope;
  const obs::Json* checksum = doc->find("checksum");
  if (checksum == nullptr || !checksum->is_string())
    return fail("missing checksum field");
  const obs::Json* body = doc->find("payload");
  if (body == nullptr || !body->is_string())
    return fail("missing payload field");
  if (obs::fnv1a64_hex(body->as_string()) != checksum->as_string())
    return fail("checksum mismatch");
  if (payload != nullptr) *payload = body->as_string();
  return EnvelopeStatus::kOk;
}

}  // namespace xlp::svc
