#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace xlp::obs {
class MetricsRegistry;
}

namespace xlp::svc {

/// Content-addressed, persisted result cache: payload bytes keyed by the
/// request's content hash (Request::id()).
///
/// Layout on disk is one file per entry, `<dir>/<id>.json`, written
/// through util::atomic_write_file — a crash or kill mid-put leaves either
/// no file or a complete one, never a torn payload, so a restarted server
/// can trust every file it finds. The constructor rescans the directory
/// (oldest first by mtime, ties by name) and rebuilds the in-memory index,
/// which is how hits survive a kill-and-restart.
///
/// The in-memory index holds the payload bytes too (service payloads are
/// small JSON documents), bounded by an LRU of `max_entries`: inserting
/// past the bound evicts the least-recently-used entry from memory *and*
/// disk. All operations are thread-safe (one internal mutex) — pool
/// workers share one cache.
///
/// Metrics (svc.cache.hits / misses / evictions counters and the
/// svc.cache.entries gauge) are recorded into the registry passed at
/// construction, obs::MetricsRegistry::global() by default.
class ResultCache {
 public:
  explicit ResultCache(std::string dir, std::size_t max_entries = 4096,
                       obs::MetricsRegistry* metrics = nullptr);

  /// The payload stored for `id`, refreshing its recency; nullopt on miss.
  [[nodiscard]] std::optional<std::string> get(const std::string& id);

  /// True without touching recency or hit/miss counters; for cheap probes.
  [[nodiscard]] bool contains(const std::string& id);

  /// Inserts (or refreshes) an entry and persists it. Returns false when
  /// the file write failed — the entry is still served from memory, so a
  /// read-only cache dir degrades to a memory-only cache instead of
  /// failing requests.
  bool put(const std::string& id, const std::string& payload);

  [[nodiscard]] std::size_t size();
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  void evict_if_needed_locked();
  void touch_locked(const std::string& id);

  std::string dir_;
  std::size_t max_entries_;
  obs::MetricsRegistry* metrics_;

  std::mutex mutex_;
  /// Most-recently-used at the front.
  std::list<std::string> lru_;
  struct Entry {
    std::string payload;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace xlp::svc
