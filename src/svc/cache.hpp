#pragma once

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace xlp::obs {
class MetricsRegistry;
}

namespace xlp::svc {

/// Content-addressed, persisted result cache: payload bytes keyed by the
/// request's content hash (Request::id()).
///
/// Layout on disk is one file per entry, `<dir>/<id>.json`, holding the
/// payload wrapped in the xlp-envelope/1 integrity envelope (an FNV-1a
/// checksum over the exact payload bytes). Files are written through
/// util::atomic_write_file — a crash or kill mid-put leaves either no file
/// or a complete one — and the checksum catches what atomicity cannot:
/// bit rot, truncation by other tools, or hand-edited entries. The
/// constructor rescans the directory (oldest first by mtime, ties by name)
/// and rebuilds the in-memory index, which is how hits survive a
/// kill-and-restart.
///
/// Corruption is never served and never fatal: a file (or in-memory
/// payload, under chaos injection) that fails verification is moved to
/// `<dir>/quarantine/`, counted in the svc.cache.corrupt metric, and the
/// lookup reports a miss so the request transparently re-executes. When
/// the corrupt entry has no disk file (a memory-only entry after a failed
/// put), the corrupt bytes themselves are written into quarantine so every
/// svc.cache.corrupt increment has a matching quarantine file to inspect.
///
/// The in-memory index holds the payload bytes too (service payloads are
/// small JSON documents), bounded by an LRU of `max_entries`: inserting
/// past the bound evicts the least-recently-used entry from memory *and*
/// disk. All operations are thread-safe (one internal mutex) — pool
/// workers share one cache.
///
/// Metrics (svc.cache.hits / misses / evictions / corrupt counters and the
/// svc.cache.entries gauge) are recorded into the registry passed at
/// construction, obs::MetricsRegistry::global() by default.
class ResultCache {
 public:
  /// `verify_reads` re-checks the stored checksum on every get(); the cost
  /// is one FNV pass over a small payload (pinned by the cache_hit_verify
  /// bench pair) and it is what turns an injected corruption into a
  /// quarantine-and-recompute instead of a wrong byte served.
  explicit ResultCache(std::string dir, std::size_t max_entries = 4096,
                       obs::MetricsRegistry* metrics = nullptr,
                       bool verify_reads = true);

  /// The payload stored for `id`, refreshing its recency; nullopt on miss.
  /// A corrupt entry (checksum mismatch) is quarantined and reported as a
  /// miss; `corrupted`, when non-null, is set true in that case so callers
  /// can attribute the re-execution.
  [[nodiscard]] std::optional<std::string> get(const std::string& id,
                                               bool* corrupted = nullptr);

  /// True without touching recency or hit/miss counters; for cheap probes.
  [[nodiscard]] bool contains(const std::string& id);

  /// Inserts (or refreshes) an entry and persists it (envelope-wrapped).
  /// Returns false when the file write failed — the entry is still served
  /// from memory, so a read-only cache dir degrades to a memory-only cache
  /// instead of failing requests.
  bool put(const std::string& id, const std::string& payload);

  [[nodiscard]] std::size_t size();
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Entries quarantined since construction (rescan rejects included).
  [[nodiscard]] long corrupt_count();

 private:
  void evict_if_needed_locked();
  void touch_locked(const std::string& id);
  void quarantine_locked(const std::string& name,
                         const std::string& corrupt_bytes);

  std::string dir_;
  std::size_t max_entries_;
  obs::MetricsRegistry* metrics_;
  bool verify_reads_;
  long corrupt_ = 0;

  std::mutex mutex_;
  /// Most-recently-used at the front.
  std::list<std::string> lru_;
  struct Entry {
    std::string payload;
    std::string checksum;  ///< fnv1a64_hex(payload), fixed at insert
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace xlp::svc
