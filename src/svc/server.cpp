#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

namespace xlp::svc {

namespace fs = std::filesystem;

std::string Reply::to_text() const {
  std::string out;
  out.reserve(payload_text.size() + 96);
  out += "{\"schema\":\"";
  out += kReplySchema;
  out += "\",\"request_id\":\"";
  out += obs::json_escape(request_id);
  out += "\",\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  if (ok) {
    out += ",\"result\":";
    out += payload_text;  // canonical payload bytes, spliced verbatim
  } else {
    out += ",\"error\":\"";
    out += obs::json_escape(payload_text);
    out += "\"";
  }
  out += "}";
  return out;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::global()),
      cache_(options_.cache_dir, options_.cache_entries, metrics_) {
  const obs::Provenance prov = obs::Provenance::collect(0);
  git_sha_ = prov.git_sha;
  hostname_ = prov.hostname;
}

long Server::requests_served() const noexcept {
  std::lock_guard<std::mutex> lock(served_mutex_);
  return requests_served_;
}

Reply Server::resolve(const Request& request) {
  Stopwatch watch;
  metrics_->add("svc.requests");
  const std::string id = request.id();

  Reply reply;
  reply.request_id = id;
  if (auto cached = cache_.get(id)) {
    reply.cache_hit = true;
    reply.payload_text = std::move(*cached);
  } else {
    reply = execute_or_join(request, id);
  }

  append_ledger(request, reply, watch.seconds());
  {
    std::lock_guard<std::mutex> lock(served_mutex_);
    ++requests_served_;
  }
  return reply;
}

Reply Server::execute_or_join(const Request& request, const std::string& id) {
  Reply reply;
  reply.request_id = id;

  std::shared_ptr<Inflight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(id);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(id, flight);
      owner = true;
    } else {
      flight = it->second;
    }
  }

  if (!owner) {
    // Another thread is computing this exact request: wait for its answer
    // and fan it out. No second execution happens.
    metrics_->add("svc.inflight.hits");
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done_cv.wait(lock, [&flight] { return flight->done; });
    reply.cache_hit = true;
    reply.ok = flight->ok;
    reply.payload_text = flight->payload_text;
    return reply;
  }

  {
    obs::ScopedTimer timer(*metrics_, "svc.execute");
    runctl::Deadline deadline =
        options_.request_time_limit > 0.0
            ? runctl::Deadline::after_seconds(options_.request_time_limit)
            : runctl::Deadline{};
    runctl::RunControl control(options_.cancel, deadline);
    try {
      reply.payload_text = execute_request(request, &control).dump();
      metrics_->add("svc.executed");
      cache_.put(id, reply.payload_text);
    } catch (const Error& error) {
      reply.ok = false;
      reply.payload_text = error.what();
      metrics_->add("svc.errors");
    } catch (const std::exception& error) {
      reply.ok = false;
      reply.payload_text = error.what();
      metrics_->add("svc.errors");
    }
  }

  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->ok = reply.ok;
    flight->payload_text = reply.payload_text;
  }
  flight->done_cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(id);
  }
  return reply;
}

std::vector<Reply> Server::serve_batch(const std::vector<Request>& requests) {
  // Dedupe by content id *before* touching the pool: each unique request
  // resolves exactly once, and which occurrence carries the executed reply
  // is decided by submission order, not scheduling — so the reply document
  // is byte-identical at any thread count.
  std::vector<std::string> ids;
  ids.reserve(requests.size());
  std::unordered_map<std::string, std::size_t> first_of;
  std::vector<std::size_t> unique_indices;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ids.push_back(requests[i].id());
    if (first_of.emplace(ids.back(), unique_indices.size()).second)
      unique_indices.push_back(i);
  }

  std::vector<Reply> unique_replies(unique_indices.size());
  util::ThreadPool pool(options_.threads);
  pool.parallel_for(static_cast<long>(unique_indices.size()), [&](long u) {
    unique_replies[static_cast<std::size_t>(u)] =
        resolve(requests[unique_indices[static_cast<std::size_t>(u)]]);
  });

  std::vector<Reply> replies;
  replies.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::size_t u = first_of.at(ids[i]);
    Reply reply = unique_replies[u];
    if (unique_indices[u] != i) {
      // A within-batch duplicate: served from the first occurrence's
      // answer, which is by definition not a second execution. It still
      // counts as a request of its own, ledger record included.
      reply.cache_hit = true;
      metrics_->add("svc.requests");
      append_ledger(requests[i], reply, 0.0);
      std::lock_guard<std::mutex> lock(served_mutex_);
      ++requests_served_;
    }
    replies.push_back(std::move(reply));
  }
  return replies;
}

std::string Server::serve_text(const std::string& text) {
  const auto doc = obs::Json::parse(text);
  const auto error_reply = [](const std::string& message) {
    Reply reply;
    reply.ok = false;
    reply.payload_text = message;
    return reply;
  };
  if (!doc)
    return error_reply("submission is not valid JSON").to_text();

  if (doc->is_object()) {
    try {
      return serve_batch({Request::from_json(*doc)})[0].to_text();
    } catch (const Error& error) {
      return error_reply(error.what()).to_text();
    }
  }
  if (!doc->is_array())
    return error_reply("submission must be a request object or an array")
        .to_text();

  // Parse every element first (errors become in-place error replies), then
  // serve the well-formed ones as one batch so duplicates still collapse.
  std::vector<Request> good;
  std::vector<std::optional<std::string>> parse_errors(doc->size());
  for (std::size_t i = 0; i < doc->size(); ++i) {
    try {
      good.push_back(Request::from_json(doc->at(i)));
    } catch (const Error& error) {
      parse_errors[i] = error.what();
    }
  }
  const std::vector<Reply> served = serve_batch(good);

  std::string out = "[";
  std::size_t next_served = 0;
  for (std::size_t i = 0; i < parse_errors.size(); ++i) {
    if (i > 0) out += ",";
    out += parse_errors[i] ? error_reply(*parse_errors[i]).to_text()
                           : served[next_served++].to_text();
  }
  out += "]";
  return out;
}

long Server::run_queue(const std::string& queue_dir, bool once,
                       double poll_seconds) {
  const fs::path inbox = fs::path(queue_dir) / "inbox";
  const fs::path outbox = fs::path(queue_dir) / "outbox";
  std::error_code ec;
  fs::create_directories(inbox, ec);
  fs::create_directories(outbox, ec);

  long served = 0;
  const auto cancelled = [this] {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  };
  while (true) {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(inbox, ec)) {
      if (entry.is_regular_file(ec) && entry.path().extension() == ".json")
        names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());

    for (const std::string& name : names) {
      if (cancelled()) return served;
      const auto text = util::read_file((inbox / name).string());
      if (!text) continue;  // raced with a concurrent consumer
      // Reply before removing the submission: a crash in between replays
      // the file on restart, and the cache makes the replay a no-op.
      if (!util::atomic_write_file((outbox / name).string(),
                                   serve_text(*text)))
        continue;  // keep the submission; retry on the next pass
      fs::remove(inbox / name, ec);
      ++served;
    }
    if (once) return served;

    // Sleep in short slices so SIGINT is honoured promptly.
    double remaining = std::max(poll_seconds, 0.01);
    while (remaining > 0.0) {
      if (cancelled()) return served;
      const double slice = std::min(remaining, 0.05);
      std::this_thread::sleep_for(std::chrono::duration<double>(slice));
      remaining -= slice;
    }
  }
}

namespace {

bool read_exact(int fd, void* buffer, std::size_t bytes) {
  auto* out = static_cast<char*>(buffer);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, out, bytes);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_exact(int fd, const void* buffer, std::size_t bytes) {
  const auto* in = static_cast<const char*>(buffer);
  while (bytes > 0) {
    const ssize_t put = ::write(fd, in, bytes);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return true;
}

/// One frame: 4-byte little-endian byte count, then that many bytes.
bool read_frame(int fd, std::string& out) {
  unsigned char header[4];
  if (!read_exact(fd, header, 4)) return false;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > (64u << 20)) return false;  // refuse absurd frames
  out.resize(length);
  return length == 0 || read_exact(fd, out.data(), length);
}

bool write_frame(int fd, const std::string& text) {
  const auto length = static_cast<std::uint32_t>(text.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 24) & 0xff)};
  return write_exact(fd, header, 4) &&
         (text.empty() || write_exact(fd, text.data(), text.size()));
}

}  // namespace

bool Server::run_socket(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) return false;
  ::unlink(socket_path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return false;

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 64) != 0) {
    ::close(listener);
    return false;
  }

  // Dedicated connection workers (not the batch pool): each serves whole
  // connections sequentially, so concurrent clients submitting the same
  // request exercise the in-flight dedup path.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<int> pending;
  bool accepting = true;

  const int workers = util::resolve_thread_count(options_.threads);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        int fd = -1;
        {
          std::unique_lock<std::mutex> lock(queue_mutex);
          queue_cv.wait(lock,
                        [&] { return !pending.empty() || !accepting; });
          if (pending.empty()) return;  // drained and shut down
          fd = pending.front();
          pending.pop_front();
        }
        std::string text;
        while (read_frame(fd, text)) {
          if (!write_frame(fd, serve_text(text))) break;
        }
        ::close(fd);
      }
    });
  }

  const auto cancelled = [this] {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  };
  while (!cancelled()) {
    pollfd waiter{listener, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      pending.push_back(client);
    }
    queue_cv.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    accepting = false;  // workers drain the queue, then exit
  }
  queue_cv.notify_all();
  for (std::thread& worker : pool) worker.join();
  ::close(listener);
  ::unlink(socket_path.c_str());
  return true;
}

void Server::append_ledger(const Request& request, const Reply& reply,
                           double wall_seconds) {
  if (options_.ledger_path.empty()) return;
  obs::LedgerEntry entry;
  entry.subcommand = "svc";
  entry.params = request.to_json();
  entry.seed = request.seed;
  entry.git_sha = git_sha_;
  entry.hostname = hostname_;
  entry.wall_seconds = wall_seconds;
  entry.exit_status = reply.ok ? 0 : 1;
  entry.cache_hit = reply.cache_hit ? 1 : 0;
  // append_ledger_entry rewrites the whole file; serialize appends so
  // concurrent pool workers never drop each other's records.
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  (void)obs::append_ledger_entry(options_.ledger_path, entry);
}

}  // namespace xlp::svc
