#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string_view>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/provenance.hpp"
#include "obs/timeseries.hpp"
#include "svc/chaos.hpp"
#include "svc/envelope.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

namespace xlp::svc {

namespace fs = std::filesystem;

std::string Reply::to_text() const {
  std::string out;
  out.reserve(payload_text.size() + 96);
  out += "{\"schema\":\"";
  out += kReplySchema;
  out += "\",\"request_id\":\"";
  out += obs::json_escape(request_id);
  out += "\",\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  if (ok) {
    out += ",\"result\":";
    out += payload_text;  // canonical payload bytes, spliced verbatim
  } else {
    out += ",\"error\":{\"kind\":\"";
    out += obs::json_escape(error_kind);
    out += "\",\"retryable\":";
    out += retryable ? "true" : "false";
    out += ",\"message\":\"";
    out += obs::json_escape(payload_text);
    out += "\"}";
  }
  out += "}";
  return out;
}

namespace {

/// Latency histograms hold nanoseconds: exact below 128ns, log-bucketed
/// with <= 1.6% relative error above — microseconds to minutes all fit.
constexpr int kLatencyHistBits = 7;

long to_ns(double seconds) {
  return seconds > 0.0 ? static_cast<long>(seconds * 1e9) : 0;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::global()),
      cache_(options_.cache_dir, options_.cache_entries, metrics_),
      queue_wait_ns_(kLatencyHistBits),
      execute_ns_(kLatencyHistBits),
      end_to_end_ns_(kLatencyHistBits) {
  const obs::Provenance prov = obs::Provenance::collect(0);
  git_sha_ = prov.git_sha;
  hostname_ = prov.hostname;
  if (!options_.events_path.empty() &&
      obs::ensure_parent_dir(options_.events_path))
    events_out_.open(options_.events_path, std::ios::app);
}

long Server::requests_served() const noexcept {
  std::lock_guard<std::mutex> lock(served_mutex_);
  return requests_served_;
}

Reply Server::resolve(const Request& request) {
  return resolve_received(request, uptime_.seconds());
}

Reply Server::resolve_received(const Request& request, double received) {
  // Stats requests are introspection: answered from memory before the
  // cache / dedup / execution machinery, never counted as served work.
  if (request.kind == RequestKind::kStats) return stats_reply();

  Stopwatch watch;
  metrics_->add("svc.requests");
  // Queue wait: from receipt (frame read / batch entry) to the moment a
  // worker picked the request up — which is now.
  const double queue_wait = std::max(uptime_.seconds() - received, 0.0);
  const std::string id = request.id();

  Reply reply;
  reply.request_id = id;
  const char* outcome = "cache";
  std::optional<double> execute_seconds;
  bool cache_corrupt = false;
  if (auto cached = cache_.get(id, &cache_corrupt)) {
    reply.cache_hit = true;
    reply.payload_text = std::move(*cached);
  } else {
    // A corrupt entry was quarantined by the lookup itself; falling
    // through to execution here is the transparent recompute.
    double executed = 0.0;
    reply = execute_or_join(request, id, &outcome, &executed);
    if (std::string_view(outcome) != "inflight") execute_seconds = executed;
  }

  append_ledger(request, reply, watch.seconds());
  {
    std::lock_guard<std::mutex> lock(served_mutex_);
    ++requests_served_;
  }
  observe_request(request, reply, outcome, received, queue_wait,
                  execute_seconds, cache_corrupt);
  return reply;
}

Reply Server::execute_or_join(const Request& request, const std::string& id,
                              const char** outcome,
                              double* execute_seconds) {
  Reply reply;
  reply.request_id = id;

  std::shared_ptr<Inflight> flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    auto it = inflight_.find(id);
    if (it == inflight_.end()) {
      flight = std::make_shared<Inflight>();
      inflight_.emplace(id, flight);
      owner = true;
    } else {
      flight = it->second;
    }
  }

  if (!owner) {
    // Another thread is computing this exact request: wait for its answer
    // and fan it out. No second execution happens.
    *outcome = "inflight";
    metrics_->add("svc.inflight.hits");
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done_cv.wait(lock, [&flight] { return flight->done; });
    reply.cache_hit = true;
    reply.ok = flight->ok;
    reply.payload_text = flight->payload_text;
    reply.error_kind = flight->error_kind;
    reply.retryable = flight->retryable;
    return reply;
  }

  *outcome = "miss";
  {
    Stopwatch execute_watch;
    obs::ScopedTimer timer(*metrics_, "svc.execute");
    runctl::Deadline deadline =
        options_.request_time_limit > 0.0
            ? runctl::Deadline::after_seconds(options_.request_time_limit)
            : runctl::Deadline{};
    runctl::RunControl control(options_.cancel, deadline);
    // The poison boundary: whatever execution does — throw a typed Error,
    // a foreign exception, or anything else — it becomes a structured
    // error reply, and the batch / daemon keep serving.
    try {
      if (ChaosPolicy::global().should(ChaosSite::kWorkerThrow))
        throw std::runtime_error("chaos: injected worker exception");
      reply.payload_text = execute_request(request, &control).dump();
      metrics_->add("svc.executed");
      cache_.put(id, reply.payload_text);
    } catch (const Error& error) {
      reply.ok = false;
      reply.payload_text = error.what();
      reply.error_kind = error_code_name(error.code());
      // A deadline / cancel stop (kState) or an internal fault can succeed
      // on resubmission; a request that is wrong in itself cannot.
      reply.retryable = error.code() == ErrorCode::kState ||
                        error.code() == ErrorCode::kInternal;
      metrics_->add("svc.errors");
    } catch (const std::exception& error) {
      reply.ok = false;
      reply.payload_text = error.what();
      reply.error_kind = "poisoned";
      reply.retryable = true;
      *outcome = "poisoned";
      metrics_->add("svc.errors");
      metrics_->add("svc.requests.poisoned");
    } catch (...) {
      reply.ok = false;
      reply.payload_text = "request execution escaped with a non-standard "
                           "exception";
      reply.error_kind = "poisoned";
      reply.retryable = true;
      *outcome = "poisoned";
      metrics_->add("svc.errors");
      metrics_->add("svc.requests.poisoned");
    }
    *execute_seconds = execute_watch.seconds();
  }

  {
    std::lock_guard<std::mutex> lock(flight->mutex);
    flight->done = true;
    flight->ok = reply.ok;
    flight->payload_text = reply.payload_text;
    flight->error_kind = reply.error_kind;
    flight->retryable = reply.retryable;
  }
  flight->done_cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(id);
  }
  return reply;
}

std::vector<Reply> Server::serve_batch(const std::vector<Request>& requests) {
  // Every request in the batch was received now, on the uptime clock:
  // queue-wait measures from here to its pool pickup.
  const double received = uptime_.seconds();

  // Dedupe by content id *before* touching the pool: each unique request
  // resolves exactly once, and which occurrence carries the executed reply
  // is decided by submission order, not scheduling — so the reply document
  // is byte-identical at any thread count. Stats requests bypass the pool
  // entirely (they are answered from memory during assembly below).
  std::vector<std::string> ids;
  ids.reserve(requests.size());
  std::unordered_map<std::string, std::size_t> first_of;
  std::vector<std::size_t> unique_indices;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].kind == RequestKind::kStats) {
      ids.emplace_back();
      continue;
    }
    ids.push_back(requests[i].id());
    if (first_of.emplace(ids.back(), unique_indices.size()).second)
      unique_indices.push_back(i);
  }

  std::vector<Reply> unique_replies(unique_indices.size());
  util::ThreadPool pool(options_.threads);
  pool.parallel_for(static_cast<long>(unique_indices.size()), [&](long u) {
    unique_replies[static_cast<std::size_t>(u)] = resolve_received(
        requests[unique_indices[static_cast<std::size_t>(u)]], received);
  });

  std::vector<Reply> replies;
  replies.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].kind == RequestKind::kStats) {
      replies.push_back(stats_reply());
      continue;
    }
    const std::size_t u = first_of.at(ids[i]);
    Reply reply = unique_replies[u];
    if (unique_indices[u] != i) {
      // A within-batch duplicate: served from the first occurrence's
      // answer, which is by definition not a second execution. It still
      // counts as a request of its own, ledger record included.
      reply.cache_hit = true;
      metrics_->add("svc.requests");
      metrics_->add("svc.batch.hits");
      append_ledger(requests[i], reply, 0.0);
      {
        std::lock_guard<std::mutex> lock(served_mutex_);
        ++requests_served_;
      }
      observe_request(requests[i], reply, "batch", received, std::nullopt,
                      std::nullopt);
    }
    replies.push_back(std::move(reply));
  }
  return replies;
}

std::string Server::serve_text(const std::string& text) {
  const auto doc = obs::Json::parse(text);
  // Malformed submissions are never retryable: the identical bytes will
  // fail the identical way.
  const auto error_reply = [](const std::string& message,
                              const char* kind) {
    Reply reply;
    reply.ok = false;
    reply.payload_text = message;
    reply.error_kind = kind;
    reply.retryable = false;
    return reply;
  };
  if (!doc)
    return error_reply("submission is not valid JSON", "parse").to_text();

  if (doc->is_object()) {
    try {
      return serve_batch({Request::from_json(*doc)})[0].to_text();
    } catch (const Error& error) {
      return error_reply(error.what(), error_code_name(error.code()))
          .to_text();
    }
  }
  if (!doc->is_array())
    return error_reply("submission must be a request object or an array",
                       "schema")
        .to_text();

  // Parse every element first (errors become in-place error replies), then
  // serve the well-formed ones as one batch so duplicates still collapse.
  std::vector<Request> good;
  struct ParseError {
    std::string message;
    const char* kind;
  };
  std::vector<std::optional<ParseError>> parse_errors(doc->size());
  for (std::size_t i = 0; i < doc->size(); ++i) {
    try {
      good.push_back(Request::from_json(doc->at(i)));
    } catch (const Error& error) {
      parse_errors[i] =
          ParseError{error.what(), error_code_name(error.code())};
    }
  }
  const std::vector<Reply> served = serve_batch(good);

  std::string out = "[";
  std::size_t next_served = 0;
  for (std::size_t i = 0; i < parse_errors.size(); ++i) {
    if (i > 0) out += ",";
    out += parse_errors[i]
               ? error_reply(parse_errors[i]->message, parse_errors[i]->kind)
                     .to_text()
               : served[next_served++].to_text();
  }
  out += "]";
  return out;
}

long Server::run_queue(const std::string& queue_dir, bool once,
                       double poll_seconds) {
  const fs::path inbox = fs::path(queue_dir) / "inbox";
  const fs::path outbox = fs::path(queue_dir) / "outbox";
  std::error_code ec;
  fs::create_directories(inbox, ec);
  fs::create_directories(outbox, ec);

  long served = 0;
  const auto cancelled = [this] {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  };
  while (true) {
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(inbox, ec)) {
      if (entry.is_regular_file(ec) && entry.path().extension() == ".json")
        names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    queue_depth_.store(static_cast<long>(names.size()),
                       std::memory_order_relaxed);

    for (const std::string& name : names) {
      if (cancelled()) return served;
      const auto text = util::read_file((inbox / name).string());
      if (!text) continue;  // raced with a concurrent consumer

      // Submissions arrive envelope-wrapped (svc::queue_submit); bare
      // documents are accepted for compatibility with hand-written files.
      // A corrupt envelope is quarantined — with an error reply in the
      // outbox so the submitter is not left polling forever.
      std::string submission;
      std::string reason;
      std::string reply_text;
      bool corrupt_submission = false;
      switch (unwrap_envelope(*text, &submission, &reason)) {
        case EnvelopeStatus::kOk:
          reply_text = serve_text(submission);
          break;
        case EnvelopeStatus::kNotEnvelope:
          reply_text = serve_text(*text);
          break;
        case EnvelopeStatus::kCorrupt: {
          corrupt_submission = true;
          Reply corrupt;
          corrupt.ok = false;
          corrupt.payload_text = "submission failed checksum: " + reason;
          corrupt.error_kind = "parse";
          corrupt.retryable = false;
          reply_text = corrupt.to_text();
          break;
        }
      }

      ChaosPolicy& chaos = ChaosPolicy::global();
      if (chaos.should(ChaosSite::kQueuePartial)) {
        // Tear the reply: a direct, non-atomic half-write — what a crash
        // mid-write would leave without atomic_write_file. The submission
        // is kept, so the next pass overwrites the torn file via rename;
        // the client's envelope check keeps it polling until then.
        const std::string wrapped = wrap_envelope(reply_text);
        std::ofstream torn((outbox / name).string(),
                           std::ios::binary | std::ios::trunc);
        torn.write(wrapped.data(),
                   static_cast<std::streamsize>(wrapped.size() / 2));
        continue;
      }
      // Reply before removing the submission: a crash in between replays
      // the file on restart, and the cache makes the replay a no-op.
      if (!chaos_write_file((outbox / name).string(),
                            wrap_envelope(reply_text)))
        continue;  // keep the submission; retry on the next pass
      if (corrupt_submission) {
        // Only now that the error reply is durable does the bad
        // submission leave the inbox — into quarantine, for forensics.
        const fs::path qdir = fs::path(queue_dir) / "quarantine";
        fs::create_directories(qdir, ec);
        fs::rename(inbox / name, qdir / name, ec);
        if (ec) fs::remove(inbox / name, ec);
        metrics_->add("svc.queue.corrupt");
      } else {
        fs::remove(inbox / name, ec);
      }
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      ++served;
    }
    queue_depth_.store(0, std::memory_order_relaxed);
    if (once) return served;

    // Sleep in short slices so SIGINT is honoured promptly.
    double remaining = std::max(poll_seconds, 0.01);
    while (remaining > 0.0) {
      if (cancelled()) return served;
      const double slice = std::min(remaining, 0.05);
      std::this_thread::sleep_for(std::chrono::duration<double>(slice));
      remaining -= slice;
    }
  }
}

namespace {

bool read_exact(int fd, void* buffer, std::size_t bytes) {
  auto* out = static_cast<char*>(buffer);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, out, bytes);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_exact(int fd, const void* buffer, std::size_t bytes) {
  const auto* in = static_cast<const char*>(buffer);
  while (bytes > 0) {
    const ssize_t put = ::write(fd, in, bytes);
    if (put < 0 && errno == EINTR) continue;
    if (put <= 0) return false;
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return true;
}

/// One frame: 4-byte little-endian byte count, then that many bytes.
bool read_frame(int fd, std::string& out) {
  unsigned char header[4];
  if (!read_exact(fd, header, 4)) return false;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > (64u << 20)) return false;  // refuse absurd frames
  out.resize(length);
  return length == 0 || read_exact(fd, out.data(), length);
}

bool write_frame(int fd, const std::string& text) {
  const auto length = static_cast<std::uint32_t>(text.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(length & 0xff),
      static_cast<unsigned char>((length >> 8) & 0xff),
      static_cast<unsigned char>((length >> 16) & 0xff),
      static_cast<unsigned char>((length >> 24) & 0xff)};
  return write_exact(fd, header, 4) &&
         (text.empty() || write_exact(fd, text.data(), text.size()));
}

}  // namespace

bool Server::run_socket(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) return false;
  ::unlink(socket_path.c_str());
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return false;

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::strncpy(address.sun_path, socket_path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 64) != 0) {
    ::close(listener);
    return false;
  }

  // Dedicated connection workers (not the batch pool): each serves whole
  // connections sequentially, so concurrent clients submitting the same
  // request exercise the in-flight dedup path.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<int> pending;
  bool accepting = true;

  const int workers = util::resolve_thread_count(options_.threads);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        int fd = -1;
        {
          std::unique_lock<std::mutex> lock(queue_mutex);
          queue_cv.wait(lock,
                        [&] { return !pending.empty() || !accepting; });
          if (pending.empty()) return;  // drained and shut down
          fd = pending.front();
          pending.pop_front();
          queue_depth_.store(static_cast<long>(pending.size()),
                             std::memory_order_relaxed);
        }
        std::string text;
        while (read_frame(fd, text)) {
          const std::string reply = serve_text(text);
          ChaosPolicy& chaos = ChaosPolicy::global();
          if (chaos.should(ChaosSite::kFrameDisconnect))
            break;  // drop the connection instead of replying
          if (chaos.should(ChaosSite::kFrameTruncate)) {
            // A header promising the full reply, then only half the body:
            // the client's read_frame blocks until our close, then fails
            // as a transport error and the retry path resubmits.
            const unsigned char header[4] = {
                static_cast<unsigned char>(reply.size() & 0xff),
                static_cast<unsigned char>((reply.size() >> 8) & 0xff),
                static_cast<unsigned char>((reply.size() >> 16) & 0xff),
                static_cast<unsigned char>((reply.size() >> 24) & 0xff)};
            (void)write_exact(fd, header, 4);
            (void)write_exact(fd, reply.data(), reply.size() / 2);
            break;
          }
          if (!write_frame(fd, reply)) break;
        }
        ::close(fd);
      }
    });
  }

  const auto cancelled = [this] {
    return options_.cancel != nullptr && options_.cancel->cancelled();
  };
  while (!cancelled()) {
    pollfd waiter{listener, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) continue;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      pending.push_back(client);
      queue_depth_.store(static_cast<long>(pending.size()),
                         std::memory_order_relaxed);
    }
    queue_cv.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex);
    accepting = false;  // workers drain the queue, then exit
  }
  queue_cv.notify_all();
  for (std::thread& worker : pool) worker.join();
  ::close(listener);
  ::unlink(socket_path.c_str());
  return true;
}

void Server::append_ledger(const Request& request, const Reply& reply,
                           double wall_seconds) {
  if (options_.ledger_path.empty()) return;
  obs::LedgerEntry entry;
  entry.subcommand = "svc";
  entry.params = request.to_json();
  entry.seed = request.seed;
  entry.git_sha = git_sha_;
  entry.hostname = hostname_;
  entry.wall_seconds = wall_seconds;
  entry.exit_status = reply.ok ? 0 : 1;
  entry.cache_hit = reply.cache_hit ? 1 : 0;
  // append_ledger_entry rewrites the whole file; serialize appends so
  // concurrent pool workers never drop each other's records.
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  (void)obs::append_ledger_entry(options_.ledger_path, entry);
}

long Server::inflight_count() {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  return static_cast<long>(inflight_.size());
}

void Server::observe_request(const Request& request, const Reply& reply,
                             const char* outcome, double received,
                             std::optional<double> queue_wait_seconds,
                             std::optional<double> execute_seconds,
                             bool cache_corrupt) {
  const double replied = uptime_.seconds();
  const double end_to_end = std::max(replied - received, 0.0);

  if (options_.observe) {
    kind_counts_[static_cast<int>(request.kind)].fetch_add(
        1, std::memory_order_relaxed);
    if (queue_wait_seconds)
      queue_wait_ns_.record(to_ns(*queue_wait_seconds));
    if (execute_seconds) execute_ns_.record(to_ns(*execute_seconds));
    // Exactly one end-to-end sample per request served, whatever the
    // dedup outcome: the histogram's count equals requests_served().
    end_to_end_ns_.record(to_ns(end_to_end));

    if (options_.series != nullptr) {
      std::lock_guard<std::mutex> lock(series_mutex_);
      ++window_requests_;
      if (reply.cache_hit) ++window_cache_hits_;
      const double span = replied - window_start_;
      if (span >= options_.series_window && span > 0.0) {
        options_.series->append("svc.requests_per_sec", replied,
                                static_cast<double>(window_requests_) / span);
        options_.series->append("svc.cache_hit_rate", replied,
                                static_cast<double>(window_cache_hits_) /
                                    static_cast<double>(window_requests_));
        options_.series->append(
            "svc.queue_depth", replied,
            static_cast<double>(
                queue_depth_.load(std::memory_order_relaxed)));
        options_.series->append("svc.inflight", replied,
                                static_cast<double>(inflight_count()));
        window_start_ = replied;
        window_requests_ = 0;
        window_cache_hits_ = 0;
      }
    }
  }

  if (events_out_.is_open()) {
    const obs::Json event =
        obs::Json::object()
            .set("schema", kEventsSchema)
            .set("request_id", reply.request_id)
            .set("kind", svc::to_string(request.kind))
            .set("outcome", outcome)
            .set("ok", reply.ok)
            .set("cache_corrupt", cache_corrupt)
            .set("received_s", received)
            .set("queue_wait_ns",
                 queue_wait_seconds ? to_ns(*queue_wait_seconds) : 0L)
            .set("execute_ns", execute_seconds ? to_ns(*execute_seconds) : 0L)
            .set("end_to_end_ns", to_ns(end_to_end));
    std::lock_guard<std::mutex> lock(events_mutex_);
    events_out_ << event.dump() << '\n';
    events_out_.flush();
  }
}

Reply Server::stats_reply() {
  metrics_->add("svc.stats");
  Request probe;
  probe.kind = RequestKind::kStats;
  Reply reply;
  reply.request_id = probe.id();
  reply.ok = true;
  reply.payload_text = stats_snapshot().dump();
  return reply;
}

obs::Json Server::stats_snapshot() {
  const double uptime = uptime_.seconds();
  const long requests = metrics_->counter("svc.requests");
  const long executed = metrics_->counter("svc.executed");
  const long errors = metrics_->counter("svc.errors");
  const long cache_hits = metrics_->counter("svc.cache.hits");
  const long inflight_hits = metrics_->counter("svc.inflight.hits");
  const long batch_hits = metrics_->counter("svc.batch.hits");
  const long dedup_hits = cache_hits + inflight_hits + batch_hits;
  const obs::TimerStat execute_timer = metrics_->timer("svc.execute");
  const int threads = util::resolve_thread_count(options_.threads);
  const double utilization =
      uptime > 0.0 && threads > 0
          ? std::min(1.0, execute_timer.seconds /
                              (uptime * static_cast<double>(threads)))
          : 0.0;

  return obs::Json::object()
      .set("kind", "stats")
      .set("uptime_seconds", uptime)
      .set("requests_served", requests_served())
      .set("stats_requests", metrics_->counter("svc.stats"))
      .set("queue_depth", queue_depth_.load(std::memory_order_relaxed))
      .set("inflight", inflight_count())
      .set("kinds",
           obs::Json::object()
               .set("solve",
                    kind_counts_[static_cast<int>(RequestKind::kSolve)].load(
                        std::memory_order_relaxed))
               .set("evaluate",
                    kind_counts_[static_cast<int>(RequestKind::kEvaluate)]
                        .load(std::memory_order_relaxed))
               .set("simulate",
                    kind_counts_[static_cast<int>(RequestKind::kSimulate)]
                        .load(std::memory_order_relaxed)))
      .set("dedup",
           obs::Json::object()
               .set("cache_hits", cache_hits)
               .set("cache_misses", metrics_->counter("svc.cache.misses"))
               .set("inflight_hits", inflight_hits)
               .set("batch_hits", batch_hits)
               .set("executed", executed)
               .set("errors", errors)
               .set("poisoned", metrics_->counter("svc.requests.poisoned"))
               .set("hit_rate", requests > 0 ? static_cast<double>(dedup_hits) /
                                                   static_cast<double>(requests)
                                             : 0.0))
      .set("cache",
           obs::Json::object()
               .set("entries", static_cast<long>(cache_.size()))
               .set("capacity", static_cast<long>(options_.cache_entries))
               .set("evictions", metrics_->counter("svc.cache.evictions"))
               .set("corrupt", metrics_->counter("svc.cache.corrupt")))
      .set("workers", obs::Json::object()
                          .set("threads", threads)
                          .set("busy_seconds", execute_timer.seconds)
                          .set("utilization", utilization))
      .set("latency",
           obs::Json::object()
               .set("queue_wait", queue_wait_ns_.snapshot().to_json())
               .set("execute", execute_ns_.snapshot().to_json())
               .set("end_to_end", end_to_end_ns_.snapshot().to_json()))
      .set("chaos", ChaosPolicy::global().to_json());
}

void Server::flush_observability() {
  if (options_.observe && options_.series != nullptr) {
    std::lock_guard<std::mutex> lock(series_mutex_);
    if (window_requests_ > 0) {
      const double now = uptime_.seconds();
      const double span = std::max(now - window_start_, 1e-9);
      options_.series->append("svc.requests_per_sec", now,
                              static_cast<double>(window_requests_) / span);
      options_.series->append("svc.cache_hit_rate", now,
                              static_cast<double>(window_cache_hits_) /
                                  static_cast<double>(window_requests_));
      options_.series->append(
          "svc.queue_depth", now,
          static_cast<double>(queue_depth_.load(std::memory_order_relaxed)));
      options_.series->append("svc.inflight", now,
                              static_cast<double>(inflight_count()));
      window_start_ = now;
      window_requests_ = 0;
      window_cache_hits_ = 0;
    }
  }
  std::lock_guard<std::mutex> lock(events_mutex_);
  if (events_out_.is_open()) events_out_.flush();
}

}  // namespace xlp::svc
