#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "obs/json.hpp"
#include "util/rng.hpp"

namespace xlp::svc {

/// Where deterministic faults can be injected into the serving stack.
/// Every site is compiled in unconditionally (like the profiler): when the
/// policy is disabled each check costs a single relaxed atomic load, so
/// production binaries carry the machinery for free and a chaos run is the
/// same binary with `xlpd --chaos <spec>` / XLP_CHAOS set.
enum class ChaosSite {
  kCacheFlip = 0,    ///< flip one bit of a cached payload on read
  kCacheTruncate,    ///< truncate a cached payload on read
  kWriteFail,        ///< fail an atomic file write (cache put / outbox)
  kWriteDelay,       ///< delay a file write by a few milliseconds
  kWorkerThrow,      ///< throw from the executing worker thread
  kFrameTruncate,    ///< truncate a socket reply frame mid-write
  kFrameDisconnect,  ///< drop the connection instead of replying
  kQueuePartial,     ///< tear a queue reply file (partial, non-atomic write)
};
inline constexpr int kChaosSiteCount = 8;

[[nodiscard]] const char* to_string(ChaosSite site) noexcept;

/// Deterministic fault-injection policy (docs/service.md, "Failure modes
/// and chaos testing").
///
/// Spec grammar — comma-separated entries, no spaces:
///
///   seed=<u64>           seed of the shared draw stream (default 1)
///   <site>=<prob>        arm `site` with per-check probability in [0, 1]
///   <site>@<n>           fire `site` exactly on its n-th check (1-based,
///                        one-shot; may repeat for several n)
///
///   e.g. "seed=7,cache-flip=0.05,worker-throw=0.02,frame-disconnect@3"
///
/// Site names: cache-flip, cache-truncate, write-fail, write-delay,
/// worker-throw, frame-truncate, frame-disconnect, queue-partial.
///
/// Determinism: all probability draws come from one seeded xoshiro stream
/// consumed under a lock, so a single-threaded driver observes the exact
/// same fire sequence for a given (spec, check order). Multi-threaded
/// servers interleave check order nondeterministically — the chaos test
/// suite therefore asserts *invariants* (every request answered, no
/// corrupt byte served, quarantine exactly accounted), not schedules.
///
/// Thread safety: configure()/disable() may race with should() checks;
/// the enabled flag is the only unlocked state.
class ChaosPolicy {
 public:
  /// Parses and arms `spec` (see grammar above), resetting per-site
  /// counters. Throws xlp::Error(kUsage) on a malformed spec. An empty
  /// spec disables the policy.
  void configure(const std::string& spec);

  /// Disarms every site; should() returns to its one-atomic-load path.
  void disable() noexcept;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The per-site arm check: true when the site fires now. The hot-path
  /// contract: when the policy is disabled this is one relaxed atomic
  /// load and nothing else.
  [[nodiscard]] bool should(ChaosSite site) {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    return fire(site);
  }

  /// One draw from the policy's seeded stream, for positioning a
  /// corruption (which bit to flip, where to truncate). Deterministic in
  /// draw order under the configured seed.
  [[nodiscard]] std::uint64_t draw();

  /// How many times `site` has fired since configure().
  [[nodiscard]] long injected(ChaosSite site) const;
  [[nodiscard]] long total_injected() const;

  /// {"enabled":bool,"spec":"...","injections":{"cache-flip":n,...},
  ///  "total":n} — spliced into the server's stats snapshot so `xlp top`
  /// and `xlp report` surface a chaos run as such.
  [[nodiscard]] obs::Json to_json() const;

  /// The process-wide policy every injection site checks; configured by
  /// `xlpd --chaos` / XLP_CHAOS and by the chaos test suite.
  [[nodiscard]] static ChaosPolicy& global() noexcept;

 private:
  [[nodiscard]] bool fire(ChaosSite site);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  struct Site {
    double probability = 0.0;
    std::set<long> at;  ///< one-shot triggers by 1-based check index
    long checks = 0;
    long fired = 0;
  };
  Site sites_[kChaosSiteCount];
  Rng rng_{1};
  std::string spec_;
};

/// Flips one bit of `bytes` at a position derived from `draw` (no-op on an
/// empty string). The canonical cache-read corruption.
void chaos_flip_bit(std::string& bytes, std::uint64_t draw) noexcept;

/// Truncates `bytes` to a strictly shorter prefix derived from `draw`
/// (no-op on an empty string).
void chaos_truncate(std::string& bytes, std::uint64_t draw) noexcept;

/// util::atomic_write_file behind the write chaos sites: kWriteDelay
/// sleeps a few deterministic milliseconds first, kWriteFail skips the
/// write and reports failure — exercising every caller's degraded path
/// (memory-only cache, queue retry-next-pass).
[[nodiscard]] bool chaos_write_file(const std::string& path,
                                    const std::string& content);

}  // namespace xlp::svc
