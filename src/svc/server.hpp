#pragma once

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "runctl/control.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"
#include "util/stopwatch.hpp"

namespace xlp::obs {
class MetricsRegistry;
class SeriesRecorder;
}  // namespace xlp::obs

namespace xlp::svc {

/// Schema identifier of serialized replies.
inline constexpr const char* kReplySchema = "xlp-reply/1";

/// Schema identifier of request lifecycle event records
/// (server-events.jsonl): one JSON line per request served, with the
/// dedup outcome and per-stage durations.
inline constexpr const char* kEventsSchema = "svc-events/1";

/// The answer to one request. `payload_text` is the canonical result
/// payload *bytes* (what the cache stores), spliced verbatim into the
/// serialized reply — an executed result and its later cache hits are
/// byte-identical by construction, never re-serialized.
struct Reply {
  std::string request_id;
  bool ok = true;
  /// True when the reply was served without executing: from the persisted
  /// cache, from another request in flight, or as a duplicate within one
  /// batch.
  bool cache_hit = false;
  std::string payload_text;  ///< result JSON, or the error message when !ok
  /// Error taxonomy (!ok only): an error_code_name() — "parse", "schema",
  /// "state", ... — or "poisoned" for a request whose execution escaped
  /// with a non-Error exception.
  std::string error_kind = "internal";
  /// True when resubmitting the identical request can succeed (deadline
  /// stops, injected faults, poisoned executions); false for requests that
  /// are wrong in themselves (parse / schema / usage). Drives the client's
  /// retry loop.
  bool retryable = false;

  /// {"schema":"xlp-reply/1","request_id":...,"cache_hit":...,
  ///  "result":<payload>} — or, instead of "result",
  ///  "error":{"kind":...,"retryable":...,"message":...}.
  [[nodiscard]] std::string to_text() const;
};

struct ServerOptions {
  std::string cache_dir = "xlp-cache";
  std::size_t cache_entries = 4096;
  /// Pool workers for batch serving; 0 = util::default_thread_count().
  int threads = 0;
  /// Per-request wall-clock budget in seconds (0 = unlimited). A request
  /// stopped by its deadline yields an error reply and is never cached.
  double request_time_limit = 0.0;
  /// Process-level stop (SIGINT): checked between queue files and socket
  /// frames, and merged into every per-request RunControl so in-flight
  /// work also drains promptly.
  runctl::CancelToken* cancel = nullptr;
  /// Ledger path ("" disables). One `xlp-ledger/1` record is appended per
  /// request served, with the request's canonical params as the scenario
  /// identity and `cache_hit` recording how it was answered.
  std::string ledger_path;
  obs::MetricsRegistry* metrics = nullptr;  ///< nullptr = global()

  /// Record latency histograms (queue-wait / execution / end-to-end),
  /// per-kind counters and the series feed — the data behind `stats`
  /// requests. Off benchmarks the bare hot path (bench/suites.cpp pins
  /// the recording overhead under 1%).
  bool observe = true;
  /// Request lifecycle event log ("" disables): one append-only
  /// `svc-events/1` JSONL record per request served, correlated to the
  /// ledger by request id.
  std::string events_path;
  /// Optional operational time series (svc.requests_per_sec,
  /// svc.cache_hit_rate, svc.queue_depth, svc.inflight), one point per
  /// `series_window`. Not owned; the server serializes its own appends,
  /// but the recorder must not be written concurrently by anyone else.
  obs::SeriesRecorder* series = nullptr;
  double series_window = 1.0;  ///< seconds per series sample window
};

/// The batch query server: resolves requests through a content-addressed
/// result cache, deduplicates identical work (within a batch, across
/// concurrent clients, and across restarts via the persisted cache), and
/// shards execution over a util::ThreadPool.
///
/// Determinism contract: for a given request id the served payload bytes
/// are identical at any thread count, whether executed, deduplicated or
/// replayed from the cache (tests/svc_test.cpp pins this).
///
/// Metrics: svc.requests / svc.executed / svc.errors / svc.inflight.hits
/// counters, the svc.execute timer, plus the cache's svc.cache.* family.
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Answers one request: cache hit, wait on an identical in-flight
  /// request (single execute, fan-out reply), or execute + cache. Safe to
  /// call from many threads. Never throws: failures become error replies.
  [[nodiscard]] Reply resolve(const Request& request);

  /// Answers a batch, replies in request order. Duplicate requests within
  /// the batch execute once; the first occurrence carries the executed /
  /// cache-hit flag, every later duplicate is marked cache_hit. Unique
  /// requests run concurrently on the pool.
  [[nodiscard]] std::vector<Reply> serve_batch(
      const std::vector<Request>& requests);

  /// Parses one submission document — a request object or an array of
  /// request objects — and serves it. Malformed documents / elements
  /// produce error replies (request_id "" when the id is unknowable), so
  /// a bad client cannot wedge the queue. Returns the serialized reply
  /// document: an object for an object, an array for an array.
  [[nodiscard]] std::string serve_text(const std::string& text);

  /// File-queue transport: serves every `<dir>/inbox/*.json` submission
  /// (lexicographic order), writing `<dir>/outbox/<same-name>` atomically
  /// before removing the inbox file — a crash between the two replays the
  /// file on restart, and the cache makes the replay cheap. With `once`
  /// the current inbox snapshot is drained and the call returns;
  /// otherwise it polls every `poll_seconds` until the cancel token fires
  /// (the file being served is always finished first). Returns the number
  /// of submission files served.
  long run_queue(const std::string& queue_dir, bool once,
                 double poll_seconds);

  /// Local-socket transport: a SOCK_STREAM AF_UNIX listener at
  /// `socket_path` speaking length-prefixed JSON — each frame is a 4-byte
  /// little-endian byte count followed by one submission document; the
  /// reply comes back in the same framing, one round trip per connection.
  /// Connections are handled by `threads` dedicated client workers, so
  /// concurrent identical requests hit the in-flight dedup path. Returns
  /// when the cancel token fires (accepted connections drain first);
  /// false when the socket could not be created.
  bool run_socket(const std::string& socket_path);

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] long requests_served() const noexcept;

  /// The live introspection snapshot a `stats` request returns, built
  /// from memory (counters, histograms, gauges) without touching the
  /// executor pool: uptime, per-kind counts, dedup-layer hit rates, cache
  /// occupancy/evictions, worker utilization and the three latency
  /// histograms (queue-wait / execution / end-to-end).
  [[nodiscard]] obs::Json stats_snapshot();

  /// Flushes buffered observability: the partial series window is
  /// appended and the events stream is flushed to disk. Called before a
  /// drained daemon writes its final artifacts, so SIGINT loses nothing.
  void flush_observability();

 private:
  struct Inflight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    bool ok = false;
    std::string payload_text;
    std::string error_kind;
    bool retryable = false;
  };

  /// resolve() with an explicit receive timestamp (seconds on the
  /// server's uptime clock): queue-wait is measured from `received` to
  /// the moment a worker picks the request up.
  Reply resolve_received(const Request& request, double received);
  /// Executes (or waits out) a request that missed the cache. Reports
  /// the dedup outcome ("miss" when this call executed, "inflight" when
  /// it joined another execution) and the execution wall time.
  Reply execute_or_join(const Request& request, const std::string& id,
                        const char** outcome, double* execute_seconds);
  /// Answers a stats request from memory (never cached, never ledgered,
  /// excluded from requests_served() and the latency histograms).
  Reply stats_reply();
  void append_ledger(const Request& request, const Reply& reply,
                     double wall_seconds);
  /// Records one served request into the histograms, per-kind counters,
  /// series windows and the events log. `received` is on the uptime
  /// clock; nullopt stage durations are stages the request skipped.
  /// `cache_corrupt` marks a lookup that hit a corrupt entry (quarantined,
  /// re-executed).
  void observe_request(const Request& request, const Reply& reply,
                       const char* outcome, double received,
                       std::optional<double> queue_wait_seconds,
                       std::optional<double> execute_seconds,
                       bool cache_corrupt = false);
  [[nodiscard]] long inflight_count();

  ServerOptions options_;
  obs::MetricsRegistry* metrics_;
  ResultCache cache_;
  std::string git_sha_;
  std::string hostname_;

  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;

  std::mutex ledger_mutex_;
  mutable std::mutex served_mutex_;
  long requests_served_ = 0;

  // --- observability ---
  Stopwatch uptime_;
  obs::ShardedHistogram queue_wait_ns_;
  obs::ShardedHistogram execute_ns_;
  obs::ShardedHistogram end_to_end_ns_;
  std::atomic<long> queue_depth_{0};  ///< socket backlog / inbox depth
  /// Served-request counts indexed by RequestKind. Plain atomics, not
  /// registry counters: this is on the per-request hot path, where a
  /// string-keyed map lookup would dominate the whole observe cost.
  std::atomic<long> kind_counts_[4] = {};

  std::mutex events_mutex_;
  std::ofstream events_out_;

  std::mutex series_mutex_;
  double window_start_ = 0.0;
  long window_requests_ = 0;
  long window_cache_hits_ = 0;
};

}  // namespace xlp::svc
