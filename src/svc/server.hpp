#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runctl/control.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"

namespace xlp::obs {
class MetricsRegistry;
}

namespace xlp::svc {

/// Schema identifier of serialized replies.
inline constexpr const char* kReplySchema = "xlp-reply/1";

/// The answer to one request. `payload_text` is the canonical result
/// payload *bytes* (what the cache stores), spliced verbatim into the
/// serialized reply — an executed result and its later cache hits are
/// byte-identical by construction, never re-serialized.
struct Reply {
  std::string request_id;
  bool ok = true;
  /// True when the reply was served without executing: from the persisted
  /// cache, from another request in flight, or as a duplicate within one
  /// batch.
  bool cache_hit = false;
  std::string payload_text;  ///< result JSON, or the error message when !ok

  /// {"schema":"xlp-reply/1","request_id":...,"cache_hit":...,
  ///  "result":<payload>} — or "error":"..." instead of "result".
  [[nodiscard]] std::string to_text() const;
};

struct ServerOptions {
  std::string cache_dir = "xlp-cache";
  std::size_t cache_entries = 4096;
  /// Pool workers for batch serving; 0 = util::default_thread_count().
  int threads = 0;
  /// Per-request wall-clock budget in seconds (0 = unlimited). A request
  /// stopped by its deadline yields an error reply and is never cached.
  double request_time_limit = 0.0;
  /// Process-level stop (SIGINT): checked between queue files and socket
  /// frames, and merged into every per-request RunControl so in-flight
  /// work also drains promptly.
  runctl::CancelToken* cancel = nullptr;
  /// Ledger path ("" disables). One `xlp-ledger/1` record is appended per
  /// request served, with the request's canonical params as the scenario
  /// identity and `cache_hit` recording how it was answered.
  std::string ledger_path;
  obs::MetricsRegistry* metrics = nullptr;  ///< nullptr = global()
};

/// The batch query server: resolves requests through a content-addressed
/// result cache, deduplicates identical work (within a batch, across
/// concurrent clients, and across restarts via the persisted cache), and
/// shards execution over a util::ThreadPool.
///
/// Determinism contract: for a given request id the served payload bytes
/// are identical at any thread count, whether executed, deduplicated or
/// replayed from the cache (tests/svc_test.cpp pins this).
///
/// Metrics: svc.requests / svc.executed / svc.errors / svc.inflight.hits
/// counters, the svc.execute timer, plus the cache's svc.cache.* family.
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Answers one request: cache hit, wait on an identical in-flight
  /// request (single execute, fan-out reply), or execute + cache. Safe to
  /// call from many threads. Never throws: failures become error replies.
  [[nodiscard]] Reply resolve(const Request& request);

  /// Answers a batch, replies in request order. Duplicate requests within
  /// the batch execute once; the first occurrence carries the executed /
  /// cache-hit flag, every later duplicate is marked cache_hit. Unique
  /// requests run concurrently on the pool.
  [[nodiscard]] std::vector<Reply> serve_batch(
      const std::vector<Request>& requests);

  /// Parses one submission document — a request object or an array of
  /// request objects — and serves it. Malformed documents / elements
  /// produce error replies (request_id "" when the id is unknowable), so
  /// a bad client cannot wedge the queue. Returns the serialized reply
  /// document: an object for an object, an array for an array.
  [[nodiscard]] std::string serve_text(const std::string& text);

  /// File-queue transport: serves every `<dir>/inbox/*.json` submission
  /// (lexicographic order), writing `<dir>/outbox/<same-name>` atomically
  /// before removing the inbox file — a crash between the two replays the
  /// file on restart, and the cache makes the replay cheap. With `once`
  /// the current inbox snapshot is drained and the call returns;
  /// otherwise it polls every `poll_seconds` until the cancel token fires
  /// (the file being served is always finished first). Returns the number
  /// of submission files served.
  long run_queue(const std::string& queue_dir, bool once,
                 double poll_seconds);

  /// Local-socket transport: a SOCK_STREAM AF_UNIX listener at
  /// `socket_path` speaking length-prefixed JSON — each frame is a 4-byte
  /// little-endian byte count followed by one submission document; the
  /// reply comes back in the same framing, one round trip per connection.
  /// Connections are handled by `threads` dedicated client workers, so
  /// concurrent identical requests hit the in-flight dedup path. Returns
  /// when the cancel token fires (accepted connections drain first);
  /// false when the socket could not be created.
  bool run_socket(const std::string& socket_path);

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] long requests_served() const noexcept;

 private:
  struct Inflight {
    std::mutex mutex;
    std::condition_variable done_cv;
    bool done = false;
    bool ok = false;
    std::string payload_text;
  };

  /// Executes (or waits out) a request that missed the cache.
  Reply execute_or_join(const Request& request, const std::string& id);
  void append_ledger(const Request& request, const Reply& reply,
                     double wall_seconds);

  ServerOptions options_;
  obs::MetricsRegistry* metrics_;
  ResultCache cache_;
  std::string git_sha_;
  std::string hostname_;

  std::mutex inflight_mutex_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;

  std::mutex ledger_mutex_;
  mutable std::mutex served_mutex_;
  long requests_served_ = 0;
};

}  // namespace xlp::svc
