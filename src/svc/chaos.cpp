#include "svc/chaos.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/fsio.hpp"

namespace xlp::svc {

namespace {

constexpr const char* kSiteNames[kChaosSiteCount] = {
    "cache-flip",     "cache-truncate",  "write-fail",       "write-delay",
    "worker-throw",   "frame-truncate",  "frame-disconnect", "queue-partial"};

[[noreturn]] void bad_spec(const std::string& message) {
  throw Error(ErrorCode::kUsage, "chaos spec: " + message);
}

int site_index(const std::string& name) {
  for (int i = 0; i < kChaosSiteCount; ++i)
    if (name == kSiteNames[i]) return i;
  return -1;
}

}  // namespace

const char* to_string(ChaosSite site) noexcept {
  const int index = static_cast<int>(site);
  return index >= 0 && index < kChaosSiteCount ? kSiteNames[index]
                                               : "unknown";
}

void ChaosPolicy::configure(const std::string& spec) {
  // Parse into a scratch table first so a malformed spec leaves the
  // policy untouched (and disabled sites stay zero-cost).
  Site parsed[kChaosSiteCount];
  std::uint64_t seed = 1;
  bool any = false;

  std::size_t start = 0;
  while (start <= spec.size() && !spec.empty()) {
    const std::size_t comma = spec.find(',', start);
    const std::string entry =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    const std::size_t at = entry.find('@');
    try {
      if (eq != std::string::npos &&
          (at == std::string::npos || eq < at)) {
        const std::string name = entry.substr(0, eq);
        const std::string value = entry.substr(eq + 1);
        if (name == "seed") {
          seed = static_cast<std::uint64_t>(std::stoull(value));
          continue;
        }
        const int index = site_index(name);
        if (index < 0) bad_spec("unknown site '" + name + "'");
        const double probability = std::stod(value);
        if (probability < 0.0 || probability > 1.0)
          bad_spec("probability for " + name + " must be in [0, 1]");
        parsed[index].probability = probability;
        any = true;
      } else if (at != std::string::npos) {
        const std::string name = entry.substr(0, at);
        const int index = site_index(name);
        if (index < 0) bad_spec("unknown site '" + name + "'");
        const long nth = std::stol(entry.substr(at + 1));
        if (nth < 1) bad_spec("@n triggers are 1-based: '" + entry + "'");
        parsed[index].at.insert(nth);
        any = true;
      } else {
        bad_spec("entries look like site=prob, site@n or seed=u64: '" +
                 entry + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      bad_spec("non-numeric value in '" + entry + "'");
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (int i = 0; i < kChaosSiteCount; ++i) sites_[i] = parsed[i];
  rng_ = Rng(seed);
  spec_ = spec;
  enabled_.store(any, std::memory_order_relaxed);
}

void ChaosPolicy::disable() noexcept {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  for (Site& site : sites_) site = Site{};
  spec_.clear();
}

bool ChaosPolicy::fire(ChaosSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& state = sites_[static_cast<int>(site)];
  ++state.checks;
  bool fires = state.at.erase(state.checks) > 0;
  if (!fires && state.probability > 0.0)
    fires = rng_.bernoulli(state.probability);
  if (fires) ++state.fired;
  return fires;
}

std::uint64_t ChaosPolicy::draw() {
  std::lock_guard<std::mutex> lock(mutex_);
  return rng_();
}

long ChaosPolicy::injected(ChaosSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_[static_cast<int>(site)].fired;
}

long ChaosPolicy::total_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  long total = 0;
  for (const Site& site : sites_) total += site.fired;
  return total;
}

obs::Json ChaosPolicy::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::Json injections = obs::Json::object();
  long total = 0;
  for (int i = 0; i < kChaosSiteCount; ++i) {
    if (sites_[i].probability <= 0.0 && sites_[i].at.empty() &&
        sites_[i].fired == 0)
      continue;
    injections.set(kSiteNames[i], sites_[i].fired);
    total += sites_[i].fired;
  }
  return obs::Json::object()
      .set("enabled", enabled_.load(std::memory_order_relaxed))
      .set("spec", spec_)
      .set("injections", std::move(injections))
      .set("total", total);
}

ChaosPolicy& ChaosPolicy::global() noexcept {
  static ChaosPolicy policy;
  return policy;
}

void chaos_flip_bit(std::string& bytes, std::uint64_t draw) noexcept {
  if (bytes.empty()) return;
  const std::size_t position =
      static_cast<std::size_t>(draw % (bytes.size() * 8));
  bytes[position / 8] =
      static_cast<char>(bytes[position / 8] ^ (1 << (position % 8)));
}

void chaos_truncate(std::string& bytes, std::uint64_t draw) noexcept {
  if (bytes.empty()) return;
  bytes.resize(static_cast<std::size_t>(draw % bytes.size()));
}

bool chaos_write_file(const std::string& path, const std::string& content) {
  ChaosPolicy& chaos = ChaosPolicy::global();
  if (chaos.should(ChaosSite::kWriteDelay))
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + static_cast<long>(chaos.draw() % 8)));
  if (chaos.should(ChaosSite::kWriteFail)) return false;
  return util::atomic_write_file(path, content);
}

}  // namespace xlp::svc
