#pragma once

#include <string>

namespace xlp::svc {

/// Schema identifier of the integrity envelope every persisted service
/// byte-stream travels in: cache entries, queue submissions and queue
/// replies.
inline constexpr const char* kEnvelopeSchema = "xlp-envelope/1";

/// What unwrap_envelope() found.
enum class EnvelopeStatus {
  kOk,           ///< checksum verified; payload extracted
  kNotEnvelope,  ///< valid JSON, but not an xlp-envelope/1 document
  kCorrupt,      ///< torn, truncated, field-missing or checksum-mismatched
};

/// Wraps `payload` (arbitrary bytes, typically a JSON document) in the
/// integrity envelope:
///
///   {"schema":"xlp-envelope/1","checksum":"<fnv1a64 hex of payload>",
///    "payload":"<payload, JSON-escaped>"}
///
/// The payload travels as a JSON string, so unwrapping returns the exact
/// original bytes — the byte-identity contract of the cache survives the
/// wrapping. FNV-1a 64 is the same content-hash primitive behind request
/// ids; it detects the torn writes, bit rot and truncations the chaos
/// suite injects (it is an integrity check, not an authenticity one).
[[nodiscard]] std::string wrap_envelope(const std::string& payload);

/// Parses `text` and verifies its checksum. On kOk, `payload` receives
/// the original bytes. On kCorrupt, `reason` (when non-null) names what
/// failed ("truncated or not JSON", "missing checksum field", "checksum
/// mismatch", ...). kNotEnvelope means `text` is well-formed JSON of some
/// other shape — readers that accept legacy unwrapped documents branch on
/// it.
[[nodiscard]] EnvelopeStatus unwrap_envelope(const std::string& text,
                                             std::string* payload,
                                             std::string* reason = nullptr);

}  // namespace xlp::svc
