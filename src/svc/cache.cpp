#include "svc/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

#include "obs/canonical.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "svc/chaos.hpp"
#include "svc/envelope.hpp"
#include "util/fsio.hpp"

namespace xlp::svc {

namespace fs = std::filesystem;

namespace {

/// A cache id is exactly what Request::id() produces; anything else in the
/// directory (editor droppings, the metrics dump) is not an entry.
bool looks_like_id(const std::string& stem) {
  if (stem.size() != 16) return false;
  return std::all_of(stem.begin(), stem.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

/// Moves `src` into `<dir>/quarantine/`, suffixing the name when a
/// previous quarantine already claimed it. Returns the destination path
/// (created-but-empty on failure paths is acceptable: quarantine is a
/// forensic convenience, the load-bearing guarantee is that `src` leaves
/// the live cache).
fs::path quarantine_target(const std::string& dir, const std::string& name) {
  const fs::path qdir = fs::path(dir) / "quarantine";
  std::error_code ec;
  fs::create_directories(qdir, ec);
  fs::path target = qdir / name;
  for (int n = 1; fs::exists(target, ec); ++n)
    target = qdir / (name + "." + std::to_string(n));
  return target;
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::size_t max_entries,
                         obs::MetricsRegistry* metrics, bool verify_reads)
    : dir_(std::move(dir)),
      max_entries_(std::max<std::size_t>(1, max_entries)),
      metrics_(metrics != nullptr ? metrics
                                  : &obs::MetricsRegistry::global()),
      verify_reads_(verify_reads) {
  std::error_code ec;
  fs::create_directories(dir_, ec);

  // Rebuild the index from disk, oldest first so the LRU order roughly
  // reflects the previous process's write order (ties broken by name for
  // determinism on coarse-mtime filesystems).
  struct Found {
    fs::file_time_type mtime;
    std::string name;
    std::string path;
    bool is_file;
  };
  std::vector<Found> found;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const fs::path& path = entry.path();
    if (path.extension() != ".json" ||
        !looks_like_id(path.stem().string()))
      continue;
    found.push_back({entry.last_write_time(ec), path.stem().string(),
                     path.string(), entry.is_regular_file(ec)});
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& file : found) {
    if (!file.is_file) {
      // A directory (or socket, ...) squatting on an entry name can never
      // be a valid entry: quarantine it wholesale.
      quarantine_locked(file.name, "");
      continue;
    }
    const auto bytes = util::read_file(file.path);
    if (!bytes) {
      quarantine_locked(file.name, "");
      continue;
    }
    std::string payload;
    switch (unwrap_envelope(*bytes, &payload)) {
      case EnvelopeStatus::kOk:
        break;
      case EnvelopeStatus::kNotEnvelope:
        // Pre-envelope entries were the bare payload JSON; accept them so
        // an upgrade does not cold-start the cache. They are rewritten in
        // envelope form on their next put().
        if (!obs::Json::parse(*bytes)) {
          quarantine_locked(file.name, "");
          continue;
        }
        payload = *bytes;
        break;
      case EnvelopeStatus::kCorrupt:
        quarantine_locked(file.name, "");
        continue;
    }
    lru_.push_front(file.name);
    entries_[file.name] =
        Entry{payload, obs::fnv1a64_hex(payload), lru_.begin()};
    evict_if_needed_locked();
  }
  metrics_->set_gauge("svc.cache.entries",
                      static_cast<double>(entries_.size()));
}

std::optional<std::string> ResultCache::get(const std::string& id,
                                            bool* corrupted) {
  if (corrupted != nullptr) *corrupted = false;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    metrics_->add("svc.cache.misses");
    return std::nullopt;
  }
  std::string payload = it->second.payload;
  ChaosPolicy& chaos = ChaosPolicy::global();
  if (chaos.should(ChaosSite::kCacheFlip))
    chaos_flip_bit(payload, chaos.draw());
  if (chaos.should(ChaosSite::kCacheTruncate))
    chaos_truncate(payload, chaos.draw());
  if (verify_reads_ && obs::fnv1a64_hex(payload) != it->second.checksum) {
    // Never serve a byte that fails verification: quarantine the entry and
    // report a miss so the caller recomputes.
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    quarantine_locked(id, payload);
    metrics_->set_gauge("svc.cache.entries",
                        static_cast<double>(entries_.size()));
    metrics_->add("svc.cache.misses");
    if (corrupted != nullptr) *corrupted = true;
    return std::nullopt;
  }
  touch_locked(id);
  metrics_->add("svc.cache.hits");
  return payload;
}

bool ResultCache::contains(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(id) != entries_.end();
}

bool ResultCache::put(const std::string& id, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.payload = payload;
    it->second.checksum = obs::fnv1a64_hex(payload);
    touch_locked(id);
  } else {
    lru_.push_front(id);
    entries_[id] = Entry{payload, obs::fnv1a64_hex(payload), lru_.begin()};
    evict_if_needed_locked();
    metrics_->set_gauge("svc.cache.entries",
                        static_cast<double>(entries_.size()));
  }
  return chaos_write_file((fs::path(dir_) / (id + ".json")).string(),
                          wrap_envelope(payload));
}

std::size_t ResultCache::size() {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

long ResultCache::corrupt_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_;
}

void ResultCache::evict_if_needed_locked() {
  while (entries_.size() > max_entries_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    std::error_code ec;
    fs::remove(fs::path(dir_) / (victim + ".json"), ec);
    metrics_->add("svc.cache.evictions");
  }
}

void ResultCache::touch_locked(const std::string& id) {
  auto& entry = entries_.at(id);
  lru_.erase(entry.lru_pos);
  lru_.push_front(id);
  entry.lru_pos = lru_.begin();
}

void ResultCache::quarantine_locked(const std::string& name,
                                    const std::string& corrupt_bytes) {
  const std::string file = name + ".json";
  const fs::path src = fs::path(dir_) / file;
  const fs::path target = quarantine_target(dir_, file);
  std::error_code ec;
  if (fs::exists(src, ec)) {
    fs::rename(src, target, ec);
    if (ec) {
      // Cross-device or permission trouble: removing the live file is the
      // part that matters; preserve the bytes we have for forensics.
      fs::remove_all(src, ec);
      (void)util::atomic_write_file(target.string(), corrupt_bytes);
    }
  } else {
    // Memory-only entry (its put() failed): there is no file to move, so
    // write the corrupt bytes themselves — every svc.cache.corrupt
    // increment leaves exactly one quarantine file.
    (void)util::atomic_write_file(target.string(), corrupt_bytes);
  }
  ++corrupt_;
  metrics_->add("svc.cache.corrupt");
}

}  // namespace xlp::svc
