#include "svc/cache.hpp"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/fsio.hpp"

namespace xlp::svc {

namespace fs = std::filesystem;

namespace {

/// A cache id is exactly what Request::id() produces; anything else in the
/// directory (editor droppings, the metrics dump) is not an entry.
bool looks_like_id(const std::string& stem) {
  if (stem.size() != 16) return false;
  return std::all_of(stem.begin(), stem.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::size_t max_entries,
                         obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)),
      max_entries_(std::max<std::size_t>(1, max_entries)),
      metrics_(metrics != nullptr ? metrics
                                  : &obs::MetricsRegistry::global()) {
  std::error_code ec;
  fs::create_directories(dir_, ec);

  // Rebuild the index from disk, oldest first so the LRU order roughly
  // reflects the previous process's write order (ties broken by name for
  // determinism on coarse-mtime filesystems).
  struct Found {
    fs::file_time_type mtime;
    std::string name;
    std::string path;
  };
  std::vector<Found> found;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".json" ||
        !looks_like_id(path.stem().string()))
      continue;
    found.push_back({entry.last_write_time(ec), path.stem().string(),
                     path.string()});
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime != b.mtime ? a.mtime < b.mtime : a.name < b.name;
  });

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& file : found) {
    const auto payload = util::read_file(file.path);
    // Only complete JSON documents re-enter the index; atomic writes make
    // torn files impossible, so a reject here is foreign junk.
    if (!payload || !obs::Json::parse(*payload)) continue;
    lru_.push_front(file.name);
    entries_[file.name] = Entry{*payload, lru_.begin()};
    evict_if_needed_locked();
  }
  metrics_->set_gauge("svc.cache.entries",
                      static_cast<double>(entries_.size()));
}

std::optional<std::string> ResultCache::get(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    metrics_->add("svc.cache.misses");
    return std::nullopt;
  }
  touch_locked(id);
  metrics_->add("svc.cache.hits");
  return it->second.payload;
}

bool ResultCache::contains(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(id) != entries_.end();
}

bool ResultCache::put(const std::string& id, const std::string& payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.payload = payload;
    touch_locked(id);
  } else {
    lru_.push_front(id);
    entries_[id] = Entry{payload, lru_.begin()};
    evict_if_needed_locked();
    metrics_->set_gauge("svc.cache.entries",
                        static_cast<double>(entries_.size()));
  }
  return util::atomic_write_file(
      (fs::path(dir_) / (id + ".json")).string(), payload);
}

std::size_t ResultCache::size() {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ResultCache::evict_if_needed_locked() {
  while (entries_.size() > max_entries_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    std::error_code ec;
    fs::remove(fs::path(dir_) / (victim + ".json"), ec);
    metrics_->add("svc.cache.evictions");
  }
}

void ResultCache::touch_locked(const std::string& id) {
  auto& entry = entries_.at(id);
  lru_.erase(entry.lru_pos);
  lru_.push_front(id);
  entry.lru_pos = lru_.begin();
}

}  // namespace xlp::svc
