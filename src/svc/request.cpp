#include "svc/request.hpp"

#include <sstream>

#include "core/branch_bound.hpp"
#include "core/drivers.hpp"
#include "core/objective.hpp"
#include "exp/scenarios.hpp"
#include "latency/model.hpp"
#include "obs/canonical.hpp"
#include "runctl/control.hpp"
#include "sim/simulator.hpp"
#include "topo/builders.hpp"
#include "traffic/app_models.hpp"
#include "traffic/patterns.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace xlp::svc {

namespace {

[[noreturn]] void bad_request(const std::string& message) {
  throw Error(ErrorCode::kParse, message);
}

/// "lo-hi,lo-hi,..."; "" and "none" mean no express links.
std::vector<topo::RowLink> parse_links(const std::string& spec) {
  std::vector<topo::RowLink> links;
  if (spec.empty() || spec == "none") return links;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto dash = item.find('-');
    if (dash == std::string::npos || dash == 0 || dash + 1 >= item.size())
      bad_request("links entries look like lo-hi, comma separated: '" +
                  item + "'");
    try {
      links.push_back({std::stoi(item.substr(0, dash)),
                       std::stoi(item.substr(dash + 1))});
    } catch (const std::exception&) {
      bad_request("non-numeric links entry '" + item + "'");
    }
  }
  return links;
}

bool is_known_workload(const std::string& name) {
  if (traffic::pattern_from_string(name)) return true;
  for (const auto& model : traffic::parsec_models())
    if (model.name == name) return true;
  return false;
}

traffic::TrafficMatrix resolve_workload(const std::string& name, int n,
                                        double load) {
  if (const auto pattern = traffic::pattern_from_string(name))
    return traffic::TrafficMatrix::from_pattern(*pattern, n, load);
  return traffic::parsec_model(name).traffic_matrix(n);
}

/// The design point an evaluate/simulate request names: the placement row
/// replicated over every row and column at the request's C and B.
topo::ExpressMesh design_of(const Request& request) {
  const topo::RowTopology row(request.n, parse_links(request.links));
  return topo::make_design(row, request.link_limit, request.base_flit_bits);
}

obs::Json execute_solve(const Request& request, runctl::RunControl* control) {
  const core::RowObjective objective(request.n, route::HopWeights{});
  runctl::RunControl local;
  if (control == nullptr) control = &local;

  core::PlacementResult result;
  if (request.method == "dcsa" || request.method == "onlysa") {
    core::SaParams params = core::SaParams{}.with_moves(request.moves);
    params.control = control;
    Rng rng(request.seed);
    result = request.method == "dcsa"
                 ? core::solve_dcsa(objective, request.link_limit, params, rng)
                 : core::solve_only_sa(objective, request.link_limit, params,
                                       rng);
  } else if (request.method == "dnc") {
    core::DncOptions dnc;
    dnc.control = control;
    result = core::solve_dnc_only(objective, request.link_limit, dnc);
  } else {
    core::BranchAndBound bb(objective, request.link_limit, control);
    const auto exact = bb.solve();
    result.placement = exact.placement;
    result.value = exact.value;
    result.evaluations = objective.evaluations();
    result.method = "exact";
    result.status = exact.status;
  }
  if (result.status != runctl::RunStatus::kCompleted)
    throw Error(ErrorCode::kState,
                std::string("solve stopped early (") +
                    runctl::to_string(result.status) + ")");
  return obs::Json::object()
      .set("kind", "solve")
      .set("placement", result.placement.to_string())
      .set("value", result.value)
      .set("evaluations", static_cast<long>(result.evaluations))
      .set("method", result.method);
}

obs::Json execute_evaluate(const Request& request) {
  const topo::ExpressMesh design = design_of(request);
  latency::LatencyParams params = latency::LatencyParams::zero_load();
  params.contention_per_hop = request.contention_per_hop;
  const latency::MeshLatencyModel model(design, params);
  const auto demand =
      resolve_workload(request.workload, request.n, request.load);
  const latency::LatencyBreakdown breakdown =
      model.weighted_average(demand.rates());
  return obs::Json::object()
      .set("kind", "evaluate")
      .set("total", breakdown.total())
      .set("head", breakdown.head)
      .set("serialization", breakdown.serialization)
      .set("worst_case", model.worst_case())
      .set("avg_hops", model.average_hops())
      .set("flit_bits", design.flit_bits());
}

obs::Json execute_simulate(const Request& request,
                           runctl::RunControl* control) {
  const topo::ExpressMesh design = design_of(request);
  const auto demand =
      resolve_workload(request.workload, request.n, request.load);
  sim::SimConfig config;
  config.measure_cycles = request.cycles;
  config.vcs_per_port = request.vcs;
  config.seed = request.seed;
  config.control = control;
  if (request.routing == "yx") config.routing = sim::RoutingMode::kYX;
  else if (request.routing == "o1turn")
    config.routing = sim::RoutingMode::kO1Turn;
  const sim::SimStats stats = exp::simulate_design(design, demand, config);
  if (stats.status != runctl::RunStatus::kCompleted)
    throw Error(ErrorCode::kState,
                std::string("simulate stopped early (") +
                    runctl::to_string(stats.status) + ")");
  return obs::Json::object()
      .set("kind", "simulate")
      .set("packets_offered", stats.packets_offered)
      .set("packets_finished", stats.packets_finished)
      .set("avg_latency", stats.avg_latency)
      .set("p50_latency", stats.p50_latency)
      .set("p95_latency", stats.p95_latency)
      .set("p99_latency", stats.p99_latency)
      .set("max_latency", stats.max_latency)
      .set("throughput", stats.throughput_packets_per_node_cycle)
      .set("avg_hops", stats.avg_hops)
      .set("drained", stats.drained);
}

}  // namespace

const char* to_string(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kSolve: return "solve";
    case RequestKind::kEvaluate: return "evaluate";
    case RequestKind::kSimulate: return "simulate";
    case RequestKind::kStats: return "stats";
  }
  return "unknown";
}

obs::Json Request::to_json() const {
  obs::Json doc = obs::Json::object()
                      .set("schema", kRequestSchema)
                      .set("kind", svc::to_string(kind));
  // A stats request names no work: every stats request is the same
  // request, {"schema","kind"} only.
  if (kind == RequestKind::kStats) return doc;
  doc.set("n", n);
  if (height > 0 && height != n) doc.set("height", height);
  doc.set("c", link_limit).set("b", base_flit_bits);
  if (kind == RequestKind::kSolve) {
    doc.set("method", method);
    if (method == "dcsa" || method == "onlysa") doc.set("moves", moves);
  } else {
    doc.set("links", links)
        .set("workload", workload)
        .set("load", load);
    if (kind == RequestKind::kSimulate)
      doc.set("cycles", cycles).set("routing", routing).set("vcs", vcs);
    else
      doc.set("contention", contention_per_hop);
  }
  // The seed only matters where randomness does: annealing and the
  // simulator's packet sampling. Evaluate is fully analytic.
  if (kind != RequestKind::kEvaluate)
    doc.set("seed", static_cast<long>(seed));
  return doc;
}

std::string Request::id() const {
  return obs::fnv1a64_hex(obs::canonical_json(to_json()));
}

void Request::validate() const {
  if (kind == RequestKind::kStats) return;  // carries no parameters
  if (n < 2 || n > 256) bad_request("n must be in [2, 256]");
  if (height != 0 && height != n)
    bad_request("rectangular requests are not served yet (height must be "
                "0 or equal to n)");
  if (link_limit < 1) bad_request("c must be at least 1");
  if (base_flit_bits < 1 || base_flit_bits % link_limit != 0)
    bad_request("c must divide the base flit width b");
  if (kind == RequestKind::kSolve) {
    if (method != "dcsa" && method != "onlysa" && method != "dnc" &&
        method != "exact")
      bad_request("method must be dcsa, onlysa, dnc or exact");
    if (moves < 0) bad_request("moves must be non-negative");
  } else {
    if (!is_known_workload(workload))
      bad_request("unknown workload '" + workload + "'");
    if (load <= 0.0 || load > 1.0) bad_request("load must be in (0, 1]");
    parse_links(links);  // syntax check; range errors surface at execute
    if (kind == RequestKind::kSimulate) {
      if (cycles < 1) bad_request("cycles must be positive");
      if (routing != "xy" && routing != "yx" && routing != "o1turn")
        bad_request("routing must be xy, yx or o1turn");
      if (vcs < 1 || vcs > 16) bad_request("vcs must be in [1, 16]");
    }
    if (contention_per_hop < 0.0)
      bad_request("contention must be non-negative");
  }
}

Request Request::from_json(const obs::Json& doc) {
  if (!doc.is_object()) bad_request("request must be a JSON object");
  Request request;
  bool saw_kind = false;
  for (const auto& [key, value] : doc.members()) {
    try {
      if (key == "schema") {
        if (!value.is_string() || value.as_string() != kRequestSchema)
          bad_request("schema must be \"" + std::string(kRequestSchema) +
                      "\"");
      } else if (key == "kind") {
        const std::string& kind = value.as_string();
        saw_kind = true;
        if (kind == "solve") request.kind = RequestKind::kSolve;
        else if (kind == "evaluate") request.kind = RequestKind::kEvaluate;
        else if (kind == "simulate") request.kind = RequestKind::kSimulate;
        else if (kind == "stats") request.kind = RequestKind::kStats;
        else bad_request("kind must be solve, evaluate, simulate or stats");
      } else if (key == "n") {
        request.n = static_cast<int>(value.as_long());
      } else if (key == "height") {
        request.height = static_cast<int>(value.as_long());
      } else if (key == "c") {
        request.link_limit = static_cast<int>(value.as_long());
      } else if (key == "b") {
        request.base_flit_bits = static_cast<int>(value.as_long());
      } else if (key == "method") {
        request.method = value.as_string();
      } else if (key == "moves") {
        request.moves = value.as_long();
      } else if (key == "links") {
        request.links = value.as_string();
      } else if (key == "workload") {
        request.workload = value.as_string();
      } else if (key == "load") {
        request.load = value.as_number();
      } else if (key == "cycles") {
        request.cycles = value.as_long();
      } else if (key == "routing") {
        request.routing = value.as_string();
      } else if (key == "vcs") {
        request.vcs = static_cast<int>(value.as_long());
      } else if (key == "contention") {
        request.contention_per_hop = value.as_number();
      } else if (key == "seed") {
        request.seed = static_cast<std::uint64_t>(value.as_long());
      } else {
        bad_request("unknown request field '" + key + "'");
      }
    } catch (const PreconditionError&) {
      bad_request("request field '" + key + "' has the wrong type");
    }
  }
  if (!saw_kind) bad_request("request is missing 'kind'");
  request.validate();
  return request;
}

obs::Json execute_request(const Request& request,
                          runctl::RunControl* control) {
  request.validate();
  switch (request.kind) {
    case RequestKind::kSolve: return execute_solve(request, control);
    case RequestKind::kEvaluate: return execute_evaluate(request);
    case RequestKind::kSimulate: return execute_simulate(request, control);
    case RequestKind::kStats:
      // Stats requests are introspection, answered by the Server from
      // memory; they never reach the executor.
      throw Error(ErrorCode::kState,
                  "stats requests are answered by the server, not executed");
  }
  throw Error(ErrorCode::kInternal, "unhandled request kind");
}

}  // namespace xlp::svc
