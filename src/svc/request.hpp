#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace xlp::runctl {
class RunControl;
}

namespace xlp::svc {

/// Schema identifier stamped into every serialized request; bumping it
/// invalidates every cache entry (the version string is hashed).
inline constexpr const char* kRequestSchema = "xlp-request/1";

/// What a request asks the service to do.
///  * kSolve: anneal P̄(n, C) and return the placement + objective;
///  * kEvaluate: analytic latency breakdown of a fixed design point;
///  * kSimulate: flit-level simulation of a fixed design point;
///  * kStats: a live introspection snapshot of the serving process,
///    answered by the server from memory (never executed, never cached,
///    never ledgered — see Server::stats_snapshot()).
enum class RequestKind { kSolve, kEvaluate, kSimulate, kStats };

[[nodiscard]] const char* to_string(RequestKind kind) noexcept;

/// A pure, hashable unit of work — the canonical request model every
/// scenario entry point reduces to (ROADMAP item 5). A request carries
/// *only* inputs that define the answer: no output paths, thread counts,
/// time limits or machine facts, so the same request hashes identically
/// everywhere and its result can be cached by content.
///
/// Fields irrelevant to a request's kind are excluded from its canonical
/// serialization (a solve at any `load` is the same solve), so near-
/// duplicate design points collapse onto one cache entry.
struct Request {
  RequestKind kind = RequestKind::kSolve;

  // --- network shape ---
  int n = 8;            ///< routers per side (row length for kSolve)
  int height = 0;       ///< 0 = square (height == n); schema-reserved
  int link_limit = 4;   ///< C, the cross-section link limit
  int base_flit_bits = 256;  ///< B, the baseline flit width

  // --- kSolve ---
  std::string method = "dcsa";  ///< dcsa | onlysa | dnc | exact
  long moves = 10000;           ///< SA move budget (dcsa / onlysa)

  // --- kEvaluate / kSimulate ---
  /// Express-link placement as "lo-hi,lo-hi,..." ("" = plain row). The
  /// homogeneous design replicates it over every row and column.
  std::string links;
  /// Scenario identity of the traffic: a synthetic pattern name
  /// (uniform_random, transpose, ...) or a PARSEC model name (canneal,
  /// ...). Deterministically expands to a rate matrix, so the name is the
  /// traffic-matrix hash.
  std::string workload = "uniform_random";
  double load = 0.02;     ///< packets/node/cycle offered
  long cycles = 10000;    ///< measurement window (kSimulate)
  std::string routing = "xy";  ///< xy | yx | o1turn (kSimulate)
  int vcs = 4;            ///< virtual channels per port (kSimulate)

  // --- objective knobs ---
  /// Per-hop contention allowance Tc of the analytic model (kEvaluate).
  double contention_per_hop = 0.0;

  std::uint64_t seed = 1;

  /// Canonical JSON: {"schema", "kind", ...} restricted to the fields the
  /// kind consumes, in a fixed member order. Feed through
  /// obs::canonical_json for the hashable byte string.
  [[nodiscard]] obs::Json to_json() const;

  /// The content-addressed identity: obs::fnv1a64_hex over the canonical
  /// serialization of to_json(). Thread-count and machine invariant; this
  /// is the cache key and the reply correlation id.
  [[nodiscard]] std::string id() const;

  /// Parses a request object (any member order; unknown members are
  /// rejected so typos never silently hash as defaults). Throws
  /// xlp::Error(kParse) on malformed or out-of-range fields.
  [[nodiscard]] static Request from_json(const obs::Json& doc);

  /// Validates field ranges (also called by from_json); throws
  /// xlp::Error(kParse) with a field-naming message.
  void validate() const;
};

/// Executes one request to completion and returns its canonical result
/// payload — a Json object with a fixed member order, byte-deterministic
/// for a given request at any thread count (the determinism the cache
/// relies on). `control` may stop long solves/simulations early; an early
/// stop throws xlp::Error(kState) rather than returning a partial
/// payload, so partial results are never cached.
[[nodiscard]] obs::Json execute_request(const Request& request,
                                        runctl::RunControl* control);

}  // namespace xlp::svc
