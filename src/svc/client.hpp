#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "svc/request.hpp"

namespace xlp::svc {

/// Client-side helpers for talking to `xlpd`: batch construction plus the
/// two transports (file queue, local socket). The drivers that used to run
/// solves in-process — the C sweep, fault campaigns — build their work as
/// Request batches and submit through these, so repeated design points are
/// answered by the server's content-addressed cache instead of re-solved.

/// The C-sweep as a request batch: one kSolve request per feasible link
/// limit of an n-router row (limits that do not divide `base_flit_bits`
/// are skipped, exactly like core::sweep_link_limits).
[[nodiscard]] std::vector<Request> sweep_batch(int n,
                                               const std::string& method,
                                               long moves,
                                               std::uint64_t seed,
                                               int base_flit_bits = 256);

/// Serializes a batch as the submission document `xlpd` ingests: a JSON
/// array of request objects (a single-element batch still serializes as an
/// array — the reply shape then tells object from array submissions).
[[nodiscard]] std::string batch_to_text(const std::vector<Request>& batch);

/// Bounded exponential backoff with deterministic jitter — the retry
/// schedule behind `xlp submit --retries/--retry-base-ms` and the socket
/// client's reconnect loop. Deterministic: backoff_ms(k) is a pure
/// function of (seed, k), so a retrying test run is reproducible.
struct RetryPolicy {
  int retries = 5;         ///< additional attempts after the first (0 = none)
  double base_ms = 50.0;   ///< delay before the first retry
  double max_ms = 2000.0;  ///< exponential growth is capped here
  std::uint64_t seed = 1;  ///< jitter stream

  /// Delay in milliseconds before retry `attempt` (1-based):
  /// min(max_ms, base_ms * 2^(attempt-1)) scaled by a jitter factor in
  /// [0.5, 1.0) so synchronized clients fan out instead of stampeding.
  [[nodiscard]] double backoff_ms(int attempt) const;
};

/// True when `reply_text` is a reply document (object or array) carrying
/// at least one `error` with `"retryable":true` — the server's signal that
/// resubmitting the identical request can succeed (deadline stops,
/// injected faults, poisoned executions). Malformed text is not retryable.
[[nodiscard]] bool reply_has_retryable_error(const std::string& reply_text);

/// Drops a submission into `<queue_dir>/inbox/<name>.json`, wrapped in the
/// xlp-envelope/1 integrity envelope and written atomically — the server
/// verifies the checksum before trusting a byte of it. Returns false on
/// write failure.
[[nodiscard]] bool queue_submit(const std::string& queue_dir,
                                const std::string& name,
                                const std::string& text);

/// Polls `<queue_dir>/outbox/<name>.json` until a verified reply appears,
/// then consumes (removes) the file and returns the reply document. A file
/// that fails the envelope check is a write in progress or a torn write —
/// it is left in place and polling continues, because the server rewrites
/// replies atomically on its next pass. Unwrapped reply files (pre-envelope
/// servers) are accepted as-is.
///
/// Throws Error(kState) when `timeout_seconds` elapses, with context
/// naming the request, the time waited, and whether the inbox submission
/// still exists — which distinguishes "server down or backlogged" (file
/// still there) from "reply lost after consumption".
[[nodiscard]] std::string queue_wait(const std::string& queue_dir,
                                     const std::string& name,
                                     double timeout_seconds);

/// One round trip over the `xlpd` local socket: connect, send the
/// submission as a length-prefixed frame, read the reply frame. nullopt
/// when the server is unreachable or the connection breaks.
[[nodiscard]] std::optional<std::string> socket_submit(
    const std::string& socket_path, const std::string& text);

/// A persistent connection to a socket `xlpd`: one length-prefixed frame
/// round trip per submit() call, all over the same connection — so a
/// client can time requests individually (`xlp submit`) or poll a stats
/// snapshot cheaply (`xlp top`) without a connect per request.
class SocketClient {
 public:
  /// Connects to the daemon, retrying per `retry` on connect failure
  /// (covers the startup race where the client outpaces the daemon's
  /// bind); ok() is false when every attempt failed.
  explicit SocketClient(const std::string& socket_path,
                        RetryPolicy retry = {});
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  /// Sends one submission document, reads one reply document. nullopt on
  /// a transport error; the connection is dead afterwards.
  [[nodiscard]] std::optional<std::string> submit(const std::string& text);

  /// submit() behind the retry policy: a transport error (connection
  /// refused/reset, truncated reply frame) reconnects and resends after
  /// backoff; a reply carrying a retryable error resubmits the same way.
  /// Safe because the server deduplicates by content id — a resend of
  /// already-executed work is a cache hit, byte-identical by contract.
  /// Returns the last reply (which may still be a non-retryable or
  /// exhausted-retries error reply), or nullopt when the transport never
  /// recovered.
  [[nodiscard]] std::optional<std::string> submit_with_retry(
      const std::string& text);

 private:
  std::string socket_path_;
  RetryPolicy retry_;
  int fd_ = -1;
};

/// The canonical `stats` probe submission ({"schema","kind":"stats"}) —
/// what `xlp top` sends every refresh.
[[nodiscard]] std::string stats_request_text();

}  // namespace xlp::svc
