#pragma once

#include <optional>
#include <string>
#include <vector>

#include "svc/request.hpp"

namespace xlp::svc {

/// Client-side helpers for talking to `xlpd`: batch construction plus the
/// two transports (file queue, local socket). The drivers that used to run
/// solves in-process — the C sweep, fault campaigns — build their work as
/// Request batches and submit through these, so repeated design points are
/// answered by the server's content-addressed cache instead of re-solved.

/// The C-sweep as a request batch: one kSolve request per feasible link
/// limit of an n-router row (limits that do not divide `base_flit_bits`
/// are skipped, exactly like core::sweep_link_limits).
[[nodiscard]] std::vector<Request> sweep_batch(int n,
                                               const std::string& method,
                                               long moves,
                                               std::uint64_t seed,
                                               int base_flit_bits = 256);

/// Serializes a batch as the submission document `xlpd` ingests: a JSON
/// array of request objects (a single-element batch still serializes as an
/// array — the reply shape then tells object from array submissions).
[[nodiscard]] std::string batch_to_text(const std::vector<Request>& batch);

/// Drops a submission into `<queue_dir>/inbox/<name>.json` (atomically, so
/// the server never reads a torn file). Returns false on write failure.
[[nodiscard]] bool queue_submit(const std::string& queue_dir,
                                const std::string& name,
                                const std::string& text);

/// Polls `<queue_dir>/outbox/<name>.json` until the reply appears, the
/// timeout elapses, or `cancelled` (optional) returns true. The reply file
/// is consumed (removed) on success.
[[nodiscard]] std::optional<std::string> queue_wait(
    const std::string& queue_dir, const std::string& name,
    double timeout_seconds);

/// One round trip over the `xlpd` local socket: connect, send the
/// submission as a length-prefixed frame, read the reply frame. nullopt
/// when the server is unreachable or the connection breaks.
[[nodiscard]] std::optional<std::string> socket_submit(
    const std::string& socket_path, const std::string& text);

/// A persistent connection to a socket `xlpd`: one length-prefixed frame
/// round trip per submit() call, all over the same connection — so a
/// client can time requests individually (`xlp submit`) or poll a stats
/// snapshot cheaply (`xlp top`) without a connect per request.
class SocketClient {
 public:
  /// Connects to the daemon; ok() is false when it is unreachable.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

  /// Sends one submission document, reads one reply document. nullopt on
  /// a transport error; the connection is dead afterwards.
  [[nodiscard]] std::optional<std::string> submit(const std::string& text);

 private:
  int fd_ = -1;
};

/// The canonical `stats` probe submission ({"schema","kind":"stats"}) —
/// what `xlp top` sends every refresh.
[[nodiscard]] std::string stats_request_text();

}  // namespace xlp::svc
