#include "obs/canonical.hpp"

#include <algorithm>

namespace xlp::obs {

Json canonical_sorted(const Json& value) {
  switch (value.type()) {
    case Json::Type::kArray: {
      Json out = Json::array();
      for (std::size_t i = 0; i < value.size(); ++i)
        out.push(canonical_sorted(value.at(i)));
      return out;
    }
    case Json::Type::kObject: {
      std::vector<const std::pair<std::string, Json>*> members;
      members.reserve(value.members().size());
      for (const auto& member : value.members()) members.push_back(&member);
      std::stable_sort(members.begin(), members.end(),
                       [](const auto* a, const auto* b) {
                         return a->first < b->first;
                       });
      Json out = Json::object();
      for (const auto* member : members)
        out.set(member->first, canonical_sorted(member->second));
      return out;
    }
    default:
      return value;
  }
}

std::string canonical_json(const Json& value) {
  return canonical_sorted(value).dump();
}

std::string fnv1a64_hex(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace xlp::obs
