#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace xlp::obs {

/// One run-ledger record: what ran, under which scenario, what it wrote
/// and how it ended. Every `xlp` subcommand appends one of these to
/// `<out-dir>/ledger.jsonl`, giving a run directory an append-only
/// provenance log that `xlp report` and `tools/run_diff` read back.
///
/// The run id is a content hash over (subcommand, canonical params, seed,
/// git sha) — the scenario identity, deliberately excluding execution
/// details like thread count, wall time or output paths, so the same
/// request hashes identically everywhere. This is the stepping stone
/// toward a content-addressed result cache (ROADMAP item 5): a cache key
/// is exactly this hash.
struct LedgerEntry {
  std::string subcommand;
  /// Canonical scenario parameters, inserted by each subcommand in a fixed
  /// order. Must not contain output paths, thread counts or time limits.
  Json params = Json::object();
  std::uint64_t seed = 0;
  std::string git_sha = "unknown";
  std::string hostname = "unknown";
  double wall_seconds = 0.0;
  int exit_status = 0;
  /// Paths of every artifact the run wrote (traces, stats, checkpoints,
  /// series, reports), in the order they were registered.
  std::vector<std::string> artifacts;
  /// Whether this request was served from the svc result cache: -1 (the
  /// default) omits the field — a direct run, not served by `xlpd`; 0 / 1
  /// serialize as `"cache_hit": false / true`. Not part of the run id
  /// (execution detail, like wall time).
  int cache_hit = -1;

  /// Content-hashed scenario identity (16 lowercase hex chars); see
  /// ledger_run_id().
  [[nodiscard]] std::string run_id() const;

  /// {"schema":"xlp-ledger/1","run_id",...} with a fixed member order so
  /// identical runs serialize byte-identically (wall_seconds excepted).
  [[nodiscard]] Json to_json() const;
};

/// FNV-1a 64-bit over the canonical byte string
/// `subcommand \n canonical_json(params) \n seed \n git_sha`, hex-encoded
/// (see obs/canonical.hpp — object keys are sorted, so member insertion
/// order never matters). Stable across platforms, processes and thread
/// counts: it depends only on the scenario identity.
[[nodiscard]] std::string ledger_run_id(const std::string& subcommand,
                                        const Json& params,
                                        std::uint64_t seed,
                                        const std::string& git_sha);

/// Appends one record to the JSONL ledger at `path`, creating it (and any
/// parent directories) on first write. The whole file is rewritten through
/// util::atomic_write_file, so a crash mid-append leaves the previous
/// ledger intact rather than a torn line. Returns false, without throwing,
/// when the write failed — ledger output is best-effort telemetry.
[[nodiscard]] bool append_ledger_entry(const std::string& path,
                                       const LedgerEntry& entry);

/// Parses every well-formed record of a JSONL ledger file, skipping
/// malformed lines; empty when the file is missing or unreadable.
[[nodiscard]] std::vector<Json> read_ledger(const std::string& path);

}  // namespace xlp::obs
